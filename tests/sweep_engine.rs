//! Tier-1 suite of the scenario sweep engine.
//!
//! Three properties make the engine trustworthy:
//!
//! * the parallel runner is a pure speedup — its artifacts are
//!   byte-identical to the sequential path for any worker count,
//! * plan expansion is the exact cartesian product of the axes, in
//!   deterministic order,
//! * the canned fig7/fig9/fig10 sweep plans regenerate the *same* artifacts
//!   as the sequential generators and therefore still pass the golden
//!   `figures --check` gate.

use clover_bench::{run_artifact, run_canned_sweep, SWEEP_PLAN_EXPERIMENTS};
use cloverleaf_wa::golden::{check_artifact, golden, Artifact};
use cloverleaf_wa::machine::MachinePreset;
use cloverleaf_wa::scenario::{render_block, run_plan, RankRange, Stage, SweepPlan};

fn small_plan() -> SweepPlan {
    SweepPlan::new()
        .machine(MachinePreset::IceLakeSp8360y)
        .machine(MachinePreset::SapphireRapids8470 { snc: true })
        .grid(1920)
        .grid(960)
        .ranks(RankRange::new(1, 16))
        .ranks(RankRange::new(31, 37))
        .stage(Stage::Original)
        .stage(Stage::SpecI2MOff)
        .stage(Stage::Optimized)
}

/// The exact bytes `figures sweep` prints for these artifacts (the CLI
/// itself renders through the same `render_block`).
fn rendered(artifacts: &[Artifact]) -> String {
    artifacts.iter().map(render_block).collect()
}

#[test]
fn expansion_is_the_cartesian_product_in_plan_order() {
    let plan = small_plan();
    assert_eq!(plan.len(), 2 * 2 * 2 * 3);
    let scenarios = plan.expand();
    assert_eq!(scenarios.len(), plan.len());
    assert!(plan.validate().is_ok());
    // Stages vary fastest, machines slowest.
    assert_eq!(scenarios[0].stage, Stage::Original);
    assert_eq!(scenarios[1].stage, Stage::SpecI2MOff);
    assert_eq!(scenarios[2].stage, Stage::Optimized);
    assert_eq!(scenarios[0].machine, scenarios[11].machine);
    assert_ne!(scenarios[11].machine, scenarios[12].machine);
}

#[test]
fn parallel_runner_is_byte_identical_to_sequential() {
    let plan = small_plan();
    let sequential = run_plan(&plan, 1);
    assert_eq!(sequential.len(), plan.len());
    for jobs in [2, 4] {
        let parallel = run_plan(&plan, jobs);
        assert_eq!(
            rendered(&sequential),
            rendered(&parallel),
            "jobs={jobs} must not change a single byte"
        );
        // Full-precision equality too, not just the rounded CSV rendering.
        assert_eq!(sequential, parallel, "jobs={jobs}");
    }
    // Output order is plan order regardless of worker interleaving.
    for (scenario, artifact) in plan.expand().iter().zip(&sequential) {
        assert_eq!(scenario.id(), artifact.id);
    }
}

#[test]
fn canned_sweep_plans_still_pass_the_golden_check() {
    for name in SWEEP_PLAN_EXPERIMENTS {
        let swept = run_canned_sweep(name, 2)
            .unwrap_or_else(|| panic!("experiment {name} has no canned sweep plan"));
        // Same bytes as the sequential generator the golden data was
        // validated against…
        let direct = run_artifact(name).unwrap();
        assert_eq!(direct.to_csv(), swept.to_csv(), "{name}");
        // …and within tolerance of the digitised paper data.
        let report = check_artifact(&swept, golden(name).unwrap());
        assert!(
            report.passed(),
            "{name} swept artifact drifted from the paper:\n{}",
            report.render_text(false)
        );
    }
}
