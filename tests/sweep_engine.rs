//! Tier-1 suite of the scenario sweep engine.
//!
//! Three properties make the engine trustworthy:
//!
//! * the parallel runner is a pure speedup — its artifacts are
//!   byte-identical to the sequential path for any worker count,
//! * plan expansion is the exact cartesian product of the axes, in
//!   deterministic order,
//! * the canned fig7/fig9/fig10 sweep plans regenerate the *same* artifacts
//!   as the sequential generators and therefore still pass the golden
//!   `figures --check` gate.

use clover_bench::{run_artifact, run_canned_sweep, SWEEP_PLAN_EXPERIMENTS};
use cloverleaf_wa::core::{ScalingEngine, ScalingModel, SweepMemo, TrafficOptions};
use cloverleaf_wa::golden::{check_artifact, golden, Artifact};
use cloverleaf_wa::machine::{
    icelake_sp_8360y, MachinePreset, ReplacementPolicyKind, WritePolicyKind,
};
use cloverleaf_wa::scenario::{
    evaluate, render_block, run_plan, LayerCondition, RankRange, Stage, SweepPlan,
};
use proptest::prelude::*;

fn small_plan() -> SweepPlan {
    SweepPlan::new()
        .machine(MachinePreset::IceLakeSp8360y)
        .machine(MachinePreset::SapphireRapids8470 { snc: true })
        .grid(1920)
        .grid(960)
        .ranks(RankRange::new(1, 16))
        .ranks(RankRange::new(31, 37))
        .stage(Stage::Original)
        .stage(Stage::SpecI2MOff)
        .stage(Stage::Optimized)
}

/// The exact bytes `figures sweep` prints for these artifacts (the CLI
/// itself renders through the same `render_block`).
fn rendered(artifacts: &[Artifact]) -> String {
    artifacts.iter().map(render_block).collect()
}

#[test]
fn expansion_is_the_cartesian_product_in_plan_order() {
    let plan = small_plan();
    assert_eq!(plan.len(), 2 * 2 * 2 * 3);
    let scenarios = plan.expand();
    assert_eq!(scenarios.len(), plan.len());
    assert!(plan.validate().is_ok());
    // Stages vary fastest, machines slowest.
    assert_eq!(scenarios[0].stage, Stage::Original);
    assert_eq!(scenarios[1].stage, Stage::SpecI2MOff);
    assert_eq!(scenarios[2].stage, Stage::Optimized);
    assert_eq!(scenarios[0].machine, scenarios[11].machine);
    assert_ne!(scenarios[11].machine, scenarios[12].machine);
}

#[test]
fn parallel_runner_is_byte_identical_to_sequential() {
    let plan = small_plan();
    let sequential = run_plan(&plan, 1);
    assert_eq!(sequential.len(), plan.len());
    for jobs in [2, 4] {
        let parallel = run_plan(&plan, jobs);
        assert_eq!(
            rendered(&sequential),
            rendered(&parallel),
            "jobs={jobs} must not change a single byte"
        );
        // Full-precision equality too, not just the rounded CSV rendering.
        assert_eq!(sequential, parallel, "jobs={jobs}");
    }
    // Output order is plan order regardless of worker interleaving.
    for (scenario, artifact) in plan.expand().iter().zip(&sequential) {
        assert_eq!(scenario.id(), artifact.id);
    }
}

proptest! {
    /// The nested-parallel, plan-wide-memoized runner is byte-identical to
    /// mapping the sequential per-scenario evaluator over the expansion,
    /// for random plans (axes, overlapping rank ranges) and job counts.
    #[test]
    fn memoized_nested_run_plan_matches_sequential_evaluate(
        second_machine in prop::sample::select(vec![false, true]),
        grid in prop::sample::select(vec![960usize, 1920]),
        start_a in 1usize..4,
        len_a in 0usize..12,
        start_b in 1usize..20,
        len_b in 0usize..8,
        stage_mask in 1usize..8,
        jobs in 1usize..6,
    ) {
        let mut plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(grid)
            // Two (often overlapping) rank ranges: the memoized engine must
            // not leak one range's speedup normalisation into the other.
            .ranks(RankRange::new(start_a, start_a + len_a))
            .ranks(RankRange::new(start_b, start_b + len_b));
        if second_machine {
            plan = plan.machine(MachinePreset::SapphireRapids8480);
        }
        for (i, stage) in Stage::all().into_iter().enumerate() {
            if stage_mask & (1 << i) != 0 {
                plan = plan.stage(stage);
            }
        }
        let reference: Vec<Artifact> = plan.expand().iter().map(evaluate).collect();
        let nested = run_plan(&plan, jobs);
        prop_assert_eq!(rendered(&reference), rendered(&nested));
        prop_assert_eq!(reference, nested);
    }

    /// The hoisted scaling engine reproduces the reference model bit for
    /// bit over random rank counts, stages and layer-condition settings —
    /// with and without a shared memo.
    #[test]
    fn scaling_engine_point_matches_model(
        ranks in 1usize..=72,
        stage_idx in 0usize..3,
        layer_condition in prop::sample::select(vec![false, true]),
        grid in prop::sample::select(vec![960usize, 1920]),
    ) {
        let machine = icelake_sp_8360y();
        let model = ScalingModel::new(machine.clone()).with_grid(grid);
        let engine = ScalingEngine::new(machine, grid);
        let opts = Stage::all()[stage_idx]
            .options(ranks)
            .with_layer_condition(layer_condition);
        let reference = model.point(ranks, &opts);
        prop_assert_eq!(&reference, &engine.point(ranks, &opts));
        let memo = SweepMemo::new();
        prop_assert_eq!(&reference, &engine.point_memo(ranks, &opts, &memo));
        // Second lookup is a hit and still identical.
        prop_assert_eq!(&reference, &engine.point_memo(ranks, &opts, &memo));
        prop_assert_eq!(memo.stats(), (1, 1));
    }
}

#[test]
fn every_policy_combination_is_selectable_end_to_end() {
    // The full policy grid — 4 replacement × 3 write policies — swept
    // through the same engine `figures sweep --replacement all
    // --write-policy all` drives.
    let mut plan = SweepPlan::new()
        .machine(MachinePreset::IceLakeSp8360y)
        .grid(1920)
        .ranks(RankRange::new(4, 8))
        .stage(Stage::Original);
    for r in ReplacementPolicyKind::all() {
        plan = plan.replacement(r);
    }
    for w in WritePolicyKind::all() {
        plan = plan.write_policy(w);
    }
    assert_eq!(plan.len(), 4 * 3);
    assert!(plan.validate().is_ok());
    let artifacts = run_plan(&plan, 3);
    assert_eq!(artifacts.len(), 12);
    // Parallel equals sequential on the policy grid too.
    assert_eq!(artifacts, run_plan(&plan, 1));
    // Every combination produced a distinct, fully-populated artifact…
    let mut ids: Vec<&str> = artifacts.iter().map(|a| a.id.as_str()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 12);
    for a in &artifacts {
        assert_eq!(a.rows.len(), 5, "{}", a.id);
    }
    // …and the policy axes actually steer the model: the default LRU +
    // write-allocate scenario moves the most memory per step, a broken
    // layer condition more than a fulfilled one.
    let volume_of = |a: &Artifact| {
        let col = a.column_index("volume_per_step").unwrap();
        a.rows[0][col].as_f64().unwrap()
    };
    let scenarios = plan.expand();
    let default_idx = scenarios
        .iter()
        .position(|s| {
            s.replacement == ReplacementPolicyKind::Lru
                && s.write_policy == WritePolicyKind::Allocate
        })
        .unwrap();
    assert_eq!(
        artifacts[default_idx].id,
        "sweep-icx-8360y-g1920-r4..8-original"
    );
    for (s, a) in scenarios.iter().zip(&artifacts) {
        assert_eq!(s.id(), a.id);
        if s.write_policy != WritePolicyKind::Allocate {
            assert!(
                volume_of(a) < volume_of(&artifacts[default_idx]),
                "{}: write-allocate evasion must shrink the volume",
                a.id
            );
        }
    }
    // The layer-condition axis is live as well.
    let broken = evaluate(&{
        let mut s = scenarios[default_idx].clone();
        s.layer_condition = LayerCondition::Broken;
        s
    });
    assert!(volume_of(&broken) > volume_of(&artifacts[default_idx]));
    assert!(broken.id.ends_with("-lc-broken"));
}

#[test]
fn memoized_sweep_range_matches_model_sweep_range() {
    let machine = icelake_sp_8360y();
    let model = ScalingModel::new(machine.clone());
    let engine = ScalingEngine::new(machine, cloverleaf_wa::core::TINY_GRID);
    let memo = SweepMemo::new();
    // Overlapping ranges exercise cold, mixed and fully-warm lookups.
    for range in [1..=72usize, 1..=36, 17..=54] {
        let reference = model.sweep_range(range.clone(), TrafficOptions::original);
        let memoized = engine.sweep_range_memo(range.clone(), TrafficOptions::original, &memo);
        assert_eq!(reference, memoized, "range {range:?}");
    }
    let (hits, misses) = memo.stats();
    assert_eq!(misses, 72, "each distinct point evaluated exactly once");
    assert_eq!(hits, 36 + 38, "overlapping ranges served from the memo");
}

#[test]
fn canned_sweep_plans_still_pass_the_golden_check() {
    for name in SWEEP_PLAN_EXPERIMENTS {
        let swept = run_canned_sweep(name, 2)
            .unwrap_or_else(|| panic!("experiment {name} has no canned sweep plan"));
        // Same bytes as the sequential generator the golden data was
        // validated against…
        let direct = run_artifact(name).unwrap();
        assert_eq!(direct.to_csv(), swept.to_csv(), "{name}");
        // …and within tolerance of the digitised paper data.
        let report = check_artifact(&swept, golden(name).unwrap());
        assert!(
            report.passed(),
            "{name} swept artifact drifted from the paper:\n{}",
            report.render_text(false)
        );
    }
}
