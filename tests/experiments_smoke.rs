//! Smoke test of the figure/table regeneration harness: every experiment
//! the `figures` binary advertises must produce non-empty output, and
//! unknown names must be rejected.

use clover_bench::{run_experiment, EXPERIMENTS};

#[test]
fn every_experiment_produces_output() {
    assert_eq!(EXPERIMENTS.len(), 12);
    for name in EXPERIMENTS {
        let out = run_experiment(name)
            .unwrap_or_else(|| panic!("experiment {name} missing from the dispatcher"));
        assert!(
            !out.trim().is_empty(),
            "experiment {name} produced empty output"
        );
        // Every generator emits a header line plus at least one data row.
        assert!(
            out.lines().count() >= 2,
            "experiment {name} produced fewer than 2 lines"
        );
    }
}

#[test]
fn experiment_list_matches_paper_artifacts() {
    let expected = [
        "listing2", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11",
    ];
    assert_eq!(EXPERIMENTS, expected);
}

#[test]
fn unknown_experiments_return_none() {
    for name in ["fig99", "table2", "", "Table1", "fig"] {
        assert!(
            run_experiment(name).is_none(),
            "unexpected output for {name:?}"
        );
    }
}
