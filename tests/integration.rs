//! Cross-crate integration tests: the analytic traffic model, the cache
//! simulator measurement, the scaling model and the hydro mini-app must tell
//! a consistent story.

use cloverleaf_wa::core::decomp::{is_prime, Decomposition};
use cloverleaf_wa::core::{ScalingModel, TrafficModel, TrafficOptions, TINY_GRID};
use cloverleaf_wa::leaf::{SimConfig, Simulation};
use cloverleaf_wa::machine::icelake_sp_8360y;
use cloverleaf_wa::perfmon::{measure_loop, MeasureConfig};
use cloverleaf_wa::stencil::{cloverleaf_loops, loop_by_name, CodeBalance};
use cloverleaf_wa::ubench::{store_ratio, StoreKind};

/// The analytic model and the cache-simulator measurement must agree on the
/// single-core code balance of every hotspot loop within ~12 %.
#[test]
fn model_and_simulator_agree_on_single_core_balance() {
    let machine = icelake_sp_8360y();
    let model = TrafficModel::new(machine.clone());
    let decomp = Decomposition::new(1, TINY_GRID, TINY_GRID);
    let opts = TrafficOptions::original(1);
    // A shortened inner dimension keeps the simulation cheap; the layer
    // condition is still satisfied, so the balance is representative.
    let cfg = MeasureConfig {
        local_inner: 2048,
        rows: 10,
        ..MeasureConfig::single_rank()
    };
    for spec in cloverleaf_loops() {
        let predicted = model.predict_loop(&spec, &opts, &decomp).code_balance();
        let measured = measure_loop(&machine, &spec, &cfg).bytes_per_iteration();
        let rel = (predicted - measured).abs() / predicted;
        assert!(
            rel < 0.12,
            "{}: model {predicted:.2} vs simulator {measured:.2} byte/it",
            spec.name
        );
    }
}

/// The paper's Table I reports that the single-core measurement matches the
/// LCF+WA bound; the simulator must reproduce that for am04 (Listing 3).
#[test]
fn am04_single_core_measurement_matches_paper_value() {
    let machine = icelake_sp_8360y();
    let spec = loop_by_name("am04").unwrap();
    let cfg = MeasureConfig {
        local_inner: 3840,
        rows: 12,
        ..MeasureConfig::single_rank()
    };
    let measured = measure_loop(&machine, &spec, &cfg).bytes_per_iteration();
    // Paper: 24.05 byte/it.
    assert!((measured - 24.05).abs() < 2.5, "measured {measured}");
}

/// The full scaling sweep must show the prime-number effect: every prime
/// rank count beyond the second ccNUMA domain has a higher average hotspot
/// code balance than its non-prime neighbours.
#[test]
fn prime_rank_counts_spike_in_code_balance() {
    let model = ScalingModel::new(icelake_sp_8360y());
    let points = model.sweep(72, TrafficOptions::original);
    let avg = |ranks: usize| -> f64 {
        let p = &points[ranks - 1];
        p.loop_balances.iter().map(|(_, b)| b).sum::<f64>() / p.loop_balances.len() as f64
    };
    for prime in [37usize, 41, 43, 47, 53, 59, 61, 67, 71] {
        assert!(is_prime(prime));
        assert!(
            avg(prime) > avg(prime + 1) * 1.02,
            "{prime} ranks: {} vs {} byte/it",
            avg(prime),
            avg(prime + 1)
        );
    }
}

/// Switching SpecI2M off removes the prime spikes (the code balance becomes
/// insensitive to the rank count, modulo the small halo overhead).
#[test]
fn speci2m_off_flattens_the_code_balance() {
    let model = ScalingModel::new(icelake_sp_8360y());
    let points = model.sweep(72, TrafficOptions::speci2m_off);
    let avg = |ranks: usize| -> f64 {
        let p = &points[ranks - 1];
        p.loop_balances.iter().map(|(_, b)| b).sum::<f64>() / p.loop_balances.len() as f64
    };
    let spread = avg(71) / avg(72);
    assert!(
        spread < 1.05,
        "without SpecI2M the prime effect must shrink, spread {spread}"
    );
    // And the overall level matches the single-core value.
    assert!((avg(72) - avg(1)).abs() / avg(1) < 0.05);
}

/// The store-ratio microbenchmark and the CloverLeaf traffic model must be
/// consistent: the evasion the store benchmark sees at full node (~75-80 %)
/// is what makes the am04 balance drop from 24 to below 20 byte/it.
#[test]
fn store_benchmark_and_loop_model_are_consistent() {
    let machine = icelake_sp_8360y();
    let ratio = store_ratio(&machine, 72, 1, StoreKind::Normal);
    let evasion = 2.0 - ratio;
    let model = TrafficModel::new(machine);
    let decomp = Decomposition::new(72, TINY_GRID, TINY_GRID);
    let spec = loop_by_name("am04").unwrap();
    let t = model.predict_loop(&spec, &TrafficOptions::original(72), &decomp);
    let bounds = CodeBalance::from_spec(&spec);
    let expected = bounds.min + 8.0 * (1.0 - evasion);
    assert!(
        (t.code_balance() - expected).abs() < 3.0,
        "loop model {:.2} vs store-benchmark-derived {:.2}",
        t.code_balance(),
        expected
    );
}

/// End-to-end: the hydro mini-app runs on a prime rank count with a 1D
/// decomposition and still produces the same physics as the serial run.
#[test]
fn hydro_app_is_decomposition_invariant_even_for_prime_ranks() {
    let config = SimConfig::small(35, 3);
    let serial = Simulation::run_serial(&config);
    let prime = Simulation::run_parallel(&config, 7);
    let rel = (prime.internal_energy - serial.internal_energy).abs() / serial.internal_energy;
    assert!(rel < 1e-6, "prime-rank run diverges by {rel}");
    let d = Decomposition::new(7, 35, 35);
    assert!(d.is_one_dimensional(), "7 ranks must decompose 1D");
}

/// The optimized code variant must never be slower than the original in the
/// model, for any rank count.
#[test]
fn optimized_variant_dominates_original_across_the_sweep() {
    let model = ScalingModel::new(icelake_sp_8360y());
    let orig = model.sweep(72, TrafficOptions::original);
    let opt = model.sweep(72, TrafficOptions::optimized);
    for (o, n) in orig.iter().zip(&opt) {
        assert!(
            n.time_per_step <= o.time_per_step * 1.001,
            "ranks={}: optimized {} vs original {}",
            o.ranks,
            n.time_per_step,
            o.time_per_step
        );
    }
}
