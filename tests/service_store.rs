//! Tier-1 suite of the persistent memo store and the sweep service.
//!
//! The acceptance properties of sweep-as-a-service:
//!
//! * **warm restart** — a second "process" (fresh memos) loading the
//!   persisted store answers a repeated plan with ≥ 90% memo hit rate and
//!   byte-identical output to the cold run,
//! * **invalidation** — a bumped model hash makes the store load cold and
//!   forces a clean rebuild (same bytes, recomputed),
//! * **resilience** — truncated or corrupt store files rebuild instead of
//!   crashing, and a rebuild-and-save restores a warm store,
//! * **exact statistics** — the single-flight memo counts one miss per
//!   computed key no matter how many threads race on it, which is what
//!   makes the hit-rate acceptance number meaningful,
//! * **concurrent coalescing** — any number of clients racing overlapping
//!   and identical sweeps on one shared service get payloads
//!   byte-identical to the single-threaded CLI, while the flight
//!   statistics prove each unique point was computed exactly once,
//! * **compaction** — a `--store-cap` save keeps the most recently
//!   touched entries, and a reload of the compacted store answers the
//!   recent plan fully warm from ≤ cap entries.

use std::fs;
use std::sync::Arc;

use cloverleaf_wa::cachesim::FlightMemo;
use cloverleaf_wa::core::SweepMemo;
use cloverleaf_wa::scenario::{render_block, run_plan_memo, SweepArgs};
use cloverleaf_wa::service::{model_hash, LoadOutcome, PersistentStore, Response, SweepService};
use proptest::prelude::*;

/// Flags of the repeated plan, exactly as a daemon client or the
/// `figures sweep` command line would spell them.
const SWEEP_FLAGS: &str = "--machine icx-8360y --grid 1920 --ranks 1..12 --stage all --jobs 2";

fn sweep_words() -> Vec<String> {
    SWEEP_FLAGS.split_whitespace().map(str::to_string).collect()
}

/// The payload bytes of one `sweep` request against `service`.
fn request_sweep(service: &SweepService) -> String {
    match service.handle_request(&format!("sweep {SWEEP_FLAGS}")) {
        Response::Payload(payload) => payload,
        other => panic!("sweep request failed: {other:?}"),
    }
}

fn temp_store(name: &str) -> PersistentStore {
    let dir = std::env::temp_dir().join(format!("clover-service-tier1-{name}"));
    let _ = fs::remove_dir_all(&dir);
    PersistentStore::new(dir.join("store.txt"))
}

#[test]
fn warm_restart_hits_the_memo_and_reproduces_the_cold_bytes() {
    let store = temp_store("warm-restart");
    let plan_points = SweepArgs::parse(&sweep_words()).unwrap().plan.len() as u64 * 12; // 12 ranks per scenario curve

    // "Process 1": cold start, first evaluation, persist.
    let (cold, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::ColdMissing);
    let cold_bytes = request_sweep(&cold);
    let (_, cold_misses) = cold.sweep_memo().stats();
    assert!(cold_misses > 0, "a cold run must compute");
    let saved = cold.save().unwrap().expect("store is configured");
    assert_eq!(saved as u64, plan_points, "every point persists");

    // "Process 2": fresh memos, warm-loaded from disk.
    let (warm, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::Warm(saved), "store loads warm");
    let warm_bytes = request_sweep(&warm);
    assert_eq!(
        warm_bytes, cold_bytes,
        "warm restart must be byte-identical"
    );
    let (hits, misses) = warm.sweep_memo().stats();
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate >= 0.9,
        "acceptance: warm hit rate ≥ 90%, got {hits} hits / {misses} misses"
    );
    assert_eq!(misses, 0, "a persisted identical plan recomputes nothing");

    // "Process 3": the model hash changed — the store is untrusted, the
    // service rebuilds cleanly and arrives at the same bytes.
    let bumped = PersistentStore::with_hash(store.path(), model_hash() ^ 1);
    let (rebuilt, outcome) = SweepService::with_store(bumped);
    assert_eq!(
        outcome,
        LoadOutcome::ColdStale,
        "bumped hash must invalidate"
    );
    let rebuilt_bytes = request_sweep(&rebuilt);
    assert_eq!(rebuilt_bytes, cold_bytes, "rebuild reproduces the output");
    let (_, rebuilt_misses) = rebuilt.sweep_memo().stats();
    assert_eq!(
        rebuilt_misses, cold_misses,
        "a stale store recomputes fully"
    );

    let _ = fs::remove_dir_all(store.path().parent().unwrap());
}

#[test]
fn store_round_trip_is_byte_identical_without_the_service_layer() {
    // The same property straight through `run_plan_memo` + the store —
    // the path `figures sweep --store <path>` takes.
    let store = temp_store("round-trip");
    let parsed = SweepArgs::parse(&sweep_words()).unwrap();

    let cold_memo = SweepMemo::new();
    let cold_artifacts = run_plan_memo(&parsed.plan, parsed.jobs, &cold_memo);
    store
        .save(&cloverleaf_wa::cachesim::SimMemo::new(), &cold_memo)
        .unwrap();

    let warm_memo = SweepMemo::new();
    let outcome = store.warm_load(&cloverleaf_wa::cachesim::SimMemo::new(), &warm_memo);
    assert_eq!(outcome.loaded(), cold_memo.len());
    let warm_artifacts = run_plan_memo(&parsed.plan, parsed.jobs, &warm_memo);
    assert_eq!(warm_artifacts, cold_artifacts, "full-precision equality");
    let (_, misses) = warm_memo.stats();
    assert_eq!(misses, 0, "the warm run is served from the store");

    let _ = fs::remove_dir_all(store.path().parent().unwrap());
}

#[test]
fn truncated_and_corrupt_stores_rebuild_and_resave() {
    let store = temp_store("corrupt");
    let (cold, _) = SweepService::with_store(store.clone());
    let cold_bytes = request_sweep(&cold);
    cold.save().unwrap();

    // Truncate: drop the `end <count>` trailer (a torn write).
    let full = fs::read_to_string(store.path()).unwrap();
    let trailer_at = full.rfind("end ").unwrap();
    fs::write(store.path(), &full[..trailer_at]).unwrap();
    let (service, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::ColdCorrupt, "truncation is detected");
    assert_eq!(request_sweep(&service), cold_bytes, "rebuild is clean");
    // Saving heals the store for the next process.
    service.save().unwrap();
    let (_, outcome) = SweepService::with_store(store.clone());
    assert!(matches!(outcome, LoadOutcome::Warm(_)), "store was healed");

    // Arbitrary garbage never panics either.
    fs::write(store.path(), b"\xff\xfe not a store \x00").unwrap();
    let (service, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::ColdCorrupt);
    assert_eq!(request_sweep(&service), cold_bytes);

    let _ = fs::remove_dir_all(store.path().parent().unwrap());
}

#[test]
fn serve_loop_answers_batched_clients_with_framed_payloads() {
    // The in-memory daemon loop: a client batch of ping + two identical
    // sweeps + stats + quit, answered in order with framed payloads.  The
    // two sweep payloads must be the same bytes — the second one answered
    // from the response cache without touching the memo.
    let service = SweepService::new();
    let batch = format!("ping\nsweep {SWEEP_FLAGS}\nsweep {SWEEP_FLAGS}\nstats\nquit\n");
    let mut out = Vec::new();
    service.serve(batch.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    assert!(text.starts_with("ok pong\n"), "{text}");
    let after_ping = &text["ok pong\n".len()..];
    let (len_line, rest) = after_ping.split_once('\n').unwrap();
    let len: usize = len_line.strip_prefix("ok ").unwrap().parse().unwrap();
    let first = &rest[..len];
    let (len_line2, rest2) = rest[len..].split_once('\n').unwrap();
    assert_eq!(len_line2, len_line, "identical request, identical framing");
    let second = &rest2[..len];
    assert_eq!(first, second, "repeated sweep is byte-identical");
    let tail = &rest2[len..];
    assert!(tail.contains("ok stats "), "{tail}");
    // 3 stages × 12 ranks, computed once: the repeat request is a
    // response-cache hit and never reaches the sweep memo.
    assert!(
        tail.contains("sweep-hits 0 sweep-misses 36"),
        "repeat served above the memo: {tail}"
    );
    assert!(
        tail.contains("response-hits 1 response-misses 1"),
        "repeat is a response-cache hit: {tail}"
    );
    assert!(tail.ends_with("ok bye\n"), "quit without a store: {tail}");

    // With the response cache disabled the repeat is served warm from the
    // memo instead — the pre-PR10 daemon semantics stay reachable.
    let service = SweepService::new().without_response_cache();
    let mut out = Vec::new();
    service.serve(batch.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("sweep-hits 36 sweep-misses 36"), "{text}");
    assert!(text.contains("response-hits 0 response-misses 0"), "{text}");
}

#[test]
fn compacted_store_reloads_warm_within_the_cap() {
    // Compaction acceptance: after serving a 12-point plan and then a
    // 6-point subset (which refreshes the subset's recency), a capped
    // save keeps only the 6 most recently touched entries, and a fresh
    // process loading the compacted store answers the subset fully warm.
    let store = temp_store("compaction");
    let full = "sweep --machine icx-8360y --grid 1920 --ranks 1..12";
    let recent = "sweep --machine icx-8360y --grid 1920 --ranks 1..6";
    let cap = 6;

    let (cold, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::ColdMissing);
    let cold = cold.with_store_cap(cap);
    let Response::Payload(_) = cold.handle_request(full) else {
        panic!("full sweep failed");
    };
    let Response::Payload(recent_bytes) = cold.handle_request(recent) else {
        panic!("subset sweep failed");
    };
    let saved = cold.save().unwrap().expect("store is configured");
    assert_eq!(saved, cap, "save is compacted to the cap");
    match cold.handle_request("stats") {
        Response::Line(line) => assert!(
            line.contains("store-evictions 6 store-compactions 1"),
            "compaction is counted: {line}"
        ),
        other => panic!("stats failed: {other:?}"),
    }

    // Fresh process: the compacted store holds ≤ cap entries, and the
    // recently served plan replays fully warm and byte-identical.
    let (warm, outcome) = SweepService::with_store(store.clone());
    assert_eq!(outcome, LoadOutcome::Warm(cap), "entry count ≤ store cap");
    let Response::Payload(warm_bytes) = warm.handle_request(recent) else {
        panic!("warm subset sweep failed");
    };
    assert_eq!(warm_bytes, recent_bytes, "compaction never changes bytes");
    let (hits, misses) = warm.sweep_memo().stats();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate >= 0.9,
        "acceptance: compacted reload ≥ 90% warm, got {hits} hits / {misses} misses"
    );

    let _ = fs::remove_dir_all(store.path().parent().unwrap());
}

proptest! {
    /// The exact-statistics contract of the single-flight memo: for any
    /// thread count and key set, racing lookups compute every key exactly
    /// once — misses == distinct keys, hits == the rest, no double-counted
    /// misses in the duplicate-simulation window.
    #[test]
    fn racing_memo_lookups_count_exactly(
        threads in 2usize..6,
        keys in 1usize..8,
        rounds in 1usize..3,
    ) {
        let memo: Arc<FlightMemo<usize, usize>> = Arc::new(FlightMemo::new());
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let memo = Arc::clone(&memo);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for round in 0..rounds {
                        for key in 0..keys {
                            let got = memo.get_or_insert_with(key, || key * 7);
                            assert_eq!(got, key * 7, "round {round}");
                        }
                    }
                });
            }
        });
        let (hits, misses) = memo.stats();
        prop_assert_eq!(misses as usize, keys, "one miss per distinct key");
        prop_assert_eq!(
            (hits + misses) as usize,
            threads * rounds * keys,
            "every lookup is either a hit or a miss"
        );
        prop_assert_eq!(memo.len(), keys);
    }
}

proptest! {
    /// The coalescing acceptance property of the pipelined daemon: any
    /// number of clients racing overlapping *and* identical sweeps on one
    /// shared service receive payloads byte-identical to what
    /// `figures sweep` prints for the same flags, in every interleaving —
    /// and the flight statistics prove the coalescing was real: across
    /// all clients and rounds, each unique (scenario, point) key was
    /// computed exactly once.
    #[test]
    fn concurrent_clients_get_cli_bytes_and_compute_each_point_once(
        clients in 2usize..5,
        nspans in 1usize..4,
        s1 in 1u32..4, l1 in 1u32..5,
        s2 in 1u32..4, l2 in 1u32..5,
        s3 in 1u32..4, l3 in 1u32..5,
        rounds in 1usize..3,
    ) {
        let spans: Vec<(u32, u32)> = [(s1, l1), (s2, l2), (s3, l3)][..nspans].to_vec();
        // Overlapping rank windows of one scenario family, plus a
        // respelled duplicate of the first window (explicit defaults and
        // a different --jobs) that must collapse onto the same canonical
        // response identity.
        let mut variants: Vec<String> = spans
            .iter()
            .map(|(start, len)| {
                format!("--machine icx-8360y --grid 1920 --ranks {start}..{}", start + len)
            })
            .collect();
        variants.push(format!("{} --stage original --jobs 3", variants[0]));

        // The single-threaded CLI path: the reference bytes per variant.
        let expected: Vec<String> = variants
            .iter()
            .map(|flags| {
                let words: Vec<String> =
                    flags.split_whitespace().map(str::to_string).collect();
                let parsed = SweepArgs::parse(&words).unwrap();
                let artifacts = run_plan_memo(&parsed.plan, parsed.jobs, &SweepMemo::new());
                artifacts.iter().map(render_block).collect()
            })
            .collect();

        let service = Arc::new(SweepService::new());
        std::thread::scope(|scope| {
            for c in 0..clients {
                let service = Arc::clone(&service);
                let variants = &variants;
                let expected = &expected;
                scope.spawn(move || {
                    // Each client walks the variants from its own offset,
                    // so identical requests race across clients.
                    for r in 0..rounds {
                        for v in 0..variants.len() {
                            let idx = (c + r + v) % variants.len();
                            match service.handle_request(&format!("sweep {}", variants[idx])) {
                                Response::Payload(payload) => assert_eq!(
                                    payload, expected[idx],
                                    "client {c} round {r}: bytes differ from the CLI"
                                ),
                                other => panic!("client {c}: sweep failed: {other:?}"),
                            }
                        }
                    }
                });
            }
        });

        // Every sweep-memo miss is one computed point; the union of the
        // rank windows is exactly the unique key set.
        let unique: std::collections::HashSet<u32> =
            spans.iter().flat_map(|&(s, l)| s..=s + l).collect();
        let (_, misses) = service.sweep_memo().stats();
        prop_assert_eq!(
            misses as usize,
            unique.len(),
            "each unique point computed exactly once across all clients"
        );
    }
}
