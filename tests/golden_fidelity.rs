//! Tier-1 paper-fidelity suite: every artifact the harness regenerates must
//! stay within its declared tolerance of the digitised paper data, the
//! harness itself must catch deliberate model perturbations, and the delta
//! table committed to `EXPERIMENTS.md` must match what the current model
//! produces.

use clover_bench::{check_experiment, run_artifact, EXPERIMENTS};
use cloverleaf_wa::golden::{
    check_artifact, golden, golden_artifacts, markdown_delta_table, DiffReport, GoldenArtifact,
};

const BEGIN_MARKER: &str = "<!-- BEGIN GENERATED DELTA TABLE (figures --delta-table all) -->";
const END_MARKER: &str = "<!-- END GENERATED DELTA TABLE -->";

/// The expensive part — regenerating all 12 artifacts — happens once; the
/// tolerance check and the `EXPERIMENTS.md` sync check share the result.
#[test]
fn every_artifact_is_within_tolerance_and_the_delta_table_is_in_sync() {
    let entries: Vec<(DiffReport, &GoldenArtifact)> = EXPERIMENTS
        .iter()
        .map(|name| {
            let report = check_experiment(name)
                .unwrap_or_else(|| panic!("experiment {name} has no golden data"));
            (report, golden(name).unwrap())
        })
        .collect();

    let mut failures = String::new();
    for (report, _) in &entries {
        if !report.passed() {
            failures.push_str(&report.render_text(false));
        }
    }
    assert!(
        failures.is_empty(),
        "artifacts drifted out of tolerance of the paper:\n{failures}"
    );

    let generated = markdown_delta_table(&entries);
    let experiments_md =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md"))
            .expect("EXPERIMENTS.md is readable");
    let begin = experiments_md
        .find(BEGIN_MARKER)
        .expect("EXPERIMENTS.md contains the delta-table begin marker");
    let end = experiments_md
        .find(END_MARKER)
        .expect("EXPERIMENTS.md contains the delta-table end marker");
    let committed = experiments_md[begin + BEGIN_MARKER.len()..end].trim();
    assert_eq!(
        committed,
        generated.trim(),
        "EXPERIMENTS.md delta table is stale; regenerate it with\n\
         cargo run --release -p clover-bench --bin figures -- --delta-table all"
    );
}

#[test]
fn golden_data_covers_exactly_the_experiment_set() {
    let ids: Vec<&str> = golden_artifacts().iter().map(|g| g.id).collect();
    assert_eq!(ids, EXPERIMENTS, "golden data out of step with EXPERIMENTS");
}

#[test]
fn a_deliberate_model_perturbation_is_caught() {
    // +10 % on every modelled value must blow through every artifact's
    // tolerances; the harness exists to catch exactly this kind of drift.
    for name in ["listing2", "table1", "fig4", "fig7"] {
        let mut artifact = run_artifact(name).unwrap();
        artifact.perturb(1.10);
        let report = check_artifact(&artifact, golden(name).unwrap());
        assert!(
            !report.passed(),
            "{name}: a 10% perturbation must fail the golden check"
        );
    }
}

#[test]
fn a_rounding_level_perturbation_is_tolerated() {
    // 0.1 % is far below every declared tolerance for purely modelled
    // artifacts: the harness must not be so tight that CSV-level rounding
    // or harmless refactors trip it.
    let mut artifact = run_artifact("listing2").unwrap();
    artifact.perturb(1.001);
    let report = check_artifact(&artifact, golden("listing2").unwrap());
    assert!(
        report.passed(),
        "0.1% jitter must stay within tolerance:\n{}",
        report.render_text(true)
    );
}

#[test]
fn headline_cells_lead_the_report() {
    // Structural convention: the first golden check is the headline the
    // delta table shows.  Checked on cheap artifacts only; the expensive
    // ones share the same code path.
    for name in ["listing2", "table1", "fig4", "fig7"] {
        let g = golden(name).unwrap();
        let report = check_experiment(name).unwrap();
        let headline = report.headline().expect("non-empty report");
        assert_eq!(headline.column, g.rows[0].checks[0].column, "{name}");
    }
}
