//! Property tests proving the batched line-granular fast path is
//! bit-identical to the scalar per-element simulator: same `MemCounters`
//! and same per-level hit/miss counts for arbitrary bases, run lengths,
//! access kinds, head/tail misalignment and occupancy — plus the
//! representative-core regression of the `CoreSim::reset` reuse.

use cloverleaf_wa::cachesim::hierarchy::{CoreSimOptions, OccupancyContext};
use cloverleaf_wa::cachesim::patterns::{RowSweep, StencilOperand, StencilRowSweep};
use cloverleaf_wa::cachesim::{
    AccessKind, AccessRun, CoreSim, KernelSpec, NoWriteAllocate, NodeSim, NonTemporal,
    PrefetcherConfig, RandomEvict, RankBase, ReplacementPolicy, SimConfig, SimMemo, SpecOperand,
    Srrip, TreePlru, TrueLru, WriteAllocate, WritePolicy,
};
use cloverleaf_wa::machine::{icelake_sp_8360y, Machine, ReplacementPolicyKind, WritePolicyKind};
use proptest::prelude::*;

const KINDS: [AccessKind; 3] = [AccessKind::Load, AccessKind::Store, AccessKind::StoreNT];

fn core_for(machine: &Machine, ranks: usize, prefetchers: bool) -> CoreSim {
    let ctx = OccupancyContext::compact(machine, ranks);
    CoreSim::new(
        machine,
        ctx,
        CoreSimOptions {
            prefetchers: if prefetchers {
                PrefetcherConfig::enabled()
            } else {
                PrefetcherConfig::disabled()
            },
            l3_sharers: ranks.min(36),
            ..Default::default()
        },
    )
}

/// Feed one run element by element through the scalar API.
fn drive_scalar_run<R: ReplacementPolicy, W: WritePolicy>(
    core: &mut CoreSim<R, W>,
    run: AccessRun,
) {
    for i in 0..run.elements {
        let addr = run.base + i * 8;
        match run.kind {
            AccessKind::Load => core.load(addr, 8),
            AccessKind::Store => core.store(addr, 8),
            AccessKind::StoreNT => core.store_nt(addr, 8),
        }
    }
}

/// Assert scalar and batched execution of `runs` agree bit for bit.
fn assert_equivalent(machine: &Machine, ranks: usize, prefetchers: bool, runs: &[AccessRun]) {
    let mut scalar = core_for(machine, ranks, prefetchers);
    let mut batched = core_for(machine, ranks, prefetchers);
    for &run in runs {
        drive_scalar_run(&mut scalar, run);
        batched.drive_run(run);
    }
    assert_eq!(
        scalar.cache_stats(),
        batched.cache_stats(),
        "hit/miss mismatch for {runs:?}"
    );
    assert_eq!(scalar.flush(), batched.flush(), "counter mismatch");
}

/// Scalar vs. batched equivalence of one policy monomorphisation.
fn assert_policy_equivalent<R: ReplacementPolicy, W: WritePolicy>(
    machine: &Machine,
    ranks: usize,
    runs: &[AccessRun],
) {
    let mk = || {
        let ctx = OccupancyContext::compact(machine, ranks);
        CoreSim::<R, W>::new(
            machine,
            ctx,
            CoreSimOptions {
                l3_sharers: ranks.min(36),
                ..Default::default()
            },
        )
    };
    let mut scalar = mk();
    let mut batched = mk();
    for &run in runs {
        drive_scalar_run(&mut scalar, run);
        batched.drive_run(run);
    }
    assert_eq!(
        scalar.cache_stats(),
        batched.cache_stats(),
        "{:?}+{:?}: hit/miss mismatch for {runs:?}",
        R::KIND,
        W::KIND
    );
    assert_eq!(
        scalar.flush(),
        batched.flush(),
        "{:?}+{:?}: counter mismatch",
        R::KIND,
        W::KIND
    );
}

/// Run [`assert_policy_equivalent`] for every replacement × write policy
/// monomorphisation the dispatcher can reach.
fn assert_equivalent_for_all_policies(machine: &Machine, ranks: usize, runs: &[AccessRun]) {
    macro_rules! combos {
        ($($r:ty),*) => {
            $(
                assert_policy_equivalent::<$r, WriteAllocate>(machine, ranks, runs);
                assert_policy_equivalent::<$r, NoWriteAllocate>(machine, ranks, runs);
                assert_policy_equivalent::<$r, NonTemporal>(machine, ranks, runs);
            )*
        };
    }
    combos!(TrueLru, TreePlru, Srrip, RandomEvict);
}

/// SIMD (chunked tag-lane) vs. scalar probe scan equivalence of one policy
/// monomorphisation: identical per-level hit/miss counts and identical
/// flushed counters (which cover every eviction's writeback) for the same
/// batched run stream.
fn assert_probe_equivalent<R: ReplacementPolicy, W: WritePolicy>(
    machine: &Machine,
    ranks: usize,
    runs: &[AccessRun],
) {
    let ctx = OccupancyContext::compact(machine, ranks);
    let options = CoreSimOptions {
        l3_sharers: ranks.min(36),
        ..Default::default()
    };
    let mut simd = CoreSim::<R, W, true>::new(machine, ctx, options);
    let mut scalar = CoreSim::<R, W, false>::new(machine, ctx, options);
    for &run in runs {
        simd.drive_run(run);
        scalar.drive_run(run);
    }
    assert_eq!(
        simd.cache_stats(),
        scalar.cache_stats(),
        "{:?}+{:?}: SIMD vs scalar probe hit/miss mismatch for {runs:?}",
        R::KIND,
        W::KIND
    );
    assert_eq!(
        simd.flush(),
        scalar.flush(),
        "{:?}+{:?}: SIMD vs scalar probe counter mismatch",
        R::KIND,
        W::KIND
    );
}

/// Run [`assert_probe_equivalent`] for every replacement × write policy
/// monomorphisation.
fn assert_probe_equivalent_for_all_policies(machine: &Machine, ranks: usize, runs: &[AccessRun]) {
    macro_rules! combos {
        ($($r:ty),*) => {
            $(
                assert_probe_equivalent::<$r, WriteAllocate>(machine, ranks, runs);
                assert_probe_equivalent::<$r, NoWriteAllocate>(machine, ranks, runs);
                assert_probe_equivalent::<$r, NonTemporal>(machine, ranks, runs);
            )*
        };
    }
    combos!(TrueLru, TreePlru, Srrip, RandomEvict);
}

proptest! {
    /// One run of any kind, any byte alignment of the base (including
    /// non-8-aligned bases whose elements straddle cache lines) and any
    /// length is bit-identical under any occupancy.
    #[test]
    fn single_run_matches_scalar(
        base_align in 0u64..130,
        elements in 0u64..1500,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let run = AccessRun {
            base: (1 << 22) + base_align,
            elements,
            kind: KINDS[kind_idx],
        };
        assert_equivalent(&machine, ranks, true, &[run]);
    }

    /// Alternating load/store runs over two arrays with a halo-induced
    /// misaligned row start (the copy microbenchmark shape), prefetchers
    /// on and off.
    #[test]
    fn interleaved_rows_match_scalar(
        inner in 1u64..300,
        halo in 0u64..18,
        rows in 1u64..6,
        pf in 0usize..2,
    ) {
        let machine = icelake_sp_8360y();
        let mut runs = Vec::new();
        for row in 0..rows {
            let off = row * (inner + halo) * 8;
            runs.push(AccessRun::load((1 << 33) + off, inner));
            runs.push(AccessRun::store((1 << 30) + off, inner));
        }
        assert_equivalent(&machine, 72, pf == 0, &runs);
    }

    /// The segmented stencil driver equals its scalar reference for random
    /// row geometries and operand mixes.
    #[test]
    fn stencil_driver_matches_scalar(
        stride_extra in 0u64..9,
        inner in 8u64..260,
        rows in 1u64..5,
        store_kind in 0usize..2,
    ) {
        let machine = icelake_sp_8360y();
        let sweep = StencilRowSweep {
            operands: vec![
                StencilOperand {
                    base: 1 << 30,
                    offsets: vec![(0, 0), (1, 0), (-1, 0), (0, -1)],
                    kind: AccessKind::Load,
                },
                StencilOperand {
                    base: 1 << 33,
                    offsets: vec![(0, 0)],
                    kind: if store_kind == 0 {
                        AccessKind::Store
                    } else {
                        AccessKind::StoreNT
                    },
                },
            ],
            row_stride: inner + stride_extra + 2,
            i0: 1,
            inner,
            k0: 1,
            rows,
        };
        let mut fast = core_for(&machine, 72, true);
        let mut slow = core_for(&machine, 72, true);
        sweep.drive(&mut fast);
        sweep.drive_scalar(&mut slow);
        prop_assert_eq!(fast.cache_stats(), slow.cache_stats());
        prop_assert_eq!(fast.flush(), slow.flush());
    }

    /// The row-sweep driver equals its scalar reference.
    #[test]
    fn row_sweep_matches_scalar(
        base_align in 0u64..64,
        inner in 1u64..300,
        halo in 0u64..18,
        kind_idx in 0usize..3,
    ) {
        let machine = icelake_sp_8360y();
        let sweep = RowSweep {
            base: (1 << 28) + base_align,
            inner,
            halo,
            rows: 4,
            kind: KINDS[kind_idx],
        };
        let mut fast = core_for(&machine, 1, true);
        let mut slow = core_for(&machine, 1, true);
        sweep.drive(&mut fast);
        sweep.drive_scalar(&mut slow);
        prop_assert_eq!(fast.cache_stats(), slow.cache_stats());
        prop_assert_eq!(fast.flush(), slow.flush());
    }

    /// The cross-sweep memo is exact: for arbitrary kernel specs (operand
    /// mixes, stencil shapes, rank-base schemes) and any rank count,
    /// `run_spmd_memo` through a fresh memo reproduces the unmemoized
    /// closure path bit for bit.
    #[test]
    fn run_spmd_memo_matches_run_spmd(
        operand_mix in 0usize..4,
        inner in 8u64..300,
        rows in 1u64..4,
        stride_extra in 0u64..6,
        rank_base_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 2, 17, 18, 19, 20, 36, 37, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let rank_base = [
            RankBase::Shared,
            RankBase::Shifted { shift: 40, plus: 1 },
            RankBase::Shifted { shift: 36, plus: 0 },
        ][rank_base_idx];
        let mut operands = vec![SpecOperand {
            offset: 1 << 33,
            points: vec![(0, 0)],
            kind: AccessKind::Store,
        }];
        if operand_mix % 2 == 1 {
            operands.push(SpecOperand {
                offset: 1 << 30,
                points: vec![(0, 0), (1, 0), (0, -1)],
                kind: AccessKind::Load,
            });
        }
        if operand_mix >= 2 {
            operands.push(SpecOperand {
                offset: 1 << 34,
                points: vec![(0, 0)],
                kind: AccessKind::StoreNT,
            });
        }
        let spec = KernelSpec {
            rank_base,
            operands,
            row_stride: inner + stride_extra + 2,
            i0: 1,
            inner,
            k0: 1,
            rows,
        };
        let sim = NodeSim::new(SimConfig::new(machine, ranks));
        let plain = sim.run_spmd(|rank, core| spec.drive(rank, core));
        let memoized = sim.run_spmd_memo(&spec, &SimMemo::new());
        prop_assert_eq!(plain.total, memoized.total);
        prop_assert_eq!(plain.per_rank, memoized.per_rank);
        prop_assert_eq!(plain.cores_per_domain, memoized.cores_per_domain);
    }

    /// Sharing one memo across a whole rank-count curve (the cross-sweep
    /// case: later points are served from contexts simulated for earlier
    /// points, possibly as a different representative rank) changes no bit
    /// either.
    #[test]
    fn shared_memo_across_a_curve_matches_run_spmd(
        elements in 64u64..2048,
        kind_idx in 0usize..3,
    ) {
        let machine = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let memo = SimMemo::new();
        for ranks in [1usize, 18, 19, 20, 35, 36, 37, 54, 72] {
            let sim = NodeSim::new(SimConfig::new(machine.clone(), ranks));
            let plain = sim.run_spmd(|rank, core| spec.drive(rank, core));
            let memoized = sim.run_spmd_memo(&spec, &memo);
            prop_assert_eq!(plain.total, memoized.total, "ranks={}", ranks);
            prop_assert_eq!(plain.per_rank, memoized.per_rank, "ranks={}", ranks);
        }
        // The full-domain levels of 19..72 ranks overlap: the memo must
        // have avoided simulations.
        prop_assert!(memo.stats().hits > 0);
    }

    /// The batched fast path stays bit-identical to the scalar reference
    /// under every replacement × write policy monomorphisation, not just
    /// the paper's LRU + write-allocate default: mixed load/store/NT rows
    /// with halo misalignment across all 12 combinations.
    #[test]
    fn batched_path_matches_scalar_under_every_policy(
        inner in 1u64..180,
        halo in 0u64..10,
        rows in 1u64..4,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let mut runs = Vec::new();
        for row in 0..rows {
            let off = row * (inner + halo) * 8;
            runs.push(AccessRun::load((1 << 33) + off, inner));
            runs.push(AccessRun {
                base: (1 << 30) + off,
                elements: inner,
                kind: KINDS[kind_idx],
            });
        }
        assert_equivalent_for_all_policies(&machine, ranks, &runs);
    }

    /// The policy-generic dispatcher under the default LRU + write-allocate
    /// selectors is bit-identical to the pre-refactor closure path *and*
    /// shares its memo entries with an explicitly-defaulted config: the
    /// policy space costs the paper configuration nothing.
    #[test]
    fn default_policy_dispatch_matches_the_closure_path_and_shares_the_memo(
        elements in 64u64..1024,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 37, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let memo = SimMemo::new();
        let implicit = NodeSim::new(SimConfig::new(machine.clone(), ranks));
        let closure = implicit.run_spmd(|rank, core| spec.drive(rank, core));
        let defaulted = implicit.run_spmd_memo(&spec, &memo);
        prop_assert_eq!(&closure.total, &defaulted.total);
        prop_assert_eq!(&closure.per_rank, &defaulted.per_rank);
        // An explicit LRU + write-allocate selection is the same SimKey:
        // every context is served from the memo, no new simulation runs.
        let explicit = NodeSim::new(
            SimConfig::new(machine, ranks)
                .with_replacement(ReplacementPolicyKind::Lru)
                .with_write_policy(WritePolicyKind::Allocate),
        );
        let before = memo.stats();
        let again = explicit.run_spmd_memo(&spec, &memo);
        prop_assert_eq!(&defaulted.total, &again.total);
        prop_assert_eq!(&defaulted.per_rank, &again.per_rank);
        let after = memo.stats();
        prop_assert_eq!(after.misses, before.misses, "explicit defaults must not re-simulate");
        prop_assert!(after.hits > before.hits);
    }

    /// Sharing one `SimMemo` across policy selections never changes a bit:
    /// the policy kinds are part of the memo key, so a cross-policy lookup
    /// can never be served a stale entry.
    #[test]
    fn shared_memo_never_serves_a_cross_policy_hit(
        elements in 64u64..1024,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let shared = SimMemo::new();
        for replacement in ReplacementPolicyKind::all() {
            for write_policy in WritePolicyKind::all() {
                let cfg = SimConfig::new(machine.clone(), ranks)
                    .with_replacement(replacement)
                    .with_write_policy(write_policy);
                let sim = NodeSim::new(cfg);
                let with_shared = sim.run_spmd_memo(&spec, &shared);
                let with_fresh = sim.run_spmd_memo(&spec, &SimMemo::new());
                prop_assert_eq!(
                    &with_shared.total, &with_fresh.total,
                    "{:?}+{:?}", replacement, write_policy
                );
                prop_assert_eq!(
                    &with_shared.per_rank, &with_fresh.per_rank,
                    "{:?}+{:?}", replacement, write_policy
                );
            }
        }
    }

    /// The SIMD tag-lane probe scan is bit-identical to the scalar
    /// reference probe under every replacement × write policy
    /// monomorphisation: same per-level hit/miss counts and same flushed
    /// counters for mixed load/store/NT rows with halo misalignment.
    #[test]
    fn simd_probe_matches_scalar_probe_under_every_policy(
        inner in 1u64..180,
        halo in 0u64..10,
        rows in 1u64..4,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let mut runs = Vec::new();
        for row in 0..rows {
            let off = row * (inner + halo) * 8;
            runs.push(AccessRun::load((1 << 33) + off, inner));
            runs.push(AccessRun {
                base: (1 << 30) + off,
                elements: inner,
                kind: KINDS[kind_idx],
            });
        }
        assert_probe_equivalent_for_all_policies(&machine, ranks, &runs);
    }

    /// Differential re-simulation is exact over a randomly ordered walk of
    /// sweep neighbours: whatever order the (rank count, SpecI2M switch)
    /// points are visited in — so the trace leader is an arbitrary point —
    /// a differential memo and a from-scratch memo produce bit-identical
    /// node reports at every point, and the walk actually replays traces.
    #[test]
    fn differential_matches_from_scratch_over_shuffled_neighbours(
        elements in 64u64..2048,
        kind_idx in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let machine = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let mut points: Vec<(usize, bool)> = [1usize, 7, 18, 19, 36, 72]
            .into_iter()
            .flat_map(|ranks| [(ranks, true), (ranks, false)])
            .collect();
        // Fisher-Yates with a proptest-driven LCG: every visiting order.
        let mut state = seed;
        for i in (1..points.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            points.swap(i, (state >> 33) as usize % (i + 1));
        }
        let diff = SimMemo::new();
        let scratch = SimMemo::without_differential();
        for (ranks, speci2m) in points {
            let mk = || {
                let cfg = SimConfig::new(machine.clone(), ranks);
                if speci2m { cfg } else { cfg.without_speci2m() }
            };
            let sim = NodeSim::new(mk());
            let a = sim.run_spmd_memo(&spec, &diff);
            let b = sim.run_spmd_memo(&spec, &scratch);
            prop_assert_eq!(&a.total, &b.total, "ranks={} speci2m={}", ranks, speci2m);
            prop_assert_eq!(&a.per_rank, &b.per_rank, "ranks={} speci2m={}", ranks, speci2m);
        }
        // The SpecI2M on/off pairs alone guarantee shared dynamics keys.
        prop_assert!(diff.diff_stats().hits > 0, "{:?}", diff.diff_stats());
        prop_assert_eq!(scratch.diff_len(), 0);
    }

    /// Differential memo isolation across the policy space: one
    /// differential memo shared by all 12 replacement × write policy
    /// combinations never serves a trace across policies — every result
    /// equals a fresh from-scratch run bit for bit.
    #[test]
    fn differential_memo_never_crosses_policies(
        elements in 64u64..1024,
        kind_idx in 0usize..3,
        ranks in prop::sample::select(vec![1usize, 18, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let shared = SimMemo::new();
        for replacement in ReplacementPolicyKind::all() {
            for write_policy in WritePolicyKind::all() {
                let cfg = SimConfig::new(machine.clone(), ranks)
                    .with_replacement(replacement)
                    .with_write_policy(write_policy);
                let sim = NodeSim::new(cfg);
                let with_shared = sim.run_spmd_memo(&spec, &shared);
                let from_scratch = sim.run_spmd_memo(&spec, &SimMemo::without_differential());
                prop_assert_eq!(
                    &with_shared.total, &from_scratch.total,
                    "{:?}+{:?}", replacement, write_policy
                );
                prop_assert_eq!(
                    &with_shared.per_rank, &from_scratch.per_rank,
                    "{:?}+{:?}", replacement, write_policy
                );
            }
        }
        // Every policy pair recorded its own trace identity.
        prop_assert!(shared.diff_len() >= 12, "diff_len={}", shared.diff_len());
    }

    /// Regression for the `CoreSim::reset` reuse inside the node loops:
    /// with every domain equally loaded the representative-core fast path
    /// must equal the exact per-rank simulation (identical per-rank
    /// counters; totals up to float summation order).
    #[test]
    fn run_spmd_equals_exact_on_uniform_occupancy(
        elements in 128u64..1024,
        ranks in prop::sample::select(vec![18usize, 36, 72]),
    ) {
        let machine = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(machine, ranks));
        let kernel = move |rank: usize, core: &mut CoreSim| {
            core.drive_run(AccessRun::store((rank as u64) << 36, elements));
        };
        let fast = sim.run_spmd(kernel);
        let exact = sim.run_spmd_exact(kernel);
        prop_assert_eq!(fast.per_rank, exact.per_rank);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        prop_assert!(rel(fast.total.read_lines, exact.total.read_lines) < 1e-12);
        prop_assert!(rel(fast.total.write_lines, exact.total.write_lines) < 1e-12);
        prop_assert!(rel(fast.total.itom_lines, exact.total.itom_lines.max(1e-12)) < 1e-9);
    }

    /// A single-tenant co-run is the solo composition driven through the
    /// resumable cursor: for arbitrary kernels and *any* interleave
    /// granularity it must be bit-identical to `run_spmd` on one rank, with
    /// every contended-vs-solo delta exactly zero.
    #[test]
    fn single_tenant_corun_matches_run_spmd_for_any_interleave(
        operand_mix in 0usize..4,
        inner in 8u64..300,
        rows in 1u64..4,
        stride_extra in 0u64..6,
        interleave in prop::sample::select(vec![1u64, 2, 3, 7, 64, 1000, u64::MAX]),
    ) {
        let machine = icelake_sp_8360y();
        let mut operands = vec![SpecOperand {
            offset: 1 << 33,
            points: vec![(0, 0)],
            kind: AccessKind::Store,
        }];
        if operand_mix % 2 == 1 {
            operands.push(SpecOperand {
                offset: 1 << 30,
                points: vec![(0, 0), (1, 0), (0, -1)],
                kind: AccessKind::Load,
            });
        }
        if operand_mix >= 2 {
            operands.push(SpecOperand {
                offset: 1 << 34,
                points: vec![(0, 0)],
                kind: AccessKind::StoreNT,
            });
        }
        let spec = KernelSpec {
            rank_base: RankBase::Shifted { shift: 36, plus: 0 },
            operands,
            row_stride: inner + stride_extra + 2,
            i0: 1,
            inner,
            k0: 1,
            rows,
        };
        let sim = NodeSim::new(SimConfig::new(machine, 1));
        let solo = sim.run_spmd(|rank, core| spec.drive(rank, core));
        let corun = sim.run_corun(std::slice::from_ref(&spec), interleave, &SimMemo::new());
        prop_assert_eq!(corun.tenants.len(), 1);
        let t = &corun.tenants[0];
        prop_assert_eq!(&t.counters, &solo.per_rank, "interleave={}", interleave);
        prop_assert_eq!(&corun.total, &solo.total);
        prop_assert_eq!(&t.counters, &t.solo);
        prop_assert_eq!(t.llc_hits, t.solo_llc_hits);
        prop_assert_eq!(t.llc_misses, t.solo_llc_misses);
        prop_assert_eq!(t.occupancy_lines, t.solo_occupancy_lines);
    }

    /// One `SimMemo` shared across solo runs and co-runs of the same
    /// kernels at several interleaves never crosses entries: solo and
    /// co-run results live in disjoint tables, distinct interleaves are
    /// distinct keys, and every shared-memo result equals a fresh-memo run
    /// bit for bit.
    #[test]
    fn shared_memo_never_crosses_solo_corun_or_interleave(
        elements in 64u64..1024,
        kind_idx in 0usize..3,
    ) {
        let machine = icelake_sp_8360y();
        let victim = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            KINDS[kind_idx],
        );
        let aggressor = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            1 << 20,
            2 * elements,
            AccessKind::Load,
        );
        let shared = SimMemo::new();
        let tenants = [victim.clone(), aggressor];

        let solo_sim = NodeSim::new(SimConfig::new(machine.clone(), 1));
        let solo_shared = solo_sim.run_spmd_memo(&victim, &shared);
        let pair_sim = NodeSim::new(SimConfig::new(machine, 2));
        let mut corun_misses = 0;
        for interleave in [1u64, 8, 64] {
            let with_shared = pair_sim.run_corun(&tenants, interleave, &shared);
            corun_misses += 1;
            prop_assert_eq!(
                shared.corun_stats().misses, corun_misses,
                "each interleave must be its own co-run key"
            );
            let with_fresh = pair_sim.run_corun(&tenants, interleave, &SimMemo::new());
            prop_assert_eq!(&with_shared, &with_fresh, "interleave={}", interleave);
            // A repeat is a pure hit of the same entry.
            let again = pair_sim.run_corun(&tenants, interleave, &shared);
            prop_assert_eq!(shared.corun_stats().misses, corun_misses);
            prop_assert_eq!(&again, &with_shared);
        }
        // The co-runs touched neither the solo table's stats nor its
        // entries: a solo lookup afterwards is still served unchanged.
        let solo_again = solo_sim.run_spmd_memo(&victim, &shared);
        prop_assert_eq!(&solo_again.total, &solo_shared.total);
        prop_assert_eq!(&solo_again.per_rank, &solo_shared.per_rank);
        let fresh_solo = solo_sim.run_spmd_memo(&victim, &SimMemo::new());
        prop_assert_eq!(&solo_again.per_rank, &fresh_solo.per_rank);
    }
}
