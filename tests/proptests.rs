//! Property-based tests on the core data structures and invariants.

use cloverleaf_wa::cachesim::hierarchy::{CoreSimOptions, OccupancyContext};
use cloverleaf_wa::cachesim::{
    CoreSim, MemCounters, NodeSim, SetAssocCache, SimConfig, WriteCoalescer, LINE_BYTES,
};
use cloverleaf_wa::core::decomp::{is_prime, prime_factors, Decomposition};
use cloverleaf_wa::machine::{icelake_sp_8360y, Machine};
use cloverleaf_wa::stencil::{cloverleaf_loops, CodeBalance};
use proptest::prelude::*;

/// Store-ratio measurement over a small SPMD store kernel, mirroring
/// `clover_ubench::store_ratio` with a reduced element count so it is cheap
/// enough for property testing in debug builds.
fn mini_store_ratio(machine: &Machine, cores: usize, streams: usize) -> f64 {
    const ELEMENTS: u64 = 2048;
    let sim = NodeSim::new(SimConfig::new(machine.clone(), cores));
    let report = sim.run_spmd(|rank, core| {
        let rank_base = (rank as u64 + 1) << 40;
        for i in 0..ELEMENTS {
            for s in 0..streams as u64 {
                core.store(rank_base + (s << 30) + i * 8, 8);
            }
        }
    });
    let initiated = (cores as u64 * streams as u64 * ELEMENTS * 8) as f64;
    report.total_bytes() / initiated
}

proptest! {
    /// Prime factorisation multiplies back to the original number and every
    /// factor is prime.
    #[test]
    fn prime_factors_multiply_back(n in 1usize..20_000) {
        let factors = prime_factors(n);
        let product: usize = factors.iter().product();
        prop_assert_eq!(product.max(1), n.max(1));
        for f in factors {
            prop_assert!(is_prime(f));
        }
    }

    /// Any decomposition conserves cells and keeps chunk sizes within one
    /// cell of each other.
    #[test]
    fn decomposition_conserves_cells(ranks in 1usize..=144, grid in 64usize..4096) {
        let d = Decomposition::new(ranks, grid, grid);
        prop_assert_eq!(d.ranks_x * d.ranks_y, ranks);
        let sum_x: usize = (0..d.ranks_x).map(|r| d.local_inner(r)).sum();
        prop_assert_eq!(sum_x, grid);
        let sizes: Vec<usize> = (0..ranks).map(|r| d.local_inner(r)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
        if is_prime(ranks) && ranks > 1 {
            prop_assert!(d.is_one_dimensional());
        }
    }

    /// The four code-balance bounds of any catalogue loop are ordered
    /// min ≤ LCF,WA ≤ max and min ≤ LCB ≤ max.
    #[test]
    fn code_balance_bounds_are_ordered(idx in 0usize..22) {
        let spec = &cloverleaf_loops()[idx];
        let b = CodeBalance::from_spec(spec);
        prop_assert!(b.min <= b.lcf_wa + 1e-12);
        prop_assert!(b.lcf_wa <= b.max + 1e-12);
        prop_assert!(b.min <= b.lcb + 1e-12);
        prop_assert!(b.lcb <= b.max + 1e-12);
    }

    /// The write coalescer never reports a streak longer than the number of
    /// lines written and classifies fully covered lines as full.
    #[test]
    fn coalescer_streaks_are_bounded(rows in 1u64..20, inner in 8u64..512, gap in 0u64..16) {
        let mut c = WriteCoalescer::new(8);
        let mut finalized = Vec::new();
        for row in 0..rows {
            let base = row * (inner + gap) * 8;
            for i in 0..inner {
                finalized.extend(c.store(base + i * 8, 8));
            }
        }
        finalized.extend(c.flush());
        let total_lines = finalized.len() as f64;
        for line in &finalized {
            prop_assert!(line.streak_estimate <= total_lines);
            prop_assert!(line.streak_estimate >= 0.0);
        }
    }

    /// For any sequential store pattern the simulator's memory counters are
    /// physically sensible: writes cover at least the stored bytes, reads
    /// never exceed two lines per written line (WA + speculation), and the
    /// ITOM count never exceeds the written lines.
    #[test]
    fn store_traffic_is_bounded(elements in 64u64..4096, ranks in prop::sample::select(vec![1usize, 9, 18, 36, 72])) {
        let machine = icelake_sp_8360y();
        let ctx = OccupancyContext::compact(&machine, ranks);
        let mut core: CoreSim = CoreSim::new(&machine, ctx, CoreSimOptions::default());
        for i in 0..elements {
            core.store(i * 8, 8);
        }
        let c: MemCounters = core.flush();
        let stored_lines = (elements as f64 * 8.0 / 64.0).ceil();
        prop_assert!(c.write_lines >= stored_lines - 1.0);
        prop_assert!(c.write_lines <= stored_lines + 2.0);
        prop_assert!(c.read_lines <= 2.0 * stored_lines + 2.0);
        prop_assert!(c.itom_lines <= stored_lines + 1.0);
        prop_assert!(c.itom_lines >= 0.0);
    }

    /// Cache bookkeeping: every `touch` is either a hit or a miss, so the
    /// two counters always sum to the number of accesses — for any mix of
    /// reads, writes, fills and working-set sizes.
    #[test]
    fn cache_hits_plus_misses_equal_accesses(
        accesses in 1usize..2000,
        span in 1u64..512,
        capacity_lines in prop::sample::select(vec![8usize, 64, 256]),
    ) {
        let mut cache: SetAssocCache = SetAssocCache::new(capacity_lines * 64, 8);
        for i in 0..accesses as u64 {
            // Deterministic but scattered line sequence with re-use.
            let line = (i.wrapping_mul(2654435761) >> 7) % span;
            let write = i % 3 == 0;
            if cache.touch(line, write) == cloverleaf_wa::cachesim::cache::LookupResult::Miss {
                cache.fill(line, write);
            }
        }
        prop_assert_eq!(cache.hits() + cache.misses(), accesses as u64);
        prop_assert!(cache.resident_lines() <= cache.capacity_lines());
    }

    /// Memory write traffic is conservative: for a store-only kernel that
    /// touches every address exactly once, the bytes leaving the hierarchy
    /// (dirty evictions plus the final flush) equal the distinct cache
    /// lines stored — never more than what was written.
    #[test]
    fn evicted_bytes_never_exceed_written_bytes(
        rows in 1u64..24,
        inner in 8u64..400,
        gap in 0u64..9,
        nt in prop::sample::select(vec![false, true]),
    ) {
        let machine = icelake_sp_8360y();
        let ctx = OccupancyContext::compact(&machine, 18);
        let mut core: CoreSim = CoreSim::new(&machine, ctx, CoreSimOptions::default());
        let mut lines = std::collections::HashSet::new();
        for row in 0..rows {
            let base = row * (inner + gap) * 8;
            for i in 0..inner {
                let addr = base + i * 8;
                if nt {
                    core.store_nt(addr, 8);
                } else {
                    core.store(addr, 8);
                }
                lines.insert(addr / LINE_BYTES as u64);
            }
        }
        let c: MemCounters = core.flush();
        let written = lines.len() as f64;
        prop_assert!(
            c.write_lines <= written + 0.5,
            "wrote back {} lines for {} stored lines", c.write_lines, written
        );
        prop_assert!(c.write_lines >= written - 0.5);
    }

    /// More independent store streams per core never improve the store
    /// ratio: the SpecI2M stream-count response makes evasion harder, so
    /// the ratio is monotonically non-decreasing in the stream count.
    #[test]
    fn store_ratio_is_monotone_in_stream_count(
        cores in prop::sample::select(vec![1usize, 4, 9, 18, 27, 36]),
        streams in 1usize..3,
    ) {
        let machine = icelake_sp_8360y();
        let fewer = mini_store_ratio(&machine, cores, streams);
        let more = mini_store_ratio(&machine, cores, streams + 1);
        prop_assert!(
            more >= fewer - 0.02,
            "cores={}: {} streams -> {:.4}, {} streams -> {:.4}",
            cores, streams, fewer, streams + 1, more
        );
        // Both ends stay physical: between all-write-allocate (2.0)
        // and full evasion (1.0).
        prop_assert!((0.98..=2.05).contains(&fewer));
        prop_assert!((0.98..=2.05).contains(&more));
    }
}
