//! Quickstart: run a scaled-down CloverLeaf problem serially and in
//! parallel, print the field summary, the hotspot profile and the
//! single-core code-balance model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloverleaf_wa::core::decomp::Decomposition;
use cloverleaf_wa::core::TINY_GRID;
use cloverleaf_wa::core::{hotspot_profile, TrafficModel, TrafficOptions};
use cloverleaf_wa::leaf::{SimConfig, Simulation};
use cloverleaf_wa::machine::icelake_sp_8360y;
use cloverleaf_wa::stencil::cloverleaf_loops;

fn main() {
    // 1. Run the hydro mini-app on a small grid, serial and 4 ranks.
    let config = SimConfig::small(64, 10);
    let serial = Simulation::run_serial(&config);
    let parallel = Simulation::run_parallel(&config, 4);
    println!(
        "CloverLeaf {}x{} grid, {} steps",
        config.grid_x, config.grid_y, config.steps
    );
    println!(
        "  serial   : mass {:.6}  internal {:.6}  kinetic {:.6}",
        serial.mass, serial.internal_energy, serial.kinetic_energy
    );
    println!(
        "  4 ranks  : mass {:.6}  internal {:.6}  kinetic {:.6}",
        parallel.mass, parallel.internal_energy, parallel.kinetic_energy
    );

    // 2. The hotspot profile of the Tiny working set (Listing 2).
    let machine = icelake_sp_8360y();
    println!("\nHotspot profile ({}):", machine.name);
    for entry in hotspot_profile(&machine, 72).iter().take(5) {
        println!("  {:<22} {:5.2} %", entry.name, entry.share * 100.0);
    }

    // 3. Single-core code balance of the hotspot loops (Table I).
    let model = TrafficModel::new(machine);
    let decomp = Decomposition::new(1, TINY_GRID, TINY_GRID);
    let opts = TrafficOptions::original(1);
    println!("\nSingle-core code balance (byte/it):");
    for spec in cloverleaf_loops().iter().take(6) {
        let t = model.predict_loop(spec, &opts, &decomp);
        println!(
            "  {:<6} min {:>5.1}  predicted {:>6.2}  max {:>6.1}",
            spec.name,
            t.bounds.min,
            t.code_balance(),
            t.bounds.max
        );
    }
    println!("  ... run `cargo run -p clover-bench --bin figures -- table1` for all 22 loops");
}
