//! Optimization advisor: which hotspot loops profit from non-temporal store
//! directives, which need the ac01/ac05 restructuring, and the predicted
//! full-node code-balance improvement (Fig. 7's "Optimized" series).
//!
//! ```text
//! cargo run --release --example optimization_advisor
//! ```

use cloverleaf_wa::core::{LoopOptimization, OptimizationPlan};
use cloverleaf_wa::machine::icelake_sp_8360y;

fn main() {
    let machine = icelake_sp_8360y();
    let plan = OptimizationPlan::build(&machine, 72);

    println!("Optimization plan for {} at 72 ranks:\n", machine.name);
    println!("loop    recommendation                   original  optimized  gain");
    for advice in &plan.loops {
        let what = match advice.optimization {
            LoopOptimization::None => "leave unchanged (no WA to evade)",
            LoopOptimization::NonTemporalStores => "NT store directive",
            LoopOptimization::NonTemporalPlusSpecI2M => "NT directive + SpecI2M",
            LoopOptimization::RestructureAndNonTemporal => "restructure + NT directive",
        };
        println!(
            "{:<6}  {:<32} {:>7.2}   {:>7.2}  {:>4.1} %",
            advice.name,
            what,
            advice.original_balance,
            advice.optimized_balance,
            advice.improvement() * 100.0
        );
    }
    println!(
        "\naverage improvement {:.1} % (paper: 5.8 %), maximum {:.1} % (paper: 23.2 %)",
        plan.average_improvement() * 100.0,
        plan.max_improvement() * 100.0
    );
}
