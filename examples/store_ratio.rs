//! Store-ratio microbenchmark (Fig. 5): how much of the write-allocate
//! traffic SpecI2M and non-temporal stores avoid as the core count grows.
//!
//! ```text
//! cargo run --release --example store_ratio
//! ```

use cloverleaf_wa::machine::{icelake_sp_8360y, sapphire_rapids_8480};
use cloverleaf_wa::ubench::{store_ratio, StoreKind};

fn main() {
    let icx = icelake_sp_8360y();
    let spr = sapphire_rapids_8480();

    println!("Ice Lake SP (8360Y), one store stream:");
    println!("cores   normal     NT");
    for cores in [1usize, 4, 9, 18, 24, 36, 54, 72] {
        let normal = store_ratio(&icx, cores, 1, StoreKind::Normal);
        let nt = store_ratio(&icx, cores, 1, StoreKind::NonTemporal);
        println!("{cores:>5}   {normal:>6.3}   {nt:>6.3}");
    }

    println!("\nSapphire Rapids (8480+), one store stream:");
    println!("cores   normal     NT");
    for cores in [1usize, 12, 28, 56, 84, 112] {
        let normal = store_ratio(&spr, cores, 1, StoreKind::Normal);
        let nt = store_ratio(&spr, cores, 1, StoreKind::NonTemporal);
        println!("{cores:>5}   {normal:>6.3}   {nt:>6.3}");
    }

    println!("\nA ratio of 2.0 means every store triggers a write-allocate;");
    println!("1.0 means all write-allocates are evaded (the NT-store ideal).");
}
