//! The prime-number effect: sweep the rank count, show how the speedup dips
//! and the code balance spikes when the rank count is prime — and how
//! switching SpecI2M off makes the effect disappear (at the cost of a higher
//! baseline code balance).
//!
//! ```text
//! cargo run --release --example prime_effect
//! ```

use cloverleaf_wa::core::decomp::is_prime;
use cloverleaf_wa::core::{ScalingModel, TrafficOptions};
use cloverleaf_wa::machine::icelake_sp_8360y;

fn main() {
    let machine = icelake_sp_8360y();
    let model = ScalingModel::new(machine);

    let with_speci2m = model.sweep(72, TrafficOptions::original);
    let without = model.sweep(72, TrafficOptions::speci2m_off);

    println!("ranks  inner  prime   speedup(on)  speedup(off)  am04 byte/it(on)");
    for ranks in [16usize, 17, 18, 19, 20, 36, 37, 38, 53, 64, 71, 72] {
        let on = &with_speci2m[ranks - 1];
        let off = &without[ranks - 1];
        let am04 = on
            .loop_balances
            .iter()
            .find(|(n, _)| n == "am04")
            .map(|(_, b)| *b)
            .unwrap_or(f64::NAN);
        println!(
            "{:>5}  {:>5}  {:>5}  {:>11.2}  {:>12.2}  {:>16.2}",
            ranks,
            on.local_inner,
            if is_prime(ranks) { "yes" } else { "" },
            on.speedup,
            off.speedup,
            am04,
        );
    }

    let drop_71 = 1.0 - with_speci2m[70].speedup / with_speci2m[71].speedup;
    println!(
        "\n71 ranks (prime, 216-element rows) loses {:.1} % speedup vs 72 ranks;",
        drop_71 * 100.0
    );
    println!("with SpecI2M disabled the prime dips vanish, but every store pays a write-allocate.");
}
