//! Hotspot runtime profile (Listing 2).
//!
//! The paper's gprofng profile attributes ~36 % of the runtime to
//! `advec_mom_kernel`, ~21 % to `advec_cell_kernel` and ~12.5 % to
//! `pdv_kernel`; the three together cover 67.5–69.2 % for any rank count.
//! This module derives the same kind of profile from the traffic model (the
//! hotspot kernels) plus the measured relative cost of the remaining
//! kernels, so the harness can print a Listing-2-style table.

use clover_machine::Machine;

use crate::decomp::Decomposition;
use crate::traffic::{TrafficModel, TrafficOptions};
use crate::TINY_GRID;

/// One row of the runtime profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Function name as the profiler reports it.
    pub name: String,
    /// Exclusive share of the total runtime (0..=1).
    pub share: f64,
}

/// Relative cost of the non-hotspot kernels, taken from Listing 2
/// (exclusive seconds normalised to the total).  These kernels are simple
/// streaming loops whose cost scales like the hotspots, so their shares stay
/// constant across rank counts.
const OTHER_KERNELS: [(&str, f64); 7] = [
    ("accelerate_kernel", 0.0537),
    ("ideal_gas_kernel", 0.0521),
    ("flux_calc_kernel", 0.0454),
    ("reset_field_kernel", 0.0440),
    ("calc_dt_kernel", 0.0333),
    ("viscosity_kernel", 0.0253),
    ("update_halo_kernel", 0.0550),
];

/// Build the runtime profile for `ranks` ranks of the original code on
/// `machine`, sorted by share (largest first).
pub fn hotspot_profile(machine: &Machine, ranks: usize) -> Vec<ProfileEntry> {
    let model = TrafficModel::new(machine.clone());
    let decomp = Decomposition::new(ranks, TINY_GRID, TINY_GRID);
    let opts = TrafficOptions::original(ranks);
    let loops = model.predict_all(&opts, &decomp);

    // Time share of each hotspot function ∝ summed code balance of its loops
    // (all loops sweep the same iteration space and are bandwidth bound).
    // advec_mom runs once per velocity component and therefore twice as
    // often as the other kernels.
    let mut mom = 0.0;
    let mut cell = 0.0;
    let mut pdv = 0.0;
    for (spec, traffic) in clover_stencil::cloverleaf_loops().iter().zip(&loops) {
        let b = traffic.code_balance();
        match spec.function.as_str() {
            "advec_mom_kernel" => mom += 2.0 * b,
            "advec_cell_kernel" => cell += b,
            _ => pdv += b,
        }
    }
    assemble_profile(mom, cell, pdv)
}

/// Assemble and sort the profile from the three hotspot balances.
///
/// Degenerate balances must not poison the table: a zero hotspot total
/// (e.g. a pathological machine description) would divide to NaN, and any
/// NaN share used to panic the `partial_cmp(..).unwrap()` sort.  The shares
/// therefore normalise against a guarded denominator and the sort uses the
/// NaN-safe `f64::total_cmp`.
fn assemble_profile(mom: f64, cell: f64, pdv: f64) -> Vec<ProfileEntry> {
    let hotspot_total = mom + cell + pdv;
    let other_total: f64 = OTHER_KERNELS.iter().map(|(_, s)| s).sum();
    // Hotspots take (1 - other_total) of the runtime.
    let hotspot_share = 1.0 - other_total;
    let share_of = |balance: f64| {
        if hotspot_total > 0.0 && balance.is_finite() {
            hotspot_share * balance / hotspot_total
        } else {
            0.0
        }
    };

    let mut entries = vec![
        ProfileEntry {
            name: "advec_mom_kernel".into(),
            share: share_of(mom),
        },
        ProfileEntry {
            name: "advec_cell_kernel".into(),
            share: share_of(cell),
        },
        ProfileEntry {
            name: "pdv_kernel".into(),
            share: share_of(pdv),
        },
    ];
    entries.extend(OTHER_KERNELS.iter().map(|(n, s)| ProfileEntry {
        name: (*n).to_string(),
        share: *s,
    }));
    entries.sort_by(|a, b| b.share.total_cmp(&a.share));
    entries
}

/// Sum of the shares of the three hotspot functions.
pub fn hotspot_share(profile: &[ProfileEntry]) -> f64 {
    profile
        .iter()
        .filter(|e| {
            matches!(
                e.name.as_str(),
                "advec_mom_kernel" | "advec_cell_kernel" | "pdv_kernel"
            )
        })
        .map(|e| e.share)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    #[test]
    fn profile_sums_to_one() {
        let p = hotspot_profile(&icelake_sp_8360y(), 72);
        let total: f64 = p.iter().map(|e| e.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hotspots_cover_about_69_percent() {
        for ranks in [1usize, 18, 37, 72] {
            let p = hotspot_profile(&icelake_sp_8360y(), ranks);
            let share = hotspot_share(&p);
            assert!(
                (0.66..=0.72).contains(&share),
                "ranks={ranks}: hotspot share {share}"
            );
        }
    }

    #[test]
    fn advec_mom_is_the_top_function() {
        let p = hotspot_profile(&icelake_sp_8360y(), 72);
        assert_eq!(p[0].name, "advec_mom_kernel");
        assert!(
            p[0].share > 0.30 && p[0].share < 0.42,
            "advec_mom share {}",
            p[0].share
        );
        // advec_cell second, pdv third — same ordering as Listing 2.
        assert_eq!(p[1].name, "advec_cell_kernel");
        assert_eq!(p[2].name, "pdv_kernel");
    }

    #[test]
    fn profile_is_sorted_descending() {
        let p = hotspot_profile(&icelake_sp_8360y(), 36);
        for w in p.windows(2) {
            assert!(w[0].share >= w[1].share);
        }
    }

    #[test]
    fn zero_hotspot_total_does_not_panic_or_emit_nan() {
        // Regression: a zero denominator made the shares NaN and the
        // `partial_cmp(..).unwrap()` sort panicked on them.
        let p = assemble_profile(0.0, 0.0, 0.0);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|e| e.share.is_finite()));
        for w in p.windows(2) {
            assert!(w[0].share >= w[1].share);
        }
        // The hotspot rows collapse to zero share and sort last.
        assert_eq!(hotspot_share(&p), 0.0);
    }

    #[test]
    fn nan_and_infinite_balances_do_not_panic_the_sort() {
        for degenerate in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = assemble_profile(degenerate, 1.0, 1.0);
            assert_eq!(p.len(), 10);
            assert!(p.iter().all(|e| e.share.is_finite()), "{degenerate}");
            for w in p.windows(2) {
                assert!(w[0].share >= w[1].share);
            }
        }
    }
}
