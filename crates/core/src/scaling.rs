//! Node-level scaling model (Figs. 2 and 3).
//!
//! For every rank count the model combines the domain decomposition, the
//! per-loop traffic model and the machine's bandwidth saturation curve into
//! an execution-time estimate per timestep, from which speedup and the
//! achieved memory bandwidth follow.  The hotspot loops represent ~69 % of
//! the runtime; the remainder is modelled as a fixed memory-bound fraction
//! so the absolute shares match the profile in Listing 2.

use clover_machine::Machine;

use crate::decomp::Decomposition;
use crate::traffic::{LoopTraffic, TrafficModel, TrafficOptions};
use crate::{TINY_GRID, TINY_STEPS};

/// Fraction of the total runtime spent outside the three hotspot functions
/// (Listing 2: the hotspots cover 67.5–69.2 %).
pub(crate) const NON_HOTSPOT_FRACTION: f64 = 0.31;

/// One point of the scaling study.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScalingPoint {
    /// Number of ranks.
    pub ranks: usize,
    /// Whether the rank count is prime (1D decomposition).
    pub prime: bool,
    /// Local inner dimension per rank (elements).
    pub local_inner: usize,
    /// Estimated wall-clock time per timestep (seconds).
    pub time_per_step: f64,
    /// Speedup relative to one rank.
    pub speedup: f64,
    /// Achieved memory bandwidth (byte/s) across the node.
    pub memory_bandwidth: f64,
    /// Memory data volume per timestep (bytes).
    pub volume_per_step: f64,
    /// Per-loop code balance (byte/it) in catalogue order.
    pub loop_balances: Vec<(String, f64)>,
}

/// Fill in speedups relative to the first point of a range — the one
/// normalisation every sweep path applies ([`ScalingModel::sweep_range`],
/// the memoized engine sweep and the scenario runner's per-scenario
/// assembly all share this function, so the byte-identity between those
/// paths cannot drift).  An empty slice is left untouched.
pub fn normalise_speedups(points: &mut [ScalingPoint]) {
    let Some(t_first) = points.first().map(|p| p.time_per_step) else {
        return;
    };
    for p in points {
        p.speedup = t_first / p.time_per_step;
    }
}

/// The scaling model for one machine and one code variant.
#[derive(Debug, Clone)]
pub struct ScalingModel {
    machine: Machine,
    traffic: TrafficModel,
    grid: usize,
}

impl ScalingModel {
    /// Model for the Tiny working set on `machine`.
    pub fn new(machine: Machine) -> Self {
        let traffic = TrafficModel::new(machine.clone());
        Self {
            machine,
            traffic,
            grid: TINY_GRID,
        }
    }

    /// Use a different (e.g. scaled-down) square grid.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid;
        self
    }

    /// Grid size used by the model.
    pub fn grid(&self) -> usize {
        self.grid
    }

    fn hotspot_time_and_volume(
        &self,
        ranks: usize,
        opts: &TrafficOptions,
        decomp: &Decomposition,
    ) -> (f64, f64, Vec<LoopTraffic>) {
        let loops = self.traffic.predict_all(opts, decomp);
        let iterations = (self.grid as f64) * (self.grid as f64);
        // Per-rank iterations; every loop sweeps the whole local domain.
        let per_rank_iterations = iterations / ranks as f64;
        let peak = self.machine.core_peak_flops();
        // The code is bulk-synchronous (halo exchange after every kernel):
        // each loop finishes when the most loaded ccNUMA domain finishes.
        let per_domain = self.machine.topology.active_cores_per_domain(ranks);
        let mut time = 0.0;
        let mut volume = 0.0;
        for t in &loops {
            let loop_time = per_domain
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let domain_bw = self.machine.bandwidth.domain_bandwidth(c);
                    let per_rank_bw = domain_bw / c as f64;
                    per_rank_iterations * t.time_per_iteration(per_rank_bw, peak)
                })
                .fold(0.0, f64::max);
            time += loop_time;
            volume += iterations * t.code_balance();
        }
        (time, volume, loops)
    }

    /// Evaluate one rank count.
    pub fn point(&self, ranks: usize, opts: &TrafficOptions) -> ScalingPoint {
        assert!(ranks >= 1 && ranks <= self.machine.total_cores());
        let decomp = Decomposition::new(ranks, self.grid, self.grid);
        let (hotspot_time, hotspot_volume, loops) =
            self.hotspot_time_and_volume(ranks, opts, &decomp);
        // The non-hotspot 31 % scale the same way (memory bound).
        let time_per_step = hotspot_time / (1.0 - NON_HOTSPOT_FRACTION);
        let volume_per_step = hotspot_volume / (1.0 - NON_HOTSPOT_FRACTION);
        ScalingPoint {
            ranks,
            prime: crate::decomp::is_prime(ranks),
            local_inner: decomp.typical_local_inner(),
            time_per_step,
            speedup: 0.0, // filled in by `sweep`
            memory_bandwidth: volume_per_step / time_per_step,
            volume_per_step,
            loop_balances: loops
                .iter()
                .map(|l| (l.name.clone(), l.code_balance()))
                .collect(),
        }
    }

    /// Evaluate a full sweep over 1..=`max_ranks` ranks and fill in
    /// speedups relative to the single-rank point.  `max_ranks == 0` yields
    /// an empty sweep instead of panicking.
    pub fn sweep(
        &self,
        max_ranks: usize,
        opts_for: impl Fn(usize) -> TrafficOptions,
    ) -> Vec<ScalingPoint> {
        self.sweep_range(1..=max_ranks, opts_for)
    }

    /// Evaluate an arbitrary inclusive rank range and fill in speedups
    /// relative to the *first* point of the range (for `1..=n` that is the
    /// single-rank baseline).  An empty range yields an empty `Vec`.
    pub fn sweep_range(
        &self,
        ranks: std::ops::RangeInclusive<usize>,
        opts_for: impl Fn(usize) -> TrafficOptions,
    ) -> Vec<ScalingPoint> {
        let mut points: Vec<ScalingPoint> = ranks.map(|r| self.point(r, &opts_for(r))).collect();
        normalise_speedups(&mut points);
        points
    }

    /// Total runtime estimate of a full Tiny run (400 steps) on `ranks`
    /// ranks.
    pub fn total_runtime(&self, ranks: usize, opts: &TrafficOptions) -> f64 {
        self.point(ranks, opts).time_per_step * TINY_STEPS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn sweep_to_72() -> Vec<ScalingPoint> {
        ScalingModel::new(icelake_sp_8360y()).sweep(72, TrafficOptions::original)
    }

    #[test]
    fn speedup_is_one_for_one_rank_and_grows() {
        let points = sweep_to_72();
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        assert!(
            points[71].speedup > 10.0,
            "full node speedup = {}",
            points[71].speedup
        );
        assert!(points[17].speedup > points[8].speedup);
    }

    #[test]
    fn bandwidth_saturates_within_first_domain() {
        // Fig. 2: the first ccNUMA domain (18 cores) saturates at ~9 cores.
        let points = sweep_to_72();
        let bw9 = points[8].memory_bandwidth;
        let bw18 = points[17].memory_bandwidth;
        let m = icelake_sp_8360y();
        assert!(bw9 > 0.85 * m.domain_bandwidth());
        assert!(bw18 <= 1.05 * m.domain_bandwidth());
        // But the speedup keeps rising beyond saturation because SpecI2M
        // reduces the traffic per iteration.
        assert!(points[17].speedup > points[8].speedup * 1.05);
    }

    #[test]
    fn prime_rank_counts_show_speedup_drops() {
        let points = sweep_to_72();
        // Fig. 2: pronounced drops at prime counts beyond one domain.
        for p in [37usize, 41, 43, 47, 53, 59, 61, 67, 71] {
            let prime = &points[p - 1];
            let before = &points[p - 2];
            assert!(prime.prime);
            assert!(
                prime.speedup < before.speedup,
                "speedup at {} ranks ({}) should dip below {} ranks ({})",
                p,
                prime.speedup,
                p - 1,
                before.speedup
            );
        }
    }

    #[test]
    fn prime_drops_are_not_bandwidth_drops() {
        // The paper stresses that the speedup drops are *not* accompanied by
        // bandwidth drops: traffic per iteration rises instead.
        let points = sweep_to_72();
        let p71 = &points[70];
        let p72 = &points[71];
        assert!(p71.volume_per_step > p72.volume_per_step * 1.05);
        assert!(p71.memory_bandwidth > 0.9 * p72.memory_bandwidth);
    }

    #[test]
    fn per_loop_balances_cover_catalogue() {
        let model = ScalingModel::new(icelake_sp_8360y());
        let point = model.point(72, &TrafficOptions::original(72));
        assert_eq!(point.loop_balances.len(), 22);
        assert_eq!(point.local_inner, 1920);
    }

    #[test]
    fn zero_rank_sweep_is_empty_not_a_panic() {
        // Regression: `sweep(0, …)` used to index `points[0]` out of bounds.
        let model = ScalingModel::new(icelake_sp_8360y());
        assert!(model.sweep(0, TrafficOptions::original).is_empty());
        assert!(model
            .sweep_range(5..=4, TrafficOptions::original)
            .is_empty());
    }

    #[test]
    fn range_sweep_normalises_to_its_first_point() {
        let model = ScalingModel::new(icelake_sp_8360y());
        let full = model.sweep(72, TrafficOptions::original);
        let partial = model.sweep_range(9..=18, TrafficOptions::original);
        assert_eq!(partial.len(), 10);
        assert_eq!(partial[0].ranks, 9);
        assert!((partial[0].speedup - 1.0).abs() < 1e-12);
        // Same model points as the full sweep, only the baseline differs.
        assert!((partial[9].time_per_step - full[17].time_per_step).abs() < 1e-15);
        let expected = full[8].time_per_step / full[17].time_per_step;
        assert!((partial[9].speedup - expected).abs() < 1e-12);
    }

    #[test]
    fn total_runtime_scales_with_steps() {
        let model = ScalingModel::new(icelake_sp_8360y());
        let t_step = model.point(36, &TrafficOptions::original(36)).time_per_step;
        let total = model.total_runtime(36, &TrafficOptions::original(36));
        assert!((total - 400.0 * t_step).abs() < 1e-9);
    }

    #[test]
    fn smaller_grid_runs_faster() {
        let big = ScalingModel::new(icelake_sp_8360y());
        let small = ScalingModel::new(icelake_sp_8360y()).with_grid(1920);
        assert!(small.grid() < big.grid());
        let tb = big.point(18, &TrafficOptions::original(18)).time_per_step;
        let ts = small.point(18, &TrafficOptions::original(18)).time_per_step;
        assert!(ts < tb / 10.0);
    }
}
