//! Optimization advisor (Sec. V-B and Fig. 7).
//!
//! The paper's optimized CloverLeaf version applies a non-temporal store
//! directive (`!DIR$ vector nontemporal`) to every hotspot loop and manually
//! restructures ac01/ac05 so their stores become SpecI2M-eligible.  This
//! module turns the traffic model into actionable recommendations: for every
//! loop it reports which transformation applies, the predicted code balance
//! before and after, and the expected improvement.

use clover_machine::Machine;
use clover_stencil::LoopSpec;

use crate::decomp::Decomposition;
use crate::traffic::{TrafficModel, TrafficOptions};
use crate::TINY_GRID;

/// Transformation recommended for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOptimization {
    /// No write-allocate to evade (class (iii) loops): leave unchanged.
    None,
    /// Apply the non-temporal store directive to the (single) evadable
    /// write stream.
    NonTemporalStores,
    /// Apply the NT directive to one stream and rely on SpecI2M for the
    /// remaining one(s).
    NonTemporalPlusSpecI2M,
    /// Restructure the loop first (create the recoverable read-after-write
    /// dependency) so the hardware recognises the store stream, then apply
    /// the NT directive (ac01/ac05).
    RestructureAndNonTemporal,
}

/// Advice for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAdvice {
    /// Loop label.
    pub name: String,
    /// Recommended transformation.
    pub optimization: LoopOptimization,
    /// Predicted full-node code balance of the original code (byte/it).
    pub original_balance: f64,
    /// Predicted full-node code balance after the transformation (byte/it).
    pub optimized_balance: f64,
}

impl LoopAdvice {
    /// Relative improvement (0..=1).
    pub fn improvement(&self) -> f64 {
        relative_improvement(self.original_balance, self.optimized_balance)
    }
}

/// Relative code-balance improvement of `optimized` over `original`
/// (0 for a non-positive original balance).  Shared by [`LoopAdvice`] and
/// the swept Fig. 7 assembly in `clover-bench` so the two can never drift.
pub fn relative_improvement(original: f64, optimized: f64) -> f64 {
    if original <= 0.0 {
        0.0
    } else {
        (original - optimized) / original
    }
}

/// The full optimization plan for one machine / rank count.
#[derive(Debug, Clone)]
pub struct OptimizationPlan {
    /// Per-loop advice in catalogue order.
    pub loops: Vec<LoopAdvice>,
    /// Rank count the plan was computed for.
    pub ranks: usize,
}

impl OptimizationPlan {
    /// Build the plan for `ranks` ranks of the Tiny working set on
    /// `machine`.
    pub fn build(machine: &Machine, ranks: usize) -> Self {
        let model = TrafficModel::new(machine.clone());
        let decomp = Decomposition::new(ranks, TINY_GRID, TINY_GRID);
        let orig_opts = TrafficOptions::original(ranks);
        let opt_opts = TrafficOptions::optimized(ranks);
        let loops = clover_stencil::cloverleaf_loops()
            .iter()
            .map(|spec| {
                let orig = model.predict_loop(spec, &orig_opts, &decomp);
                let opt = model.predict_loop(spec, &opt_opts, &decomp);
                LoopAdvice {
                    name: spec.name.clone(),
                    optimization: Self::classify(spec),
                    original_balance: orig.code_balance(),
                    optimized_balance: opt.code_balance(),
                }
            })
            .collect();
        Self { loops, ranks }
    }

    fn classify(spec: &LoopSpec) -> LoopOptimization {
        let evadable = spec.evadable_write_streams();
        if evadable == 0 {
            LoopOptimization::None
        } else if spec.speci2m_blocked {
            LoopOptimization::RestructureAndNonTemporal
        } else if evadable == 1 {
            LoopOptimization::NonTemporalStores
        } else {
            LoopOptimization::NonTemporalPlusSpecI2M
        }
    }

    /// Average relative improvement over all loops.
    pub fn average_improvement(&self) -> f64 {
        self.loops.iter().map(|l| l.improvement()).sum::<f64>() / self.loops.len() as f64
    }

    /// Largest relative improvement of any loop.
    pub fn max_improvement(&self) -> f64 {
        self.loops
            .iter()
            .map(|l| l.improvement())
            .fold(0.0, f64::max)
    }

    /// Loops that need the manual restructuring.
    pub fn restructured_loops(&self) -> Vec<&str> {
        self.loops
            .iter()
            .filter(|l| l.optimization == LoopOptimization::RestructureAndNonTemporal)
            .map(|l| l.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn plan() -> OptimizationPlan {
        OptimizationPlan::build(&icelake_sp_8360y(), 72)
    }

    #[test]
    fn class_iii_loops_need_nothing() {
        let p = plan();
        for name in ["am07", "am11", "ac03", "ac07"] {
            let advice = p.loops.iter().find(|l| l.name == name).unwrap();
            assert_eq!(advice.optimization, LoopOptimization::None, "{name}");
            assert!(advice.improvement().abs() < 1e-9);
        }
    }

    #[test]
    fn ac01_and_ac05_need_restructuring() {
        let p = plan();
        assert_eq!(p.restructured_loops(), vec!["ac01", "ac05"]);
        for name in ["ac01", "ac05"] {
            let advice = p.loops.iter().find(|l| l.name == name).unwrap();
            assert!(
                advice.improvement() > 0.15,
                "{name}: {}",
                advice.improvement()
            );
        }
    }

    #[test]
    fn single_stream_loops_get_nt_stores() {
        let p = plan();
        for name in ["am04", "am06", "am08", "am10"] {
            let advice = p.loops.iter().find(|l| l.name == name).unwrap();
            assert_eq!(
                advice.optimization,
                LoopOptimization::NonTemporalStores,
                "{name}"
            );
        }
    }

    #[test]
    fn average_improvement_matches_paper_ballpark() {
        // The paper reports 5.8 % average and 23.2 % maximum improvement.
        let p = plan();
        let avg = p.average_improvement();
        let max = p.max_improvement();
        assert!((0.02..=0.12).contains(&avg), "average improvement {avg}");
        assert!((0.10..=0.30).contains(&max), "max improvement {max}");
    }

    #[test]
    fn no_loop_gets_worse() {
        let p = plan();
        for l in &p.loops {
            assert!(l.improvement() >= -1e-9, "{} would regress", l.name);
        }
    }

    #[test]
    fn plan_records_rank_count() {
        assert_eq!(plan().ranks, 72);
    }
}
