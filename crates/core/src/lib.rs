//! `clover-core` — the paper's primary contribution as a reusable library.
//!
//! This crate combines the machine descriptions (`clover-machine`), the loop
//! descriptors (`clover-stencil`) and the cache simulator
//! (`clover-cachesim`) into the analyses the paper performs:
//!
//! * [`decomp`] — CloverLeaf's domain decomposition, including the
//!   degenerate one-dimensional cut at prime rank counts that causes the
//!   "prime number effect",
//! * [`traffic`] — the per-loop memory-traffic / code-balance model with
//!   layer conditions, write-allocates and the phenomenological SpecI2M
//!   factor (Table I and Fig. 7),
//! * [`scaling`] — the node-level scaling model producing speedup, memory
//!   bandwidth and per-loop code balance as functions of the rank count
//!   (Figs. 2 and 3),
//! * [`mpimodel`] — the communication-time model behind the MPI share
//!   breakdown (Fig. 4),
//! * [`profile`] — the hotspot runtime profile (Listing 2),
//! * [`optimize`] — the optimization advisor recommending non-temporal
//!   store directives and the ac01/ac05 loop restructuring, with predicted
//!   code-balance improvements (the "Optimized" series of Fig. 7).

pub mod decomp;
pub mod engine;
pub mod mpimodel;
pub mod optimize;
pub mod profile;
pub mod scaling;
pub mod traffic;

pub use decomp::{Decomposition, TILE_INNER_FULL};
pub use engine::{PointKey, ScalingEngine, SweepMemo};
pub use mpimodel::{CommModel, MpiShare};
pub use optimize::{relative_improvement, LoopOptimization, OptimizationPlan};
pub use profile::{hotspot_profile, ProfileEntry};
pub use scaling::{normalise_speedups, ScalingModel, ScalingPoint};
pub use traffic::{CodeVariant, LoopTraffic, TrafficModel, TrafficOptions};

/// Schema version of the analytic models as seen by persisted memo
/// entries.
///
/// Any change that can alter an evaluated [`ScalingPoint`] for an
/// unchanged [`engine::PointKey`] — traffic-model refinements, new loop
/// catalogue entries, decomposition changes — must bump this constant.  It
/// feeds the model hash that versions on-disk memo stores
/// (`clover-service`), so stale stores are rebuilt instead of silently
/// serving outdated points.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// The "Tiny" working set of SPEChpc 2021 519.clvleaf_t: a square grid of
/// 15360×15360 cells run for 400 timesteps.
pub const TINY_GRID: usize = 15_360;
/// Number of timesteps of the Tiny working set.
pub const TINY_STEPS: usize = 400;
