//! Per-loop memory traffic / code balance model.
//!
//! For every hotspot loop the model combines
//!
//! * the structural bounds from the loop descriptor (layer condition,
//!   write-allocate candidates — Table I),
//! * the machine's SpecI2M behaviour (activation with bandwidth
//!   utilisation, streak-length response driven by the local inner
//!   dimension, stream-count response, node-population penalty),
//! * the chosen code variant (original, SpecI2M off, non-temporal stores +
//!   loop restructuring),
//!
//! into a predicted code balance in byte per iteration.  The refined
//! full-node model of Fig. 7 and the per-rank curves of Fig. 3 are both
//! produced by this module.

use clover_machine::speci2m::EvasionContext;
use clover_machine::{Machine, ReplacementPolicyKind, WritePolicyKind};
use clover_stencil::{CodeBalance, LoopSpec};

use crate::decomp::Decomposition;

/// Code variant being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CodeVariant {
    /// The unmodified SPEChpc code: plain stores, hardware may apply
    /// SpecI2M where it can.
    Original,
    /// SpecI2M switched off via the MSR bit (plain stores, full
    /// write-allocates).
    SpecI2MOff,
    /// The paper's optimized version: `!DIR$ vector nontemporal` on each
    /// hotspot loop (one write stream per loop becomes NT) plus the
    /// restructuring of ac01/ac05 so SpecI2M applies to the second stream.
    Optimized,
}

/// Options of one traffic-model evaluation.  All fields are discrete, so
/// the options double as (part of) a memo key in the cross-sweep scaling
/// engine (`crate::engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TrafficOptions {
    /// Code variant.
    pub variant: CodeVariant,
    /// Number of ranks (compact pinning).
    pub ranks: usize,
    /// Whether the layer condition is fulfilled (it always is for the Tiny
    /// working set on the evaluated machines; exposed for what-if studies).
    pub layer_condition_ok: bool,
    /// Cache replacement policy of the modelled hierarchy.  Non-LRU
    /// policies hold stencil rows less reliably, pushing the read balance
    /// from the LC-fulfilled towards the LC-broken value.
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the modelled hierarchy.
    pub write_policy: WritePolicyKind,
}

impl TrafficOptions {
    /// Original code on `ranks` ranks with the layer condition satisfied.
    pub fn original(ranks: usize) -> Self {
        Self::for_variant(CodeVariant::Original, ranks)
    }

    /// Optimized code (NT stores + restructuring) on `ranks` ranks.
    pub fn optimized(ranks: usize) -> Self {
        Self::for_variant(CodeVariant::Optimized, ranks)
    }

    /// Original code with SpecI2M disabled.
    pub fn speci2m_off(ranks: usize) -> Self {
        Self::for_variant(CodeVariant::SpecI2MOff, ranks)
    }

    /// Options for an arbitrary code variant on `ranks` ranks — the hook the
    /// sweep engine uses to map a scenario stage onto the traffic model.
    /// The layer condition defaults to satisfied (true for the Tiny working
    /// set on all evaluated machines).
    pub fn for_variant(variant: CodeVariant, ranks: usize) -> Self {
        Self {
            variant,
            ranks,
            layer_condition_ok: true,
            replacement: ReplacementPolicyKind::default(),
            write_policy: WritePolicyKind::default(),
        }
    }

    /// Override the layer-condition assumption (what-if sweeps on grids too
    /// large for the caches).
    pub fn with_layer_condition(mut self, ok: bool) -> Self {
        self.layer_condition_ok = ok;
        self
    }

    /// Model a different cache replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicyKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Model a different store-miss policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicyKind) -> Self {
        self.write_policy = write_policy;
        self
    }
}

/// Traffic prediction for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopTraffic {
    /// Loop label.
    pub name: String,
    /// Structural code-balance bounds (Table I).
    pub bounds: CodeBalance,
    /// Predicted read traffic per iteration (bytes).
    pub read_bytes_per_it: f64,
    /// Predicted write traffic per iteration (bytes).
    pub write_bytes_per_it: f64,
    /// Fraction of evadable write-allocates actually evaded.
    pub evasion_fraction: f64,
    /// Flops per iteration.
    pub flops_per_it: f64,
}

impl LoopTraffic {
    /// Total predicted code balance (byte/it).
    pub fn code_balance(&self) -> f64 {
        self.read_bytes_per_it + self.write_bytes_per_it
    }

    /// Roofline time per iteration (seconds) at memory bandwidth `bw`
    /// (byte/s) and peak in-core performance `peak_flops` (flop/s).
    pub fn time_per_iteration(&self, bw: f64, peak_flops: f64) -> f64 {
        let mem = self.code_balance() / bw.max(1.0);
        let core = self.flops_per_it / peak_flops.max(1.0);
        mem.max(core)
    }
}

/// The per-loop traffic model for one machine.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    machine: Machine,
}

impl TrafficModel {
    /// Create a model for `machine`.
    pub fn new(machine: Machine) -> Self {
        Self { machine }
    }

    /// Borrow the machine description.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Evasion context of a rank under compact pinning with the given local
    /// inner dimension (elements) and store stream count.
    fn evasion_context(
        &self,
        ranks: usize,
        local_inner: usize,
        store_streams: usize,
    ) -> EvasionContext {
        let per_domain = self.machine.topology.active_cores_per_domain(ranks);
        let active_domains = per_domain.iter().filter(|&&c| c > 0).count().max(1);
        let busiest = per_domain.iter().copied().max().unwrap_or(1);
        EvasionContext {
            domain_utilization: self.machine.domain_utilization(busiest),
            active_domains,
            total_domains: self.machine.topology.domains.len(),
            store_streams: store_streams.max(1),
            // A grid row of `local_inner` doubles forms one store streak.
            streak_lines: (local_inner as f64 * 8.0 / 64.0).max(1.0),
        }
    }

    /// Predict the traffic of a single loop for the given options and
    /// decomposition.
    pub fn predict_loop(
        &self,
        spec: &LoopSpec,
        opts: &TrafficOptions,
        decomp: &Decomposition,
    ) -> LoopTraffic {
        let bounds = CodeBalance::from_spec(spec);
        let local_inner = decomp.typical_local_inner().max(1);
        let elem = 8.0;

        // An imperfect replacement policy evicts held stencil rows with
        // probability (1 - reuse efficiency), blending the read balance
        // from the LC-fulfilled towards the LC-broken value.  LRU has
        // efficiency 1, so the default takes the exact LCF branch.
        let rd_lcf = spec.rd_lcf() as f64;
        let rd_lcb = spec.rd_lcb() as f64;
        let eff = opts.replacement.reuse_efficiency();
        let rd_base = if opts.layer_condition_ok {
            if eff >= 1.0 {
                rd_lcf
            } else {
                rd_lcf + (rd_lcb - rd_lcf) * (1.0 - eff)
            }
        } else {
            rd_lcb
        };
        let wr = spec.wr() as f64;
        let mut evadable = spec.evadable_write_streams() as f64;

        // Halo overhead of short rows: each read stream fetches up to one
        // extra cache line per row (Sec. V-C); partial first/last lines of
        // the written rows add the same overhead on the write-allocate side.
        let row_overhead = 8.0 / (local_inner as f64 + 8.0);
        let read_halo_overhead = rd_base * elem * row_overhead;

        let ctx = self.evasion_context(opts.ranks, local_inner, spec.wr().max(1));
        let params = match opts.variant {
            CodeVariant::SpecI2MOff => self.machine.speci2m.switched_off(),
            _ => self.machine.speci2m.clone(),
        };

        // Loops whose stores the hardware fails to recognise (ac01/ac05 in
        // the original code) and branchy loops (ac02/ac06) see no SpecI2M in
        // the original variant; the optimized variant restructures ac01/ac05.
        let blocked = match opts.variant {
            CodeVariant::Original => spec.speci2m_blocked || spec.has_branches,
            CodeVariant::Optimized => spec.has_branches,
            CodeVariant::SpecI2MOff => true,
        };

        let mut nt_streams = 0.0;
        if opts.variant == CodeVariant::Optimized && evadable >= 1.0 {
            // The compiler applies the NT directive to exactly one
            // (alignable) write stream; the rest stays with SpecI2M.
            nt_streams = 1.0;
            evadable -= 1.0;
        }

        match opts.write_policy {
            // The paper machines: store misses allocate, SpecI2M may evade.
            WritePolicyKind::Allocate => {}
            // No-write-allocate hardware never reads for ownership: no WA
            // reads, no speculative reads, and the NT directive is moot.
            WritePolicyKind::NoAllocate => {
                nt_streams = 0.0;
                evadable = 0.0;
            }
            // Every store behaves like a streaming store: all evadable
            // streams move to the NT path (partial-flush reads only).
            WritePolicyKind::NonTemporal => {
                nt_streams += evadable;
                evadable = 0.0;
            }
        }

        let evasion = if blocked {
            0.0
        } else {
            params.evasion_fraction(&ctx)
        };
        let spec_read = if blocked {
            0.0
        } else {
            params.speculative_read_fraction(&ctx)
        };
        let nt_flush = params.nt_partial_flush_fraction(
            ctx.domain_utilization,
            ctx.active_domains,
            ctx.total_domains,
        );

        // Reads: leading elements + non-evaded write-allocates + speculative
        // reads + NT partial flushes + short-row halo overhead.
        let wa_reads = evadable * elem * (1.0 - evasion);
        let speculative = evadable * elem * spec_read;
        let nt_reads = nt_streams * elem * nt_flush;
        let read = rd_base * elem + wa_reads + speculative + nt_reads + read_halo_overhead;

        // Writes: every written element reaches memory once; partial lines
        // at row boundaries add up to one extra line per row and stream.
        let write_halo_overhead = wr * elem * row_overhead * 0.5;
        let write = wr * elem + write_halo_overhead;

        LoopTraffic {
            name: spec.name.clone(),
            bounds,
            read_bytes_per_it: read,
            write_bytes_per_it: write,
            evasion_fraction: evasion,
            flops_per_it: spec.flops as f64,
        }
    }

    /// Predict the traffic of every catalogue loop.
    pub fn predict_all(&self, opts: &TrafficOptions, decomp: &Decomposition) -> Vec<LoopTraffic> {
        clover_stencil::cloverleaf_loops()
            .iter()
            .map(|spec| self.predict_loop(spec, opts, decomp))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TINY_GRID;
    use clover_machine::icelake_sp_8360y;
    use clover_stencil::loop_by_name;

    fn model() -> TrafficModel {
        TrafficModel::new(icelake_sp_8360y())
    }

    fn decomp(ranks: usize) -> Decomposition {
        Decomposition::new(ranks, TINY_GRID, TINY_GRID)
    }

    #[test]
    fn single_core_matches_lcf_wa_bound() {
        // Table I: the single-core measurement equals the LCF+WA case within
        // a few percent for every loop.
        let m = model();
        for spec in clover_stencil::cloverleaf_loops() {
            let t = m.predict_loop(&spec, &TrafficOptions::original(1), &decomp(1));
            let rel = (t.code_balance() - t.bounds.lcf_wa).abs() / t.bounds.lcf_wa;
            assert!(
                rel < 0.03,
                "{}: predicted {} vs LCF,WA {}",
                spec.name,
                t.code_balance(),
                t.bounds.lcf_wa
            );
        }
    }

    #[test]
    fn full_node_am04_drops_towards_minimum() {
        let m = model();
        let spec = loop_by_name("am04").unwrap();
        let serial = m.predict_loop(&spec, &TrafficOptions::original(1), &decomp(1));
        let node = m.predict_loop(&spec, &TrafficOptions::original(72), &decomp(72));
        assert!(node.code_balance() < serial.code_balance());
        // The refined model lands between the min (16) and LCF+WA (24).
        assert!(node.code_balance() > node.bounds.min);
        assert!(node.code_balance() < node.bounds.lcf_wa);
    }

    #[test]
    fn speci2m_off_keeps_single_core_balance_at_all_rank_counts() {
        let m = model();
        let spec = loop_by_name("am04").unwrap();
        let node = m.predict_loop(&spec, &TrafficOptions::speci2m_off(72), &decomp(72));
        // Without SpecI2M the balance stays near the LCF+WA value (modulo
        // the small halo overhead of the 1920-element rows).
        assert!((node.code_balance() - node.bounds.lcf_wa).abs() / node.bounds.lcf_wa < 0.05);
        assert_eq!(node.evasion_fraction, 0.0);
    }

    #[test]
    fn prime_rank_counts_have_higher_balance_than_neighbours() {
        let m = model();
        let spec = loop_by_name("am04").unwrap();
        let balance = |ranks: usize| {
            m.predict_loop(&spec, &TrafficOptions::original(ranks), &decomp(ranks))
                .code_balance()
        };
        // 71 is prime (216-element rows); 72 decomposes 8×9 (1920-element rows).
        assert!(
            balance(71) > balance(72) * 1.05,
            "71: {} vs 72: {}",
            balance(71),
            balance(72)
        );
        assert!(
            balance(37) > balance(36) * 1.04,
            "37: {} vs 36: {}",
            balance(37),
            balance(36)
        );
    }

    #[test]
    fn class_iii_loops_are_insensitive_to_speci2m() {
        // am07, am11, ac03, ac07 have no evadable write stream: their
        // balance must be identical with and without SpecI2M.
        let m = model();
        for name in ["am07", "am11", "ac03", "ac07"] {
            let spec = loop_by_name(name).unwrap();
            let on = m.predict_loop(&spec, &TrafficOptions::original(72), &decomp(72));
            let off = m.predict_loop(&spec, &TrafficOptions::speci2m_off(72), &decomp(72));
            assert!(
                (on.code_balance() - off.code_balance()).abs() < 1e-9,
                "{name}: {} vs {}",
                on.code_balance(),
                off.code_balance()
            );
        }
    }

    #[test]
    fn blocked_loops_do_not_profit_in_original_but_do_when_optimized() {
        let m = model();
        for name in ["ac01", "ac05"] {
            let spec = loop_by_name(name).unwrap();
            let orig = m.predict_loop(&spec, &TrafficOptions::original(72), &decomp(72));
            let opt = m.predict_loop(&spec, &TrafficOptions::optimized(72), &decomp(72));
            assert_eq!(
                orig.evasion_fraction, 0.0,
                "{name} blocked in original code"
            );
            assert!(
                opt.code_balance() < orig.code_balance(),
                "{name} must improve when optimized"
            );
        }
    }

    #[test]
    fn optimized_variant_improves_average_balance_by_a_few_percent() {
        // Fig. 7: the optimized version achieves on average 5.8 % lower code
        // balance (maximum 23.2 %).
        let m = model();
        let d = decomp(72);
        let orig = m.predict_all(&TrafficOptions::original(72), &d);
        let opt = m.predict_all(&TrafficOptions::optimized(72), &d);
        let rel_impr: Vec<f64> = orig
            .iter()
            .zip(&opt)
            .map(|(o, n)| (o.code_balance() - n.code_balance()) / o.code_balance())
            .collect();
        let avg = rel_impr.iter().sum::<f64>() / rel_impr.len() as f64;
        let max = rel_impr.iter().cloned().fold(f64::MIN, f64::max);
        assert!(avg > 0.02 && avg < 0.12, "average improvement {avg}");
        assert!(max > 0.10 && max < 0.30, "max improvement {max}");
        assert!(
            rel_impr.iter().all(|&r| r > -1e-9),
            "optimization must never hurt"
        );
    }

    #[test]
    fn policy_axes_shift_the_balance_in_the_expected_direction() {
        let m = model();
        let spec = loop_by_name("am04").unwrap();
        let base = TrafficOptions::original(1);
        let lru = m.predict_loop(&spec, &base, &decomp(1));
        // Imperfect replacement: balance rises towards the LC-broken value
        // but never beyond it.
        let random = m.predict_loop(
            &spec,
            &base.with_replacement(ReplacementPolicyKind::Random),
            &decomp(1),
        );
        let broken = m.predict_loop(&spec, &base.with_layer_condition(false), &decomp(1));
        assert!(random.code_balance() > lru.code_balance());
        assert!(random.code_balance() <= broken.code_balance() + 1e-9);
        // Policy ordering follows the reuse efficiencies.
        let plru = m.predict_loop(
            &spec,
            &base.with_replacement(ReplacementPolicyKind::Plru),
            &decomp(1),
        );
        assert!(plru.code_balance() < random.code_balance());
        // No-write-allocate removes the WA reads entirely: serial balance
        // drops below the LRU+WA value.
        let nowa = m.predict_loop(
            &spec,
            &base.with_write_policy(WritePolicyKind::NoAllocate),
            &decomp(1),
        );
        assert!(nowa.code_balance() < lru.code_balance());
        // Forcing all stores non-temporal also avoids WA reads serially.
        let nt = m.predict_loop(
            &spec,
            &base.with_write_policy(WritePolicyKind::NonTemporal),
            &decomp(1),
        );
        assert!(nt.code_balance() < lru.code_balance());
        assert!(nt.code_balance() >= nowa.code_balance() - 1e-9);
    }

    #[test]
    fn roofline_time_is_memory_bound_for_hotspot_loops() {
        let m = model();
        let spec = loop_by_name("pdv00").unwrap();
        let t = m.predict_loop(&spec, &TrafficOptions::original(18), &decomp(18));
        let machine = icelake_sp_8360y();
        let bw_per_rank = machine.domain_bandwidth() / 18.0;
        let mem_time = t.code_balance() / bw_per_rank;
        assert!(
            (t.time_per_iteration(bw_per_rank, machine.core_peak_flops()) - mem_time).abs() < 1e-15
        );
    }

    #[test]
    fn predict_all_covers_all_loops() {
        let m = model();
        let all = m.predict_all(&TrafficOptions::original(36), &decomp(36));
        assert_eq!(all.len(), 22);
        assert!(all.iter().all(|t| t.code_balance() > 0.0));
    }
}
