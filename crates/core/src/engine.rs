//! Cross-sweep scaling engine: memoized, allocation-hoisted point
//! evaluation for the node-level scaling model.
//!
//! [`ScalingModel::point`](crate::ScalingModel::point) is a pure function of
//! `(machine, grid, rank count, traffic options)`, but the reference
//! implementation pays per call for state that never changes across a
//! sweep: it rebuilds the 22-loop catalogue, re-derives the per-domain
//! occupancy once per loop and clones the SpecI2M parameter block per loop.
//! A sweep harness additionally re-evaluates the *same* points again and
//! again — `figures all` sweeps the identical 72-point curve for Fig. 2 and
//! Fig. 3, and a [`SweepPlan`] whose rank ranges overlap re-visits every
//! shared rank count per stage.
//!
//! This module provides
//!
//! * [`ScalingEngine`] — a sweep-ready evaluator holding the hoisted
//!   catalogue, code-balance bounds and SpecI2M parameter blocks.  Its
//!   [`point`](ScalingEngine::point) performs the same floating-point
//!   operations in the same order as the reference `ScalingModel::point`
//!   and therefore returns bit-identical [`ScalingPoint`]s (a tier-1
//!   tested property);
//! * [`SweepMemo`] — a sharded concurrent memo of evaluated points keyed by
//!   `(machine id, grid, ranks, options)`, meant to span a whole sweep
//!   plan: overlapping rank ranges, repeated stages and repeated artifact
//!   generations all collapse onto one evaluation per distinct point.
//!
//! Points are stored *before* speedup normalisation (speedup is a property
//! of a sweep range, not of a point);
//! [`sweep_range_memo`](ScalingEngine::sweep_range_memo) normalises its own
//! copy exactly like `ScalingModel::sweep_range`.
//!
//! [`SweepPlan`]: ../../clover_scenario/struct.SweepPlan.html

use clover_cachesim::FlightMemo;
use clover_machine::speci2m::EvasionContext;
use clover_machine::{Machine, SpecI2MParams, WritePolicyKind};
use clover_stencil::{cloverleaf_loops, CodeBalance, LoopSpec};

use crate::decomp::{is_prime, Decomposition};
use crate::scaling::{ScalingPoint, NON_HOTSPOT_FRACTION};
use crate::traffic::{CodeVariant, LoopTraffic, TrafficOptions};

/// Identity of one scaling point.  Machines are identified by their preset
/// id (`Machine::id`); preset machines with equal ids are structurally
/// identical, so equal keys imply bit-identical points.
///
/// The fields are public so a persistence layer (`clover-service`) can
/// serialize and rebuild keys; everything a point depends on is in here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PointKey {
    /// `Machine::id` of the evaluated machine.
    pub machine: String,
    /// Square grid size in cells.
    pub grid: usize,
    /// Evaluated rank count.
    pub ranks: usize,
    /// Traffic-model options of the evaluation.
    pub opts: TrafficOptions,
}

/// Deterministic neighbour-class hash of `(machine id, grid, ranks)` —
/// everything of a [`PointKey`] *except* the traffic options.
///
/// Points that differ only in their options are "neighbours": underneath
/// the scaling model they share one cache-dynamics trace in the simulator's
/// differential memo (see `clover_cachesim::SimMemo`), so a sweep runner
/// that executes points of one class consecutively on one worker keeps the
/// trace leader and its replays in the same warm path.  `DefaultHasher`
/// with fixed keys is deterministic within a build, which is all a
/// scheduling hint needs — the class value never reaches any output.
fn neighbour_hash(machine_id: &str, grid: usize, ranks: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    machine_id.hash(&mut h);
    grid.hash(&mut h);
    ranks.hash(&mut h);
    h.finish()
}

impl PointKey {
    /// Scheduling class of this point: equal for sweep points that differ
    /// only in [`TrafficOptions`] (see [`neighbour_hash`]).
    pub fn neighbour_class(&self) -> u64 {
        neighbour_hash(&self.machine, self.grid, self.ranks)
    }
}

/// Sharded concurrent memo of evaluated [`ScalingPoint`]s, spanning a whole
/// sweep plan (or a whole `figures serve` daemon lifetime).  Lookups and
/// inserts lock only the shard the key hashes to; evaluation runs outside
/// any lock.  Concurrent lookups of the same missing key are
/// *single-flight* (via [`FlightMemo`]): one worker evaluates, every other
/// worker waits for that result and counts as a hit, so hit/miss
/// statistics are exact even under races.
#[derive(Debug, Default)]
pub struct SweepMemo {
    inner: FlightMemo<PointKey, ScalingPoint>,
}

impl SweepMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert_with(
        &self,
        key: PointKey,
        evaluate: impl FnOnce() -> ScalingPoint,
    ) -> ScalingPoint {
        self.inner.get_or_insert_with(key, evaluate)
    }

    /// Number of memoized points.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `(hits, misses)` since construction.  Waiters of an in-flight
    /// evaluation count as hits, so `misses` is exactly the number of
    /// evaluations run.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// Snapshot every memoized `(key, point)` pair, e.g. for persistence
    /// to an on-disk store.  Evaluations still in flight are skipped; the
    /// order is unspecified.  Points are stored pre-normalisation
    /// (`speedup == 0.0`), exactly as the memo holds them.
    pub fn entries(&self) -> Vec<(PointKey, ScalingPoint)> {
        self.inner.entries()
    }

    /// [`entries`](Self::entries) plus each entry's access stamp (see
    /// [`FlightMemo::entries_stamped`]): higher stamp ⇒ more recently
    /// touched, stamp 0 ⇒ preloaded and never used since.  A capped
    /// persistence pass keeps the highest-stamped entries.
    pub fn entries_stamped(&self) -> Vec<(PointKey, ScalingPoint, u64)> {
        self.inner.entries_stamped()
    }

    /// Publish previously snapshotted entries (warm-loading a persisted
    /// store).  Keys already present are left untouched and the hit/miss
    /// statistics are unchanged — preloaded entries surface as hits only
    /// once a lookup finds them.
    pub fn preload(&self, entries: impl IntoIterator<Item = (PointKey, ScalingPoint)>) {
        self.inner.preload(entries);
    }
}

/// Sweep-ready scaling evaluator for one machine and grid.
///
/// Bit-identical to [`ScalingModel`](crate::ScalingModel) point by point,
/// with the per-sweep-invariant state hoisted out of the per-point path.
#[derive(Debug, Clone)]
pub struct ScalingEngine {
    machine: Machine,
    grid: usize,
    specs: Vec<LoopSpec>,
    bounds: Vec<CodeBalance>,
    params_on: SpecI2MParams,
    params_off: SpecI2MParams,
}

impl ScalingEngine {
    /// Engine for `machine` on a square `grid`.
    pub fn new(machine: Machine, grid: usize) -> Self {
        let specs = cloverleaf_loops();
        let bounds = specs.iter().map(CodeBalance::from_spec).collect();
        let params_on = machine.speci2m.clone();
        let params_off = machine.speci2m.switched_off();
        Self {
            machine,
            grid,
            specs,
            bounds,
            params_on,
            params_off,
        }
    }

    /// The machine the engine evaluates.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The grid size the engine evaluates.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Per-loop traffic prediction — the same arithmetic as
    /// `TrafficModel::predict_loop` over the whole catalogue, with the
    /// loop-invariant occupancy/parameter state computed once.
    fn predict_loops(&self, opts: &TrafficOptions, decomp: &Decomposition) -> Vec<LoopTraffic> {
        let local_inner = decomp.typical_local_inner().max(1);
        let elem = 8.0;
        let row_overhead = 8.0 / (local_inner as f64 + 8.0);

        // Occupancy under compact pinning, shared by every loop's evasion
        // context (the reference re-derives it per loop).
        let per_domain = self.machine.topology.active_cores_per_domain(opts.ranks);
        let active_domains = per_domain.iter().filter(|&&c| c > 0).count().max(1);
        let busiest = per_domain.iter().copied().max().unwrap_or(1);
        let domain_utilization = self.machine.domain_utilization(busiest);
        let total_domains = self.machine.topology.domains.len();
        let streak_lines = (local_inner as f64 * 8.0 / 64.0).max(1.0);

        let params = match opts.variant {
            CodeVariant::SpecI2MOff => &self.params_off,
            _ => &self.params_on,
        };
        let nt_flush =
            params.nt_partial_flush_fraction(domain_utilization, active_domains, total_domains);
        // Replacement-policy reuse efficiency, hoisted (see
        // `TrafficModel::predict_loop` for the blending rationale).
        let eff = opts.replacement.reuse_efficiency();

        self.specs
            .iter()
            .zip(&self.bounds)
            .map(|(spec, &bounds)| {
                let rd_lcf = spec.rd_lcf() as f64;
                let rd_lcb = spec.rd_lcb() as f64;
                let rd_base = if opts.layer_condition_ok {
                    if eff >= 1.0 {
                        rd_lcf
                    } else {
                        rd_lcf + (rd_lcb - rd_lcf) * (1.0 - eff)
                    }
                } else {
                    rd_lcb
                };
                let wr = spec.wr() as f64;
                let mut evadable = spec.evadable_write_streams() as f64;
                let read_halo_overhead = rd_base * elem * row_overhead;

                let ctx = EvasionContext {
                    domain_utilization,
                    active_domains,
                    total_domains,
                    store_streams: spec.wr().max(1),
                    streak_lines,
                };
                let blocked = match opts.variant {
                    CodeVariant::Original => spec.speci2m_blocked || spec.has_branches,
                    CodeVariant::Optimized => spec.has_branches,
                    CodeVariant::SpecI2MOff => true,
                };

                let mut nt_streams = 0.0;
                if opts.variant == CodeVariant::Optimized && evadable >= 1.0 {
                    nt_streams = 1.0;
                    evadable -= 1.0;
                }

                match opts.write_policy {
                    WritePolicyKind::Allocate => {}
                    WritePolicyKind::NoAllocate => {
                        nt_streams = 0.0;
                        evadable = 0.0;
                    }
                    WritePolicyKind::NonTemporal => {
                        nt_streams += evadable;
                        evadable = 0.0;
                    }
                }

                let evasion = if blocked {
                    0.0
                } else {
                    params.evasion_fraction(&ctx)
                };
                let spec_read = if blocked {
                    0.0
                } else {
                    params.speculative_read_fraction(&ctx)
                };

                let wa_reads = evadable * elem * (1.0 - evasion);
                let speculative = evadable * elem * spec_read;
                let nt_reads = nt_streams * elem * nt_flush;
                let read = rd_base * elem + wa_reads + speculative + nt_reads + read_halo_overhead;

                let write_halo_overhead = wr * elem * row_overhead * 0.5;
                let write = wr * elem + write_halo_overhead;

                LoopTraffic {
                    name: spec.name.clone(),
                    bounds,
                    read_bytes_per_it: read,
                    write_bytes_per_it: write,
                    evasion_fraction: evasion,
                    flops_per_it: spec.flops as f64,
                }
            })
            .collect()
    }

    /// Evaluate one rank count — bit-identical to
    /// [`ScalingModel::point`](crate::ScalingModel::point) on the same
    /// machine and grid.
    pub fn point(&self, ranks: usize, opts: &TrafficOptions) -> ScalingPoint {
        assert!(ranks >= 1 && ranks <= self.machine.total_cores());
        let decomp = Decomposition::new(ranks, self.grid, self.grid);
        let loops = self.predict_loops(opts, &decomp);

        let iterations = (self.grid as f64) * (self.grid as f64);
        let per_rank_iterations = iterations / ranks as f64;
        let peak = self.machine.core_peak_flops();
        // Per-rank bandwidth of each populated domain, hoisted out of the
        // per-loop maximum (same divisions, computed once).
        let per_rank_bws: Vec<f64> = self
            .machine
            .topology
            .active_cores_per_domain(ranks)
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| self.machine.bandwidth.domain_bandwidth(c) / c as f64)
            .collect();
        let mut time = 0.0;
        let mut volume = 0.0;
        for t in &loops {
            let loop_time = per_rank_bws
                .iter()
                .map(|&bw| per_rank_iterations * t.time_per_iteration(bw, peak))
                .fold(0.0, f64::max);
            time += loop_time;
            volume += iterations * t.code_balance();
        }
        let time_per_step = time / (1.0 - NON_HOTSPOT_FRACTION);
        let volume_per_step = volume / (1.0 - NON_HOTSPOT_FRACTION);
        ScalingPoint {
            ranks,
            prime: is_prime(ranks),
            local_inner: decomp.typical_local_inner(),
            time_per_step,
            speedup: 0.0, // filled in by the range normalisation
            memory_bandwidth: volume_per_step / time_per_step,
            volume_per_step,
            loop_balances: loops
                .iter()
                .map(|l| (l.name.clone(), l.code_balance()))
                .collect(),
        }
    }

    /// Evaluate one rank count through a cross-sweep memo.
    pub fn point_memo(
        &self,
        ranks: usize,
        opts: &TrafficOptions,
        memo: &SweepMemo,
    ) -> ScalingPoint {
        let key = PointKey {
            machine: self.machine.id.clone(),
            grid: self.grid,
            ranks,
            opts: *opts,
        };
        memo.get_or_insert_with(key, || self.point(ranks, opts))
    }

    /// Scheduling class of the point `(machine, grid, ranks)` — equal
    /// across every [`TrafficOptions`] at that rank count, so a sweep
    /// runner can group option-neighbours onto one worker (see
    /// [`PointKey::neighbour_class`]).
    pub fn neighbour_class(&self, ranks: usize) -> u64 {
        neighbour_hash(&self.machine.id, self.grid, ranks)
    }

    /// Evaluate an inclusive rank range through `memo` and fill in speedups
    /// relative to the first point — the memoized equivalent of
    /// [`ScalingModel::sweep_range`](crate::ScalingModel::sweep_range).
    pub fn sweep_range_memo(
        &self,
        ranks: std::ops::RangeInclusive<usize>,
        opts_for: impl Fn(usize) -> TrafficOptions,
        memo: &SweepMemo,
    ) -> Vec<ScalingPoint> {
        let mut points: Vec<ScalingPoint> = ranks
            .map(|r| self.point_memo(r, &opts_for(r), memo))
            .collect();
        crate::scaling::normalise_speedups(&mut points);
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScalingModel, TINY_GRID};
    use clover_machine::{icelake_sp_8360y, sapphire_rapids_8480};

    fn all_options(ranks: usize) -> [TrafficOptions; 7] {
        use clover_machine::ReplacementPolicyKind;
        [
            TrafficOptions::original(ranks),
            TrafficOptions::optimized(ranks),
            TrafficOptions::speci2m_off(ranks),
            TrafficOptions::original(ranks).with_layer_condition(false),
            TrafficOptions::original(ranks).with_replacement(ReplacementPolicyKind::Srrip),
            TrafficOptions::original(ranks).with_write_policy(WritePolicyKind::NoAllocate),
            TrafficOptions::optimized(ranks)
                .with_replacement(ReplacementPolicyKind::Random)
                .with_write_policy(WritePolicyKind::NonTemporal),
        ]
    }

    #[test]
    fn neighbour_class_ignores_options_only() {
        let m = icelake_sp_8360y();
        let engine = ScalingEngine::new(m.clone(), TINY_GRID);
        // Same class across every option set at a rank count...
        let class = engine.neighbour_class(18);
        for opts in all_options(18) {
            let key = PointKey {
                machine: m.id.clone(),
                grid: TINY_GRID,
                ranks: 18,
                opts,
            };
            assert_eq!(key.neighbour_class(), class);
        }
        // ...but distinct across ranks, grids and machines.
        assert_ne!(engine.neighbour_class(19), class);
        assert_ne!(
            ScalingEngine::new(m.clone(), 1920).neighbour_class(18),
            class
        );
        assert_ne!(
            ScalingEngine::new(sapphire_rapids_8480(), TINY_GRID).neighbour_class(18),
            class
        );
    }

    #[test]
    fn engine_points_are_bit_identical_to_the_model() {
        for machine in [icelake_sp_8360y(), sapphire_rapids_8480()] {
            for grid in [1920usize, TINY_GRID] {
                let model = ScalingModel::new(machine.clone()).with_grid(grid);
                let engine = ScalingEngine::new(machine.clone(), grid);
                for ranks in [1usize, 2, 9, 17, 18, 19, 36, 37, 53, 72] {
                    for opts in all_options(ranks) {
                        let reference = model.point(ranks, &opts);
                        let fast = engine.point(ranks, &opts);
                        assert_eq!(
                            reference, fast,
                            "{} grid={grid} ranks={ranks} {opts:?}",
                            machine.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memoized_sweep_equals_the_reference_sweep() {
        let machine = icelake_sp_8360y();
        let model = ScalingModel::new(machine.clone());
        let engine = ScalingEngine::new(machine.clone(), TINY_GRID);
        let memo = SweepMemo::new();
        // Overlapping ranges: the second and third sweeps are served mostly
        // (then entirely) from the memo and must not change a bit.
        for range in [1..=36, 1..=72, 9..=18] {
            let reference = model.sweep_range(range.clone(), TrafficOptions::original);
            let memoized = engine.sweep_range_memo(range.clone(), TrafficOptions::original, &memo);
            assert_eq!(reference, memoized, "range {range:?}");
        }
        let (hits, misses) = memo.stats();
        assert_eq!(misses, 72, "distinct points evaluated once");
        assert_eq!(hits, 36 + 10, "overlap served from the memo");
        assert_eq!(memo.len(), 72);
    }

    #[test]
    fn memo_distinguishes_stage_grid_and_machine() {
        let memo = SweepMemo::new();
        let icx = ScalingEngine::new(icelake_sp_8360y(), 1920);
        let icx_small = ScalingEngine::new(icelake_sp_8360y(), 960);
        let spr = ScalingEngine::new(sapphire_rapids_8480(), 1920);
        let _ = icx.point_memo(18, &TrafficOptions::original(18), &memo);
        let _ = icx.point_memo(18, &TrafficOptions::optimized(18), &memo);
        let _ = icx_small.point_memo(18, &TrafficOptions::original(18), &memo);
        let _ = spr.point_memo(18, &TrafficOptions::original(18), &memo);
        assert_eq!(memo.len(), 4);
        assert!(!memo.is_empty());
    }

    #[test]
    fn normalisation_happens_per_range_not_in_the_memo() {
        // A memo hit must not leak another range's speedup normalisation.
        let engine = ScalingEngine::new(icelake_sp_8360y(), TINY_GRID);
        let memo = SweepMemo::new();
        let full = engine.sweep_range_memo(1..=18, TrafficOptions::original, &memo);
        let partial = engine.sweep_range_memo(9..=18, TrafficOptions::original, &memo);
        assert!((partial[0].speedup - 1.0).abs() < 1e-12);
        let expected = full[8].time_per_step / full[17].time_per_step;
        assert!((partial[9].speedup - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_range_yields_empty_sweep() {
        let engine = ScalingEngine::new(icelake_sp_8360y(), TINY_GRID);
        let memo = SweepMemo::new();
        assert!(engine
            .sweep_range_memo(5..=4, TrafficOptions::original, &memo)
            .is_empty());
    }
}
