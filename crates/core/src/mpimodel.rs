//! Communication-time model (Fig. 4).
//!
//! The paper rules out MPI overhead as the cause of the prime-number effect
//! by measuring the relative time spent in each MPI call: even for the
//! one-dimensional decompositions the MPI share stays below a few percent of
//! the runtime (the y-axis of Fig. 4 starts at 94 %).  This module models
//! that breakdown from first principles: halo-exchange message sizes follow
//! from the decomposition, transfer costs from a latency/bandwidth model,
//! and reductions from a log₂(p) tree.

use clover_machine::Machine;

use crate::decomp::Decomposition;
use crate::scaling::ScalingModel;
use crate::traffic::TrafficOptions;
use crate::TINY_GRID;

/// Relative runtime shares of one rank-count configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiShare {
    /// Number of ranks.
    pub ranks: usize,
    /// Share of time spent in serial (non-MPI) execution.
    pub serial: f64,
    /// Share spent in `MPI_Waitall` (halo-exchange completion).
    pub waitall: f64,
    /// Share spent in `MPI_Allreduce` (time-step control).
    pub allreduce: f64,
    /// Share spent in `MPI_Isend`.
    pub isend: f64,
    /// Share spent in `MPI_Reduce` (field summaries).
    pub reduce: f64,
    /// Share spent in `MPI_Barrier`.
    pub barrier: f64,
}

impl MpiShare {
    /// Total MPI share (1 − serial).
    pub fn mpi_total(&self) -> f64 {
        self.waitall + self.allreduce + self.isend + self.reduce + self.barrier
    }
}

/// Latency/bandwidth communication model.
#[derive(Debug, Clone)]
pub struct CommModel {
    machine: Machine,
    /// Point-to-point latency in seconds (intra-node shared memory).
    pub latency: f64,
    /// Point-to-point bandwidth in byte/s.
    pub p2p_bandwidth: f64,
    /// Number of halo exchanges (fields × directions) per timestep.
    pub exchanges_per_step: f64,
    /// Number of allreduce operations per timestep.
    pub allreduces_per_step: f64,
    /// Halo depth in cells (CloverLeaf uses 2–5 depending on the kernel).
    pub halo_depth: f64,
}

impl CommModel {
    /// Default intra-node parameters for the given machine.
    pub fn new(machine: Machine) -> Self {
        Self {
            machine,
            latency: 1.0e-6,
            p2p_bandwidth: 8e9,
            exchanges_per_step: 40.0,
            allreduces_per_step: 2.0,
            halo_depth: 2.5,
        }
    }

    /// Compute the relative runtime breakdown for `ranks` ranks.
    pub fn shares(&self, ranks: usize) -> MpiShare {
        let decomp = Decomposition::new(ranks, TINY_GRID, TINY_GRID);
        let scaling = ScalingModel::new(self.machine.clone());
        let step_time = scaling
            .point(ranks, &TrafficOptions::original(ranks))
            .time_per_step;

        // Worst-case rank: interior rank with the most neighbours.
        let rank = if ranks > 1 { ranks / 2 } else { 0 };
        let halo_bytes = decomp.halo_bytes_per_field(rank) as f64 * self.halo_depth;
        let neighbours = decomp.neighbour_count(rank).max(1) as f64;

        // One exchange: post isends (latency each), then wait for the
        // transfers to complete (bytes / bandwidth + latency).
        let isend_time = self.exchanges_per_step * neighbours * self.latency;
        let waitall_time =
            self.exchanges_per_step * (halo_bytes / self.p2p_bandwidth + neighbours * self.latency);
        // Reductions: log2(p) stages of one latency each.
        let stages = (ranks.max(2) as f64).log2().ceil();
        let allreduce_time = self.allreduces_per_step * 2.0 * stages * self.latency
            + self.sync_skew(step_time, ranks);
        let reduce_time = 0.1 * allreduce_time;
        let barrier_time = 0.05 * allreduce_time;

        let comm = isend_time + waitall_time + allreduce_time + reduce_time + barrier_time;
        let total = step_time + comm;
        MpiShare {
            ranks,
            serial: step_time / total,
            waitall: waitall_time / total,
            allreduce: allreduce_time / total,
            isend: isend_time / total,
            reduce: reduce_time / total,
            barrier: barrier_time / total,
        }
    }

    /// Load-imbalance induced waiting time absorbed by the first collective:
    /// ranks whose chunk is one column wider than the minimum finish later.
    fn sync_skew(&self, step_time: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let decomp = Decomposition::new(ranks, TINY_GRID, TINY_GRID);
        let min = decomp.min_local_inner() as f64;
        let max = (0..ranks).map(|r| decomp.local_inner(r)).max().unwrap_or(1) as f64;
        step_time * (max - min) / max.max(1.0)
    }

    /// Evaluate the rank counts shown in Fig. 4.
    pub fn figure4_points(&self) -> Vec<MpiShare> {
        [2usize, 17, 18, 19, 37, 38, 71, 72]
            .iter()
            .map(|&r| self.shares(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn model() -> CommModel {
        CommModel::new(icelake_sp_8360y())
    }

    #[test]
    fn shares_sum_to_one() {
        for ranks in [2usize, 19, 38, 72] {
            let s = model().shares(ranks);
            let total = s.serial + s.mpi_total();
            assert!((total - 1.0).abs() < 1e-9, "ranks={ranks}");
        }
    }

    #[test]
    fn mpi_share_is_only_a_few_percent() {
        // Fig. 4's y-axis starts at 94 %: MPI never exceeds ~6 % of runtime.
        for s in model().figure4_points() {
            assert!(
                s.serial > 0.90,
                "ranks={}: serial share {}",
                s.ranks,
                s.serial
            );
            assert!(
                s.mpi_total() < 0.10,
                "ranks={}: MPI share {}",
                s.ranks,
                s.mpi_total()
            );
        }
    }

    #[test]
    fn waitall_dominates_the_mpi_time_at_scale() {
        let s = model().shares(72);
        assert!(s.waitall + s.allreduce > s.isend + s.reduce + s.barrier);
    }

    #[test]
    fn mpi_overhead_cannot_explain_the_prime_effect() {
        // The extra MPI share at prime counts is far smaller than the
        // observed performance drop (which is ~10-20 %): this is the paper's
        // falsification argument.
        let m = model();
        let s71 = m.shares(71);
        let s72 = m.shares(72);
        let extra = s71.mpi_total() - s72.mpi_total();
        assert!(extra < 0.05, "extra MPI share at 71 ranks = {extra}");
    }

    #[test]
    fn single_rank_has_no_communication() {
        let s = model().shares(1);
        assert!(s.mpi_total() < 0.01);
        assert!(s.serial > 0.99);
    }

    #[test]
    fn figure4_points_cover_the_paper_configurations() {
        let pts = model().figure4_points();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].ranks, 2);
        assert_eq!(pts[7].ranks, 72);
    }
}
