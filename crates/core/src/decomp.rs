//! CloverLeaf's domain decomposition.
//!
//! CloverLeaf factorises the number of ranks and spreads the prime factors
//! as evenly as possible across both grid dimensions, starting with the
//! outer (y) dimension.  For a *prime* rank count the only factorisation is
//! `1 × p`; the code then cuts the **inner (x) dimension** into `p` strips,
//! producing very short rows per rank (216 elements for 71 ranks on the Tiny
//! grid) — the root cause of the paper's prime-number effect.

/// Marker value: the local inner dimension equals the full grid width.
pub const TILE_INNER_FULL: usize = usize::MAX;

/// The rank grid and local chunk sizes of one decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Total number of ranks.
    pub ranks: usize,
    /// Ranks along the inner (x) dimension.
    pub ranks_x: usize,
    /// Ranks along the outer (y) dimension.
    pub ranks_y: usize,
    /// Global grid cells along x.
    pub grid_x: usize,
    /// Global grid cells along y.
    pub grid_y: usize,
}

impl Decomposition {
    /// Decompose a `grid_x × grid_y` grid over `ranks` ranks the way
    /// CloverLeaf does: prime factors are distributed to keep the rank grid
    /// as square as possible, assigning each factor to the dimension that
    /// currently has the larger cells-per-rank extent, starting with the
    /// outer dimension; a prime rank count therefore ends up as
    /// `ranks_x = ranks`, `ranks_y = 1`.
    pub fn new(ranks: usize, grid_x: usize, grid_y: usize) -> Self {
        assert!(ranks > 0 && grid_x > 0 && grid_y > 0);
        // Port of clover_decompose: find the first factor pair
        // (ranks/c) × c with (ranks/c)/c ≤ mesh_ratio; if none exists (prime
        // count) or the split degenerates, cut along x for wide/square
        // meshes.
        let mesh_ratio = grid_x as f64 / grid_y as f64;
        let mut rx = ranks;
        let mut ry = 1usize;
        let mut split_found = false;
        for c in 1..=ranks {
            if ranks % c != 0 {
                continue;
            }
            let factor_x = (ranks / c) as f64;
            let factor_y = c as f64;
            if factor_x / factor_y <= mesh_ratio {
                ry = c;
                rx = ranks / c;
                split_found = true;
                break;
            }
        }
        if !split_found || ry == ranks {
            if mesh_ratio >= 1.0 {
                rx = ranks;
                ry = 1;
            } else {
                rx = 1;
                ry = ranks;
            }
        }
        Self {
            ranks,
            ranks_x: rx,
            ranks_y: ry,
            grid_x,
            grid_y,
        }
    }

    /// True if the rank count is prime (and > 2 ranks), i.e. the grid is cut
    /// only along one dimension.
    pub fn is_one_dimensional(&self) -> bool {
        self.ranks_x == self.ranks || self.ranks_y == self.ranks
    }

    /// Local inner (x) extent of rank `r` (cells).  Remainder cells are
    /// distributed to the first ranks, as CloverLeaf does.
    pub fn local_inner(&self, r: usize) -> usize {
        let rx = r % self.ranks_x;
        chunk_size(self.grid_x, self.ranks_x, rx)
    }

    /// Local outer (y) extent of rank `r` (cells).
    pub fn local_outer(&self, r: usize) -> usize {
        let ry = r / self.ranks_x;
        chunk_size(self.grid_y, self.ranks_y, ry)
    }

    /// Smallest local inner extent over all ranks — the quantity that
    /// controls SpecI2M streak lengths.
    pub fn min_local_inner(&self) -> usize {
        (0..self.ranks_x)
            .map(|rx| chunk_size(self.grid_x, self.ranks_x, rx))
            .min()
            .unwrap_or(0)
    }

    /// Typical (median) local inner extent.
    pub fn typical_local_inner(&self) -> usize {
        self.grid_x / self.ranks_x
    }

    /// Number of neighbours of rank `r` (2D von-Neumann neighbourhood in the
    /// rank grid) — each neighbour needs a halo exchange.
    pub fn neighbour_count(&self, r: usize) -> usize {
        let rx = r % self.ranks_x;
        let ry = r / self.ranks_x;
        let mut n = 0;
        if rx > 0 {
            n += 1;
        }
        if rx + 1 < self.ranks_x {
            n += 1;
        }
        if ry > 0 {
            n += 1;
        }
        if ry + 1 < self.ranks_y {
            n += 1;
        }
        n
    }

    /// Halo bytes exchanged per rank per field per depth-1 exchange
    /// (both directions).
    pub fn halo_bytes_per_field(&self, r: usize) -> usize {
        let rx = r % self.ranks_x;
        let ry = r / self.ranks_x;
        let mut bytes = 0usize;
        let inner = self.local_inner(r);
        let outer = self.local_outer(r);
        // Left/right neighbours exchange a column of `outer` cells.
        if rx > 0 {
            bytes += outer * 8;
        }
        if rx + 1 < self.ranks_x {
            bytes += outer * 8;
        }
        // Bottom/top neighbours exchange a row of `inner` cells.
        if ry > 0 {
            bytes += inner * 8;
        }
        if ry + 1 < self.ranks_y {
            bytes += inner * 8;
        }
        bytes
    }
}

/// Chunk size of part `idx` when splitting `total` cells over `parts` parts,
/// remainder to the first parts.
fn chunk_size(total: usize, parts: usize, idx: usize) -> usize {
    let base = total / parts;
    let rem = total % parts;
    if idx < rem {
        base + 1
    } else {
        base
    }
}

/// True if `n` is prime.
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n % 2 == 0 {
        return false;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// Prime factorisation of `n` in ascending order (empty for `n == 1`).
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: usize = 15_360;

    #[test]
    fn prime_helpers() {
        assert!(is_prime(2) && is_prime(3) && is_prime(19) && is_prime(71));
        assert!(!is_prime(1) && !is_prime(38) && !is_prime(72));
        assert_eq!(prime_factors(72), vec![2, 2, 2, 3, 3]);
        assert_eq!(prime_factors(71), vec![71]);
        assert_eq!(prime_factors(1), Vec::<usize>::new());
    }

    #[test]
    fn prime_counts_cut_only_the_inner_dimension() {
        for p in [19usize, 29, 37, 71] {
            let d = Decomposition::new(p, G, G);
            assert!(d.is_one_dimensional(), "{p} ranks must decompose 1D");
            assert_eq!(d.ranks_x, p, "{p} ranks: inner dimension is cut");
            assert_eq!(d.ranks_y, 1);
        }
    }

    #[test]
    fn paper_local_inner_dimensions() {
        // Sec. V-C: 71 ranks → 216-element rows, 19 ranks → 809, 29 → 530
        // (rounded), non-prime 72 → 1920, 64 → 1920.
        assert_eq!(Decomposition::new(71, G, G).typical_local_inner(), 216);
        assert_eq!(Decomposition::new(19, G, G).typical_local_inner(), 808);
        assert_eq!(Decomposition::new(29, G, G).typical_local_inner(), 529);
        assert_eq!(Decomposition::new(72, G, G).typical_local_inner(), 1920);
        assert_eq!(Decomposition::new(64, G, G).typical_local_inner(), 1920);
        assert_eq!(Decomposition::new(1, G, G).typical_local_inner(), 15_360);
    }

    #[test]
    fn non_prime_counts_stay_close_to_square() {
        let d = Decomposition::new(72, G, G);
        assert_eq!(d.ranks_x * d.ranks_y, 72);
        assert!(
            d.ranks_x >= 8 && d.ranks_x <= 9,
            "72 = 8×9 or 9×8, got {}×{}",
            d.ranks_x,
            d.ranks_y
        );
        let d = Decomposition::new(36, G, G);
        assert_eq!(d.ranks_x * d.ranks_y, 36);
        assert_eq!(d.ranks_x.max(d.ranks_y), 6);
    }

    #[test]
    fn cells_are_conserved() {
        for ranks in 1..=72 {
            let d = Decomposition::new(ranks, G, G);
            let total_x: usize = (0..d.ranks_x).map(|rx| chunk_size(G, d.ranks_x, rx)).sum();
            let total_y: usize = (0..d.ranks_y).map(|ry| chunk_size(G, d.ranks_y, ry)).sum();
            assert_eq!(total_x, G, "ranks={ranks}");
            assert_eq!(total_y, G, "ranks={ranks}");
            assert_eq!(d.ranks_x * d.ranks_y, ranks, "ranks={ranks}");
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for ranks in 1..=72 {
            let d = Decomposition::new(ranks, G, G);
            let sizes: Vec<usize> = (0..ranks).map(|r| d.local_inner(r)).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "ranks={ranks}: {min}..{max}");
        }
    }

    #[test]
    fn interior_rank_has_four_neighbours() {
        let d = Decomposition::new(36, G, G);
        // Rank in the middle of a 6x6 rank grid.
        let middle = d.ranks_x + 1;
        assert_eq!(d.neighbour_count(middle), 4);
        assert_eq!(d.neighbour_count(0), 2);
    }

    #[test]
    fn one_dimensional_halo_is_a_full_column() {
        let d = Decomposition::new(71, G, G);
        // Interior ranks exchange two columns of the full grid height.
        let bytes = d.halo_bytes_per_field(35);
        assert_eq!(bytes, 2 * G * 8);
        // Edge ranks exchange only one.
        assert_eq!(d.halo_bytes_per_field(0), G * 8);
    }

    #[test]
    fn min_local_inner_matches_local_queries() {
        for ranks in [5usize, 19, 24, 71, 72] {
            let d = Decomposition::new(ranks, G, G);
            let min_direct = (0..ranks).map(|r| d.local_inner(r)).min().unwrap();
            assert_eq!(d.min_local_inner(), min_direct, "ranks={ranks}");
        }
    }
}
