//! Socket / ccNUMA-domain / core topology and process pinning.

/// Index of a physical core in the node (0-based, compact numbering).
pub type CoreId = usize;
/// Index of a ccNUMA domain in the node.
pub type DomainId = usize;
/// Index of a socket in the node.
pub type SocketId = usize;

/// One ccNUMA domain: a set of cores with local memory.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CcNumaDomain {
    /// Domain index within the node.
    pub id: DomainId,
    /// Socket this domain belongs to.
    pub socket: SocketId,
    /// Cores belonging to this domain (compact, contiguous ids).
    pub cores: Vec<CoreId>,
}

/// Node topology: sockets split into ccNUMA domains.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    /// Number of sockets in the node.
    pub sockets: usize,
    /// ccNUMA domains, ordered by id (compact pinning fills them in order).
    pub domains: Vec<CcNumaDomain>,
}

impl Topology {
    /// Build a homogeneous topology: `sockets` sockets, `domains_per_socket`
    /// ccNUMA domains each, `cores_per_domain` cores per domain.
    pub fn homogeneous(sockets: usize, domains_per_socket: usize, cores_per_domain: usize) -> Self {
        assert!(sockets > 0 && domains_per_socket > 0 && cores_per_domain > 0);
        let mut domains = Vec::with_capacity(sockets * domains_per_socket);
        let mut next_core = 0;
        for s in 0..sockets {
            for d in 0..domains_per_socket {
                let id = s * domains_per_socket + d;
                let cores = (next_core..next_core + cores_per_domain).collect();
                next_core += cores_per_domain;
                domains.push(CcNumaDomain {
                    id,
                    socket: s,
                    cores,
                });
            }
        }
        Self { sockets, domains }
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.domains.iter().map(|d| d.cores.len()).sum()
    }

    /// Cores per ccNUMA domain (topology is homogeneous on all presets).
    pub fn cores_per_domain(&self) -> usize {
        self.domains.first().map(|d| d.cores.len()).unwrap_or(0)
    }

    /// Number of ccNUMA domains per socket.
    pub fn domains_per_socket(&self) -> usize {
        self.domains.len() / self.sockets.max(1)
    }

    /// The ccNUMA domain a given core belongs to.
    pub fn domain_of(&self, core: CoreId) -> Option<DomainId> {
        self.domains
            .iter()
            .find(|d| d.cores.contains(&core))
            .map(|d| d.id)
    }

    /// Compact pinning of `n` ranks: rank `i` is pinned to core `i`.
    ///
    /// Returns the list of (rank, core, domain) assignments.  Panics if `n`
    /// exceeds the number of cores.
    pub fn compact_pinning(&self, n: usize) -> Pinning {
        assert!(
            n <= self.total_cores(),
            "cannot pin {n} ranks to {} cores",
            self.total_cores()
        );
        let cores_per_domain = self.cores_per_domain();
        let assignments = (0..n)
            .map(|rank| {
                let core = rank;
                let domain = core / cores_per_domain;
                (rank, core, domain)
            })
            .collect();
        Pinning { assignments }
    }

    /// Number of active cores in each ccNUMA domain under compact pinning of
    /// `n` ranks.
    pub fn active_cores_per_domain(&self, n: usize) -> Vec<usize> {
        let per = self.cores_per_domain();
        let mut counts = vec![0usize; self.domains.len()];
        let mut remaining = n.min(self.total_cores());
        for c in counts.iter_mut() {
            let used = remaining.min(per);
            *c = used;
            remaining -= used;
            if remaining == 0 {
                break;
            }
        }
        counts
    }
}

/// A rank→core assignment produced by a pinning strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pinning {
    /// `(rank, core, domain)` triples, sorted by rank.
    pub assignments: Vec<(usize, CoreId, DomainId)>,
}

impl Pinning {
    /// Number of ranks pinned.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no rank is pinned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Domain of a given rank.
    pub fn domain_of_rank(&self, rank: usize) -> Option<DomainId> {
        self.assignments
            .iter()
            .find(|(r, _, _)| *r == rank)
            .map(|(_, _, d)| *d)
    }

    /// Number of ranks per domain, indexed by domain id.
    pub fn ranks_per_domain(&self, n_domains: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_domains];
        for (_, _, d) in &self.assignments {
            if *d < n_domains {
                counts[*d] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icx_topology() -> Topology {
        Topology::homogeneous(2, 2, 18)
    }

    #[test]
    fn homogeneous_counts() {
        let t = icx_topology();
        assert_eq!(t.total_cores(), 72);
        assert_eq!(t.domains.len(), 4);
        assert_eq!(t.cores_per_domain(), 18);
        assert_eq!(t.domains_per_socket(), 2);
    }

    #[test]
    fn domain_of_core() {
        let t = icx_topology();
        assert_eq!(t.domain_of(0), Some(0));
        assert_eq!(t.domain_of(17), Some(0));
        assert_eq!(t.domain_of(18), Some(1));
        assert_eq!(t.domain_of(71), Some(3));
        assert_eq!(t.domain_of(72), None);
    }

    #[test]
    fn compact_pinning_fills_domains_in_order() {
        let t = icx_topology();
        let p = t.compact_pinning(20);
        assert_eq!(p.len(), 20);
        assert_eq!(p.domain_of_rank(0), Some(0));
        assert_eq!(p.domain_of_rank(17), Some(0));
        assert_eq!(p.domain_of_rank(18), Some(1));
        assert_eq!(p.ranks_per_domain(4), vec![18, 2, 0, 0]);
    }

    #[test]
    fn active_cores_per_domain_matches_pinning() {
        let t = icx_topology();
        for n in [1usize, 17, 18, 19, 37, 71, 72] {
            let counts = t.active_cores_per_domain(n);
            let pin = t.compact_pinning(n).ranks_per_domain(4);
            assert_eq!(counts, pin, "mismatch at n={n}");
            assert_eq!(counts.iter().sum::<usize>(), n);
        }
    }

    #[test]
    #[should_panic(expected = "cannot pin")]
    fn overcommit_panics() {
        icx_topology().compact_pinning(73);
    }

    #[test]
    fn empty_pinning() {
        let p = icx_topology().compact_pinning(0);
        assert!(p.is_empty());
    }
}
