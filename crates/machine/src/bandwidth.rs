//! Main-memory bandwidth saturation model.
//!
//! Memory-bound codes saturate the bandwidth of a ccNUMA domain with a
//! fraction of its cores (about 9 of 18 on the Ice Lake SP test system).
//! The scaling study (Fig. 2), the Roofline predictions and the SpecI2M
//! activation model all need the attainable bandwidth — and the resulting
//! *utilisation* — as a function of the number of active cores per domain.

/// Shape of the per-domain bandwidth saturation curve.
///
/// The curve is the classic "linear ramp with saturation" used in ECM-style
/// models: one core draws `saturated_bw / saturation_cores`, `n` cores draw
/// `n` times that until the domain limit is reached, with an optional smooth
/// knee controlled by `knee_sharpness`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SaturationCurve {
    /// Number of cores required to reach the saturated domain bandwidth.
    pub saturation_cores: f64,
    /// Knee smoothing exponent; large values approach the hard
    /// `min(n/n_sat, 1)` ramp, small values give a softer approach to
    /// saturation.  Typical value: 4.
    pub knee_sharpness: f64,
}

impl SaturationCurve {
    /// Create a curve that saturates at `saturation_cores` cores.
    pub fn new(saturation_cores: f64, knee_sharpness: f64) -> Self {
        assert!(saturation_cores > 0.0 && knee_sharpness > 0.0);
        Self {
            saturation_cores,
            knee_sharpness,
        }
    }

    /// Fraction of the saturated bandwidth drawn by `cores` active cores
    /// (0..=1).  This is also the bandwidth *utilisation* of the domain.
    pub fn utilization(&self, cores: usize) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let x = cores as f64 / self.saturation_cores;
        // Smooth-min of x and 1: (x^-k + 1)^(-1/k) approaches min(x, 1).
        let k = self.knee_sharpness;
        (x.powf(-k) + 1.0).powf(-1.0 / k)
    }

    /// Attainable bandwidth (byte/s) for `cores` active cores in a domain
    /// whose saturated bandwidth is `saturated_bw`.
    pub fn bandwidth(&self, cores: usize, saturated_bw: f64) -> f64 {
        saturated_bw * self.utilization(cores)
    }
}

/// Bandwidth model of one machine: saturated per-domain bandwidth plus the
/// saturation curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandwidthModel {
    /// Saturated (attainable) bandwidth of one ccNUMA domain in byte/s.
    pub domain_saturated_bw: f64,
    /// Single-core attainable bandwidth in byte/s (load+store mix).
    pub single_core_bw: f64,
    /// Saturation curve shape.
    pub curve: SaturationCurve,
}

impl BandwidthModel {
    /// Construct a model; `saturation_cores` is derived from the ratio of
    /// domain to single-core bandwidth unless the curve says otherwise.
    pub fn new(domain_saturated_bw: f64, single_core_bw: f64, curve: SaturationCurve) -> Self {
        assert!(domain_saturated_bw > 0.0 && single_core_bw > 0.0);
        Self {
            domain_saturated_bw,
            single_core_bw,
            curve,
        }
    }

    /// Attainable bandwidth of `cores` cores within one domain (byte/s).
    pub fn domain_bandwidth(&self, cores: usize) -> f64 {
        self.curve.bandwidth(cores, self.domain_saturated_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_zero_and_saturated() {
        let c = SaturationCurve::new(9.0, 4.0);
        assert_eq!(c.utilization(0), 0.0);
        assert!(c.utilization(18) > 0.95);
        assert!(c.utilization(100) <= 1.0);
    }

    #[test]
    fn utilization_monotone() {
        let c = SaturationCurve::new(9.0, 4.0);
        let mut prev = 0.0;
        for n in 0..40 {
            let u = c.utilization(n);
            assert!(u >= prev);
            assert!(u <= 1.0);
            prev = u;
        }
    }

    #[test]
    fn single_core_fraction_is_roughly_linear_region() {
        let c = SaturationCurve::new(9.0, 4.0);
        let u1 = c.utilization(1);
        // One of nine cores should draw roughly 1/9 of the bandwidth.
        assert!((u1 - 1.0 / 9.0).abs() < 0.02, "u1 = {u1}");
    }

    #[test]
    fn bandwidth_scales_with_saturated_bw() {
        let c = SaturationCurve::new(9.0, 4.0);
        let m = BandwidthModel::new(80e9, 13e9, c);
        assert!(m.domain_bandwidth(18) > 0.95 * 80e9);
        assert!(m.domain_bandwidth(1) < 15e9);
    }

    #[test]
    #[should_panic]
    fn invalid_curve_panics() {
        let _ = SaturationCurve::new(0.0, 4.0);
    }
}
