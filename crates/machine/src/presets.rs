//! Machine presets for the three evaluated platforms.

use crate::bandwidth::{BandwidthModel, SaturationCurve};
use crate::cache::{CacheLevel, CacheSpec, MemoryHierarchySpec, CACHE_LINE_BYTES};
use crate::policy::{ReplacementPolicyKind, WritePolicyKind};
use crate::speci2m::{SpecI2MParams, StreamCountResponse};
use crate::topology::Topology;
use crate::Machine;

/// Identifies one of the predefined machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachinePreset {
    /// Intel Xeon Platinum 8360Y, "Ice Lake SP", SNC on (4 domains × 18 cores).
    IceLakeSp8360y,
    /// Intel Xeon Platinum 8470, "Sapphire Rapids", SNC configurable.
    SapphireRapids8470 {
        /// Whether Sub-NUMA Clustering is enabled.
        snc: bool,
    },
    /// Intel Xeon Platinum 8480+, "Sapphire Rapids", SNC off.
    SapphireRapids8480,
    /// CVA6-like embedded quad-core: write-back + no-write-allocate d-cache
    /// with pseudo-random replacement, no SpecI2M.
    Cva6Like,
}

impl MachinePreset {
    /// Materialise the preset into a full [`Machine`] description.
    pub fn machine(&self) -> Machine {
        match self {
            MachinePreset::IceLakeSp8360y => icelake_sp_8360y(),
            MachinePreset::SapphireRapids8470 { snc } => sapphire_rapids_8470(*snc),
            MachinePreset::SapphireRapids8480 => sapphire_rapids_8480(),
            MachinePreset::Cva6Like => cva6_like(),
        }
    }

    /// All registered presets: the paper's figure machines plus the
    /// CVA6-like policy-exploration config (which no figure uses).
    pub fn all() -> Vec<MachinePreset> {
        vec![
            MachinePreset::IceLakeSp8360y,
            MachinePreset::SapphireRapids8470 { snc: true },
            MachinePreset::SapphireRapids8470 { snc: false },
            MachinePreset::SapphireRapids8480,
            MachinePreset::Cva6Like,
        ]
    }

    /// Canonical registry name of this preset: the `Machine::id` it
    /// materialises to (`"icx-8360y"`, `"spr-8470-sncon"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            MachinePreset::IceLakeSp8360y => "icx-8360y",
            MachinePreset::SapphireRapids8470 { snc: true } => "spr-8470-sncon",
            MachinePreset::SapphireRapids8470 { snc: false } => "spr-8470-sncoff",
            MachinePreset::SapphireRapids8480 => "spr-8480plus",
            MachinePreset::Cva6Like => "cva6-nowa",
        }
    }
}

/// Canonical names of every registered preset, in registry order.
pub fn preset_names() -> Vec<&'static str> {
    MachinePreset::all().iter().map(|p| p.name()).collect()
}

/// Look a preset up by name.
///
/// Accepts the canonical `Machine::id` of each preset plus a few common
/// shorthands (`"icx"`, `"spr-8470-snc"` for SNC on, `"spr-8480"`).
/// Unknown names return `None`; callers turn that into a usage error
/// listing [`preset_names`].
pub fn preset_by_name(name: &str) -> Option<MachinePreset> {
    match name {
        "icx-8360y" | "icx" => Some(MachinePreset::IceLakeSp8360y),
        "spr-8470-sncon" | "spr-8470-snc" => Some(MachinePreset::SapphireRapids8470 { snc: true }),
        "spr-8470-sncoff" => Some(MachinePreset::SapphireRapids8470 { snc: false }),
        "spr-8480plus" | "spr-8480" => Some(MachinePreset::SapphireRapids8480),
        "cva6-nowa" | "cva6" => Some(MachinePreset::Cva6Like),
        _ => None,
    }
}

fn icx_caches() -> MemoryHierarchySpec {
    MemoryHierarchySpec {
        l1: CacheSpec::new(CacheLevel::L1, 48 * 1024, 12, CACHE_LINE_BYTES, false),
        l2: CacheSpec::new(CacheLevel::L2, 1280 * 1024, 20, CACHE_LINE_BYTES, false),
        l3: CacheSpec::new(CacheLevel::L3, 54 * 1024 * 1024, 12, CACHE_LINE_BYTES, true),
        l3_sharers: 36,
        write_policy: WritePolicyKind::Allocate,
    }
}

fn spr_caches(l3_sharers: usize) -> MemoryHierarchySpec {
    MemoryHierarchySpec {
        l1: CacheSpec::new(CacheLevel::L1, 48 * 1024, 12, CACHE_LINE_BYTES, false),
        l2: CacheSpec::new(CacheLevel::L2, 2048 * 1024, 16, CACHE_LINE_BYTES, false),
        l3: CacheSpec::new(
            CacheLevel::L3,
            105 * 1024 * 1024,
            12,
            CACHE_LINE_BYTES,
            true,
        ),
        l3_sharers,
        write_policy: WritePolicyKind::Allocate,
    }
}

/// Two-socket Intel Xeon Platinum 8360Y "Ice Lake SP" node as configured in
/// the paper: SNC on (two ccNUMA domains per socket, 18 cores each), DDR4-3200,
/// clock pinned to 2.4 GHz.
pub fn icelake_sp_8360y() -> Machine {
    Machine {
        name: "Intel Xeon Platinum 8360Y (Ice Lake SP), 2S, SNC on".to_string(),
        id: "icx-8360y".to_string(),
        topology: Topology::homogeneous(2, 2, 18),
        caches: icx_caches(),
        bandwidth: BandwidthModel::new(80e9, 13e9, SaturationCurve::new(9.0, 8.0)),
        speci2m: SpecI2MParams {
            enabled: true,
            activation_utilization: 0.25,
            full_effect_utilization: 0.85,
            max_evasion: 0.98,
            node_population_penalty: 0.22,
            stream_response: StreamCountResponse {
                factors: vec![1.0, 0.93, 0.88],
            },
            streak_scale_lines: 26.0,
            speculative_read_penalty: 0.35,
            nt_partial_flush_max: 0.17,
        },
        clock_hz: 2.4e9,
        dp_flops_per_cycle: 16.0,
    }
}

/// Two-socket Intel Xeon Platinum 8470 "Sapphire Rapids" node (52 cores per
/// socket, DDR5-4800, clock pinned to 2.0 GHz).  `snc` selects Sub-NUMA
/// Clustering: `true` → two ccNUMA domains per socket (26 cores each),
/// `false` → one domain per socket.
pub fn sapphire_rapids_8470(snc: bool) -> Machine {
    let (domains_per_socket, cores_per_domain, domain_bw, sat_cores) = if snc {
        (2, 26, 135e9, 9.0)
    } else {
        (1, 52, 260e9, 16.0)
    };
    // SNC on is slightly *less* efficient at full socket for standard stores
    // (Fig. 9): encode as a small max_evasion penalty.
    let max_evasion = if snc { 0.48 } else { 0.51 };
    Machine {
        name: format!(
            "Intel Xeon Platinum 8470 (Sapphire Rapids), 2S, SNC {}",
            if snc { "on" } else { "off" }
        ),
        id: format!("spr-8470-snc{}", if snc { "on" } else { "off" }),
        topology: Topology::homogeneous(2, domains_per_socket, cores_per_domain),
        caches: spr_caches(52),
        bandwidth: BandwidthModel::new(domain_bw, 15e9, SaturationCurve::new(sat_cores, 4.0)),
        speci2m: SpecI2MParams {
            enabled: true,
            activation_utilization: if snc { 0.55 } else { 0.85 },
            full_effect_utilization: 0.99,
            max_evasion,
            node_population_penalty: 0.10,
            stream_response: StreamCountResponse::flat(),
            streak_scale_lines: 18.0,
            speculative_read_penalty: 0.20,
            nt_partial_flush_max: 0.18,
        },
        clock_hz: 2.0e9,
        dp_flops_per_cycle: 16.0,
    }
}

/// CVA6-like embedded quad-core node.
///
/// Models the policy corner documented for the CVA6 (Ariane) d-cache:
/// write-back + **no-write-allocate** with pseudo-random replacement, and of
/// course no SpecI2M — store misses never fetch the line, so the
/// write-allocate-evasion question does not arise.  The preset exists to
/// exercise the policy fields of the machine model and the policy-generic
/// simulator; no paper figure uses it.
pub fn cva6_like() -> Machine {
    Machine {
        name: "CVA6-like embedded quad-core (write-back, no-write-allocate)".to_string(),
        id: "cva6-nowa".to_string(),
        topology: Topology::homogeneous(1, 1, 4),
        caches: MemoryHierarchySpec {
            l1: CacheSpec::new(CacheLevel::L1, 32 * 1024, 8, CACHE_LINE_BYTES, false)
                .with_replacement(ReplacementPolicyKind::Random),
            l2: CacheSpec::new(CacheLevel::L2, 512 * 1024, 8, CACHE_LINE_BYTES, false)
                .with_replacement(ReplacementPolicyKind::Random),
            l3: CacheSpec::new(CacheLevel::L3, 2 * 1024 * 1024, 16, CACHE_LINE_BYTES, true)
                .with_replacement(ReplacementPolicyKind::Plru),
            l3_sharers: 4,
            write_policy: WritePolicyKind::NoAllocate,
        },
        bandwidth: BandwidthModel::new(10e9, 3e9, SaturationCurve::new(2.0, 4.0)),
        speci2m: SpecI2MParams::disabled(),
        clock_hz: 1.5e9,
        dp_flops_per_cycle: 2.0,
    }
}

/// Two-socket Intel Xeon Platinum 8480+ "Sapphire Rapids" node (56 cores per
/// socket, DDR5-4800, SNC off, clock pinned to 2.0 GHz).
pub fn sapphire_rapids_8480() -> Machine {
    Machine {
        name: "Intel Xeon Platinum 8480+ (Sapphire Rapids), 2S, SNC off".to_string(),
        id: "spr-8480plus".to_string(),
        topology: Topology::homogeneous(2, 1, 56),
        caches: spr_caches(56),
        bandwidth: BandwidthModel::new(260e9, 15e9, SaturationCurve::new(16.0, 4.0)),
        speci2m: SpecI2MParams {
            enabled: true,
            activation_utilization: 0.85,
            full_effect_utilization: 0.99,
            max_evasion: 0.55,
            node_population_penalty: 0.10,
            stream_response: StreamCountResponse::flat(),
            streak_scale_lines: 18.0,
            speculative_read_penalty: 0.20,
            nt_partial_flush_max: 0.18,
        },
        clock_hz: 2.0e9,
        dp_flops_per_cycle: 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_materialise() {
        for p in MachinePreset::all() {
            let m = p.machine();
            assert!(m.total_cores() > 0);
            assert!(m.domain_bandwidth() > 0.0);
            assert!(!m.id.is_empty());
        }
    }

    #[test]
    fn icx_has_snc_on_topology() {
        let m = icelake_sp_8360y();
        assert_eq!(m.topology.domains_per_socket(), 2);
        assert_eq!(m.topology.cores_per_domain(), 18);
    }

    #[test]
    fn spr_8470_snc_toggle_changes_domains() {
        let on = sapphire_rapids_8470(true);
        let off = sapphire_rapids_8470(false);
        assert_eq!(on.topology.domains.len(), 4);
        assert_eq!(off.topology.domains.len(), 2);
        assert_eq!(on.total_cores(), off.total_cores());
    }

    #[test]
    fn spr_8480_single_domain_per_socket() {
        let m = sapphire_rapids_8480();
        assert_eq!(m.topology.domains.len(), 2);
        assert_eq!(m.topology.cores_per_domain(), 56);
    }

    #[test]
    fn spr_speci2m_kicks_in_late() {
        // The paper observes SpecI2M showing benefit only after ~18 cores on
        // the SPR 8480+ socket, while on ICX it helps from ~3 cores on.
        let icx = icelake_sp_8360y();
        let spr = sapphire_rapids_8480();
        let icx_ramp_4 = icx.speci2m.activation_ramp(icx.domain_utilization(4));
        let spr_ramp_12 = spr.speci2m.activation_ramp(spr.domain_utilization(12));
        let spr_ramp_22 = spr.speci2m.activation_ramp(spr.domain_utilization(22));
        assert!(icx_ramp_4 > 0.0, "ICX should already ramp at 4 cores");
        assert!(spr_ramp_12 == 0.0, "SPR should not ramp at 12 cores");
        assert!(spr_ramp_22 > 0.0, "SPR should ramp at 22 cores");
    }

    #[test]
    fn registry_lookup_roundtrips_canonical_names() {
        for p in MachinePreset::all() {
            assert_eq!(preset_by_name(p.name()), Some(p));
            // The registry name is the id the machine prints in CSV output.
            assert_eq!(p.machine().id, p.name());
        }
    }

    #[test]
    fn registry_accepts_shorthands_and_rejects_unknowns() {
        assert_eq!(preset_by_name("icx"), Some(MachinePreset::IceLakeSp8360y));
        assert_eq!(
            preset_by_name("spr-8470-snc"),
            Some(MachinePreset::SapphireRapids8470 { snc: true })
        );
        assert_eq!(
            preset_by_name("spr-8480"),
            Some(MachinePreset::SapphireRapids8480)
        );
        assert_eq!(preset_by_name("cva6"), Some(MachinePreset::Cva6Like));
        assert_eq!(preset_by_name("epyc-9654"), None);
        assert_eq!(preset_by_name(""), None);
        assert_eq!(preset_names().len(), 5);
    }

    #[test]
    fn cva6_preset_exercises_the_policy_fields() {
        let m = cva6_like();
        assert_eq!(m.total_cores(), 4);
        assert_eq!(m.caches.write_policy, WritePolicyKind::NoAllocate);
        assert_eq!(m.caches.l1.replacement, ReplacementPolicyKind::Random);
        assert_eq!(m.caches.l3.replacement, ReplacementPolicyKind::Plru);
        assert!(!m.speci2m.enabled, "CVA6 has no write-allocate to evade");
        // The Xeon presets keep the paper's default policy corner.
        let icx = icelake_sp_8360y();
        assert_eq!(icx.caches.write_policy, WritePolicyKind::Allocate);
        assert_eq!(icx.caches.l1.replacement, ReplacementPolicyKind::Lru);
    }

    #[test]
    fn preset_ids_unique() {
        let ids: Vec<String> = MachinePreset::all()
            .iter()
            .map(|p| p.machine().id)
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
