//! Machine descriptions for the write-allocate-evasion study.
//!
//! The paper evaluates three Intel Xeon server platforms:
//!
//! * **Ice Lake SP** (ICX): 2 × Xeon Platinum 8360Y, 36 cores/socket,
//!   Sub-NUMA Clustering (SNC) on → 4 ccNUMA domains of 18 cores,
//!   DDR4-3200, fixed 2.4 GHz.
//! * **Sapphire Rapids** (SPR) 8470: 2 × 52 cores, DDR5-4800, SNC
//!   configurable, fixed 2.0 GHz.
//! * **Sapphire Rapids** (SPR) 8480+: 2 × 56 cores, DDR5-4800, SNC off,
//!   fixed 2.0 GHz.
//!
//! This crate provides structural descriptions of those machines (cache
//! hierarchy, ccNUMA topology, bandwidth saturation behaviour) together with
//! the phenomenological parameter sets of the *SpecI2M* write-allocate
//! evasion feature that the cache simulator (`clover-cachesim`) and the
//! analytic models (`clover-core`) consume.
//!
//! Nothing in this crate performs measurements; it is pure data plus a few
//! closed-form curves (bandwidth saturation, SpecI2M efficiency response).

pub mod bandwidth;
pub mod cache;
pub mod policy;
pub mod presets;
pub mod speci2m;
pub mod topology;

pub use bandwidth::{BandwidthModel, SaturationCurve};
pub use cache::{CacheLevel, CacheSpec, MemoryHierarchySpec, CACHE_LINE_BYTES};
pub use policy::{replacement_names, write_policy_names, ReplacementPolicyKind, WritePolicyKind};
pub use presets::{
    cva6_like, icelake_sp_8360y, preset_by_name, preset_names, sapphire_rapids_8470,
    sapphire_rapids_8480, MachinePreset,
};
pub use speci2m::{SpecI2MParams, StreamCountResponse};
pub use topology::{CcNumaDomain, CoreId, DomainId, Pinning, SocketId, Topology};

/// A complete description of a test machine.
///
/// A [`Machine`] bundles the structural topology, the cache hierarchy, the
/// memory-bandwidth model and the SpecI2M parameter set of one of the
/// evaluated platforms.  All models and simulators in the workspace are
/// parameterised over a `Machine`, so adding a new platform only requires a
/// new preset in [`presets`].
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable name, e.g. `"Intel Xeon Platinum 8360Y (Ice Lake SP)"`.
    pub name: String,
    /// Short identifier used in CSV output, e.g. `"icx-8360y"`.
    pub id: String,
    /// Socket / ccNUMA / core layout.
    pub topology: Topology,
    /// Per-core cache hierarchy and shared last-level cache.
    pub caches: MemoryHierarchySpec,
    /// Main-memory bandwidth model (per ccNUMA domain saturation curve).
    pub bandwidth: BandwidthModel,
    /// Write-allocate-evasion (SpecI2M) behaviour of this chip.
    pub speci2m: SpecI2MParams,
    /// Fixed core clock in Hz (the paper pins the clock).
    pub clock_hz: f64,
    /// Peak double-precision flops per core per cycle (AVX-512 FMA: 16).
    pub dp_flops_per_cycle: f64,
}

impl Machine {
    /// Total number of cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.topology.total_cores()
    }

    /// Peak double-precision floating-point performance of a single core in
    /// flop/s.
    pub fn core_peak_flops(&self) -> f64 {
        self.clock_hz * self.dp_flops_per_cycle
    }

    /// Saturated (attainable) memory bandwidth of a single ccNUMA domain in
    /// byte/s.
    pub fn domain_bandwidth(&self) -> f64 {
        self.bandwidth.domain_saturated_bw
    }

    /// Attainable memory bandwidth of the full node in byte/s, assuming all
    /// ccNUMA domains are used.
    pub fn node_bandwidth(&self) -> f64 {
        self.bandwidth.domain_saturated_bw * self.topology.domains.len() as f64
    }

    /// Aggregate attainable bandwidth for `n` cores under compact pinning.
    ///
    /// Compact pinning fills each ccNUMA domain before moving to the next
    /// (the pinning used throughout the paper).  The returned value is the
    /// sum of the per-domain saturation curves.
    pub fn bandwidth_for_cores(&self, n: usize) -> f64 {
        let per_domain = self.topology.cores_per_domain();
        let mut remaining = n;
        let mut bw = 0.0;
        for _ in &self.topology.domains {
            if remaining == 0 {
                break;
            }
            let used = remaining.min(per_domain);
            bw += self
                .bandwidth
                .curve
                .bandwidth(used, self.bandwidth.domain_saturated_bw);
            remaining -= used;
        }
        bw
    }

    /// Memory-bandwidth utilisation (0..=1) of the ccNUMA domain that holds
    /// `cores_in_domain` active, memory-bound cores.
    pub fn domain_utilization(&self, cores_in_domain: usize) -> f64 {
        self.bandwidth
            .curve
            .utilization(cores_in_domain)
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icx_core_count() {
        let m = icelake_sp_8360y();
        assert_eq!(m.total_cores(), 72);
        assert_eq!(m.topology.domains.len(), 4);
        assert_eq!(m.topology.cores_per_domain(), 18);
    }

    #[test]
    fn spr_core_counts() {
        assert_eq!(sapphire_rapids_8470(true).total_cores(), 104);
        assert_eq!(sapphire_rapids_8480().total_cores(), 112);
    }

    #[test]
    fn node_bandwidth_is_domains_times_domain_bw() {
        let m = icelake_sp_8360y();
        assert!((m.node_bandwidth() - 4.0 * m.domain_bandwidth()).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_monotone_in_cores() {
        let m = icelake_sp_8360y();
        let mut prev = 0.0;
        for n in 1..=m.total_cores() {
            let bw = m.bandwidth_for_cores(n);
            assert!(bw >= prev - 1e-9, "bandwidth must be non-decreasing");
            prev = bw;
        }
    }

    #[test]
    fn full_node_bandwidth_close_to_sum_of_domains() {
        let m = icelake_sp_8360y();
        let full = m.bandwidth_for_cores(m.total_cores());
        assert!(full <= m.node_bandwidth() + 1e-6);
        assert!(full >= 0.95 * m.node_bandwidth());
    }

    #[test]
    fn core_peak_flops_icx() {
        let m = icelake_sp_8360y();
        // 2.4 GHz * 16 DP flops/cycle (2x AVX-512 FMA) = 38.4 Gflop/s
        assert!((m.core_peak_flops() - 38.4e9).abs() < 1e6);
    }
}
