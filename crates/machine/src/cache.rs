//! Cache hierarchy specifications.
//!
//! The cache specs only describe *capacity, organisation and policy
//! selectors*; the actual simulation of hits/misses/write-allocates lives
//! in `clover-cachesim`.

use crate::policy::{ReplacementPolicyKind, WritePolicyKind};

/// Cache line size in bytes on every evaluated platform.
pub const CACHE_LINE_BYTES: usize = 64;

/// Identifies a level in the cache hierarchy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum CacheLevel {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared last-level cache (per socket on ICX/SPR).
    L3,
}

impl CacheLevel {
    /// All levels, nearest to the core first.
    pub const ALL: [CacheLevel; 3] = [CacheLevel::L1, CacheLevel::L2, CacheLevel::L3];
}

impl std::fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLevel::L1 => write!(f, "L1"),
            CacheLevel::L2 => write!(f, "L2"),
            CacheLevel::L3 => write!(f, "L3"),
        }
    }
}

/// Organisation of a single cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheSpec {
    /// Which level this spec describes.
    pub level: CacheLevel,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes (64 on all evaluated machines).
    pub line_bytes: usize,
    /// Whether the cache is shared between cores (`true` for L3).
    pub shared: bool,
    /// Replacement policy of this level (LRU on every paper machine).
    pub replacement: ReplacementPolicyKind,
}

impl CacheSpec {
    /// Construct a new spec, validating that the geometry is consistent.
    ///
    /// # Panics
    /// Panics if the capacity is not divisible into an integral number of
    /// sets of `associativity` lines.
    pub fn new(
        level: CacheLevel,
        capacity_bytes: usize,
        associativity: usize,
        line_bytes: usize,
        shared: bool,
    ) -> Self {
        assert!(capacity_bytes > 0 && associativity > 0 && line_bytes > 0);
        assert_eq!(
            capacity_bytes % (associativity * line_bytes),
            0,
            "cache capacity must be an integral number of sets"
        );
        Self {
            level,
            capacity_bytes,
            associativity,
            line_bytes,
            shared,
            replacement: ReplacementPolicyKind::default(),
        }
    }

    /// Same spec with a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicyKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.associativity * self.line_bytes)
    }

    /// Number of cache lines that fit in this cache.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

/// The full cache hierarchy of one machine.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemoryHierarchySpec {
    /// Private L1 data cache (per core).
    pub l1: CacheSpec,
    /// Private L2 cache (per core).
    pub l2: CacheSpec,
    /// Shared L3 cache (per socket).
    pub l3: CacheSpec,
    /// Number of cores sharing the L3.
    pub l3_sharers: usize,
    /// What a store miss does (write-allocate on every paper machine).
    pub write_policy: WritePolicyKind,
}

impl MemoryHierarchySpec {
    /// Same hierarchy with a different store-miss policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicyKind) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Look up a level's spec.
    pub fn level(&self, level: CacheLevel) -> &CacheSpec {
        match level {
            CacheLevel::L1 => &self.l1,
            CacheLevel::L2 => &self.l2,
            CacheLevel::L3 => &self.l3,
        }
    }

    /// Aggregate private + shared cache capacity available to one core when
    /// all `l3_sharers` cores are active, in bytes.
    ///
    /// The paper uses this quantity (≈ 2.75 MiB on ICX) to argue that the
    /// layer condition of the CloverLeaf loops cannot be broken by the
    /// one-dimensional decomposition.
    pub fn per_core_capacity(&self) -> usize {
        self.l2.capacity_bytes + self.l3.capacity_bytes / self.l3_sharers.max(1)
    }

    /// Effective cache capacity available for layer-condition reuse.
    ///
    /// Following the paper's rule of thumb, only half the available cache is
    /// assumed to be usable for holding stencil rows (the rest is shared
    /// with other arrays and incoming streams).
    pub fn layer_condition_capacity(&self) -> usize {
        self.per_core_capacity() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::icelake_sp_8360y;

    #[test]
    fn icx_cache_geometry() {
        let m = icelake_sp_8360y();
        assert_eq!(m.caches.l1.capacity_bytes, 48 * 1024);
        assert_eq!(m.caches.l2.capacity_bytes, 1280 * 1024);
        assert_eq!(m.caches.l3.capacity_bytes, 54 * 1024 * 1024);
        assert_eq!(m.caches.l1.line_bytes, CACHE_LINE_BYTES);
    }

    #[test]
    fn sets_and_lines_consistent() {
        let spec = CacheSpec::new(CacheLevel::L1, 48 * 1024, 12, 64, false);
        assert_eq!(spec.lines(), 768);
        assert_eq!(spec.sets(), 64);
        assert_eq!(spec.sets() * spec.associativity, spec.lines());
    }

    #[test]
    #[should_panic(expected = "integral number of sets")]
    fn invalid_geometry_panics() {
        let _ = CacheSpec::new(CacheLevel::L1, 48 * 1024 + 1, 12, 64, false);
    }

    #[test]
    fn per_core_capacity_icx_is_about_2_75_mib() {
        let m = icelake_sp_8360y();
        let per_core = m.caches.per_core_capacity() as f64 / (1024.0 * 1024.0);
        assert!((per_core - 2.78).abs() < 0.1, "got {per_core} MiB");
    }

    #[test]
    fn level_lookup_roundtrip() {
        let m = icelake_sp_8360y();
        for lvl in CacheLevel::ALL {
            assert_eq!(m.caches.level(lvl).level, lvl);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CacheLevel::L1.to_string(), "L1");
        assert_eq!(CacheLevel::L3.to_string(), "L3");
    }

    #[test]
    fn policy_fields_default_to_the_papers_configuration() {
        let m = icelake_sp_8360y();
        for lvl in CacheLevel::ALL {
            assert_eq!(m.caches.level(lvl).replacement, ReplacementPolicyKind::Lru);
        }
        assert_eq!(m.caches.write_policy, WritePolicyKind::Allocate);
        let spec = CacheSpec::new(CacheLevel::L1, 32 * 1024, 8, 64, false)
            .with_replacement(ReplacementPolicyKind::Random);
        assert_eq!(spec.replacement, ReplacementPolicyKind::Random);
    }
}
