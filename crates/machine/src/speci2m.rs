//! Phenomenological parameter set of the SpecI2M write-allocate evasion
//! feature.
//!
//! Intel does not disclose the heuristics that govern SpecI2M; the paper
//! characterises the feature through microbenchmarks (store ratio vs. core
//! count and stream count, copy read/write ratio vs. inner-loop length and
//! halo size).  This module captures that characterisation as a parameter
//! set plus a closed-form efficiency function.  The cache simulator
//! (`clover-cachesim`) applies the efficiency per store stream; the analytic
//! models (`clover-core`) use the same function directly.
//!
//! The observed behaviour encoded here:
//!
//! * SpecI2M is **dynamic-adaptive**: it only engages when the memory
//!   bandwidth utilisation of the ccNUMA domain is high (Sec. V-A).
//! * Its effectiveness **degrades with the number of concurrent store
//!   streams** on Ice Lake SP (Fig. 5) but not on Sapphire Rapids (Fig. 10).
//! * It **fails on short inner loops**: store streaks of only a few cache
//!   lines (prime-rank decompositions → 216-element rows) evade far fewer
//!   write-allocates than long streaks (Fig. 8).
//! * Partial cache lines at row boundaries are never evaded and additionally
//!   trigger **speculative reads** that inflate the read volume — the
//!   "prime number effect" (Sec. V-C).
//! * Efficiency drops again when additional ccNUMA domains are populated
//!   (full node worse than full socket, Fig. 5).

/// How SpecI2M efficiency responds to the number of concurrent store
/// streams of one core.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StreamCountResponse {
    /// Multiplicative efficiency factor for 1, 2, 3, ... store streams.
    /// Streams beyond the table use the last entry.
    pub factors: Vec<f64>,
}

impl StreamCountResponse {
    /// Constant response (no stream-count dependence).
    pub fn flat() -> Self {
        Self { factors: vec![1.0] }
    }

    /// Factor for a given stream count (1-based; 0 is treated as 1).
    pub fn factor(&self, streams: usize) -> f64 {
        if self.factors.is_empty() {
            return 1.0;
        }
        let idx = streams.max(1).min(self.factors.len()) - 1;
        self.factors[idx]
    }
}

/// Everything the simulator/model needs to know about SpecI2M on one chip.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpecI2MParams {
    /// Whether the feature exists/is enabled (it can be switched off via an
    /// NDA'd MSR bit; the paper uses that switch to isolate the effect).
    pub enabled: bool,
    /// Domain bandwidth utilisation below which SpecI2M stays inactive.
    pub activation_utilization: f64,
    /// Domain bandwidth utilisation above which SpecI2M reaches its full
    /// efficiency.
    pub full_effect_utilization: f64,
    /// Maximum fraction of write-allocates evaded for an ideal workload
    /// (single long store stream, one ccNUMA domain populated).
    pub max_evasion: f64,
    /// Efficiency penalty when every ccNUMA domain of the node is populated
    /// (the full-node store ratio is worse than the full-socket one).
    /// 0 = no penalty, 0.2 = 20 % efficiency loss at full node.
    pub node_population_penalty: f64,
    /// Stream-count response (Ice Lake degrades, Sapphire Rapids does not).
    pub stream_response: StreamCountResponse,
    /// Characteristic store-streak length (in cache lines) of the
    /// exponential streak response `1 - exp(-lines/scale)`.
    pub streak_scale_lines: f64,
    /// Fraction of *failed* SpecI2M attempts (eligible full-line stores that
    /// were not evaded while the feature is active) that additionally incur
    /// a speculative read of the line into L3 — the mechanism behind the
    /// extra read volume of the prime-number effect.
    pub speculative_read_penalty: f64,
    /// Fraction of NT (non-temporal) stores whose write-combine buffer is
    /// flushed partially under full-node load, causing a read despite the NT
    /// hint (the NT store ratio rises from 1.0 to ~1.16 on ICX).
    pub nt_partial_flush_max: f64,
}

/// Workload/occupancy context for one store stream, used to evaluate the
/// SpecI2M efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionContext {
    /// Bandwidth utilisation (0..=1) of the ccNUMA domain the stream's
    /// target memory lives in.
    pub domain_utilization: f64,
    /// Number of ccNUMA domains populated with at least one active core.
    pub active_domains: usize,
    /// Total number of ccNUMA domains in the node.
    pub total_domains: usize,
    /// Concurrent store streams issued by the core.
    pub store_streams: usize,
    /// Length of the consecutive full-line store streak in cache lines
    /// (e.g. an inner loop of 216 doubles → 27 lines).
    pub streak_lines: f64,
}

impl SpecI2MParams {
    /// Parameter set representing a chip without any automatic
    /// write-allocate evasion (or with the feature switched off).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            activation_utilization: 1.0,
            full_effect_utilization: 1.0,
            max_evasion: 0.0,
            node_population_penalty: 0.0,
            stream_response: StreamCountResponse::flat(),
            streak_scale_lines: 1.0,
            speculative_read_penalty: 0.0,
            nt_partial_flush_max: 0.0,
        }
    }

    /// Return a copy with the feature switched off (models clearing the MSR
    /// bit, as done in Sec. V-A of the paper).
    pub fn switched_off(&self) -> Self {
        let mut p = self.clone();
        p.enabled = false;
        p
    }

    /// Ramp factor (0..=1) describing how far SpecI2M has "kicked in" at a
    /// given domain bandwidth utilisation.
    pub fn activation_ramp(&self, utilization: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let u = utilization.clamp(0.0, 1.0);
        if u <= self.activation_utilization {
            0.0
        } else if u >= self.full_effect_utilization {
            1.0
        } else {
            (u - self.activation_utilization)
                / (self.full_effect_utilization - self.activation_utilization)
        }
    }

    /// Streak-length response (0..=1): long consecutive full-line store
    /// streaks are detected reliably, short ones are not.
    pub fn streak_response(&self, streak_lines: f64) -> f64 {
        if streak_lines <= 0.0 {
            return 0.0;
        }
        1.0 - (-streak_lines / self.streak_scale_lines).exp()
    }

    /// Penalty factor (0..=1 multiplier) from populating several ccNUMA
    /// domains.
    pub fn node_population_factor(&self, active_domains: usize, total_domains: usize) -> f64 {
        if total_domains <= 1 || active_domains <= 1 {
            return 1.0;
        }
        let frac = (active_domains.min(total_domains) - 1) as f64 / (total_domains - 1) as f64;
        1.0 - self.node_population_penalty * frac
    }

    /// Fraction of write-allocates evaded for full-line stores in the given
    /// context (0..=1).
    ///
    /// This is the central phenomenological function: the product of the
    /// activation ramp, the stream-count response, the streak-length
    /// response, the node-population penalty and the machine's maximum
    /// evasion efficiency.
    pub fn evasion_fraction(&self, ctx: &EvasionContext) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let ramp = self.activation_ramp(ctx.domain_utilization);
        if ramp <= 0.0 {
            // Below the activation utilisation the product is exactly zero;
            // skip the per-line exp() of the streak response (the store
            // path of every serial measurement lands here).
            return 0.0;
        }
        let streams = self.stream_response.factor(ctx.store_streams);
        let streak = self.streak_response(ctx.streak_lines);
        let node = self.node_population_factor(ctx.active_domains, ctx.total_domains);
        (self.max_evasion * ramp * streams * streak * node).clamp(0.0, 1.0)
    }

    /// Fraction of eligible (full-line) stores that trigger a *speculative
    /// read* although they were not evaded.  Relevant for short streaks:
    /// SpecI2M starts speculating, fails, and the line is fetched anyway —
    /// sometimes more than once (adjacent-line prefetch), which is the
    /// origin of the up-to-24 % read inflation at prime rank counts.
    pub fn speculative_read_fraction(&self, ctx: &EvasionContext) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let ramp = self.activation_ramp(ctx.domain_utilization);
        if ramp <= 0.0 {
            return 0.0;
        }
        // Failed attempts are those suppressed by the streak response.
        let failed = 1.0 - self.streak_response(ctx.streak_lines);
        (self.speculative_read_penalty * ramp * failed).clamp(0.0, 1.0)
    }

    /// Fraction of non-temporal stores that nevertheless cause a read
    /// (partial write-combine-buffer flush) at the given utilisation.
    pub fn nt_partial_flush_fraction(
        &self,
        domain_utilization: f64,
        active_domains: usize,
        total_domains: usize,
    ) -> f64 {
        let u = domain_utilization.clamp(0.0, 1.0);
        let pop = if total_domains <= 1 {
            1.0
        } else {
            0.5 + 0.5 * active_domains.min(total_domains) as f64 / total_domains as f64
        };
        (self.nt_partial_flush_max * u * pop).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{icelake_sp_8360y, sapphire_rapids_8480};

    fn ctx(util: f64, domains: usize, streams: usize, streak: f64) -> EvasionContext {
        EvasionContext {
            domain_utilization: util,
            active_domains: domains,
            total_domains: 4,
            store_streams: streams,
            streak_lines: streak,
        }
    }

    #[test]
    fn disabled_never_evades() {
        let p = SpecI2MParams::disabled();
        assert_eq!(p.evasion_fraction(&ctx(1.0, 1, 1, 1000.0)), 0.0);
        assert_eq!(p.speculative_read_fraction(&ctx(1.0, 1, 1, 1.0)), 0.0);
    }

    #[test]
    fn switched_off_copy_keeps_other_params() {
        let p = icelake_sp_8360y().speci2m;
        let off = p.switched_off();
        assert!(!off.enabled);
        assert_eq!(off.max_evasion, p.max_evasion);
        assert_eq!(off.evasion_fraction(&ctx(1.0, 1, 1, 1000.0)), 0.0);
    }

    #[test]
    fn icx_serial_code_sees_no_evasion() {
        let p = icelake_sp_8360y();
        let u = p.domain_utilization(1);
        let f = p.speci2m.evasion_fraction(&ctx(u, 1, 1, 1000.0));
        assert!(f < 0.05, "serial evasion should be negligible, got {f}");
    }

    #[test]
    fn icx_saturated_domain_evasion_is_high() {
        let p = icelake_sp_8360y();
        let f = p.speci2m.evasion_fraction(&ctx(1.0, 1, 1, 2000.0));
        assert!(
            f > 0.9,
            "saturated single-domain evasion should exceed 90 %, got {f}"
        );
    }

    #[test]
    fn full_node_is_worse_than_full_socket_on_icx() {
        let p = icelake_sp_8360y().speci2m;
        let socket = p.evasion_fraction(&ctx(1.0, 2, 1, 2000.0));
        let node = p.evasion_fraction(&ctx(1.0, 4, 1, 2000.0));
        assert!(node < socket);
        // Full-node store ratio should land in the paper's 1.2–1.25 band.
        let ratio = 2.0 - node;
        assert!((1.15..=1.3).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn more_streams_hurt_on_icx_but_not_spr() {
        let icx = icelake_sp_8360y().speci2m;
        let spr = sapphire_rapids_8480().speci2m;
        let c1 = ctx(1.0, 1, 1, 2000.0);
        let c3 = ctx(1.0, 1, 3, 2000.0);
        assert!(icx.evasion_fraction(&c3) < icx.evasion_fraction(&c1));
        assert!((spr.evasion_fraction(&c3) - spr.evasion_fraction(&c1)).abs() < 1e-12);
    }

    #[test]
    fn short_streaks_evade_less() {
        let p = icelake_sp_8360y().speci2m;
        let short = p.evasion_fraction(&ctx(1.0, 4, 1, 27.0)); // 216 doubles
        let long = p.evasion_fraction(&ctx(1.0, 4, 1, 240.0)); // 1920 doubles
        assert!(short < long);
        assert!(
            long - short > 0.15,
            "short loops must lose noticeably: {short} vs {long}"
        );
    }

    #[test]
    fn speculative_reads_only_for_short_streaks_under_load() {
        let p = icelake_sp_8360y().speci2m;
        assert_eq!(p.speculative_read_fraction(&ctx(0.0, 1, 1, 10.0)), 0.0);
        let short = p.speculative_read_fraction(&ctx(1.0, 4, 1, 27.0));
        let long = p.speculative_read_fraction(&ctx(1.0, 4, 1, 2000.0));
        assert!(short > long);
        assert!(short > 0.05);
    }

    #[test]
    fn spr_evades_less_than_icx() {
        let icx = icelake_sp_8360y().speci2m;
        let spr = sapphire_rapids_8480().speci2m;
        let c = ctx(1.0, 1, 1, 2000.0);
        assert!(spr.evasion_fraction(&c) < icx.evasion_fraction(&c));
        // SPR evades roughly half of the write-allocates at best.
        let ratio = 2.0 - spr.evasion_fraction(&c);
        assert!((1.4..=1.6).contains(&ratio), "SPR best ratio = {ratio}");
    }

    #[test]
    fn stream_response_clamps_index() {
        let r = StreamCountResponse {
            factors: vec![1.0, 0.9, 0.8],
        };
        assert_eq!(r.factor(0), 1.0);
        assert_eq!(r.factor(1), 1.0);
        assert_eq!(r.factor(3), 0.8);
        assert_eq!(r.factor(10), 0.8);
        assert_eq!(StreamCountResponse::flat().factor(7), 1.0);
    }

    #[test]
    fn activation_ramp_edges() {
        let p = icelake_sp_8360y().speci2m;
        assert_eq!(p.activation_ramp(0.0), 0.0);
        assert_eq!(p.activation_ramp(1.0), 1.0);
        let mid = p.activation_ramp((p.activation_utilization + p.full_effect_utilization) / 2.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn nt_partial_flush_band_on_icx() {
        let p = icelake_sp_8360y().speci2m;
        let at_node = p.nt_partial_flush_fraction(1.0, 4, 4);
        assert!(
            (0.12..=0.20).contains(&at_node),
            "NT flush fraction = {at_node}"
        );
        assert!(p.nt_partial_flush_fraction(0.05, 1, 4) < 0.02);
    }
}
