//! Cache policy selectors.
//!
//! The paper's machines all use (approximately) true-LRU replacement with
//! write-back + write-allocate caches, and the write-allocate-evasion story
//! is about one hardware mechanism (SpecI2M) punching a hole into that
//! write-allocate default.  Related designs sit elsewhere in the policy
//! space — the CVA6 d-cache is write-back + *no-write-allocate*, embedded
//! cores often ship pseudo-random replacement — so the machine model names
//! the policy corners here and the cache simulator (`clover-cachesim`)
//! monomorphises an implementation per corner.
//!
//! These enums are *selectors*: pure data with a stable name registry for
//! the command line, serialisation and memo keys.  The behaviour lives in
//! `clover_cachesim::policy`.

/// Which replacement policy a cache (or the whole simulated hierarchy)
/// uses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum ReplacementPolicyKind {
    /// True least-recently-used (the paper's baseline assumption).
    #[default]
    Lru,
    /// Tree pseudo-LRU (one decision bit per internal node).
    Plru,
    /// Static re-reference interval prediction (2-bit SRRIP).
    Srrip,
    /// Deterministic "random" eviction from a fixed xorshift seed.
    Random,
}

impl ReplacementPolicyKind {
    /// Every replacement policy, in canonical order.
    pub fn all() -> Vec<ReplacementPolicyKind> {
        vec![
            ReplacementPolicyKind::Lru,
            ReplacementPolicyKind::Plru,
            ReplacementPolicyKind::Srrip,
            ReplacementPolicyKind::Random,
        ]
    }

    /// Stable name used in ids, memo keys and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicyKind::Lru => "lru",
            ReplacementPolicyKind::Plru => "plru",
            ReplacementPolicyKind::Srrip => "srrip",
            ReplacementPolicyKind::Random => "random",
        }
    }

    /// Parse a policy name (the inverse of [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<ReplacementPolicyKind> {
        ReplacementPolicyKind::all()
            .into_iter()
            .find(|k| k.name() == s)
    }

    /// How efficiently the policy retains stencil rows for layer-condition
    /// reuse, relative to true LRU (1.0).  The analytic traffic model blends
    /// the layer-condition-fulfilled and -broken read volumes with this
    /// factor; the default is exactly 1.0 so the paper's numbers are
    /// untouched.
    pub fn reuse_efficiency(&self) -> f64 {
        match self {
            ReplacementPolicyKind::Lru => 1.0,
            ReplacementPolicyKind::Plru => 0.98,
            ReplacementPolicyKind::Srrip => 0.95,
            ReplacementPolicyKind::Random => 0.85,
        }
    }
}

impl std::fmt::Display for ReplacementPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a cache does with a store that misses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum WritePolicyKind {
    /// Write-allocate with the machine's SpecI2M evasion parameters — the
    /// paper's default behaviour on every evaluated Xeon.
    #[default]
    Allocate,
    /// Write-back + no-write-allocate (CVA6-style): store misses are
    /// written through to memory without fetching the line.
    NoAllocate,
    /// Every evadable store stream is handled as a non-temporal store
    /// (models software NT stores independent of SpecI2M).
    NonTemporal,
}

impl WritePolicyKind {
    /// Every write policy, in canonical order.
    pub fn all() -> Vec<WritePolicyKind> {
        vec![
            WritePolicyKind::Allocate,
            WritePolicyKind::NoAllocate,
            WritePolicyKind::NonTemporal,
        ]
    }

    /// Stable name used in ids, memo keys and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            WritePolicyKind::Allocate => "allocate",
            WritePolicyKind::NoAllocate => "no-allocate",
            WritePolicyKind::NonTemporal => "non-temporal",
        }
    }

    /// Parse a policy name (the inverse of [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<WritePolicyKind> {
        WritePolicyKind::all().into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for WritePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Names of every replacement policy, for usage/error messages.
pub fn replacement_names() -> Vec<&'static str> {
    ReplacementPolicyKind::all()
        .iter()
        .map(|k| k.name())
        .collect()
}

/// Names of every write policy, for usage/error messages.
pub fn write_policy_names() -> Vec<&'static str> {
    WritePolicyKind::all().iter().map(|k| k.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in ReplacementPolicyKind::all() {
            assert_eq!(ReplacementPolicyKind::parse(k.name()), Some(k));
        }
        for k in WritePolicyKind::all() {
            assert_eq!(WritePolicyKind::parse(k.name()), Some(k));
        }
        assert_eq!(ReplacementPolicyKind::parse("fifo"), None);
        assert_eq!(WritePolicyKind::parse("write-through"), None);
    }

    #[test]
    fn defaults_are_the_papers_configuration() {
        assert_eq!(ReplacementPolicyKind::default(), ReplacementPolicyKind::Lru);
        assert_eq!(WritePolicyKind::default(), WritePolicyKind::Allocate);
        assert_eq!(ReplacementPolicyKind::default().reuse_efficiency(), 1.0);
    }

    #[test]
    fn reuse_efficiency_orders_policies() {
        let effs: Vec<f64> = ReplacementPolicyKind::all()
            .iter()
            .map(|k| k.reuse_efficiency())
            .collect();
        for pair in effs.windows(2) {
            assert!(pair[1] < pair[0], "weaker policies must retain less");
        }
        for e in effs {
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ReplacementPolicyKind::Plru.to_string(), "plru");
        assert_eq!(WritePolicyKind::NoAllocate.to_string(), "no-allocate");
    }
}
