//! The catalogue of the 22 CloverLeaf hotspot loops (Table I).
//!
//! Each descriptor reproduces the model inputs of Table I: number of arrays,
//! elements read with the layer condition fulfilled/broken, elements
//! written, update elements (read & written) and flops per iteration.  The
//! am04 descriptor follows the source shown in Listing 3 of the paper; the
//! remaining descriptors are reconstructed from the CloverLeaf kernels so
//! that their derived model inputs match Table I exactly (verified by the
//! tests at the bottom of this module).

use crate::spec::{ArrayAccess, LoopSpec};

/// The three hotspot functions of CloverLeaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HotspotFunction {
    /// `advec_mom_kernel` — momentum advection (12 loops, am00–am11).
    AdvecMom,
    /// `advec_cell_kernel` — cell-centred advection (8 loops, ac00–ac07).
    AdvecCell,
    /// `pdv_kernel` — PdV work (2 loops, pdv00–pdv01).
    Pdv,
}

impl HotspotFunction {
    /// Function name as reported by the profiler.
    pub fn name(&self) -> &'static str {
        match self {
            HotspotFunction::AdvecMom => "advec_mom_kernel",
            HotspotFunction::AdvecCell => "advec_cell_kernel",
            HotspotFunction::Pdv => "pdv_kernel",
        }
    }

    /// Loop-label prefix used in the paper.
    pub fn prefix(&self) -> &'static str {
        match self {
            HotspotFunction::AdvecMom => "am",
            HotspotFunction::AdvecCell => "ac",
            HotspotFunction::Pdv => "pdv",
        }
    }
}

/// Centre-point offset.
const C: [(i32, i32); 1] = [(0, 0)];
/// Centre plus right neighbour in the inner dimension (single row).
const IX: [(i32, i32); 2] = [(0, 0), (1, 0)];
/// Centre plus upper neighbour in the outer dimension (two rows).
const KX: [(i32, i32); 2] = [(0, 0), (0, 1)];
/// Four-point pattern spanning two rows (Listing 3).
const QUAD: [(i32, i32); 4] = [(0, -1), (0, 0), (1, -1), (1, 0)];
/// Three-row pattern (centre, above, below); no catalogue loop uses it yet,
/// kept for the advec_mom variants a future catalogue extension adds.
#[allow(dead_code)]
const TRI_K: [(i32, i32); 3] = [(0, -1), (0, 0), (0, 1)];

fn spec(
    name: &str,
    function: HotspotFunction,
    arrays: Vec<ArrayAccess>,
    flops: u32,
    has_branches: bool,
    speci2m_blocked: bool,
) -> LoopSpec {
    LoopSpec {
        name: name.to_string(),
        function: function.name().to_string(),
        arrays,
        flops,
        has_branches,
        speci2m_blocked,
    }
}

/// Build the full catalogue of the 22 hotspot loops in paper order.
pub fn cloverleaf_loops() -> Vec<LoopSpec> {
    use HotspotFunction::*;
    let r = ArrayAccess::read;
    let w = ArrayAccess::write;
    let rw = ArrayAccess::read_write;

    vec![
        // ---- advec_mom: pre/post volumes, node fluxes and masses, momentum flux,
        //      velocity update; x-direction sweep first, then y-direction.
        spec(
            "am00",
            AdvecMom,
            vec![
                r("volume", &C),
                r("vol_flux_x", &IX),
                r("vol_flux_y", &KX),
                w("pre_vol"),
                w("post_vol"),
            ],
            4,
            false,
            false,
        ),
        spec(
            "am01",
            AdvecMom,
            vec![
                r("volume", &C),
                r("vol_flux_y", &KX),
                r("vol_flux_x", &IX),
                w("post_vol"),
                w("pre_vol"),
            ],
            4,
            false,
            false,
        ),
        spec(
            "am02",
            AdvecMom,
            vec![
                r("volume", &C),
                r("vol_flux_x", &[(0, 0), (1, 0), (0, -1)]),
                w("pre_vol"),
                w("post_vol"),
            ],
            2,
            false,
            false,
        ),
        spec(
            "am03",
            AdvecMom,
            vec![
                r("volume", &C),
                r("vol_flux_y", &C),
                w("pre_vol"),
                w("post_vol"),
            ],
            2,
            false,
            false,
        ),
        // Listing 3 of the paper.
        spec(
            "am04",
            AdvecMom,
            vec![r("mass_flux_x", &QUAD), w("node_flux")],
            4,
            false,
            false,
        ),
        spec(
            "am05",
            AdvecMom,
            vec![
                r("density1", &QUAD),
                r("post_vol", &KX),
                r("node_flux", &C),
                w("node_mass_post"),
                w("node_mass_pre"),
            ],
            10,
            false,
            false,
        ),
        spec(
            "am06",
            AdvecMom,
            vec![
                r("node_flux", &C),
                r("node_mass_pre", &IX),
                r("xvel1", &IX),
                w("mom_flux"),
            ],
            9,
            false,
            false,
        ),
        spec(
            "am07",
            AdvecMom,
            vec![
                r("node_mass_pre", &C),
                r("node_mass_post", &C),
                r("mom_flux", &IX),
                rw("xvel1"),
            ],
            4,
            false,
            false,
        ),
        spec(
            "am08",
            AdvecMom,
            vec![
                r("mass_flux_y", &[(-1, 0), (0, 0), (-1, 1), (0, 1)]),
                w("node_flux"),
            ],
            4,
            false,
            false,
        ),
        spec(
            "am09",
            AdvecMom,
            vec![
                r("density1", &QUAD),
                r("post_vol", &KX),
                r("node_flux", &KX),
                w("node_mass_post"),
                w("node_mass_pre"),
            ],
            10,
            false,
            false,
        ),
        spec(
            "am10",
            AdvecMom,
            vec![
                r("node_flux", &KX),
                r("node_mass_pre", &KX),
                r("yvel1", &C),
                w("mom_flux"),
            ],
            8,
            false,
            false,
        ),
        spec(
            "am11",
            AdvecMom,
            vec![
                r("node_mass_pre", &C),
                r("node_mass_post", &C),
                r("mom_flux", &KX),
                rw("yvel1"),
            ],
            4,
            false,
            false,
        ),
        // ---- advec_cell: volumes, energy and mass fluxes, cell updates.
        spec(
            "ac00",
            AdvecCell,
            vec![
                r("volume", &C),
                r("vol_flux_x", &IX),
                r("vol_flux_y", &KX),
                w("pre_vol"),
                w("post_vol"),
            ],
            6,
            false,
            false,
        ),
        spec(
            "ac01",
            AdvecCell,
            vec![
                r("volume", &C),
                r("vol_flux_y", &C),
                w("pre_vol"),
                w("post_vol"),
            ],
            2,
            false,
            true,
        ),
        spec(
            "ac02",
            AdvecCell,
            vec![
                r("vol_flux_x", &C),
                r("pre_vol", &C),
                r("density1", &C),
                r("energy1", &C),
                w("mass_flux_x"),
                w("ener_flux"),
            ],
            17,
            true,
            false,
        ),
        spec(
            "ac03",
            AdvecCell,
            vec![
                r("pre_vol", &C),
                r("mass_flux_x", &C),
                r("vol_flux_x", &C),
                r("ener_flux", &C),
                rw("density1"),
                rw("energy1"),
            ],
            10,
            false,
            false,
        ),
        spec(
            "ac04",
            AdvecCell,
            vec![
                r("volume", &C),
                r("vol_flux_y", &KX),
                r("vol_flux_x", &IX),
                w("pre_vol"),
                w("post_vol"),
            ],
            6,
            false,
            false,
        ),
        spec(
            "ac05",
            AdvecCell,
            vec![
                r("volume", &C),
                r("vol_flux_x", &[(0, 0), (0, 1)]),
                w("pre_vol"),
                w("post_vol"),
            ],
            2,
            false,
            true,
        ),
        spec(
            "ac06",
            AdvecCell,
            vec![
                r("vol_flux_y", &KX),
                r("pre_vol", &KX),
                r("density1", &KX),
                r("energy1", &KX),
                w("mass_flux_y"),
                w("ener_flux"),
            ],
            17,
            true,
            false,
        ),
        spec(
            "ac07",
            AdvecCell,
            vec![
                r("pre_vol", &C),
                r("mass_flux_y", &KX),
                r("vol_flux_y", &KX),
                r("ener_flux", &KX),
                rw("density1"),
                rw("energy1"),
            ],
            10,
            false,
            false,
        ),
        // ---- pdv: the two variants (predictor / corrector) of the PdV work.
        spec(
            "pdv00",
            Pdv,
            vec![
                r("xarea", &IX),
                r("yarea", &KX),
                r("volume", &C),
                r("density0", &C),
                r("pressure", &C),
                r("viscosity", &C),
                r("xvel0", &[(0, 0), (1, 0), (0, 1), (1, 1)]),
                r("yvel0", &KX),
                r("volume_change", &C),
                w("density1"),
                w("energy1"),
            ],
            49,
            false,
            false,
        ),
        spec(
            "pdv01",
            Pdv,
            vec![
                r("xarea", &IX),
                r("yarea", &KX),
                r("volume", &C),
                r("density0", &C),
                r("pressure", &C),
                r("viscosity", &C),
                r("xvel0", &[(0, 0), (1, 0), (0, 1), (1, 1)]),
                r("xvel1", &[(0, 0), (1, 0), (0, 1), (1, 1)]),
                r("yvel0", &KX),
                r("yvel1", &KX),
                r("energy0", &C),
                w("density1"),
                w("energy1"),
            ],
            45,
            false,
            false,
        ),
    ]
}

/// Look up a loop descriptor by its paper label.
pub fn loop_by_name(name: &str) -> Option<LoopSpec> {
    cloverleaf_loops().into_iter().find(|l| l.name == name)
}

/// Measured single-core code balance from Table I (`byte/it_meas,1`), used
/// as reference data when comparing model and simulator output against the
/// paper.
pub const PAPER_MEASURED_SINGLE_CORE: [(&str, f64); 22] = [
    ("am00", 56.32),
    ("am01", 56.28),
    ("am02", 48.25),
    ("am03", 48.15),
    ("am04", 24.05),
    ("am05", 56.97),
    ("am06", 40.22),
    ("am07", 40.08),
    ("am08", 24.06),
    ("am09", 56.56),
    ("am10", 41.49),
    ("am11", 40.08),
    ("ac00", 56.33),
    ("ac01", 48.25),
    ("ac02", 64.70),
    ("ac03", 64.45),
    ("ac04", 56.29),
    ("ac05", 48.33),
    ("ac06", 66.24),
    ("ac07", 64.85),
    ("pdv00", 104.73),
    ("pdv01", 120.77),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::CodeBalance;

    /// Expected Table I model inputs:
    /// (name, #arrays, RD_LCF, RD_LCB, WR, RD&WR, flops, min, lcf_wa, lcb, max)
    const TABLE_ONE: [(
        &str,
        usize,
        usize,
        usize,
        usize,
        usize,
        u32,
        f64,
        f64,
        f64,
        f64,
    ); 22] = [
        ("am00", 5, 3, 4, 2, 0, 4, 40.0, 56.0, 48.0, 64.0),
        ("am01", 5, 3, 4, 2, 0, 4, 40.0, 56.0, 48.0, 64.0),
        ("am02", 4, 2, 3, 2, 0, 2, 32.0, 48.0, 40.0, 56.0),
        ("am03", 4, 2, 2, 2, 0, 2, 32.0, 48.0, 32.0, 48.0),
        ("am04", 2, 1, 2, 1, 0, 4, 16.0, 24.0, 24.0, 32.0),
        ("am05", 5, 3, 5, 2, 0, 10, 40.0, 56.0, 56.0, 72.0),
        ("am06", 4, 3, 3, 1, 0, 9, 32.0, 40.0, 32.0, 40.0),
        ("am07", 4, 4, 4, 1, 1, 4, 40.0, 40.0, 40.0, 40.0),
        ("am08", 2, 1, 2, 1, 0, 4, 16.0, 24.0, 24.0, 32.0),
        ("am09", 5, 3, 6, 2, 0, 10, 40.0, 56.0, 64.0, 80.0),
        ("am10", 4, 3, 5, 1, 0, 8, 32.0, 40.0, 48.0, 56.0),
        ("am11", 4, 4, 5, 1, 1, 4, 40.0, 40.0, 48.0, 48.0),
        ("ac00", 5, 3, 4, 2, 0, 6, 40.0, 56.0, 48.0, 64.0),
        ("ac01", 4, 2, 2, 2, 0, 2, 32.0, 48.0, 32.0, 48.0),
        ("ac02", 6, 4, 4, 2, 0, 17, 48.0, 64.0, 48.0, 64.0),
        ("ac03", 6, 6, 6, 2, 2, 10, 64.0, 64.0, 64.0, 64.0),
        ("ac04", 5, 3, 4, 2, 0, 6, 40.0, 56.0, 48.0, 64.0),
        ("ac05", 4, 2, 3, 2, 0, 2, 32.0, 48.0, 40.0, 56.0),
        ("ac06", 6, 4, 8, 2, 0, 17, 48.0, 64.0, 80.0, 96.0),
        ("ac07", 6, 6, 9, 2, 2, 10, 64.0, 64.0, 88.0, 88.0),
        ("pdv00", 11, 9, 12, 2, 0, 49, 88.0, 104.0, 112.0, 128.0),
        ("pdv01", 13, 11, 16, 2, 0, 45, 104.0, 120.0, 144.0, 160.0),
    ];

    #[test]
    fn catalogue_has_all_22_loops_in_order() {
        let loops = cloverleaf_loops();
        assert_eq!(loops.len(), 22);
        let names: Vec<&str> = loops.iter().map(|l| l.name.as_str()).collect();
        let expected: Vec<&str> = TABLE_ONE.iter().map(|t| t.0).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn model_inputs_match_table_one() {
        for (name, arrays, lcf, lcb, wr, rdwr, flops, ..) in TABLE_ONE {
            let l = loop_by_name(name).unwrap_or_else(|| panic!("missing loop {name}"));
            assert_eq!(l.array_count(), arrays, "{name}: #arrays");
            assert_eq!(l.rd_lcf(), lcf, "{name}: RD_LCF");
            assert_eq!(l.rd_lcb(), lcb, "{name}: RD_LCB");
            assert_eq!(l.wr(), wr, "{name}: WR");
            assert_eq!(l.rd_and_wr(), rdwr, "{name}: RD&WR");
            assert_eq!(l.flops, flops, "{name}: flops");
        }
    }

    #[test]
    fn code_balance_bounds_match_table_one() {
        for (name, .., min, lcf_wa, lcb, max) in TABLE_ONE {
            let l = loop_by_name(name).unwrap();
            let b = CodeBalance::from_spec(&l);
            assert_eq!(b.min, min, "{name}: byte/it_min");
            assert_eq!(b.lcf_wa, lcf_wa, "{name}: byte/it_LCF,WA");
            assert_eq!(b.lcb, lcb, "{name}: byte/it_LCB");
            assert_eq!(b.max, max, "{name}: byte/it_max");
        }
    }

    #[test]
    fn paper_measured_single_core_lies_between_bounds() {
        // The paper observes that the single-core measurement matches the
        // LCF+WA case; in particular it must never exceed the max bound nor
        // undercut the min bound (allowing a small measurement tolerance).
        for (name, measured) in PAPER_MEASURED_SINGLE_CORE {
            let l = loop_by_name(name).unwrap();
            let b = CodeBalance::from_spec(&l);
            assert!(
                measured >= b.min - 1.0,
                "{name}: measured {measured} < min {}",
                b.min
            );
            assert!(
                measured <= b.max + 4.0,
                "{name}: measured {measured} > max {}",
                b.max
            );
            // And it should be close to the LCF+WA prediction (within 5 %).
            assert!(
                (measured - b.lcf_wa).abs() / b.lcf_wa < 0.05,
                "{name}: measured {measured} vs LCF,WA {}",
                b.lcf_wa
            );
        }
    }

    #[test]
    fn loop_lookup_misses_gracefully() {
        assert!(loop_by_name("am99").is_none());
    }

    #[test]
    fn speci2m_blocked_loops_are_the_ones_from_the_paper() {
        let blocked: Vec<String> = cloverleaf_loops()
            .into_iter()
            .filter(|l| l.speci2m_blocked)
            .map(|l| l.name)
            .collect();
        assert_eq!(blocked, vec!["ac01".to_string(), "ac05".to_string()]);
    }

    #[test]
    fn branchy_loops_include_ac02_and_ac06() {
        let branchy: Vec<String> = cloverleaf_loops()
            .into_iter()
            .filter(|l| l.has_branches)
            .map(|l| l.name)
            .collect();
        assert!(branchy.contains(&"ac02".to_string()));
        assert!(branchy.contains(&"ac06".to_string()));
    }

    #[test]
    fn hotspot_function_metadata() {
        assert_eq!(HotspotFunction::AdvecMom.prefix(), "am");
        assert_eq!(HotspotFunction::Pdv.name(), "pdv_kernel");
        let loops = cloverleaf_loops();
        assert_eq!(
            loops
                .iter()
                .filter(|l| l.function == "advec_mom_kernel")
                .count(),
            12
        );
        assert_eq!(
            loops
                .iter()
                .filter(|l| l.function == "advec_cell_kernel")
                .count(),
            8
        );
        assert_eq!(
            loops.iter().filter(|l| l.function == "pdv_kernel").count(),
            2
        );
    }
}
