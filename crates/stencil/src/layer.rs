//! Layer-condition analysis.
//!
//! Layer conditions adapt the reuse-distance concept to stencil loops: if
//! the cache can hold the number of grid rows spanned by the stencil, every
//! array element is loaded from memory only once per sweep; otherwise each
//! row of the stencil causes its own stream of memory loads (Sec. II-C,
//! Fig. 1 and Eq. (1)/(2) of the paper).

use crate::spec::LoopSpec;
use crate::ELEMENT_BYTES;

/// Result of evaluating the layer condition of one loop on one machine
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCondition {
    /// Rows that must be cached simultaneously (stencil row extent).
    pub rows_required: usize,
    /// Length of the inner dimension of the local domain (elements).
    pub inner_length: usize,
    /// Cache capacity available for row reuse (bytes).  Following the
    /// paper, this is usually *half* the physically available cache.
    pub effective_cache_bytes: usize,
    /// Whether the condition holds.
    pub satisfied: bool,
}

impl LayerCondition {
    /// Evaluate the layer condition of `spec` for a local inner dimension of
    /// `inner_length` elements and `effective_cache_bytes` of usable cache.
    ///
    /// The condition reads `rows × inner_length × 8 byte < C_eff`
    /// (cf. Eq. (1); the safety factor of ½ is already folded into
    /// `effective_cache_bytes` by the caller).
    pub fn evaluate(spec: &LoopSpec, inner_length: usize, effective_cache_bytes: usize) -> Self {
        let rows = spec.rows_for_layer_condition();
        let required = rows * inner_length * ELEMENT_BYTES;
        Self {
            rows_required: rows,
            inner_length,
            effective_cache_bytes,
            satisfied: rows == 0 || required < effective_cache_bytes,
        }
    }

    /// The cache size in bytes needed to satisfy the condition.
    pub fn required_bytes(&self) -> usize {
        self.rows_required * self.inner_length * ELEMENT_BYTES
    }

    /// Largest inner dimension (elements) for which the condition still
    /// holds with the given cache.
    pub fn max_inner_length(rows: usize, effective_cache_bytes: usize) -> usize {
        if rows == 0 {
            usize::MAX
        } else {
            effective_cache_bytes / (rows * ELEMENT_BYTES)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrayAccess, LoopSpec};

    fn two_row_loop() -> LoopSpec {
        LoopSpec {
            name: "am04".into(),
            function: "advec_mom".into(),
            arrays: vec![
                ArrayAccess::read("mass_flux_x", &[(0, -1), (0, 0), (1, -1), (1, 0)]),
                ArrayAccess::write("node_flux"),
            ],
            flops: 4,
            has_branches: false,
            speci2m_blocked: false,
        }
    }

    #[test]
    fn paper_example_cache_requirement() {
        // The paper (Eq. 2): two rows of M = 15360 doubles need
        // 2 × 15360 × 8 byte = 245.76 kB to stay cached; with the ½ safety
        // factor that means C > 492 kB, easily available on ICX (2.75 MiB
        // aggregate per core).
        let spec = two_row_loop();
        let effective = (2_883_584usize) / 2; // ≈ 2.75 MiB / 2
        let lc = LayerCondition::evaluate(&spec, 15_360, effective);
        assert_eq!(lc.rows_required, 2);
        assert_eq!(lc.required_bytes(), 2 * 15_360 * 8);
        assert!(lc.satisfied, "the Tiny grid satisfies the LC on ICX");
    }

    #[test]
    fn tiny_cache_breaks_the_condition() {
        let spec = two_row_loop();
        let lc = LayerCondition::evaluate(&spec, 15_360, 64 * 1024);
        assert!(!lc.satisfied);
    }

    #[test]
    fn max_inner_length_inverse() {
        let cache = 1 << 20;
        let max = LayerCondition::max_inner_length(2, cache);
        let spec = two_row_loop();
        assert!(LayerCondition::evaluate(&spec, max - 1, cache).satisfied);
        assert!(!LayerCondition::evaluate(&spec, max + 1, cache).satisfied);
    }

    #[test]
    fn loop_without_reads_always_satisfied() {
        let spec = LoopSpec {
            name: "w".into(),
            function: "f".into(),
            arrays: vec![ArrayAccess::write("out")],
            flops: 0,
            has_branches: false,
            speci2m_blocked: false,
        };
        let lc = LayerCondition::evaluate(&spec, 1_000_000_000, 1);
        assert!(lc.satisfied);
        assert_eq!(LayerCondition::max_inner_length(0, 1024), usize::MAX);
    }
}
