//! Code-balance bounds derived from a loop descriptor (Table I).

use crate::spec::LoopSpec;
use crate::ELEMENT_BYTES;

/// The four code-balance bounds of one loop in byte per iteration, plus the
/// derived computational intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeBalance {
    /// Minimum traffic: layer condition fulfilled, all write-allocates
    /// evaded (`byte/it_min`).
    pub min: f64,
    /// Layer condition fulfilled, write-allocates present (`byte/it_LCF,WA`).
    pub lcf_wa: f64,
    /// Layer condition broken, write-allocates evaded (`byte/it_LCB`).
    pub lcb: f64,
    /// Maximum traffic: layer condition broken and write-allocates present
    /// (`byte/it_max`).
    pub max: f64,
    /// Floating-point operations per iteration.
    pub flops: f64,
}

impl CodeBalance {
    /// Derive the bounds from a loop descriptor, following Sec. IV-A:
    ///
    /// * `min`     = 8 × (RD_LCF + WR)
    /// * `LCF,WA`  = 8 × (RD_LCF + WR + (WR − RD&WR))
    /// * `LCB`     = 8 × (RD_LCB + WR)
    /// * `max`     = 8 × (RD_LCB + WR + (WR − RD&WR))
    pub fn from_spec(spec: &LoopSpec) -> Self {
        let e = ELEMENT_BYTES as f64;
        let rd_lcf = spec.rd_lcf() as f64;
        let rd_lcb = spec.rd_lcb() as f64;
        let wr = spec.wr() as f64;
        let wa = spec.evadable_write_streams() as f64;
        Self {
            min: e * (rd_lcf + wr),
            lcf_wa: e * (rd_lcf + wr + wa),
            lcb: e * (rd_lcb + wr),
            max: e * (rd_lcb + wr + wa),
            flops: spec.flops as f64,
        }
    }

    /// Computational intensity (flop/byte) at a given code balance.
    pub fn intensity(&self, balance: f64) -> f64 {
        if balance <= 0.0 {
            0.0
        } else {
            self.flops / balance
        }
    }

    /// Code balance in byte/flop for the minimum-traffic case.
    pub fn byte_per_flop_min(&self) -> f64 {
        if self.flops <= 0.0 {
            f64::INFINITY
        } else {
            self.min / self.flops
        }
    }

    /// Roofline performance limit in iterations/s for a loop with this code
    /// balance running at memory bandwidth `bw` (byte/s), assuming the given
    /// effective balance (byte/it).
    pub fn roofline_iterations_per_s(balance: f64, bw: f64) -> f64 {
        if balance <= 0.0 {
            f64::INFINITY
        } else {
            bw / balance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrayAccess, LoopSpec};

    fn am04() -> LoopSpec {
        LoopSpec {
            name: "am04".into(),
            function: "advec_mom".into(),
            arrays: vec![
                ArrayAccess::read("mass_flux_x", &[(0, -1), (0, 0), (1, -1), (1, 0)]),
                ArrayAccess::write("node_flux"),
            ],
            flops: 4,
            has_branches: false,
            speci2m_blocked: false,
        }
    }

    #[test]
    fn am04_bounds_match_paper() {
        let b = CodeBalance::from_spec(&am04());
        assert_eq!(b.min, 16.0);
        assert_eq!(b.lcf_wa, 24.0);
        assert_eq!(b.lcb, 24.0);
        assert_eq!(b.max, 32.0);
    }

    #[test]
    fn update_loop_has_equal_bounds() {
        // A loop that only updates arrays it reads (like ac03): all four
        // bounds coincide if every read array has a single-row stencil.
        let l = LoopSpec {
            name: "u".into(),
            function: "f".into(),
            arrays: vec![
                ArrayAccess::read("a", &[(0, 0)]),
                ArrayAccess::read_write("b"),
            ],
            flops: 2,
            has_branches: false,
            speci2m_blocked: false,
        };
        let b = CodeBalance::from_spec(&l);
        assert_eq!(b.min, b.lcf_wa);
        assert_eq!(b.lcb, b.max);
        assert_eq!(b.min, b.lcb);
    }

    #[test]
    fn intensity_and_roofline() {
        let b = CodeBalance::from_spec(&am04());
        assert!((b.intensity(16.0) - 0.25).abs() < 1e-12);
        assert!((b.byte_per_flop_min() - 4.0).abs() < 1e-12);
        // 80 GB/s at 16 byte/it → 5 Giga-iterations/s.
        let perf = CodeBalance::roofline_iterations_per_s(16.0, 80e9);
        assert!((perf - 5e9).abs() < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        let b = CodeBalance {
            min: 0.0,
            lcf_wa: 0.0,
            lcb: 0.0,
            max: 0.0,
            flops: 0.0,
        };
        assert_eq!(b.intensity(0.0), 0.0);
        assert!(b.byte_per_flop_min().is_infinite());
        assert!(CodeBalance::roofline_iterations_per_s(0.0, 1.0).is_infinite());
    }
}
