//! Loop descriptors: arrays, stencil offsets and access modes.

use serde::{Deserialize, Serialize};

/// How a loop body accesses one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// The array is only read.
    Read,
    /// The array is only written (write-allocate candidate).
    Write,
    /// The array is read and then written (update; the write hits in cache).
    ReadWrite,
}

/// One array operand of a loop with the stencil offsets it is accessed at.
///
/// Offsets are `(di, dk)` pairs: `di` along the contiguous inner dimension,
/// `dk` along the outer (row) dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayAccess {
    /// Array name as it appears in the Fortran source (e.g. `mass_flux_x`).
    pub name: String,
    /// Access mode.
    pub mode: AccessMode,
    /// Distinct stencil offsets at which the array is accessed.
    pub offsets: Vec<(i32, i32)>,
}

impl ArrayAccess {
    /// A read-only operand.
    pub fn read(name: &str, offsets: &[(i32, i32)]) -> Self {
        Self {
            name: name.to_string(),
            mode: AccessMode::Read,
            offsets: offsets.to_vec(),
        }
    }

    /// A write-only operand accessed at the centre point.
    pub fn write(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mode: AccessMode::Write,
            offsets: vec![(0, 0)],
        }
    }

    /// A read-modify-write operand accessed at the centre point.
    pub fn read_write(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mode: AccessMode::ReadWrite,
            offsets: vec![(0, 0)],
        }
    }

    /// Number of distinct grid rows (`dk` values) touched by the reads of
    /// this operand.
    pub fn distinct_rows(&self) -> usize {
        let mut rows: Vec<i32> = self.offsets.iter().map(|&(_, dk)| dk).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// True if this operand is read (in either mode).
    pub fn is_read(&self) -> bool {
        matches!(self.mode, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// True if this operand is written (in either mode).
    pub fn is_written(&self) -> bool {
        matches!(self.mode, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// A complete description of one hotspot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Loop label used in the paper (`am04`, `ac01`, `pdv00`, ...).
    pub name: String,
    /// The hotspot function the loop belongs to (`advec_mom`, ...).
    pub function: String,
    /// Array operands.
    pub arrays: Vec<ArrayAccess>,
    /// Floating-point operations per iteration.
    pub flops: u32,
    /// True if the loop body contains conditional branches, which the paper
    /// identifies as an obstacle for SpecI2M eligibility (ac02, ac06).
    pub has_branches: bool,
    /// True if the loop (in the original code) defeats SpecI2M although it
    /// is structurally simple (ac01, ac05); fixed by the paper's manual
    /// reorganisation.
    pub speci2m_blocked: bool,
}

impl LoopSpec {
    /// Number of distinct arrays accessed (`#arrays` column of Table I).
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Elements read per iteration with the layer condition fulfilled
    /// (`RD_LCF`): one leading element per read operand.
    pub fn rd_lcf(&self) -> usize {
        self.arrays.iter().filter(|a| a.is_read()).count()
    }

    /// Elements read per iteration with the layer condition broken
    /// (`RD_LCB`): one element per distinct row of every read operand.
    pub fn rd_lcb(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.is_read())
            .map(|a| a.distinct_rows())
            .sum()
    }

    /// Elements written per iteration (`WR`).
    pub fn wr(&self) -> usize {
        self.arrays.iter().filter(|a| a.is_written()).count()
    }

    /// Written elements that are also read beforehand (`RD&WR`).
    pub fn rd_and_wr(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.mode == AccessMode::ReadWrite)
            .count()
    }

    /// Write streams whose write-allocate could be evaded (written but not
    /// read beforehand).
    pub fn evadable_write_streams(&self) -> usize {
        self.wr() - self.rd_and_wr()
    }

    /// Number of grid rows that must stay cached for the layer condition:
    /// the maximum row extent over all read operands.
    pub fn rows_for_layer_condition(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.is_read())
            .map(|a| a.distinct_rows())
            .max()
            .unwrap_or(0)
    }

    /// Names of the arrays written without a prior read (the non-temporal
    /// store / SpecI2M candidates).
    pub fn evadable_targets(&self) -> Vec<&str> {
        self.arrays
            .iter()
            .filter(|a| a.mode == AccessMode::Write)
            .map(|a| a.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The am04 loop from Listing 3 of the paper.
    fn am04() -> LoopSpec {
        LoopSpec {
            name: "am04".into(),
            function: "advec_mom".into(),
            arrays: vec![
                ArrayAccess::read("mass_flux_x", &[(0, -1), (0, 0), (1, -1), (1, 0)]),
                ArrayAccess::write("node_flux"),
            ],
            flops: 4,
            has_branches: false,
            speci2m_blocked: false,
        }
    }

    #[test]
    fn am04_model_inputs_match_table_one() {
        let l = am04();
        assert_eq!(l.array_count(), 2);
        assert_eq!(l.rd_lcf(), 1);
        assert_eq!(l.rd_lcb(), 2);
        assert_eq!(l.wr(), 1);
        assert_eq!(l.rd_and_wr(), 0);
        assert_eq!(l.evadable_write_streams(), 1);
        assert_eq!(l.rows_for_layer_condition(), 2);
    }

    #[test]
    fn read_write_operand_counts_in_both() {
        let l = LoopSpec {
            name: "x".into(),
            function: "f".into(),
            arrays: vec![
                ArrayAccess::read("a", &[(0, 0), (0, 1)]),
                ArrayAccess::read_write("b"),
                ArrayAccess::write("c"),
            ],
            flops: 1,
            has_branches: false,
            speci2m_blocked: false,
        };
        assert_eq!(l.rd_lcf(), 2);
        assert_eq!(l.rd_lcb(), 3);
        assert_eq!(l.wr(), 2);
        assert_eq!(l.rd_and_wr(), 1);
        assert_eq!(l.evadable_write_streams(), 1);
        assert_eq!(l.evadable_targets(), vec!["c"]);
    }

    #[test]
    fn distinct_rows_deduplicates() {
        let a = ArrayAccess::read("a", &[(-1, 0), (1, 0), (0, 1), (0, -1)]);
        assert_eq!(a.distinct_rows(), 3);
        let b = ArrayAccess::read("b", &[(0, 0), (1, 0)]);
        assert_eq!(b.distinct_rows(), 1);
    }

    #[test]
    fn pure_write_loop_has_no_layer_condition() {
        let l = LoopSpec {
            name: "w".into(),
            function: "f".into(),
            arrays: vec![ArrayAccess::write("out")],
            flops: 0,
            has_branches: false,
            speci2m_blocked: false,
        };
        assert_eq!(l.rd_lcf(), 0);
        assert_eq!(l.rows_for_layer_condition(), 0);
    }
}
