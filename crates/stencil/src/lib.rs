//! `clover-stencil` — stencil loop descriptors and first-principles data
//! traffic models.
//!
//! The paper builds a traffic model for all 22 loops of the three CloverLeaf
//! hotspot functions (Table I).  Each loop is described by the arrays it
//! touches and the stencil offsets of every access; from that description the
//! model derives
//!
//! * the number of elements read per iteration with the **layer condition
//!   fulfilled** (one leading element per read array, `RD_LCF`),
//! * the number read with the layer condition **broken** (one element per
//!   distinct grid row accessed, `RD_LCB`),
//! * the number of elements written (`WR`) and how many of those are also
//!   read first (`RD&WR`),
//! * four code-balance bounds (`min`, `LCF,WA`, `LCB`, `max`) in byte per
//!   iteration, depending on whether the layer condition holds and whether
//!   write-allocates can be evaded,
//! * the layer-condition cache-size requirement.
//!
//! The same descriptors drive the row-sampled cache-simulator measurement in
//! `clover-perfmon`, so the analytic model and the "measurement" come from a
//! single source of truth.

pub mod balance;
pub mod catalogue;
pub mod layer;
pub mod spec;

pub use balance::CodeBalance;
pub use catalogue::{cloverleaf_loops, loop_by_name, HotspotFunction, PAPER_MEASURED_SINGLE_CORE};
pub use layer::LayerCondition;
pub use spec::{AccessMode, ArrayAccess, LoopSpec};

/// Size of a double-precision grid element in bytes.
pub const ELEMENT_BYTES: usize = 8;
