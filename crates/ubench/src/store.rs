//! Store-ratio microbenchmarks (Figs. 5, 9, 10).
//!
//! Each core stores a fixed data volume into one, two or three independent
//! streams using either normal or non-temporal stores.  The *store ratio* is
//! the actual memory traffic (read + write at the memory controllers)
//! divided by the explicitly initiated store volume: 2.0 means every store
//! needs a write-allocate, 1.0 means all write-allocates are evaded.

use clover_cachesim::{AccessKind, KernelSpec, NodeSim, RankBase, SimConfig, SimMemo, SpecOperand};
use clover_machine::Machine;

/// Store flavour used by the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Normal (temporal) AVX-512 stores — `store_avx512` in likwid-bench.
    Normal,
    /// Non-temporal stores — `store_mem_avx512` in likwid-bench.
    NonTemporal,
}

/// One point of a store-ratio sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreRatioPoint {
    /// Number of active cores.
    pub cores: usize,
    /// Number of independent store streams per core.
    pub streams: usize,
    /// Store flavour.
    pub kind: StoreKind,
    /// Actual traffic / initiated store volume.
    pub ratio: f64,
}

/// Doubles stored per stream per core in the simulated benchmark.  The real
/// benchmark stores 10 GB; the simulator only needs enough elements for the
/// evasion statistics to converge, which keeps the sweep fast.
const ELEMENTS_PER_STREAM: u64 = 32 * 1024;

/// The SPMD kernel of the store benchmark as a typed, memoizable spec:
/// `streams` independent store streams per core.  Streams live far apart so
/// they form independent write streams (identical to the likwid-bench store
/// kernels); one operand per stream reproduces the element-interleaved
/// store order of the real kernel through the batched line-granular driver.
pub fn store_kernel_spec(streams: usize, kind: StoreKind) -> KernelSpec {
    assert!(
        (1..=3).contains(&streams),
        "the paper uses 1-3 store streams"
    );
    let access = match kind {
        StoreKind::Normal => AccessKind::Store,
        StoreKind::NonTemporal => AccessKind::StoreNT,
    };
    KernelSpec {
        rank_base: RankBase::Shifted { shift: 40, plus: 1 },
        operands: (0..streams as u64)
            .map(|s| SpecOperand {
                offset: s << 30,
                points: vec![(0, 0)],
                kind: access,
            })
            .collect(),
        row_stride: ELEMENTS_PER_STREAM,
        i0: 0,
        inner: ELEMENTS_PER_STREAM,
        k0: 0,
        rows: 1,
    }
}

/// Measure the store ratio for `cores` active cores, `streams` store streams
/// per core and the given store kind.
pub fn store_ratio(machine: &Machine, cores: usize, streams: usize, kind: StoreKind) -> f64 {
    let spec = store_kernel_spec(streams, kind);
    let sim = NodeSim::new(SimConfig::new(machine.clone(), cores));
    let report = sim.run_spmd(|rank, core| spec.drive(rank, core));
    store_ratio_of(&report.total_bytes(), cores, streams)
}

/// [`store_ratio`] through a cross-sweep [`SimMemo`]: bit-identical, but a
/// curve over many core counts simulates each distinct domain-load context
/// only once per memo lifetime.
pub fn store_ratio_memo(
    machine: &Machine,
    cores: usize,
    streams: usize,
    kind: StoreKind,
    memo: &SimMemo,
) -> f64 {
    let spec = store_kernel_spec(streams, kind);
    let sim = NodeSim::new(SimConfig::new(machine.clone(), cores));
    let report = sim.run_spmd_memo(&spec, memo);
    store_ratio_of(&report.total_bytes(), cores, streams)
}

/// Actual traffic over initiated store volume.
fn store_ratio_of(total_bytes: &f64, cores: usize, streams: usize) -> f64 {
    let initiated = (cores as u64 * streams as u64 * ELEMENTS_PER_STREAM * 8) as f64;
    total_bytes / initiated
}

/// Sweep the store ratio over core counts `1..=max_cores`.
pub fn store_ratio_sweep(
    machine: &Machine,
    max_cores: usize,
    streams: usize,
    kind: StoreKind,
) -> Vec<StoreRatioPoint> {
    (1..=max_cores)
        .map(|cores| StoreRatioPoint {
            cores,
            streams,
            kind,
            ratio: store_ratio(machine, cores, streams, kind),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::{icelake_sp_8360y, sapphire_rapids_8480};

    #[test]
    fn serial_normal_stores_have_ratio_two() {
        let m = icelake_sp_8360y();
        for streams in 1..=3 {
            let r = store_ratio(&m, 1, streams, StoreKind::Normal);
            assert!((1.95..=2.05).contains(&r), "streams={streams}: ratio {r}");
        }
    }

    #[test]
    fn serial_nt_stores_have_ratio_one() {
        let m = icelake_sp_8360y();
        let r = store_ratio(&m, 1, 1, StoreKind::NonTemporal);
        assert!((0.99..=1.06).contains(&r), "ratio {r}");
    }

    #[test]
    fn icx_socket_ratio_drops_close_to_one() {
        // Fig. 5: best ratio ≈ 1.06 at a full socket (36 cores).
        let m = icelake_sp_8360y();
        let r = store_ratio(&m, 36, 1, StoreKind::Normal);
        assert!((1.0..=1.25).contains(&r), "socket ratio {r}");
    }

    #[test]
    fn icx_full_node_ratio_lands_in_the_paper_band() {
        // Fig. 5: 1.2–1.25 at the full node.
        let m = icelake_sp_8360y();
        let r = store_ratio(&m, 72, 1, StoreKind::Normal);
        assert!((1.12..=1.35).contains(&r), "full-node ratio {r}");
    }

    #[test]
    fn more_streams_are_worse_on_icx() {
        let m = icelake_sp_8360y();
        let r1 = store_ratio(&m, 36, 1, StoreKind::Normal);
        let r3 = store_ratio(&m, 36, 3, StoreKind::Normal);
        assert!(r3 > r1, "3 streams ({r3}) must be worse than 1 ({r1})");
    }

    #[test]
    fn nt_ratio_rises_slightly_with_core_count() {
        // Fig. 5: NT ratio rises from 1.0 to ~1.16-1.17 at the full node.
        let m = icelake_sp_8360y();
        let serial = store_ratio(&m, 1, 1, StoreKind::NonTemporal);
        let node = store_ratio(&m, 72, 1, StoreKind::NonTemporal);
        assert!(node > serial);
        assert!((1.10..=1.25).contains(&node), "full-node NT ratio {node}");
    }

    #[test]
    fn new_domain_worsens_the_ratio_before_recovering() {
        // Fig. 5: the ratio rises again when a new ccNUMA domain is touched.
        let m = icelake_sp_8360y();
        let r18 = store_ratio(&m, 18, 1, StoreKind::Normal);
        let r20 = store_ratio(&m, 20, 1, StoreKind::Normal);
        let r36 = store_ratio(&m, 36, 1, StoreKind::Normal);
        assert!(
            r20 > r18,
            "touching domain 1 must worsen the ratio: {r18} -> {r20}"
        );
        assert!(r36 < r20, "filling domain 1 must recover: {r20} -> {r36}");
    }

    #[test]
    fn spr_evades_only_about_half_of_the_write_allocates() {
        // Fig. 10: best case ≈ 50 % of WAs evaded on the SPR 8480+ socket.
        let m = sapphire_rapids_8480();
        let r = store_ratio(&m, 56, 1, StoreKind::Normal);
        assert!((1.35..=1.65).contains(&r), "SPR socket ratio {r}");
    }

    #[test]
    fn spr_needs_many_cores_before_speci2m_helps() {
        // Fig. 10: no benefit below ~18 cores.
        let m = sapphire_rapids_8480();
        let r12 = store_ratio(&m, 12, 1, StoreKind::Normal);
        let r40 = store_ratio(&m, 40, 1, StoreKind::Normal);
        assert!(r12 > 1.9, "12 cores: ratio {r12}");
        assert!(r40 < 1.8, "40 cores: ratio {r40}");
    }

    #[test]
    fn sweep_returns_one_point_per_core_count() {
        let m = icelake_sp_8360y();
        let sweep = store_ratio_sweep(&m, 4, 1, StoreKind::Normal);
        assert_eq!(sweep.len(), 4);
        assert!(sweep.iter().enumerate().all(|(i, p)| p.cores == i + 1));
    }

    #[test]
    #[should_panic(expected = "1-3 store streams")]
    fn invalid_stream_count_panics() {
        let m = icelake_sp_8360y();
        let _ = store_ratio(&m, 1, 4, StoreKind::Normal);
    }

    #[test]
    fn memoized_ratio_is_bit_identical_to_unmemoized() {
        // One memo spans the whole mini-curve, so later points are served
        // partly from cache — the ratios must not change in a single bit.
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        for kind in [StoreKind::Normal, StoreKind::NonTemporal] {
            for streams in 1..=3 {
                for cores in [1usize, 2, 18, 19, 20, 36, 37] {
                    let plain = store_ratio(&m, cores, streams, kind);
                    let memoized = store_ratio_memo(&m, cores, streams, kind, &memo);
                    assert!(
                        plain == memoized,
                        "cores={cores} streams={streams} {kind:?}: {plain} vs {memoized}"
                    );
                }
            }
        }
        assert!(memo.stats().hits > 0, "the curve must reuse contexts");
    }
}
