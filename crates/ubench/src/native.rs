//! Native execution of the microbenchmark kernels on the host CPU.
//!
//! These kernels are what the Criterion benches run: real arrays, real
//! stores, and — on x86-64 with SSE2 — genuine non-temporal stores via
//! `std::arch`, so `cargo bench` exercises actual write-allocate evasion on
//! the machine the benches run on.  On other architectures the NT path
//! falls back to plain stores (the measured effect simply disappears).

/// Fill `dst` with `value` using plain stores.
pub fn store_plain(dst: &mut [f64], value: f64) {
    for x in dst.iter_mut() {
        *x = value;
    }
}

/// Fill `dst` with `value` using non-temporal stores where the platform
/// supports them (x86-64 SSE2 `MOVNTPD`), falling back to plain stores
/// elsewhere or for unaligned buffers.
pub fn store_nontemporal(dst: &mut [f64], value: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse2") {
            // SAFETY: guarded by the sse2 feature check; `stream_store`
            // handles the unaligned head/tail with plain stores.
            unsafe { stream_store_sse2(dst, value) };
            return;
        }
    }
    store_plain(dst, value);
}

/// Copy `src` into `dst` with plain stores.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy_plain(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len());
    dst.copy_from_slice(src);
}

/// Copy `src` into `dst` with non-temporal stores where supported.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy_nontemporal(dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse2") {
            // SAFETY: guarded by the sse2 feature check.
            unsafe { stream_copy_sse2(dst, src) };
            return;
        }
    }
    dst.copy_from_slice(src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn stream_store_sse2(dst: &mut [f64], value: f64) {
    use std::arch::x86_64::{_mm_set1_pd, _mm_sfence, _mm_stream_pd};
    let ptr = dst.as_mut_ptr();
    let len = dst.len();
    // Head: advance to 16-byte alignment with plain stores.
    let mut i = 0usize;
    while i < len && (ptr.add(i) as usize) % 16 != 0 {
        *ptr.add(i) = value;
        i += 1;
    }
    let v = _mm_set1_pd(value);
    while i + 2 <= len {
        _mm_stream_pd(ptr.add(i), v);
        i += 2;
    }
    while i < len {
        *ptr.add(i) = value;
        i += 1;
    }
    _mm_sfence();
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn stream_copy_sse2(dst: &mut [f64], src: &[f64]) {
    use std::arch::x86_64::{_mm_loadu_pd, _mm_sfence, _mm_stream_pd};
    let out = dst.as_mut_ptr();
    let inp = src.as_ptr();
    let len = dst.len();
    let mut i = 0usize;
    while i < len && (out.add(i) as usize) % 16 != 0 {
        *out.add(i) = *inp.add(i);
        i += 1;
    }
    while i + 2 <= len {
        let v = _mm_loadu_pd(inp.add(i));
        _mm_stream_pd(out.add(i), v);
        i += 2;
    }
    while i < len {
        *out.add(i) = *inp.add(i);
        i += 1;
    }
    _mm_sfence();
}

/// Row-wise copy with an untouched halo gap, the native counterpart of the
/// Fig. 8 microbenchmark.  Returns the number of elements copied.
///
/// # Panics
/// Panics if the buffers are too small for the requested geometry.
pub fn copy_with_halo(
    dst: &mut [f64],
    src: &[f64],
    inner: usize,
    halo: usize,
    rows: usize,
    nontemporal: bool,
) -> usize {
    let stride = inner + halo;
    assert!(dst.len() >= rows * stride && src.len() >= rows * stride);
    let mut copied = 0usize;
    for row in 0..rows {
        let start = row * stride;
        let d = &mut dst[start..start + inner];
        let s = &src[start..start + inner];
        if nontemporal {
            copy_nontemporal(d, s);
        } else {
            copy_plain(d, s);
        }
        copied += inner;
    }
    copied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_nt_store_produce_identical_results() {
        let mut a = vec![0.0f64; 1537];
        let mut b = vec![0.0f64; 1537];
        store_plain(&mut a, 3.25);
        store_nontemporal(&mut b, 3.25);
        assert_eq!(a, b);
    }

    #[test]
    fn plain_and_nt_copy_produce_identical_results() {
        let src: Vec<f64> = (0..2049).map(|i| i as f64 * 0.5).collect();
        let mut a = vec![0.0f64; src.len()];
        let mut b = vec![0.0f64; src.len()];
        copy_plain(&mut a, &src);
        copy_nontemporal(&mut b, &src);
        assert_eq!(a, b);
        assert_eq!(a, src);
    }

    #[test]
    fn copy_with_halo_leaves_the_halo_untouched() {
        let inner = 216;
        let halo = 5;
        let rows = 4;
        let n = rows * (inner + halo);
        let src = vec![7.0f64; n];
        let mut dst = vec![-1.0f64; n];
        let copied = copy_with_halo(&mut dst, &src, inner, halo, rows, false);
        assert_eq!(copied, inner * rows);
        for row in 0..rows {
            let start = row * (inner + halo);
            assert!(dst[start..start + inner].iter().all(|&x| x == 7.0));
            assert!(dst[start + inner..start + inner + halo]
                .iter()
                .all(|&x| x == -1.0));
        }
    }

    #[test]
    fn copy_with_halo_nt_matches_plain() {
        let inner = 530;
        let halo = 3;
        let rows = 3;
        let n = rows * (inner + halo);
        let src: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        copy_with_halo(&mut a, &src, inner, halo, rows, false);
        copy_with_halo(&mut b, &src, inner, halo, rows, true);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_slices_are_fine() {
        let mut empty: Vec<f64> = Vec::new();
        store_nontemporal(&mut empty, 1.0);
        copy_nontemporal(&mut empty, &[]);
        assert!(empty.is_empty());
    }
}
