//! Copy-kernel microbenchmarks (Figs. 6, 8 and 11).
//!
//! The copy kernel `a(:) = b(:)` reads one stream and writes another.  Two
//! experiments use it:
//!
//! * **Volume per iteration vs. thread count** (Fig. 6): with one thread the
//!   write misses force a write-allocate (16 read bytes per 8-byte update);
//!   with enough threads SpecI2M claims the destination lines (ITOM) and
//!   the read volume drops to the source stream alone.
//! * **Read-to-write ratio vs. halo size** (Figs. 8, 11): the arrays are
//!   copied in batches of `inner` elements separated by an untouched halo of
//!   0–17 elements, mimicking the rows of a decomposed grid.  Unaligned
//!   halos create partial cache lines that defeat the evasion; short inner
//!   dimensions defeat it even for aligned halos.

use clover_cachesim::{AccessKind, KernelSpec, NodeSim, RankBase, SimConfig, SimMemo, SpecOperand};
use clover_machine::Machine;

/// The interleaved copy kernel (`load b(i); store a(i)` per iteration) as a
/// two-operand stencil spec: `rows` batches of `inner` elements whose
/// starts are `inner + halo` elements apart, each rank's source at its rank
/// base and its destination `dst_offset` bytes above.  Expressing it this
/// way runs it on the batched line-granular driver while preserving the
/// exact element-interleaved access order of the patched
/// TheBandwidthBenchmark copy — and makes the kernel hashable for the
/// cross-sweep simulation memo.
pub fn copy_kernel_spec(dst_offset: u64, inner: u64, halo: u64, rows: u64) -> KernelSpec {
    KernelSpec {
        rank_base: RankBase::Shifted { shift: 40, plus: 1 },
        operands: vec![
            SpecOperand {
                offset: 0,
                points: vec![(0, 0)],
                kind: AccessKind::Load,
            },
            SpecOperand {
                offset: dst_offset,
                points: vec![(0, 0)],
                kind: AccessKind::Store,
            },
        ],
        row_stride: inner + halo,
        i0: 0,
        inner,
        k0: 0,
        rows,
    }
}

/// One point of the Fig. 6 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyVolumePoint {
    /// Number of active threads.
    pub threads: usize,
    /// Read bytes per iteration (one iteration updates one double).
    pub read_bytes_per_it: f64,
    /// Write bytes per iteration.
    pub write_bytes_per_it: f64,
    /// SpecI2M (ITOM) bytes per iteration.
    pub itom_bytes_per_it: f64,
}

/// One point of the Fig. 8 / Fig. 11 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyHaloPoint {
    /// Inner dimension (elements per batch).
    pub inner: usize,
    /// Halo size in elements.
    pub halo: usize,
    /// Whether the hardware prefetchers were enabled.
    pub prefetchers: bool,
    /// Memory read volume / write volume.
    pub ratio: f64,
}

/// Elements copied per thread in the volume experiment.
const COPY_ELEMENTS: u64 = 32 * 1024;
/// Rows swept per thread in the halo experiment.
const HALO_ROWS: u64 = 96;

/// Fig. 6: read/write/ITOM volume per iteration of the copy kernel as a
/// function of the thread count.
pub fn copy_volume_per_iteration(machine: &Machine, threads: usize) -> CopyVolumePoint {
    let spec = copy_kernel_spec(1 << 30, COPY_ELEMENTS, 0, 1);
    let sim = NodeSim::new(SimConfig::new(machine.clone(), threads));
    let report = sim.run_spmd(|rank, core| spec.drive(rank, core));
    copy_volume_point(threads, &report.total)
}

/// [`copy_volume_per_iteration`] through a cross-sweep [`SimMemo`]:
/// bit-identical, with each distinct domain-load context simulated once
/// per memo lifetime.
pub fn copy_volume_per_iteration_memo(
    machine: &Machine,
    threads: usize,
    memo: &SimMemo,
) -> CopyVolumePoint {
    let spec = copy_kernel_spec(1 << 30, COPY_ELEMENTS, 0, 1);
    let sim = NodeSim::new(SimConfig::new(machine.clone(), threads));
    let report = sim.run_spmd_memo(&spec, memo);
    copy_volume_point(threads, &report.total)
}

fn copy_volume_point(threads: usize, total: &clover_cachesim::MemCounters) -> CopyVolumePoint {
    let iterations = (threads as u64 * COPY_ELEMENTS) as f64;
    CopyVolumePoint {
        threads,
        read_bytes_per_it: total.read_bytes() / iterations,
        write_bytes_per_it: total.write_bytes() / iterations,
        itom_bytes_per_it: total.itom_bytes() / iterations,
    }
}

/// Figs. 8/11: read-to-write ratio of the copy kernel for a given inner
/// dimension and halo size on the *full node* of `machine`.
pub fn copy_halo_ratio(
    machine: &Machine,
    inner: usize,
    halo: usize,
    prefetchers: bool,
) -> CopyHaloPoint {
    let spec = copy_kernel_spec(1 << 32, inner as u64, halo as u64, HALO_ROWS);
    let sim = NodeSim::new(copy_halo_config(machine, prefetchers));
    let report = sim.run_spmd(|rank, core| spec.drive(rank, core));
    copy_halo_point(inner, halo, prefetchers, &report.total)
}

/// [`copy_halo_ratio`] through a cross-sweep [`SimMemo`].  The halo/inner
/// axes make every point a distinct kernel, so the memo's value here is the
/// pooled-core arena reuse plus sharing across repeated evaluations.
pub fn copy_halo_ratio_memo(
    machine: &Machine,
    inner: usize,
    halo: usize,
    prefetchers: bool,
    memo: &SimMemo,
) -> CopyHaloPoint {
    let spec = copy_kernel_spec(1 << 32, inner as u64, halo as u64, HALO_ROWS);
    let sim = NodeSim::new(copy_halo_config(machine, prefetchers));
    let report = sim.run_spmd_memo(&spec, memo);
    copy_halo_point(inner, halo, prefetchers, &report.total)
}

fn copy_halo_config(machine: &Machine, prefetchers: bool) -> SimConfig {
    let mut config = SimConfig::new(machine.clone(), machine.total_cores());
    if !prefetchers {
        config = config.without_prefetchers();
    }
    config
}

fn copy_halo_point(
    inner: usize,
    halo: usize,
    prefetchers: bool,
    total: &clover_cachesim::MemCounters,
) -> CopyHaloPoint {
    CopyHaloPoint {
        inner,
        halo,
        prefetchers,
        ratio: total.read_bytes() / total.write_bytes().max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    #[test]
    fn single_thread_copy_needs_write_allocates() {
        // Fig. 6: one thread → 16 read bytes and 8 write bytes per update.
        let m = icelake_sp_8360y();
        let p = copy_volume_per_iteration(&m, 1);
        assert!(
            (p.read_bytes_per_it - 16.0).abs() < 1.5,
            "read {}",
            p.read_bytes_per_it
        );
        assert!(
            (p.write_bytes_per_it - 8.0).abs() < 0.8,
            "write {}",
            p.write_bytes_per_it
        );
        assert!(p.itom_bytes_per_it < 1.0);
    }

    #[test]
    fn seventeen_threads_evade_most_write_allocates() {
        // Fig. 6: with 17 active threads the WAs are almost fully evaded.
        let m = icelake_sp_8360y();
        let p = copy_volume_per_iteration(&m, 17);
        assert!(p.read_bytes_per_it < 11.0, "read {}", p.read_bytes_per_it);
        assert!(p.itom_bytes_per_it > 4.0, "itom {}", p.itom_bytes_per_it);
    }

    #[test]
    fn read_volume_decreases_monotonically_with_threads_in_first_domain() {
        let m = icelake_sp_8360y();
        let reads: Vec<f64> = [1usize, 4, 9, 17]
            .iter()
            .map(|&t| copy_volume_per_iteration(&m, t).read_bytes_per_it)
            .collect();
        for w in reads.windows(2) {
            assert!(w[1] <= w[0] + 0.2, "read volume should not rise: {reads:?}");
        }
    }

    #[test]
    fn short_inner_dimension_has_higher_ratio() {
        // Fig. 8: batches of 216 elements average a ratio of ~1.35, batches
        // of 1920 drop to ~1.04.
        let m = icelake_sp_8360y();
        let short = copy_halo_ratio(&m, 216, 5, true);
        let long = copy_halo_ratio(&m, 1920, 5, true);
        assert!(
            short.ratio > long.ratio + 0.08,
            "short {} vs long {}",
            short.ratio,
            long.ratio
        );
        assert!(long.ratio < 1.35, "long-row ratio {}", long.ratio);
    }

    #[test]
    fn aligned_halo_beats_unaligned_halo_for_216() {
        // Fig. 8: halo sizes that keep rows cache-line aligned (0, 8, 16)
        // evade significantly more than unaligned ones.
        let m = icelake_sp_8360y();
        let aligned = copy_halo_ratio(&m, 216, 8, true);
        let unaligned = copy_halo_ratio(&m, 216, 3, true);
        assert!(
            aligned.ratio < unaligned.ratio,
            "aligned {} vs unaligned {}",
            aligned.ratio,
            unaligned.ratio
        );
    }

    #[test]
    fn prefetchers_off_increases_the_ratio() {
        let m = icelake_sp_8360y();
        let on = copy_halo_ratio(&m, 216, 3, true);
        let off = copy_halo_ratio(&m, 216, 3, false);
        assert!(
            off.ratio > on.ratio,
            "PF off {} vs on {}",
            off.ratio,
            on.ratio
        );
        assert!(!off.prefetchers && on.prefetchers);
    }

    #[test]
    fn memoized_copy_points_are_bit_identical() {
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        for threads in [1usize, 9, 17, 18, 19, 36] {
            let plain = copy_volume_per_iteration(&m, threads);
            let memoized = copy_volume_per_iteration_memo(&m, threads, &memo);
            assert_eq!(plain, memoized, "threads={threads}");
        }
        for (inner, halo, pf) in [(216usize, 5usize, true), (1920, 0, true), (216, 3, false)] {
            let plain = copy_halo_ratio(&m, inner, halo, pf);
            let memoized = copy_halo_ratio_memo(&m, inner, halo, pf, &memo);
            assert_eq!(plain, memoized, "inner={inner} halo={halo} pf={pf}");
        }
    }

    #[test]
    fn ratio_stays_between_one_and_two() {
        let m = icelake_sp_8360y();
        for inner in [216usize, 530, 1920] {
            for halo in [0usize, 5, 16] {
                let p = copy_halo_ratio(&m, inner, halo, true);
                assert!(
                    (0.95..=2.1).contains(&p.ratio),
                    "inner={inner} halo={halo}: ratio {}",
                    p.ratio
                );
            }
        }
    }
}
