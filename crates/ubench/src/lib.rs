//! `clover-ubench` — the microbenchmarks of the paper.
//!
//! Three families of kernels characterise the SpecI2M write-allocate
//! evasion feature:
//!
//! * [`store`] — pure store kernels with 1–3 independent streams, normal or
//!   non-temporal, measuring the *store ratio* (actual memory traffic over
//!   explicitly initiated traffic) as a function of the core count
//!   (Figs. 5, 9, 10),
//! * [`copy`] — the array-copy kernel `a(:) = b(:)`, measuring the per-
//!   iteration read/write/SpecI2M volumes versus thread count (Fig. 6) and
//!   the read-to-write ratio versus halo size and inner dimension
//!   (Figs. 8, 11),
//! * [`native`] — the same kernels executed natively on the host CPU (with
//!   genuine non-temporal stores via `std::arch` where available), used by
//!   the Criterion benches so `cargo bench` also measures real hardware.

pub mod copy;
pub mod native;
pub mod store;

pub use copy::{
    copy_halo_ratio, copy_halo_ratio_memo, copy_kernel_spec, copy_volume_per_iteration,
    copy_volume_per_iteration_memo, CopyHaloPoint, CopyVolumePoint,
};
pub use store::{
    store_kernel_spec, store_ratio, store_ratio_memo, store_ratio_sweep, StoreKind, StoreRatioPoint,
};
