//! Bit-exact on-disk persistence of the memo stores.
//!
//! A store file holds a snapshot of a [`SimMemo`] (representative-core
//! simulations) and a [`SweepMemo`] (analytic scaling points), versioned
//! by the [`model_hash`](crate::model::model_hash) of the binary that
//! wrote it.  The format is a line-based text codec:
//!
//! ```text
//! cloverstore 1 <model-hash hex>
//! sim <key tokens ...> <6 counter f64s as hex bit patterns>
//! point <key tokens ...> <point tokens ...>
//! end <entry count>
//! ```
//!
//! Every `f64` is written as the hex rendering of its IEEE-754 bit
//! pattern, so a load restores the exact value bit for bit — the property
//! that keeps warm-start sweep output byte-identical to a cold run.
//! Strings (machine ids, loop names) are percent-escaped so the
//! whitespace tokenizer cannot be confused.  The `end <count>` trailer
//! detects truncated files (a crash mid-write, though the atomic
//! temp-file + rename in [`PersistentStore::save`] makes that unlikely).
//!
//! Loading is *tolerant*: a missing, stale (hash mismatch) or corrupt
//! file yields an empty snapshot plus a [`LoadOutcome`] explaining why —
//! never an error, because the memo contents are pure caches that can
//! always be rebuilt.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use clover_cachesim::memo::{KernelSpec, RankBase, SimKey, SpecOperand};
use clover_cachesim::{AccessKind, MemCounters, SimMemo};
use clover_core::engine::PointKey;
use clover_core::{CodeVariant, ScalingPoint, SweepMemo, TrafficOptions};
use clover_machine::{ReplacementPolicyKind, WritePolicyKind};

use crate::model::model_hash;

/// Result of loading a store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The store was valid: this many entries were loaded.
    Warm(usize),
    /// No store file exists yet (first run).
    ColdMissing,
    /// The store was written under a different model hash — the presets,
    /// policies or schema changed, so every entry is untrusted.
    ColdStale,
    /// The store exists but is unreadable, truncated or malformed.
    ColdCorrupt,
}

impl LoadOutcome {
    /// Number of entries actually loaded (0 for every cold outcome).
    pub fn loaded(&self) -> usize {
        match self {
            LoadOutcome::Warm(n) => *n,
            _ => 0,
        }
    }
}

/// An in-memory snapshot of a store file's entries.
#[derive(Debug, Default)]
pub struct StoreSnapshot {
    /// Simulation entries.
    pub sims: Vec<(SimKey, MemCounters)>,
    /// Scaling-point entries.
    pub points: Vec<(PointKey, ScalingPoint)>,
}

impl StoreSnapshot {
    /// Total entry count.
    pub fn len(&self) -> usize {
        self.sims.len() + self.points.len()
    }

    /// True when the snapshot holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A versioned on-disk memo store at a fixed path.
#[derive(Debug, Clone)]
pub struct PersistentStore {
    path: PathBuf,
    model_hash: u64,
}

impl PersistentStore {
    /// A store at `path`, versioned by the current [`model_hash`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            model_hash: model_hash(),
        }
    }

    /// A store versioned by an explicit hash — lets tests write a store
    /// "from the past" and watch the invalidation path rebuild it.
    pub fn with_hash(path: impl Into<PathBuf>, model_hash: u64) -> Self {
        Self {
            path: path.into(),
            model_hash,
        }
    }

    /// The store file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The model hash this store reads and writes under.
    pub fn model_hash(&self) -> u64 {
        self.model_hash
    }

    /// Load the store file.  Never fails: a missing, stale or corrupt
    /// file yields an empty snapshot and the matching [`LoadOutcome`].
    pub fn load(&self) -> (StoreSnapshot, LoadOutcome) {
        let text = match fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return (StoreSnapshot::default(), LoadOutcome::ColdMissing)
            }
            Err(_) => return (StoreSnapshot::default(), LoadOutcome::ColdCorrupt),
        };
        match parse_store(&text, self.model_hash) {
            Ok(snapshot) => {
                let n = snapshot.len();
                (snapshot, LoadOutcome::Warm(n))
            }
            Err(ParseError::Stale) => (StoreSnapshot::default(), LoadOutcome::ColdStale),
            Err(ParseError::Corrupt) => (StoreSnapshot::default(), LoadOutcome::ColdCorrupt),
        }
    }

    /// Load the store file and publish its entries into `sim` and
    /// `sweep` (via their `preload`, which never clobbers existing
    /// entries and never touches hit/miss statistics).
    pub fn warm_load(&self, sim: &SimMemo, sweep: &SweepMemo) -> LoadOutcome {
        let (snapshot, outcome) = self.load();
        sim.preload(snapshot.sims);
        sweep.preload(snapshot.points);
        outcome
    }

    /// Atomically write the current contents of `sim` and `sweep` to the
    /// store file: the snapshot is rendered to a temp file in the same
    /// directory and renamed over the target, so a crash mid-write leaves
    /// either the old store or the new one, never a torn file.  Entries
    /// are written in sorted line order, so equal memo contents produce a
    /// byte-identical file.
    pub fn save(&self, sim: &SimMemo, sweep: &SweepMemo) -> io::Result<usize> {
        self.save_capped(sim, sweep, usize::MAX).map(|r| r.written)
    }

    /// [`save`](Self::save) bounded to at most `cap` entries: when the
    /// memos hold more, the *least recently touched* entries (lowest
    /// access stamp — preloaded-and-never-used entries sort first, see
    /// `FlightMemo::entries_stamped`) are evicted from the written file.
    /// The memos themselves are untouched; compaction only bounds what the
    /// next process warm-loads, so an unbounded corpus stops growing the
    /// store and its load cost forever.  The write path is the same
    /// atomic temp-file + rename codec as an uncapped save.
    pub fn save_capped(
        &self,
        sim: &SimMemo,
        sweep: &SweepMemo,
        cap: usize,
    ) -> io::Result<SaveReport> {
        let mut stamped: Vec<(u64, String)> = Vec::new();
        for (key, counters, stamp) in sim.entries_stamped() {
            stamped.push((stamp, encode_sim(&key, &counters)));
        }
        for (key, point, stamp) in sweep.entries_stamped() {
            stamped.push((stamp, encode_point(&key, &point)));
        }
        let evicted = stamped.len().saturating_sub(cap);
        if evicted > 0 {
            // Keep the `cap` most recently touched entries; equal stamps
            // tie-break on the encoded line so the kept set (and thus the
            // file) stays deterministic for equal memo states.
            stamped.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            stamped.truncate(cap);
        }
        let mut lines: Vec<String> = stamped.into_iter().map(|(_, line)| line).collect();
        lines.sort_unstable();
        let count = lines.len();

        let mut text = format!("cloverstore 1 {:016x}\n", self.model_hash);
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        let _ = writeln!(text, "end {count}");

        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let tmp = self.path.with_extension("tmp");
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, &self.path)?;
        Ok(SaveReport {
            written: count,
            evicted,
        })
    }
}

/// What a capped save did (see [`PersistentStore::save_capped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Entries written to the store file.
    pub written: usize,
    /// Entries the cap evicted from the written file (0 when everything
    /// fit — the save was an ordinary uncapped one).
    pub evicted: usize,
}

enum ParseError {
    Stale,
    Corrupt,
}

fn parse_store(text: &str, expected_hash: u64) -> Result<StoreSnapshot, ParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseError::Corrupt)?;
    let mut head = header.split_whitespace();
    if head.next() != Some("cloverstore") || head.next() != Some("1") {
        return Err(ParseError::Corrupt);
    }
    let hash = head
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or(ParseError::Corrupt)?;
    if head.next().is_some() {
        return Err(ParseError::Corrupt);
    }
    if hash != expected_hash {
        return Err(ParseError::Stale);
    }

    let mut snapshot = StoreSnapshot::default();
    let mut ended = false;
    for line in lines {
        if ended {
            // Trailing garbage after the `end` trailer.
            return Err(ParseError::Corrupt);
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.first() {
            Some(&"sim") => {
                let mut cur = Cursor::new(&tokens[1..]);
                let entry = decode_sim(&mut cur).ok_or(ParseError::Corrupt)?;
                if !cur.done() {
                    return Err(ParseError::Corrupt);
                }
                snapshot.sims.push(entry);
            }
            Some(&"point") => {
                let mut cur = Cursor::new(&tokens[1..]);
                let entry = decode_point(&mut cur).ok_or(ParseError::Corrupt)?;
                if !cur.done() {
                    return Err(ParseError::Corrupt);
                }
                snapshot.points.push(entry);
            }
            Some(&"end") => {
                let count: usize = tokens
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::Corrupt)?;
                if tokens.len() != 2 || count != snapshot.len() {
                    return Err(ParseError::Corrupt);
                }
                ended = true;
            }
            _ => return Err(ParseError::Corrupt),
        }
    }
    if !ended {
        // Truncated: the `end <count>` trailer never arrived.
        return Err(ParseError::Corrupt);
    }
    Ok(snapshot)
}

// ---------------------------------------------------------------------------
// Token-level codec

/// Percent-escape a string so it survives the whitespace tokenizer.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    // An empty string still needs a token on the line.
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

fn unesc(token: &str) -> Option<String> {
    if token == "%00" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

struct Cursor<'a, 'b> {
    tokens: &'a [&'b str],
    pos: usize,
}

impl<'a, 'b> Cursor<'a, 'b> {
    fn new(tokens: &'a [&'b str]) -> Self {
        Self { tokens, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos == self.tokens.len()
    }

    fn next(&mut self) -> Option<&'b str> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn string(&mut self) -> Option<String> {
        unesc(self.next()?)
    }

    fn usize(&mut self) -> Option<usize> {
        self.next()?.parse().ok()
    }

    fn u64(&mut self) -> Option<u64> {
        self.next()?.parse().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.next()?.parse().ok()
    }

    fn i64(&mut self) -> Option<i64> {
        self.next()?.parse().ok()
    }

    fn bits(&mut self) -> Option<u64> {
        u64::from_str_radix(self.next()?, 16).ok()
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.bits()?))
    }

    fn bool(&mut self) -> Option<bool> {
        match self.next()? {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        }
    }

    fn replacement(&mut self) -> Option<ReplacementPolicyKind> {
        ReplacementPolicyKind::parse(self.next()?)
    }

    fn write_policy(&mut self) -> Option<WritePolicyKind> {
        WritePolicyKind::parse(self.next()?)
    }
}

fn bool_token(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn variant_name(v: CodeVariant) -> &'static str {
    match v {
        CodeVariant::Original => "original",
        CodeVariant::SpecI2MOff => "speci2m-off",
        CodeVariant::Optimized => "optimized",
    }
}

fn parse_variant(token: &str) -> Option<CodeVariant> {
    match token {
        "original" => Some(CodeVariant::Original),
        "speci2m-off" => Some(CodeVariant::SpecI2MOff),
        "optimized" => Some(CodeVariant::Optimized),
        _ => None,
    }
}

fn kind_name(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Load => "load",
        AccessKind::Store => "store",
        AccessKind::StoreNT => "store-nt",
    }
}

fn parse_kind(token: &str) -> Option<AccessKind> {
    match token {
        "load" => Some(AccessKind::Load),
        "store" => Some(AccessKind::Store),
        "store-nt" => Some(AccessKind::StoreNT),
        _ => None,
    }
}

fn encode_kernel(out: &mut String, kernel: &KernelSpec) {
    match kernel.rank_base {
        RankBase::Shared => out.push_str(" shared"),
        RankBase::Shifted { shift, plus } => {
            let _ = write!(out, " shifted {shift} {plus}");
        }
    }
    let _ = write!(out, " {}", kernel.operands.len());
    for op in &kernel.operands {
        let _ = write!(out, " {} {}", op.offset, op.points.len());
        for (di, dk) in &op.points {
            let _ = write!(out, " {di} {dk}");
        }
        let _ = write!(out, " {}", kind_name(op.kind));
    }
    let _ = write!(
        out,
        " {} {} {} {} {}",
        kernel.row_stride, kernel.i0, kernel.inner, kernel.k0, kernel.rows
    );
}

fn decode_kernel(cur: &mut Cursor) -> Option<KernelSpec> {
    let rank_base = match cur.next()? {
        "shared" => RankBase::Shared,
        "shifted" => RankBase::Shifted {
            shift: cur.u32()?,
            plus: cur.u64()?,
        },
        _ => return None,
    };
    let n_ops = cur.usize()?;
    let mut operands = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let offset = cur.u64()?;
        let n_points = cur.usize()?;
        let mut points = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            points.push((cur.i64()?, cur.i64()?));
        }
        let kind = parse_kind(cur.next()?)?;
        operands.push(SpecOperand {
            offset,
            points,
            kind,
        });
    }
    Some(KernelSpec {
        rank_base,
        operands,
        row_stride: cur.u64()?,
        i0: cur.u64()?,
        inner: cur.u64()?,
        k0: cur.u64()?,
        rows: cur.u64()?,
    })
}

fn encode_sim(key: &SimKey, c: &MemCounters) -> String {
    let mut out = String::from("sim ");
    out.push_str(&esc(&key.machine));
    let _ = write!(
        out,
        " {:016x} {} {} {} {} {} {} {:016x} {} {} {}",
        key.utilization_bits,
        key.active_domains,
        key.total_domains,
        bool_token(key.speci2m_enabled),
        bool_token(key.adjacent_line),
        bool_token(key.streamer),
        key.streamer_distance,
        key.pf_off_evasion_bits,
        key.l3_sharers,
        key.replacement.name(),
        key.write_policy.name(),
    );
    encode_kernel(&mut out, &key.kernel);
    let _ = write!(
        out,
        " {} {} {} {} {} {}",
        f64_hex(c.read_lines),
        f64_hex(c.write_lines),
        f64_hex(c.itom_lines),
        f64_hex(c.write_allocate_lines),
        f64_hex(c.prefetch_lines),
        f64_hex(c.speculative_read_lines),
    );
    out
}

fn decode_sim(cur: &mut Cursor) -> Option<(SimKey, MemCounters)> {
    let machine = cur.string()?;
    let utilization_bits = cur.bits()?;
    let active_domains = cur.usize()?;
    let total_domains = cur.usize()?;
    let speci2m_enabled = cur.bool()?;
    let adjacent_line = cur.bool()?;
    let streamer = cur.bool()?;
    let streamer_distance = cur.u64()?;
    let pf_off_evasion_bits = cur.bits()?;
    let l3_sharers = cur.usize()?;
    let replacement = cur.replacement()?;
    let write_policy = cur.write_policy()?;
    let kernel = decode_kernel(cur)?;
    let counters = MemCounters {
        read_lines: cur.f64()?,
        write_lines: cur.f64()?,
        itom_lines: cur.f64()?,
        write_allocate_lines: cur.f64()?,
        prefetch_lines: cur.f64()?,
        speculative_read_lines: cur.f64()?,
    };
    Some((
        SimKey {
            machine,
            utilization_bits,
            active_domains,
            total_domains,
            speci2m_enabled,
            adjacent_line,
            streamer,
            streamer_distance,
            pf_off_evasion_bits,
            l3_sharers,
            replacement,
            write_policy,
            kernel,
        },
        counters,
    ))
}

fn encode_point(key: &PointKey, p: &ScalingPoint) -> String {
    let mut out = String::from("point ");
    out.push_str(&esc(&key.machine));
    let _ = write!(
        out,
        " {} {} {} {} {} {} {}",
        key.grid,
        key.ranks,
        variant_name(key.opts.variant),
        key.opts.ranks,
        bool_token(key.opts.layer_condition_ok),
        key.opts.replacement.name(),
        key.opts.write_policy.name(),
    );
    let _ = write!(
        out,
        " {} {} {} {} {} {} {} {}",
        p.ranks,
        bool_token(p.prime),
        p.local_inner,
        f64_hex(p.time_per_step),
        f64_hex(p.speedup),
        f64_hex(p.memory_bandwidth),
        f64_hex(p.volume_per_step),
        p.loop_balances.len(),
    );
    for (name, balance) in &p.loop_balances {
        let _ = write!(out, " {} {}", esc(name), f64_hex(*balance));
    }
    out
}

fn decode_point(cur: &mut Cursor) -> Option<(PointKey, ScalingPoint)> {
    let machine = cur.string()?;
    let grid = cur.usize()?;
    let ranks = cur.usize()?;
    let opts = TrafficOptions {
        variant: parse_variant(cur.next()?)?,
        ranks: cur.usize()?,
        layer_condition_ok: cur.bool()?,
        replacement: cur.replacement()?,
        write_policy: cur.write_policy()?,
    };
    let p_ranks = cur.usize()?;
    let prime = cur.bool()?;
    let local_inner = cur.usize()?;
    let time_per_step = cur.f64()?;
    let speedup = cur.f64()?;
    let memory_bandwidth = cur.f64()?;
    let volume_per_step = cur.f64()?;
    let n_loops = cur.usize()?;
    let mut loop_balances = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        loop_balances.push((cur.string()?, cur.f64()?));
    }
    Some((
        PointKey {
            machine,
            grid,
            ranks,
            opts,
        },
        ScalingPoint {
            ranks: p_ranks,
            prime,
            local_inner,
            time_per_step,
            speedup,
            memory_bandwidth,
            volume_per_step,
            loop_balances,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_cachesim::hierarchy::CoreSimOptions;
    use clover_cachesim::OccupancyContext;
    use clover_machine::icelake_sp_8360y;

    fn sample_sim_entry() -> (SimKey, MemCounters) {
        let m = icelake_sp_8360y();
        let kernel = KernelSpec {
            rank_base: RankBase::Shifted { shift: 36, plus: 1 },
            operands: vec![
                SpecOperand {
                    offset: 0,
                    points: vec![(0, 0), (-1, 1)],
                    kind: AccessKind::Load,
                },
                SpecOperand {
                    offset: 1 << 30,
                    points: vec![(0, 0)],
                    kind: AccessKind::StoreNT,
                },
            ],
            row_stride: 221,
            i0: 0,
            inner: 216,
            k0: 0,
            rows: 4,
        };
        let key = SimKey::new(
            &m,
            OccupancyContext::compact(&m, 18),
            CoreSimOptions::default(),
            &kernel,
        );
        let counters = MemCounters {
            read_lines: 1234.5,
            write_lines: 0.1 + 0.2, // deliberately not exactly 0.3
            itom_lines: f64::MIN_POSITIVE,
            write_allocate_lines: 1e300,
            prefetch_lines: 0.0,
            speculative_read_lines: -0.0,
        };
        (key, counters)
    }

    fn sample_point_entry() -> (PointKey, ScalingPoint) {
        let key = PointKey {
            machine: "icx-8360y".into(),
            grid: 15_360,
            ranks: 19,
            opts: TrafficOptions::optimized(19)
                .with_layer_condition(false)
                .with_replacement(ReplacementPolicyKind::Srrip)
                .with_write_policy(WritePolicyKind::NonTemporal),
        };
        let point = ScalingPoint {
            ranks: 19,
            prime: true,
            local_inner: 809,
            time_per_step: 0.123456789,
            speedup: 0.0,
            memory_bandwidth: 1.5e11,
            volume_per_step: 3.7e9,
            loop_balances: vec![("ac01".into(), 56.25), ("pdv p leg".into(), 1.0 / 3.0)],
        };
        (key, point)
    }

    #[test]
    fn sim_entries_round_trip_bit_exactly() {
        let (key, counters) = sample_sim_entry();
        let line = encode_sim(&key, &counters);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(tokens[0], "sim");
        let mut cur = Cursor::new(&tokens[1..]);
        let (rk, rc) = decode_sim(&mut cur).expect("decodes");
        assert!(cur.done());
        assert_eq!(rk, key);
        // Bit-for-bit, including -0.0 (PartialEq would say -0.0 == 0.0).
        assert_eq!(rc.read_lines.to_bits(), counters.read_lines.to_bits());
        assert_eq!(
            rc.speculative_read_lines.to_bits(),
            counters.speculative_read_lines.to_bits()
        );
        assert_eq!(rc, counters);
    }

    #[test]
    fn point_entries_round_trip_bit_exactly() {
        let (key, point) = sample_point_entry();
        let line = encode_point(&key, &point);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(tokens[0], "point");
        let mut cur = Cursor::new(&tokens[1..]);
        let (rk, rp) = decode_point(&mut cur).expect("decodes");
        assert!(cur.done());
        assert_eq!(rk, key);
        assert_eq!(
            rp.time_per_step.to_bits(),
            point.time_per_step.to_bits(),
            "f64 round trip must be bit-exact"
        );
        assert_eq!(rp, point);
        // The escaped loop name with a space survived.
        assert_eq!(rp.loop_balances[1].0, "pdv p leg");
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        for s in [
            "",
            "plain",
            "two words",
            "a%20b",
            "tab\there",
            "line\nbreak",
            "%",
        ] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("cloverstore-test-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("store.txt");
        let store = PersistentStore::with_hash(&path, 0xdead_beef);

        let sim = SimMemo::new();
        let sweep = SweepMemo::new();
        let (sk, sc) = sample_sim_entry();
        let (pk, pp) = sample_point_entry();
        sim.preload([(sk.clone(), sc)]);
        sweep.preload([(pk.clone(), pp.clone())]);
        assert_eq!(store.save(&sim, &sweep).unwrap(), 2);

        let (snapshot, outcome) = store.load();
        assert_eq!(outcome, LoadOutcome::Warm(2));
        assert_eq!(snapshot.sims, vec![(sk, sc)]);
        assert_eq!(snapshot.points, vec![(pk, pp)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_deterministic() {
        let dir = std::env::temp_dir().join("cloverstore-test-determinism");
        let _ = fs::remove_dir_all(&dir);
        let store_a = PersistentStore::with_hash(dir.join("a.txt"), 7);
        let store_b = PersistentStore::with_hash(dir.join("b.txt"), 7);
        let sim = SimMemo::new();
        let sweep = SweepMemo::new();
        let (sk, sc) = sample_sim_entry();
        let (pk, pp) = sample_point_entry();
        sim.preload([(sk, sc)]);
        sweep.preload([(pk, pp)]);
        store_a.save(&sim, &sweep).unwrap();
        store_b.save(&sim, &sweep).unwrap();
        assert_eq!(
            fs::read(store_a.path()).unwrap(),
            fs::read(store_b.path()).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_save_evicts_least_recently_touched_entries() {
        let dir = std::env::temp_dir().join("cloverstore-test-capped");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("store.txt");
        let store = PersistentStore::with_hash(&path, 11);

        let sim = SimMemo::new();
        let sweep = SweepMemo::new();
        let (sk, sc) = sample_sim_entry();
        // Preloaded and never touched: stamp 0, first eviction candidate.
        sim.preload([(sk.clone(), sc)]);
        let (pk, pp) = sample_point_entry();
        let old_key = PointKey {
            ranks: 3,
            ..pk.clone()
        };
        let new_key = PointKey {
            ranks: 5,
            ..pk.clone()
        };
        sweep.preload([(old_key.clone(), pp.clone()), (new_key.clone(), pp.clone())]);
        assert!(sweep.entries_stamped().iter().all(|(_, _, s)| *s == 0));
        // Touch only `new_key` (a memo hit): it becomes the most recent
        // entry and the only survivor of a cap of 1.
        let engine = clover_core::ScalingEngine::new(icelake_sp_8360y(), new_key.grid);
        let _ = engine.point_memo(new_key.ranks, &new_key.opts, &sweep);

        let report = store.save_capped(&sim, &sweep, 1).unwrap();
        assert_eq!(
            report,
            SaveReport {
                written: 1,
                evicted: 2
            }
        );
        let (snapshot, outcome) = store.load();
        assert_eq!(outcome, LoadOutcome::Warm(1));
        assert!(snapshot.sims.is_empty(), "stamp-0 sim entry evicted");
        assert_eq!(snapshot.points.len(), 1);
        assert_eq!(snapshot.points[0].0, new_key, "most recent entry survives");

        // A cap that fits everything is byte-identical to an uncapped save.
        let report = store.save_capped(&sim, &sweep, 10).unwrap();
        assert_eq!(report.evicted, 0);
        let capped_bytes = fs::read(store.path()).unwrap();
        assert_eq!(store.save(&sim, &sweep).unwrap(), report.written);
        assert_eq!(fs::read(store.path()).unwrap(), capped_bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_stale_and_corrupt_stores_load_cold() {
        let dir = std::env::temp_dir().join("cloverstore-test-cold");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.txt");

        // Missing file.
        let store = PersistentStore::with_hash(&path, 1);
        let (snapshot, outcome) = store.load();
        assert_eq!(outcome, LoadOutcome::ColdMissing);
        assert!(snapshot.is_empty());

        // Stale: written under hash 1, read under hash 2.
        let sim = SimMemo::new();
        let sweep = SweepMemo::new();
        let (pk, pp) = sample_point_entry();
        sweep.preload([(pk, pp)]);
        store.save(&sim, &sweep).unwrap();
        let (_, outcome) = PersistentStore::with_hash(&path, 2).load();
        assert_eq!(outcome, LoadOutcome::ColdStale);
        // Same hash still loads warm.
        assert_eq!(store.load().1, LoadOutcome::Warm(1));

        // Truncated: drop the trailer line.
        let full = fs::read_to_string(&path).unwrap();
        let truncated: String =
            full.lines()
                .take(full.lines().count() - 1)
                .fold(String::new(), |mut acc, line| {
                    acc.push_str(line);
                    acc.push('\n');
                    acc
                });
        fs::write(&path, truncated).unwrap();
        let (snapshot, outcome) = store.load();
        assert_eq!(outcome, LoadOutcome::ColdCorrupt);
        assert!(snapshot.is_empty());

        // Garbage bytes.
        fs::write(&path, "not a store at all\n").unwrap();
        assert_eq!(store.load().1, LoadOutcome::ColdCorrupt);

        // Mid-line corruption.
        store.save(&sim, &sweep).unwrap();
        let mangled = fs::read_to_string(&path).unwrap().replace("point", "pxint");
        fs::write(&path, mangled).unwrap();
        assert_eq!(store.load().1, LoadOutcome::ColdCorrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_entry_count_is_corrupt() {
        let dir = std::env::temp_dir().join("cloverstore-test-count");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.txt");
        let store = PersistentStore::with_hash(&path, 1);
        let sweep = SweepMemo::new();
        let (pk, pp) = sample_point_entry();
        sweep.preload([(pk, pp)]);
        store.save(&SimMemo::new(), &sweep).unwrap();
        let lied = fs::read_to_string(&path).unwrap().replace("end 1", "end 5");
        fs::write(&path, lied).unwrap();
        assert_eq!(store.load().1, LoadOutcome::ColdCorrupt);
        let _ = fs::remove_dir_all(&dir);
    }
}
