//! Bounded LRU response cache for the serve daemon.
//!
//! A repeated `sweep` request used to cost a full render even when every
//! point was a memo hit: re-expand the plan, rebuild the engines, walk the
//! memo per point, re-assemble and re-render the artifact text.  The
//! response cache short-circuits all of that for *identical* queries: the
//! canonical identity of a request's output bytes (see
//! `SweepArgs::cache_key` — scenario ids + output format, spelled-out and
//! default flags collapse onto one key, `--jobs` is excluded because the
//! output is jobs-invariant) maps straight to the rendered payload, so a
//! repeat query is an O(payload) byte copy.
//!
//! The cache is bounded by entry count and evicts the least recently used
//! entry (exact LRU via monotonic access stamps; eviction is an O(entries)
//! scan, negligible at the bounded sizes the daemon uses).  Hit, miss and
//! eviction counts are surfaced through the `stats` protocol verb.
//! Correctness is trivial by construction: a payload is stored only under
//! the canonical key of the request that produced it, and the underlying
//! evaluation is deterministic — a cached response is byte-identical to a
//! recomputed one, a property the service tests assert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Hit/miss/eviction counts of a [`ResponseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResponseCacheStats {
    /// Requests answered with a cached payload.
    pub hits: u64,
    /// Requests that had to evaluate and render.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

/// One cached payload plus its recency stamp.
struct CacheEntry {
    payload: Arc<String>,
    stamp: u64,
}

/// A bounded map from canonical request keys to rendered payloads with
/// exact-LRU eviction.
pub struct ResponseCache {
    entries: Mutex<HashMap<String, CacheEntry>>,
    cap: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// A cache holding at most `cap` payloads (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            cap: cap.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Capacity in entries.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Cached payload for `key`, refreshing its recency.  Counts a hit or
    /// a miss.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.payload))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `payload` under `key`, evicting the least recently used
    /// entry when the cache is full.  Racing inserts of the same key are
    /// harmless: the evaluation is deterministic, so both payloads are
    /// byte-identical and last-write-wins changes nothing observable.
    pub fn insert(&self, key: String, payload: Arc<String>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock();
        if !entries.contains_key(&key) && entries.len() >= self.cap {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(key, CacheEntry { payload, stamp });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counts since construction.
    pub fn stats(&self) -> ResponseCacheStats {
        ResponseCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hits_misses_and_payload_identity() {
        let cache = ResponseCache::new(4);
        assert_eq!(cache.get("a"), None);
        cache.insert("a".into(), payload("AAAA"));
        assert_eq!(cache.get("a").as_deref().map(|s| s.as_str()), Some("AAAA"));
        assert_eq!(
            cache.stats(),
            ResponseCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let cache = ResponseCache::new(2);
        cache.insert("a".into(), payload("A"));
        cache.insert("b".into(), payload("B"));
        // Touch `a`: `b` is now the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), payload("C"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResponseCache::new(2);
        cache.insert("a".into(), payload("A"));
        cache.insert("b".into(), payload("B"));
        cache.insert("a".into(), payload("A2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get("a").as_deref().map(|s| s.as_str()), Some("A2"));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = ResponseCache::new(0);
        assert_eq!(cache.cap(), 1);
        cache.insert("a".into(), payload("A"));
        cache.insert("b".into(), payload("B"));
        assert_eq!(cache.len(), 1);
    }
}
