//! The `figures serve` query daemon: a long-running sweep service over a
//! warm memo state.
//!
//! A [`SweepService`] owns one [`SweepMemo`] + [`SimMemo`] pair for its
//! whole lifetime (warm-loaded from a [`PersistentStore`] at startup,
//! written back on shutdown and on request), and answers a line-based
//! request protocol:
//!
//! ```text
//! sweep <axis flags...>   evaluate a sweep plan; the flags are exactly
//!                         the `figures sweep` command line (shared
//!                         parser), the response payload is byte-identical
//!                         to what `figures sweep` prints
//! stats                   memo hit/miss/entry counts
//! save                    persist the memo state now
//! ping                    liveness probe
//! quit                    save (if a store is configured) and disconnect
//! ```
//!
//! Responses are framed so payloads of any shape stream unambiguously:
//! `ok <byte count>\n<payload>` for sweeps, `error <message>\n` for
//! rejected requests (one line, same wording as the CLI usage errors),
//! and single `ok ...` lines for the control verbs.
//!
//! The daemon front ends ([`serve_stdin`], [`serve_unix`]) share
//! [`SweepService::serve`] over generic reader/writer pairs, so the whole
//! protocol is testable in-memory.  Under the unix-socket front end every
//! client thread shares the same service; identical in-flight keys across
//! concurrent clients collapse onto one evaluation (single-flight, a
//! property of the memos themselves).

use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clover_cachesim::SimMemo;
use clover_core::SweepMemo;
use clover_scenario::{render_block, run_plan_memo, SweepArgs};

use crate::store::{LoadOutcome, PersistentStore};

/// A long-lived sweep evaluator: the memo state, optionally backed by a
/// persistent store.
pub struct SweepService {
    sim: SimMemo,
    sweep: SweepMemo,
    store: Option<PersistentStore>,
    /// Requests answered so far (all verbs).
    requests: AtomicU64,
}

impl Default for SweepService {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepService {
    /// A service with empty memos and no backing store.
    pub fn new() -> Self {
        Self {
            sim: SimMemo::new(),
            sweep: SweepMemo::new(),
            store: None,
            requests: AtomicU64::new(0),
        }
    }

    /// A service backed by `store`: the store is warm-loaded immediately
    /// (missing/stale/corrupt stores yield empty memos, see
    /// [`LoadOutcome`]) and written back by `save` requests, `quit` and
    /// [`serve`](Self::serve) shutdown.
    pub fn with_store(store: PersistentStore) -> (Self, LoadOutcome) {
        let mut service = Self::new();
        let outcome = store.warm_load(&service.sim, &service.sweep);
        service.store = Some(store);
        (service, outcome)
    }

    /// The simulation memo (shared across every request and client).
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim
    }

    /// The scaling-point memo (shared across every request and client).
    pub fn sweep_memo(&self) -> &SweepMemo {
        &self.sweep
    }

    /// Persist the memo state, if a store is configured.  Returns the
    /// number of entries written, or `None` without a store.
    pub fn save(&self) -> io::Result<Option<usize>> {
        match &self.store {
            Some(store) => store.save(&self.sim, &self.sweep).map(Some),
            None => Ok(None),
        }
    }

    /// Answer one request line with the response to send back.  Exposed
    /// for tests and for front ends with their own framing.
    pub fn handle_request(&self, line: &str) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let trimmed = line.trim();
        let mut words = trimmed.split_whitespace();
        match words.next() {
            None => Response::Empty,
            Some("ping") => Response::Line("ok pong".into()),
            Some("stats") => {
                let (sweep_hits, sweep_misses) = self.sweep.stats();
                let sim = self.sim.stats();
                Response::Line(format!(
                    "ok stats sweep-hits {sweep_hits} sweep-misses {sweep_misses} \
                     sweep-entries {} sim-hits {} sim-misses {} sim-entries {} \
                     requests {}",
                    self.sweep.len(),
                    sim.hits,
                    sim.misses,
                    self.sim.len(),
                    self.requests.load(Ordering::Relaxed),
                ))
            }
            Some("save") => match self.save() {
                Ok(Some(n)) => Response::Line(format!("ok saved {n}")),
                Ok(None) => Response::Line("error no store configured".into()),
                Err(e) => Response::Line(format!("error save failed: {e}")),
            },
            Some("quit") => Response::Quit,
            Some("sweep") => {
                let args: Vec<String> = words.map(str::to_string).collect();
                match SweepArgs::parse(&args) {
                    Err(message) => Response::Line(format!("error sweep: {message}")),
                    Ok(parsed) => {
                        let artifacts = run_plan_memo(&parsed.plan, parsed.jobs, &self.sweep);
                        // Exactly the bytes `figures sweep` prints for the
                        // same flags — byte-identity is the contract.
                        let payload = if parsed.json {
                            let blocks: Vec<String> =
                                artifacts.iter().map(|a| a.to_json()).collect();
                            format!("[{}]\n", blocks.join(","))
                        } else {
                            artifacts.iter().map(render_block).collect()
                        };
                        Response::Payload(payload)
                    }
                }
            }
            Some(other) => Response::Line(format!(
                "error unknown request '{other}' (known: sweep, stats, save, ping, quit)"
            )),
        }
    }

    /// Serve requests from `reader` line by line until `quit` or EOF,
    /// writing framed responses to `writer`; then persist the memo state
    /// (when a store is configured).  Batched requests — several lines
    /// sent at once — are answered in order.
    pub fn serve(&self, reader: impl BufRead, writer: &mut impl Write) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            match self.handle_request(&line) {
                Response::Empty => {}
                Response::Line(text) => {
                    writer.write_all(text.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                Response::Payload(payload) => {
                    write!(writer, "ok {}\n", payload.len())?;
                    writer.write_all(payload.as_bytes())?;
                    writer.flush()?;
                }
                Response::Quit => {
                    let text = match self.save() {
                        Ok(Some(n)) => format!("ok bye saved {n}"),
                        Ok(None) => "ok bye".to_string(),
                        Err(e) => format!("error save failed: {e}"),
                    };
                    writer.write_all(text.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
        // EOF: persist like a clean quit, but best-effort (the peer is
        // gone; nobody can observe an error response).
        let _ = self.save();
        Ok(())
    }
}

/// One response of [`SweepService::handle_request`].
#[derive(Debug, PartialEq, Eq)]
pub enum Response {
    /// Blank request line; nothing is written.
    Empty,
    /// A single response line (without the trailing newline).
    Line(String),
    /// A sweep payload, framed as `ok <byte count>\n<payload>`.
    Payload(String),
    /// `quit`: acknowledge, save and stop serving this client.
    Quit,
}

/// Serve the request protocol over stdin/stdout until EOF or `quit`.
pub fn serve_stdin(service: &SweepService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    service.serve(stdin.lock(), &mut out)
}

/// Serve the request protocol on a unix socket, one thread per client,
/// all clients sharing `service` (and therefore its memos: identical
/// in-flight keys across clients are evaluated once).  Binds `path`,
/// removing a stale socket file first; runs until the process is killed.
pub fn serve_unix(service: Arc<SweepService>, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A previous daemon's socket file would make bind fail with
    // AddrInUse; connecting to decide liveness is overkill for a
    // local tool — take the path over.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        workers.push(std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            service.serve(reader, &mut writer)
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sweep_line(rest: &str) -> String {
        format!("sweep --machine icx-8360y --ranks 1..8 --grid 1920 --jobs 2{rest}")
    }

    fn run(service: &SweepService, input: &str) -> String {
        let mut out = Vec::new();
        service
            .serve(Cursor::new(input.as_bytes()), &mut out)
            .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn ping_and_unknown_requests() {
        let service = SweepService::new();
        assert_eq!(
            service.handle_request("ping"),
            Response::Line("ok pong".into())
        );
        assert_eq!(service.handle_request("  "), Response::Empty);
        let Response::Line(err) = service.handle_request("launch-missiles") else {
            panic!("expected an error line");
        };
        assert!(err.starts_with("error unknown request 'launch-missiles'"));
    }

    #[test]
    fn sweep_payload_is_byte_identical_to_run_plan() {
        let service = SweepService::new();
        let args: Vec<String> = [
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..8",
            "--grid",
            "1920",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = SweepArgs::parse(&args).unwrap();
        let expected: String = run_plan_memo(&parsed.plan, 2, &SweepMemo::new())
            .iter()
            .map(render_block)
            .collect();
        let Response::Payload(payload) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(payload, expected);
    }

    #[test]
    fn repeated_sweeps_are_served_warm_and_identical() {
        let service = SweepService::new();
        let Response::Payload(cold) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        let (_, cold_misses) = service.sweep_memo().stats();
        assert_eq!(cold_misses, 8);
        let Response::Payload(warm) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(cold, warm, "warm responses must be byte-identical");
        let (hits, misses) = service.sweep_memo().stats();
        assert_eq!(misses, 8, "second request evaluated nothing");
        assert_eq!(hits, 8, "second request was served from the memo");
    }

    #[test]
    fn malformed_sweeps_error_without_payload() {
        let service = SweepService::new();
        let Response::Line(err) = service.handle_request("sweep --machine epyc --ranks 1..4")
        else {
            panic!("expected an error line");
        };
        assert!(err.starts_with("error sweep:"), "{err}");
        assert!(err.contains("unknown machine"), "{err}");
        assert!(err.contains('\n') == false, "errors are one line");
        assert_eq!(service.sweep_memo().len(), 0);
    }

    #[test]
    fn serve_loop_frames_batched_requests_in_order() {
        let service = SweepService::new();
        let input = format!("ping\n{}\nstats\n", sweep_line(""));
        let output = run(&service, &input);
        let mut lines = output.lines();
        assert_eq!(lines.next(), Some("ok pong"));
        let frame = lines.next().unwrap();
        let payload_len: usize = frame
            .strip_prefix("ok ")
            .and_then(|n| n.parse().ok())
            .expect("ok <len> frame");
        let rest: Vec<&str> = lines.collect();
        // The payload spans payload_len bytes; the stats line follows it.
        let payload_and_stats = rest.join("\n");
        assert!(payload_and_stats.len() > payload_len);
        let stats_line = &payload_and_stats[payload_len..];
        assert!(stats_line.starts_with("ok stats "), "{stats_line}");
        assert!(stats_line.contains("sweep-misses 8"), "{stats_line}");
    }

    #[test]
    fn quit_acknowledges_and_stops() {
        let service = SweepService::new();
        let output = run(&service, "ping\nquit\nping\n");
        assert_eq!(output, "ok pong\nok bye\n");
    }

    #[test]
    fn save_without_a_store_is_a_clean_error() {
        let service = SweepService::new();
        assert_eq!(
            service.handle_request("save"),
            Response::Line("error no store configured".into())
        );
    }
}
