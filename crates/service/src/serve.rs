//! The `figures serve` query daemon: a long-running sweep service over a
//! warm memo state.
//!
//! A [`SweepService`] owns one [`SweepMemo`] + [`SimMemo`] pair for its
//! whole lifetime (warm-loaded from a [`PersistentStore`] at startup,
//! written back on shutdown and on request), and answers a line-based
//! request protocol:
//!
//! ```text
//! sweep <axis flags...>   evaluate a sweep plan; the flags are exactly
//!                         the `figures sweep` command line (shared
//!                         parser), the response payload is byte-identical
//!                         to what `figures sweep` prints
//! stats                   memo hit/miss/entry counts
//! save                    persist the memo state now
//! ping                    liveness probe
//! quit                    save (if a store is configured) and disconnect
//! ```
//!
//! Responses are framed so payloads of any shape stream unambiguously:
//! `ok <byte count>\n<payload>` for sweeps, `error <message>\n` for
//! rejected requests (one line, same wording as the CLI usage errors),
//! and single `ok ...` lines for the control verbs.
//!
//! The daemon front ends ([`serve_stdin`], [`serve_unix`]) share
//! [`SweepService::serve`] over generic reader/writer pairs, so the whole
//! protocol is testable in-memory.  The unix-socket front end is a
//! bounded-concurrency pipeline (PR 10): an acceptor thread feeds accepted
//! connections into a sharded MPMC queue drained by a fixed worker pool
//! (`--workers N`), every worker sharing one service.  Cross-request
//! coalescing happens in the shared state: identical in-flight keys across
//! concurrent clients collapse onto one evaluation (single-flight, a
//! property of the memos themselves), overlapping plans share their
//! `(scenario, point)` work units through the common [`SweepMemo`], and
//! *identical* requests short-circuit to an O(payload) byte copy through a
//! bounded LRU [`ResponseCache`] keyed by the canonical request identity
//! (`SweepArgs::cache_key` + model hash).

use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clover_cachesim::SimMemo;
use clover_core::SweepMemo;
use clover_scenario::{render_block, run_plan_memo, SweepArgs};

use crate::cache::{ResponseCache, ResponseCacheStats};
use crate::model::model_hash;
use crate::pool::{ShardedQueue, WorkerPool};
use crate::store::{LoadOutcome, PersistentStore};

/// Default response-cache capacity (payload entries) of a new service.
pub const DEFAULT_RESPONSE_CACHE_ENTRIES: usize = 128;

/// A long-lived sweep evaluator: the memo state, optionally backed by a
/// persistent store, fronted by a bounded LRU response cache.
pub struct SweepService {
    sim: SimMemo,
    sweep: SweepMemo,
    store: Option<PersistentStore>,
    /// Rendered-payload cache; `None` disables response caching (every
    /// request evaluates through the memos, the PR 7 behavior).
    responses: Option<ResponseCache>,
    /// Entry bound applied when persisting the memos (see
    /// [`PersistentStore::save_capped`]); `None` saves everything.
    store_cap: Option<usize>,
    /// Per-request `--jobs` clamp; `None` trusts the request.  The pooled
    /// daemon sets this so `workers × jobs` cannot oversubscribe the
    /// machine (output is byte-identical for any jobs count, so clamping
    /// is invisible in the payload).
    max_jobs: Option<usize>,
    /// Requests answered so far (all verbs).
    requests: AtomicU64,
    /// Store entries evicted by capped saves so far.
    store_evictions: AtomicU64,
    /// Capped saves that actually evicted (compaction passes) so far.
    store_compactions: AtomicU64,
}

impl Default for SweepService {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepService {
    /// A service with empty memos, no backing store and a default-sized
    /// response cache.
    pub fn new() -> Self {
        Self {
            sim: SimMemo::new(),
            sweep: SweepMemo::new(),
            store: None,
            responses: Some(ResponseCache::new(DEFAULT_RESPONSE_CACHE_ENTRIES)),
            store_cap: None,
            max_jobs: None,
            requests: AtomicU64::new(0),
            store_evictions: AtomicU64::new(0),
            store_compactions: AtomicU64::new(0),
        }
    }

    /// A service backed by `store`: the store is warm-loaded immediately
    /// (missing/stale/corrupt stores yield empty memos, see
    /// [`LoadOutcome`]) and written back by `save` requests, `quit` and
    /// [`serve`](Self::serve) shutdown.
    pub fn with_store(store: PersistentStore) -> (Self, LoadOutcome) {
        let mut service = Self::new();
        let outcome = store.warm_load(&service.sim, &service.sweep);
        service.store = Some(store);
        (service, outcome)
    }

    /// Replace the response cache with one holding `cap` payloads.
    pub fn with_response_cache(mut self, cap: usize) -> Self {
        self.responses = Some(ResponseCache::new(cap));
        self
    }

    /// Disable the response cache: every request evaluates through the
    /// memos (the PR 7 request path; the bench baseline uses this).
    pub fn without_response_cache(mut self) -> Self {
        self.responses = None;
        self
    }

    /// Bound persisted snapshots to `cap` entries: saves become
    /// compaction passes that evict the least recently touched entries
    /// (see [`PersistentStore::save_capped`]).
    pub fn with_store_cap(mut self, cap: usize) -> Self {
        self.store_cap = Some(cap);
        self
    }

    /// Clamp every request's `--jobs` to at most `max_jobs`.  Output is
    /// byte-identical for any jobs count, so this changes scheduling
    /// only; the pooled daemon uses it to keep `workers × jobs` within
    /// the machine's parallelism.
    pub fn with_max_jobs(mut self, max_jobs: usize) -> Self {
        self.max_jobs = Some(max_jobs.max(1));
        self
    }

    /// The simulation memo (shared across every request and client).
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim
    }

    /// The scaling-point memo (shared across every request and client).
    pub fn sweep_memo(&self) -> &SweepMemo {
        &self.sweep
    }

    /// Response-cache statistics (zeros when the cache is disabled).
    pub fn response_stats(&self) -> ResponseCacheStats {
        self.responses
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Persist the memo state, if a store is configured.  Returns the
    /// number of entries written, or `None` without a store.  With a
    /// store cap the save is a compaction pass: the least recently
    /// touched entries beyond the cap are evicted from the written file
    /// (counted in the `stats` verb's `store-evictions` /
    /// `store-compactions`).
    pub fn save(&self) -> io::Result<Option<usize>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        match self.store_cap {
            Some(cap) => {
                let report = store.save_capped(&self.sim, &self.sweep, cap)?;
                if report.evicted > 0 {
                    self.store_evictions
                        .fetch_add(report.evicted as u64, Ordering::Relaxed);
                    self.store_compactions.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Some(report.written))
            }
            None => store.save(&self.sim, &self.sweep).map(Some),
        }
    }

    /// Answer one request line with the response to send back.  Exposed
    /// for tests and for front ends with their own framing.
    pub fn handle_request(&self, line: &str) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let trimmed = line.trim();
        let mut words = trimmed.split_whitespace();
        match words.next() {
            None => Response::Empty,
            Some("ping") => Response::Line("ok pong".into()),
            Some("stats") => {
                let (sweep_hits, sweep_misses) = self.sweep.stats();
                let sim = self.sim.stats();
                let responses = self.response_stats();
                Response::Line(format!(
                    "ok stats sweep-hits {sweep_hits} sweep-misses {sweep_misses} \
                     sweep-entries {} sim-hits {} sim-misses {} sim-entries {} \
                     requests {} response-hits {} response-misses {} \
                     response-evictions {} store-evictions {} store-compactions {}",
                    self.sweep.len(),
                    sim.hits,
                    sim.misses,
                    self.sim.len(),
                    self.requests.load(Ordering::Relaxed),
                    responses.hits,
                    responses.misses,
                    responses.evictions,
                    self.store_evictions.load(Ordering::Relaxed),
                    self.store_compactions.load(Ordering::Relaxed),
                ))
            }
            Some("save") => match self.save() {
                Ok(Some(n)) => Response::Line(format!("ok saved {n}")),
                Ok(None) => Response::Line("error no store configured".into()),
                Err(e) => Response::Line(format!("error save failed: {e}")),
            },
            Some("quit") => Response::Quit,
            Some("sweep") => {
                let args: Vec<String> = words.map(str::to_string).collect();
                match SweepArgs::parse(&args) {
                    Err(message) => Response::Line(format!("error sweep: {message}")),
                    Ok(parsed) => {
                        // Canonical output identity: collapses flag
                        // spellings and `--jobs`, versioned by the model
                        // hash like the persistent store.
                        let key = self
                            .responses
                            .as_ref()
                            .map(|_| format!("{:016x}\n{}", model_hash(), parsed.cache_key()));
                        if let (Some(cache), Some(key)) = (&self.responses, &key) {
                            if let Some(payload) = cache.get(key) {
                                // Repeat query: an O(payload) byte copy,
                                // byte-identical by construction (payloads
                                // are stored under the canonical key of
                                // the deterministic evaluation that
                                // produced them).
                                return Response::Payload((*payload).clone());
                            }
                        }
                        let jobs = parsed.jobs.min(self.max_jobs.unwrap_or(usize::MAX)).max(1);
                        let artifacts = run_plan_memo(&parsed.plan, jobs, &self.sweep);
                        // Exactly the bytes `figures sweep` prints for the
                        // same flags — byte-identity is the contract.
                        let payload = if parsed.json {
                            let blocks: Vec<String> =
                                artifacts.iter().map(|a| a.to_json()).collect();
                            format!("[{}]\n", blocks.join(","))
                        } else {
                            artifacts.iter().map(render_block).collect()
                        };
                        if let (Some(cache), Some(key)) = (&self.responses, key) {
                            cache.insert(key, Arc::new(payload.clone()));
                        }
                        Response::Payload(payload)
                    }
                }
            }
            Some(other) => Response::Line(format!(
                "error unknown request '{other}' (known: sweep, stats, save, ping, quit)"
            )),
        }
    }

    /// Serve requests from `reader` line by line until `quit` or EOF,
    /// writing framed responses to `writer`; then persist the memo state
    /// (when a store is configured).  Batched requests — several lines
    /// sent at once — are answered in order.
    pub fn serve(&self, reader: impl BufRead, writer: &mut impl Write) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            match self.handle_request(&line) {
                Response::Empty => {}
                Response::Line(text) => {
                    writer.write_all(text.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                Response::Payload(payload) => {
                    write!(writer, "ok {}\n", payload.len())?;
                    writer.write_all(payload.as_bytes())?;
                    writer.flush()?;
                }
                Response::Quit => {
                    let text = match self.save() {
                        Ok(Some(n)) => format!("ok bye saved {n}"),
                        Ok(None) => "ok bye".to_string(),
                        Err(e) => format!("error save failed: {e}"),
                    };
                    writer.write_all(text.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    return Ok(());
                }
            }
        }
        // EOF: persist like a clean quit, but best-effort (the peer is
        // gone; nobody can observe an error response).
        let _ = self.save();
        Ok(())
    }
}

/// One response of [`SweepService::handle_request`].
#[derive(Debug, PartialEq, Eq)]
pub enum Response {
    /// Blank request line; nothing is written.
    Empty,
    /// A single response line (without the trailing newline).
    Line(String),
    /// A sweep payload, framed as `ok <byte count>\n<payload>`.
    Payload(String),
    /// `quit`: acknowledge, save and stop serving this client.
    Quit,
}

/// Serve the request protocol over stdin/stdout until EOF or `quit`.
pub fn serve_stdin(service: &SweepService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    service.serve(stdin.lock(), &mut out)
}

/// Serve the request protocol on a unix socket with a bounded worker
/// pool: the acceptor thread pushes accepted connections into a sharded
/// MPMC queue drained by exactly `workers` pool threads (clamped to
/// ≥ 1), all sharing `service` — identical in-flight keys across
/// concurrent clients are evaluated once, overlapping plans share their
/// per-point flights, identical requests hit the response cache.  Accept
/// and per-connection IO errors are logged and the daemon keeps serving
/// (PR 7's front end died on the first accept error and accumulated one
/// unreaped thread per client).  Binds `path`, removing a stale socket
/// file first; runs until the process is killed.
pub fn serve_unix(
    service: Arc<SweepService>,
    path: &std::path::Path,
    workers: usize,
) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    // A previous daemon's socket file would make bind fail with
    // AddrInUse; connecting to decide liveness is overkill for a
    // local tool — take the path over.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let workers = workers.max(1);
    // A short connection backlog per worker: the acceptor blocks (and the
    // kernel's own listen backlog absorbs bursts) instead of the queue
    // growing without bound.
    let queue: Arc<ShardedQueue<UnixStream>> = Arc::new(ShardedQueue::bounded(workers * 2));
    let pool = WorkerPool::spawn(Arc::clone(&queue), workers, {
        let service = Arc::clone(&service);
        move |stream: UnixStream| {
            let served = (|| -> io::Result<()> {
                let reader = BufReader::new(stream.try_clone()?);
                let mut writer = stream;
                service.serve(reader, &mut writer)
            })();
            if let Err(e) = served {
                // One client's broken pipe must not take the daemon (or
                // this worker) down.
                eprintln!("figures serve: client connection error: {e}; continuing");
            }
        }
    });
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if queue.push(stream).is_err() {
                    break; // queue closed: shutting down
                }
            }
            Err(e) => {
                eprintln!("figures serve: accept failed: {e}; continuing");
            }
        }
    }
    queue.close();
    pool.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sweep_line(rest: &str) -> String {
        format!("sweep --machine icx-8360y --ranks 1..8 --grid 1920 --jobs 2{rest}")
    }

    fn run(service: &SweepService, input: &str) -> String {
        let mut out = Vec::new();
        service
            .serve(Cursor::new(input.as_bytes()), &mut out)
            .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn ping_and_unknown_requests() {
        let service = SweepService::new();
        assert_eq!(
            service.handle_request("ping"),
            Response::Line("ok pong".into())
        );
        assert_eq!(service.handle_request("  "), Response::Empty);
        let Response::Line(err) = service.handle_request("launch-missiles") else {
            panic!("expected an error line");
        };
        assert!(err.starts_with("error unknown request 'launch-missiles'"));
    }

    #[test]
    fn sweep_payload_is_byte_identical_to_run_plan() {
        let service = SweepService::new();
        let args: Vec<String> = [
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..8",
            "--grid",
            "1920",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = SweepArgs::parse(&args).unwrap();
        let expected: String = run_plan_memo(&parsed.plan, 2, &SweepMemo::new())
            .iter()
            .map(render_block)
            .collect();
        let Response::Payload(payload) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(payload, expected);
    }

    #[test]
    fn repeated_sweeps_hit_the_response_cache_and_stay_identical() {
        let service = SweepService::new();
        let Response::Payload(cold) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        let (_, cold_misses) = service.sweep_memo().stats();
        assert_eq!(cold_misses, 8);
        let Response::Payload(warm) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(cold, warm, "warm responses must be byte-identical");
        // The repeat was an O(payload) response-cache copy: the memo was
        // not consulted again.
        let (hits, misses) = service.sweep_memo().stats();
        assert_eq!(misses, 8, "second request evaluated nothing");
        assert_eq!(hits, 0, "second request never reached the memo");
        let responses = service.response_stats();
        assert_eq!((responses.hits, responses.misses), (1, 1));
        // A different spelling of the same plan is still one cache entry
        // (`--jobs` is excluded from the canonical key).
        let Response::Payload(respelled) = service.handle_request(&sweep_line(" --stage original"))
        else {
            panic!("expected a payload");
        };
        assert_eq!(cold, respelled);
        assert_eq!(service.response_stats().hits, 2);
    }

    #[test]
    fn disabling_the_response_cache_restores_memo_serving() {
        let service = SweepService::new().without_response_cache();
        let Response::Payload(cold) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        let Response::Payload(warm) = service.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(cold, warm);
        let (hits, misses) = service.sweep_memo().stats();
        assert_eq!(misses, 8, "second request evaluated nothing");
        assert_eq!(hits, 8, "second request was served from the memo");
        assert_eq!(service.response_stats(), Default::default());
    }

    #[test]
    fn jobs_clamp_changes_scheduling_not_bytes() {
        let unclamped = SweepService::new().without_response_cache();
        let clamped = SweepService::new()
            .without_response_cache()
            .with_max_jobs(1);
        let Response::Payload(a) = unclamped.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        let Response::Payload(b) = clamped.handle_request(&sweep_line("")) else {
            panic!("expected a payload");
        };
        assert_eq!(a, b, "clamped jobs must not change a byte");
    }

    #[test]
    fn stats_line_reports_response_and_store_counters() {
        let service = SweepService::new();
        let _ = service.handle_request(&sweep_line(""));
        let _ = service.handle_request(&sweep_line(""));
        let Response::Line(stats) = service.handle_request("stats") else {
            panic!("expected a stats line");
        };
        // The PR 7 prefix is untouched (CI greps depend on it) and the
        // new counters ride behind `requests`.
        assert!(stats.starts_with("ok stats sweep-hits "), "{stats}");
        assert!(
            stats.contains(
                "response-hits 1 response-misses 1 response-evictions 0 \
                 store-evictions 0 store-compactions 0"
            ),
            "{stats}"
        );
    }

    #[test]
    fn malformed_sweeps_error_without_payload() {
        let service = SweepService::new();
        let Response::Line(err) = service.handle_request("sweep --machine epyc --ranks 1..4")
        else {
            panic!("expected an error line");
        };
        assert!(err.starts_with("error sweep:"), "{err}");
        assert!(err.contains("unknown machine"), "{err}");
        assert!(err.contains('\n') == false, "errors are one line");
        assert_eq!(service.sweep_memo().len(), 0);
    }

    #[test]
    fn serve_loop_frames_batched_requests_in_order() {
        let service = SweepService::new();
        let input = format!("ping\n{}\nstats\n", sweep_line(""));
        let output = run(&service, &input);
        let mut lines = output.lines();
        assert_eq!(lines.next(), Some("ok pong"));
        let frame = lines.next().unwrap();
        let payload_len: usize = frame
            .strip_prefix("ok ")
            .and_then(|n| n.parse().ok())
            .expect("ok <len> frame");
        let rest: Vec<&str> = lines.collect();
        // The payload spans payload_len bytes; the stats line follows it.
        let payload_and_stats = rest.join("\n");
        assert!(payload_and_stats.len() > payload_len);
        let stats_line = &payload_and_stats[payload_len..];
        assert!(stats_line.starts_with("ok stats "), "{stats_line}");
        assert!(stats_line.contains("sweep-misses 8"), "{stats_line}");
    }

    #[test]
    fn quit_acknowledges_and_stops() {
        let service = SweepService::new();
        let output = run(&service, "ping\nquit\nping\n");
        assert_eq!(output, "ok pong\nok bye\n");
    }

    #[test]
    fn save_without_a_store_is_a_clean_error() {
        let service = SweepService::new();
        assert_eq!(
            service.handle_request("save"),
            Response::Line("error no store configured".into())
        );
    }
}
