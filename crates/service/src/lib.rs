//! `clover-service` — sweep-as-a-service: persistent memo stores and the
//! `figures serve` query daemon.
//!
//! The paper's whole argument rests on cheap re-evaluation of the traffic
//! model across machines, grids and policy variants; the memo layers
//! (`clover_cachesim::SimMemo`, `clover_core::SweepMemo`) make that cheap
//! *within* a process, and this crate makes it durable *across*
//! processes:
//!
//! * [`model`] — the model hash versioning persisted entries: a
//!   fingerprint of every machine preset, the policy registries and the
//!   simulator/model schema versions, so any change that could alter a
//!   cached value invalidates the store wholesale,
//! * [`store`] — [`PersistentStore`]: a bit-exact text codec for memo
//!   snapshots with atomic (temp file + rename) writes and tolerant loads
//!   (missing, stale or corrupt stores rebuild instead of crashing),
//! * [`serve`] — [`SweepService`]: a long-running request loop over
//!   stdin or a unix socket, answering batched `sweep` requests from the
//!   warm memo state with byte-identical `figures sweep` output, plus
//!   `stats`/`save`/`ping`/`quit` control verbs,
//! * [`pool`] — the bounded-concurrency front end: a sharded MPMC
//!   [`ShardedQueue`] plus a fixed [`WorkerPool`], so the unix-socket
//!   daemon serves any client count with a fixed thread budget,
//! * [`cache`] — a bounded LRU [`ResponseCache`] over rendered payloads:
//!   repeat queries become an O(payload) byte copy.
//!
//! `figures serve` (crate `clover-bench`) is a thin front end over this
//! crate; `figures sweep --store <path>` uses [`PersistentStore`]
//! directly for one-shot warm restarts.

pub mod cache;
pub mod model;
pub mod pool;
pub mod serve;
pub mod store;

pub use cache::{ResponseCache, ResponseCacheStats};
pub use model::model_hash;
pub use pool::{default_workers, ShardedQueue, WorkerPool};
pub use serve::{serve_stdin, serve_unix, Response, SweepService, DEFAULT_RESPONSE_CACHE_ENTRIES};
pub use store::{LoadOutcome, PersistentStore, SaveReport, StoreSnapshot};
