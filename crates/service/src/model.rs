//! Model-hash versioning of persisted memo stores.
//!
//! A persisted memo entry is only valid while *everything it depends on*
//! is unchanged: the machine presets (topology, caches, bandwidth,
//! SpecI2M parameters), the policy registries, and the schema of the
//! simulator and the analytic models.  [`model_hash`] folds all of that
//! into one 64-bit fingerprint; a store written under a different hash is
//! stale and is rebuilt from scratch instead of being loaded
//! ([`crate::store::PersistentStore`]).
//!
//! The hash is deterministic across processes and runs: it uses the
//! standard library's `DefaultHasher` *with its default keys* (SipHash
//! with fixed zero keys — `RandomState` would differ per process) over
//! the `Debug` rendering of every preset machine.  The `Debug` view
//! covers every structural field, so changing a cache size, a bandwidth
//! curve or a SpecI2M parameter changes the hash without anyone having to
//! remember to bump a version constant; the schema constants cover
//! behavioural changes that leave the data structures untouched.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use clover_machine::{replacement_names, write_policy_names, MachinePreset};

/// Fingerprint of everything persisted memo entries depend on.  Equal
/// hashes mean a store's entries are exactly reproducible by the current
/// binary; different hashes force a clean rebuild.
///
/// The hash depends only on compiled-in constants and presets, so it is
/// computed once per process: the serve daemon folds it into every
/// response-cache key, and re-rendering every preset's `Debug` view per
/// request would dwarf the cache hit it keys.
pub fn model_hash() -> u64 {
    static HASH: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *HASH.get_or_init(|| {
        hash_with_schema(
            clover_cachesim::SIM_SCHEMA_VERSION,
            clover_core::MODEL_SCHEMA_VERSION,
        )
    })
}

/// [`model_hash`] with explicit schema versions — exists so tests can
/// produce the hash a *different* (past or future) schema would have
/// written without patching the library.
pub fn hash_with_schema(sim_schema: u32, model_schema: u32) -> u64 {
    let mut hasher = DefaultHasher::new();
    sim_schema.hash(&mut hasher);
    model_schema.hash(&mut hasher);
    for preset in MachinePreset::all() {
        preset.name().hash(&mut hasher);
        // The Debug rendering enumerates every structural field of the
        // machine, so any preset change (cache geometry, bandwidth curve,
        // SpecI2M parameters, topology) lands in the hash.
        format!("{:?}", preset.machine()).hash(&mut hasher);
    }
    for name in replacement_names() {
        name.hash(&mut hasher);
    }
    for name in write_policy_names() {
        name.hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_within_a_process() {
        assert_eq!(model_hash(), model_hash());
    }

    #[test]
    fn schema_bumps_change_the_hash() {
        let current = model_hash();
        assert_ne!(
            current,
            hash_with_schema(
                clover_cachesim::SIM_SCHEMA_VERSION + 1,
                clover_core::MODEL_SCHEMA_VERSION,
            )
        );
        assert_ne!(
            current,
            hash_with_schema(
                clover_cachesim::SIM_SCHEMA_VERSION,
                clover_core::MODEL_SCHEMA_VERSION + 1,
            )
        );
    }
}
