//! Bounded-concurrency request plumbing for the serve daemon: a sharded
//! MPMC queue plus a fixed worker pool.
//!
//! PR 7's `serve_unix` spawned one thread per accepted client and only
//! reaped them when the listener died — under sustained traffic the
//! process accumulated an unbounded thread set, and every client's sweep
//! fanned out its *own* nested worker threads on top.  This module is the
//! replacement front end:
//!
//! * [`ShardedQueue`] — a bounded multi-producer/multi-consumer queue
//!   whose item storage is split across power-of-two shards (short lock
//!   hold times under many producers), with blocking push/pop and a
//!   `close`-to-drain shutdown protocol;
//! * [`WorkerPool`] — a fixed set of worker threads popping items from
//!   one queue and applying a shared job closure, with per-item panic
//!   isolation (a panicking job is logged and the worker keeps serving).
//!
//! The daemon wires them together: an acceptor thread pushes accepted
//! connections, `--workers N` pool threads pop and serve them, and
//! cross-request coalescing happens in the shared memo/response-cache
//! state the job closure captures.  The queue is generic, so the
//! `serve_throughput` bench drives the identical machinery with
//! request-line items instead of connections.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

/// Number of item shards; a small power of two spreads producer/consumer
/// lock traffic without wasting memory on short queues.
const QUEUE_SHARDS: usize = 8;

/// Push/pop accounting, kept under one small mutex so the blocking
/// semantics stay exact (the item storage itself is sharded).
struct Gate {
    /// Capacity slots handed to producers (item may still be in flight
    /// towards its shard).
    reserved: usize,
    /// Items that have fully landed in a shard and are claimable.
    ready: usize,
    /// Closed queues reject pushes and drain to `None`.
    closed: bool,
}

/// A bounded, closeable MPMC queue over sharded deques.
///
/// `push` blocks while the queue is full; `pop` blocks while it is empty
/// and returns `None` once the queue is closed *and* drained — the
/// worker-loop termination signal.  Items land in shards round-robin and
/// are claimed via a counter, so ordering is approximately FIFO (exact
/// FIFO per shard); the serve daemon only needs fairness, not a total
/// order.
pub struct ShardedQueue<T> {
    shards: [Mutex<VecDeque<T>>; QUEUE_SHARDS],
    push_cursor: AtomicUsize,
    pop_cursor: AtomicUsize,
    cap: usize,
    gate: StdMutex<Gate>,
    /// Waiting consumers (queue empty).
    items_cv: Condvar,
    /// Waiting producers (queue full).
    space_cv: Condvar,
}

impl<T> ShardedQueue<T> {
    /// A queue holding at most `cap` items (`cap` is clamped to ≥ 1).
    pub fn bounded(cap: usize) -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            push_cursor: AtomicUsize::new(0),
            pop_cursor: AtomicUsize::new(0),
            cap: cap.max(1),
            gate: StdMutex::new(Gate {
                reserved: 0,
                ready: 0,
                closed: false,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
        }
    }

    /// Push `item`, blocking while the queue is full.  Returns the item
    /// back as `Err` when the queue is (or gets) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        {
            let mut gate = self.gate.lock().expect("queue gate never poisoned");
            loop {
                if gate.closed {
                    return Err(item);
                }
                if gate.reserved < self.cap {
                    gate.reserved += 1;
                    break;
                }
                gate = self.space_cv.wait(gate).expect("queue gate never poisoned");
            }
        }
        let shard = self.push_cursor.fetch_add(1, Ordering::Relaxed) % QUEUE_SHARDS;
        self.shards[shard].lock().push_back(item);
        let mut gate = self.gate.lock().expect("queue gate never poisoned");
        gate.ready += 1;
        drop(gate);
        self.items_cv.notify_one();
        Ok(())
    }

    /// Pop one item, blocking while the queue is empty.  `None` once the
    /// queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        {
            let mut gate = self.gate.lock().expect("queue gate never poisoned");
            loop {
                if gate.ready > 0 {
                    gate.ready -= 1;
                    gate.reserved -= 1;
                    break;
                }
                // `reserved` covers items still in flight towards a
                // shard: only a closed queue with nothing reserved is
                // truly dry.
                if gate.closed && gate.reserved == 0 {
                    return None;
                }
                gate = self.items_cv.wait(gate).expect("queue gate never poisoned");
            }
        }
        self.space_cv.notify_one();
        // A claimed item is guaranteed present (ready counts only landed
        // items and each claim removes exactly one), but another claimant
        // may reach "our" shard first — scan from a rotating start until
        // one surfaces.
        let start = self.pop_cursor.fetch_add(1, Ordering::Relaxed);
        loop {
            for i in 0..QUEUE_SHARDS {
                if let Some(item) = self.shards[(start + i) % QUEUE_SHARDS].lock().pop_front() {
                    return Some(item);
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Close the queue: further pushes fail, blocked producers give up,
    /// and consumers drain the remaining items before seeing `None`.
    pub fn close(&self) {
        let mut gate = self.gate.lock().expect("queue gate never poisoned");
        gate.closed = true;
        drop(gate);
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Items currently queued (landed and claimable).
    pub fn len(&self) -> usize {
        self.gate.lock().expect("queue gate never poisoned").ready
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fixed set of worker threads draining one [`ShardedQueue`] through a
/// shared job closure.  The pool's size never changes after spawn — the
/// bounded-concurrency guarantee of the serve daemon — and a job that
/// panics is logged and isolated (the worker keeps serving).
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to ≥ 1) running `job` on every
    /// item popped from `queue` until the queue closes and drains.
    pub fn spawn<T, F>(queue: Arc<ShardedQueue<T>>, workers: usize, job: F) -> Self
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let job = Arc::new(job);
        let handles = (0..workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let job = Arc::clone(&job);
                std::thread::spawn(move || {
                    while let Some(item) = queue.pop() {
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(item)));
                        if result.is_err() {
                            eprintln!("figures serve: worker job panicked; continuing");
                        }
                    }
                })
            })
            .collect();
        Self { handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to finish (the queue must be closed first,
    /// or this blocks forever).
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// The daemon's default worker count: one per available hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn queue_round_trips_items_in_shard_order() {
        let q: ShardedQueue<u32> = ShardedQueue::bounded(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 10);
        let mut got: Vec<u32> = (0..10).map(|_| q.pop().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn closed_queue_drains_then_signals_none() {
        let q: ShardedQueue<u32> = ShardedQueue::bounded(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "pushes fail after close");
        let mut drained = vec![q.pop().unwrap(), q.pop().unwrap()];
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(q.pop(), None, "drained and closed");
    }

    #[test]
    fn bounded_push_blocks_until_a_consumer_frees_space() {
        let q = Arc::new(ShardedQueue::<u32>::bounded(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(3))
        };
        // The producer is blocked on the full queue; popping unblocks it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "push must block at capacity");
        assert!(q.pop().is_some());
        producer.join().unwrap().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn worker_pool_processes_every_item_across_producers() {
        const PRODUCERS: usize = 4;
        const ITEMS: u64 = 200;
        let q = Arc::new(ShardedQueue::<u64>::bounded(16));
        let sum = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::spawn(Arc::clone(&q), 3, {
            let sum = Arc::clone(&sum);
            move |item| {
                sum.fetch_add(item, Ordering::Relaxed);
            }
        });
        assert_eq!(pool.workers(), 3);
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS as u64 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..ITEMS {
                        q.push(p * ITEMS + i).unwrap();
                    }
                });
            }
        });
        q.close();
        pool.join();
        let expect: u64 = (0..PRODUCERS as u64 * ITEMS).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        let q = Arc::new(ShardedQueue::<u32>::bounded(8));
        let done = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::spawn(Arc::clone(&q), 1, {
            let done = Arc::clone(&done);
            move |item| {
                if item == 13 {
                    panic!("unlucky");
                }
                done.fetch_add(1, Ordering::Relaxed);
            }
        });
        for i in [13u32, 1, 2, 3] {
            q.push(i).unwrap();
        }
        q.close();
        pool.join();
        // The panicking item was isolated; the rest were still served.
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
