//! Row-sampled traffic measurement of a CloverLeaf hotspot loop.
//!
//! Tracing all 15360² × 400 iterations of the Tiny working set through the
//! cache simulator is infeasible; a streaming stencil's traffic is periodic
//! in the grid rows, so a band of representative rows per loop suffices.
//! This module builds the access pattern of one loop from its
//! `clover-stencil` descriptor, drives the core simulator with it and
//! reports the measured code balance.  The same module powers the
//! row-sampling ablation bench referenced in `DESIGN.md`.

use clover_cachesim::hierarchy::{CoreSimOptions, DomainOccupancy, OccupancyContext};
use clover_cachesim::patterns::{StencilOperand, StencilRowSweep};
use clover_cachesim::PrefetcherConfig;
use clover_cachesim::{AccessKind, CoreSim, MemCounters};
use clover_machine::Machine;
use clover_stencil::{AccessMode, LoopSpec};

/// Configuration of one loop measurement.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Local inner dimension of the rank's domain (elements).
    pub local_inner: usize,
    /// Number of grid rows to sample.
    pub rows: usize,
    /// Total number of ranks on the node (compact pinning).
    pub ranks: usize,
    /// Whether SpecI2M is enabled.
    pub speci2m_enabled: bool,
    /// Whether the evadable write streams use non-temporal stores.
    pub nt_stores: bool,
    /// Hardware prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
}

impl MeasureConfig {
    /// Single-rank measurement on the full Tiny row length.
    pub fn single_rank() -> Self {
        Self {
            local_inner: 15_360,
            rows: 12,
            ranks: 1,
            speci2m_enabled: true,
            nt_stores: false,
            prefetchers: PrefetcherConfig::enabled(),
        }
    }

    /// Full-node measurement (72 ranks on ICX → 1920-element rows).
    pub fn full_node(ranks: usize, local_inner: usize) -> Self {
        Self {
            local_inner,
            rows: 12,
            ranks,
            speci2m_enabled: true,
            nt_stores: false,
            prefetchers: PrefetcherConfig::enabled(),
        }
    }
}

/// Result of a loop measurement.
#[derive(Debug, Clone)]
pub struct LoopMeasurement {
    /// Loop label.
    pub name: String,
    /// Measured traffic counters for the sampled band.
    pub counters: MemCounters,
    /// Grid-point updates performed.
    pub iterations: f64,
}

impl LoopMeasurement {
    /// Measured code balance in bytes per iteration.
    pub fn bytes_per_iteration(&self) -> f64 {
        self.counters.total_bytes() / self.iterations.max(1.0)
    }

    /// Measured read volume per iteration (bytes).
    pub fn read_bytes_per_iteration(&self) -> f64 {
        self.counters.read_bytes() / self.iterations.max(1.0)
    }

    /// Measured write volume per iteration (bytes).
    pub fn write_bytes_per_iteration(&self) -> f64 {
        self.counters.write_bytes() / self.iterations.max(1.0)
    }
}

/// Measure one loop's memory traffic on `machine` with the given
/// configuration.
pub fn measure_loop(machine: &Machine, spec: &LoopSpec, cfg: &MeasureConfig) -> LoopMeasurement {
    let ctx = OccupancyContext::compact(machine, cfg.ranks);
    let occ = DomainOccupancy::compact(machine, cfg.ranks);
    let sharers = DomainOccupancy::l3_sharers(machine, occ.busiest);
    let mut core: CoreSim = CoreSim::new(
        machine,
        ctx,
        CoreSimOptions {
            speci2m_enabled: cfg.speci2m_enabled,
            prefetchers: cfg.prefetchers,
            l3_sharers: sharers,
        },
    );

    // Lay the arrays out back to back with a generous gap, mirroring the
    // 64-byte-aligned allocations of the patched benchmark.
    let halo = 2usize;
    let row_stride = (cfg.local_inner + 2 * halo) as u64;
    let array_bytes = row_stride * (cfg.rows as u64 + 4) * 8;
    let gap = ((array_bytes / 4096) + 2) * 4096;

    let mut operands = Vec::new();
    let mut nt_assigned = false;
    for (idx, arr) in spec.arrays.iter().enumerate() {
        let base = 1u64 << 33 | (idx as u64 * gap);
        let kind = match arr.mode {
            AccessMode::Read => AccessKind::Load,
            AccessMode::ReadWrite => AccessKind::Store,
            AccessMode::Write => {
                if cfg.nt_stores && !nt_assigned {
                    // The compiler honours the NT directive for the first
                    // (alignment-compatible) write stream only.
                    nt_assigned = true;
                    AccessKind::StoreNT
                } else {
                    AccessKind::Store
                }
            }
        };
        let offsets: Vec<(i64, i64)> = arr
            .offsets
            .iter()
            .map(|&(di, dk)| (di as i64, dk as i64))
            .collect();
        // Read-modify-write arrays are both loaded and stored at the centre.
        if arr.mode == AccessMode::ReadWrite {
            operands.push(StencilOperand {
                base,
                offsets: offsets.clone(),
                kind: AccessKind::Load,
            });
        }
        operands.push(StencilOperand {
            base,
            offsets,
            kind,
        });
    }

    let sweep = StencilRowSweep {
        operands,
        row_stride,
        i0: halo as u64,
        inner: cfg.local_inner as u64,
        k0: 2,
        rows: cfg.rows as u64,
    };
    sweep.drive(&mut core);
    let counters = core.flush();
    LoopMeasurement {
        name: spec.name.clone(),
        counters,
        iterations: sweep.iterations() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;
    use clover_stencil::{loop_by_name, CodeBalance};

    #[test]
    fn single_rank_am04_measures_near_lcf_wa() {
        // Table I: single-core measurement of am04 is ~24 byte/it.
        let m = icelake_sp_8360y();
        let spec = loop_by_name("am04").unwrap();
        let cfg = MeasureConfig {
            local_inner: 3840,
            ..MeasureConfig::single_rank()
        };
        let meas = measure_loop(&m, &spec, &cfg);
        let b = meas.bytes_per_iteration();
        assert!((21.0..=27.0).contains(&b), "measured {b} byte/it");
    }

    #[test]
    fn full_node_am04_measures_below_single_rank() {
        let m = icelake_sp_8360y();
        let spec = loop_by_name("am04").unwrap();
        let serial = measure_loop(
            &m,
            &spec,
            &MeasureConfig {
                local_inner: 3840,
                ..MeasureConfig::single_rank()
            },
        );
        let node = measure_loop(&m, &spec, &MeasureConfig::full_node(72, 1920));
        assert!(
            node.bytes_per_iteration() < serial.bytes_per_iteration() - 2.0,
            "node {} vs serial {}",
            node.bytes_per_iteration(),
            serial.bytes_per_iteration()
        );
    }

    #[test]
    fn prime_decomposition_measures_higher_than_full_node() {
        let m = icelake_sp_8360y();
        let spec = loop_by_name("am04").unwrap();
        let node = measure_loop(&m, &spec, &MeasureConfig::full_node(72, 1920));
        let prime = measure_loop(
            &m,
            &spec,
            &MeasureConfig {
                rows: 48,
                ..MeasureConfig::full_node(71, 216)
            },
        );
        assert!(
            prime.bytes_per_iteration() > node.bytes_per_iteration() * 1.03,
            "prime {} vs node {}",
            prime.bytes_per_iteration(),
            node.bytes_per_iteration()
        );
    }

    #[test]
    fn nt_stores_lower_the_balance_of_evadable_loops() {
        let m = icelake_sp_8360y();
        let spec = loop_by_name("am08").unwrap();
        let base_cfg = MeasureConfig {
            local_inner: 3840,
            ..MeasureConfig::single_rank()
        };
        let plain = measure_loop(&m, &spec, &base_cfg);
        let nt = measure_loop(
            &m,
            &spec,
            &MeasureConfig {
                nt_stores: true,
                ..base_cfg
            },
        );
        assert!(
            nt.bytes_per_iteration() < plain.bytes_per_iteration() - 3.0,
            "nt {} vs plain {}",
            nt.bytes_per_iteration(),
            plain.bytes_per_iteration()
        );
    }

    #[test]
    fn class_iii_loop_measurement_matches_all_bounds() {
        // ac03: all four bounds coincide at 64 byte/it; the measurement must
        // land close to that for any configuration.
        let m = icelake_sp_8360y();
        let spec = loop_by_name("ac03").unwrap();
        let bounds = CodeBalance::from_spec(&spec);
        for cfg in [
            MeasureConfig {
                local_inner: 3840,
                ..MeasureConfig::single_rank()
            },
            MeasureConfig::full_node(72, 1920),
        ] {
            let meas = measure_loop(&m, &spec, &cfg);
            let rel = (meas.bytes_per_iteration() - bounds.min).abs() / bounds.min;
            assert!(
                rel < 0.12,
                "measured {} vs bound {}",
                meas.bytes_per_iteration(),
                bounds.min
            );
        }
    }

    #[test]
    fn measurement_reports_iteration_count() {
        let m = icelake_sp_8360y();
        let spec = loop_by_name("am04").unwrap();
        let cfg = MeasureConfig {
            local_inner: 512,
            rows: 8,
            ..MeasureConfig::single_rank()
        };
        let meas = measure_loop(&m, &spec, &cfg);
        assert_eq!(meas.iterations, 512.0 * 8.0);
        assert!(meas.read_bytes_per_iteration() > 0.0);
        assert!(meas.write_bytes_per_iteration() > 0.0);
    }
}
