//! Region markers over the simulator's memory counters.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use clover_cachesim::MemCounters;

/// Accumulated statistics of one marked region.
#[derive(Debug, Clone, Default)]
pub struct RegionStats {
    /// Number of start/stop pairs recorded.
    pub call_count: u64,
    /// Accumulated traffic counters (deltas between start and stop).
    pub counters: MemCounters,
    /// Accumulated wall-clock time inside the region.
    pub elapsed: Duration,
}

impl RegionStats {
    /// Memory data volume (read + write) in bytes.
    pub fn data_volume(&self) -> f64 {
        self.counters.total_bytes()
    }

    /// Code balance in byte per iteration for a region that performed
    /// `iterations` grid-point updates in total.
    pub fn bytes_per_iteration(&self, iterations: f64) -> f64 {
        if iterations <= 0.0 {
            0.0
        } else {
            self.data_volume() / iterations
        }
    }
}

/// The marker registry of one rank (LIKWID Marker API equivalent).
#[derive(Debug, Default)]
pub struct PerfMonitor {
    regions: HashMap<String, RegionStats>,
    open: HashMap<String, (MemCounters, Instant)>,
}

impl PerfMonitor {
    /// Create an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a region, snapshotting the current counters.
    pub fn start(&mut self, name: &str, counters: MemCounters) {
        self.open
            .insert(name.to_string(), (counters, Instant::now()));
    }

    /// Stop a region, attributing the counter delta since `start`.
    ///
    /// # Panics
    /// Panics if the region was never started.
    pub fn stop(&mut self, name: &str, counters: MemCounters) {
        let (start_counters, t0) = self
            .open
            .remove(name)
            .unwrap_or_else(|| panic!("region '{name}' stopped without start"));
        let stats = self.regions.entry(name.to_string()).or_default();
        stats.call_count += 1;
        stats.counters.merge(&counters.delta(&start_counters));
        stats.elapsed += t0.elapsed();
    }

    /// Look up the accumulated statistics of a region.
    pub fn region(&self, name: &str) -> Option<&RegionStats> {
        self.regions.get(name)
    }

    /// All regions sorted by name.
    pub fn regions(&self) -> Vec<(&str, &RegionStats)> {
        let mut v: Vec<(&str, &RegionStats)> =
            self.regions.iter().map(|(k, s)| (k.as_str(), s)).collect();
        v.sort_by_key(|(k, _)| k.to_string());
        v
    }

    /// Merge the regions of another monitor (e.g. another rank) into this
    /// one.
    pub fn merge(&mut self, other: &PerfMonitor) {
        for (name, stats) in &other.regions {
            let entry = self.regions.entry(name.clone()).or_default();
            entry.call_count += stats.call_count;
            entry.counters.merge(&stats.counters);
            entry.elapsed += stats.elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(read: f64, write: f64) -> MemCounters {
        MemCounters {
            read_lines: read,
            write_lines: write,
            ..Default::default()
        }
    }

    #[test]
    fn start_stop_attributes_delta() {
        let mut mon = PerfMonitor::new();
        mon.start("am04", counters(10.0, 5.0));
        mon.stop("am04", counters(30.0, 15.0));
        let r = mon.region("am04").unwrap();
        assert_eq!(r.call_count, 1);
        assert_eq!(r.counters.read_lines, 20.0);
        assert_eq!(r.counters.write_lines, 10.0);
        assert_eq!(r.data_volume(), 30.0 * 64.0);
    }

    #[test]
    fn repeated_calls_accumulate() {
        let mut mon = PerfMonitor::new();
        for i in 0..3u64 {
            let base = i as f64 * 100.0;
            mon.start("loop", counters(base, base));
            mon.stop("loop", counters(base + 1.0, base + 2.0));
        }
        let r = mon.region("loop").unwrap();
        assert_eq!(r.call_count, 3);
        assert_eq!(r.counters.read_lines, 3.0);
        assert_eq!(r.counters.write_lines, 6.0);
    }

    #[test]
    fn bytes_per_iteration() {
        let mut mon = PerfMonitor::new();
        mon.start("x", counters(0.0, 0.0));
        mon.stop("x", counters(100.0, 50.0));
        let r = mon.region("x").unwrap();
        assert!((r.bytes_per_iteration(600.0) - 16.0).abs() < 1e-12);
        assert_eq!(r.bytes_per_iteration(0.0), 0.0);
    }

    #[test]
    fn merge_combines_ranks() {
        let mut a = PerfMonitor::new();
        a.start("k", counters(0.0, 0.0));
        a.stop("k", counters(10.0, 0.0));
        let mut b = PerfMonitor::new();
        b.start("k", counters(0.0, 0.0));
        b.stop("k", counters(5.0, 5.0));
        a.merge(&b);
        let r = a.region("k").unwrap();
        assert_eq!(r.call_count, 2);
        assert_eq!(r.counters.read_lines, 15.0);
    }

    #[test]
    #[should_panic(expected = "stopped without start")]
    fn stop_without_start_panics() {
        let mut mon = PerfMonitor::new();
        mon.stop("nope", counters(0.0, 0.0));
    }

    #[test]
    fn regions_listing_is_sorted() {
        let mut mon = PerfMonitor::new();
        for name in ["b", "a", "c"] {
            mon.start(name, counters(0.0, 0.0));
            mon.stop(name, counters(1.0, 0.0));
        }
        let names: Vec<&str> = mon.regions().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
