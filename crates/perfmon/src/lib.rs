//! `clover-perfmon` — region markers and per-loop traffic measurement.
//!
//! Plays the role LIKWID's Marker API plays in the paper: code regions are
//! bracketed with start/stop markers, and the memory-controller counters of
//! the cache simulator are attributed to the enclosing region.  On top of
//! the raw markers, [`loop_measure`] drives the simulator with the access
//! pattern of one CloverLeaf hotspot loop (derived from its
//! `clover-stencil` descriptor) over a band of grid rows and reports the
//! measured code balance — the "measurement" side of Table I and Fig. 3.

pub mod loop_measure;
pub mod marker;

pub use loop_measure::{measure_loop, LoopMeasurement, MeasureConfig};
pub use marker::{PerfMonitor, RegionStats};
