//! Replacement and write policies as zero-cost generic parameters.
//!
//! The paper's machines are modelled as true-LRU, write-back +
//! write-allocate caches whose only deviation is the SpecI2M
//! write-allocate evasion.  This module turns those two hard-coded choices
//! into a policy space:
//!
//! * [`ReplacementPolicy`] — who gets evicted.  [`TrueLru`] (the default),
//!   [`TreePlru`], [`Srrip`] and a deterministic [`RandomEvict`] whose
//!   xorshift seed lives in the policy state, so runs are reproducible.
//! * [`WritePolicy`] — what a store miss does.  [`WriteAllocate`] (the
//!   default; carries the SpecI2M evasion model unchanged),
//!   [`NoWriteAllocate`] (CVA6-style write-through on miss) and
//!   [`NonTemporal`] (every store stream behaves like software NT stores).
//!
//! Both traits are generic parameters of [`SetAssocCache`] and [`CoreSim`],
//! defaulted to the paper's configuration.  For [`TrueLru`] the dedicated
//! `LRU_SCAN` flag keeps the original fused probe-scan victim selection, so
//! the default monomorphisation compiles to exactly the pre-refactor hot
//! path and `figures all` stays byte-identical.
//!
//! [`SetAssocCache`]: crate::cache::SetAssocCache
//! [`CoreSim`]: crate::hierarchy::CoreSim

use clover_machine::{ReplacementPolicyKind, WritePolicyKind};

use crate::cache::CacheBank;
use crate::coalescer::FinalizedLine;
use crate::hierarchy::PrivateCore;

/// Victim selection strategy of one [`SetAssocCache`] level.
///
/// Implementations own whatever per-set state they need (tree bits, RRPV
/// counters, an RNG seed); [`TrueLru`] owns nothing because the cache's
/// existing stamp words already encode perfect recency.  All hooks receive
/// the set index and way index; `pick_victim` is only consulted when every
/// way of the set is valid (empty slots always win first).
///
/// [`SetAssocCache`]: crate::cache::SetAssocCache
pub trait ReplacementPolicy: std::fmt::Debug + Clone + Send + 'static {
    /// Selector this implementation corresponds to (used in memo keys and
    /// dispatch tables).
    const KIND: ReplacementPolicyKind;

    /// True when the victim is the minimum-stamp entry found by the probe
    /// scan itself.  The cache then keeps the original fused single-pass
    /// scan and never calls [`pick_victim`](Self::pick_victim) — the
    /// [`TrueLru`] monomorphisation is the pre-refactor code path.
    const LRU_SCAN: bool = false;

    /// Construct state for a cache of `sets` sets with `ways` ways each.
    fn new(sets: usize, ways: usize) -> Self;

    /// Restore the freshly-constructed state (cache reset/flush).
    fn reset(&mut self);

    /// A resident way of `set` was accessed (hit or refresh).
    fn on_hit(&mut self, set: usize, way: usize);

    /// A line was inserted into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Choose the victim among the `ways` (all valid) ways of `set`.
    /// May mutate state (SRRIP ages, the RNG advances).
    fn pick_victim(&mut self, set: usize, ways: usize) -> usize;

    /// `hole` of `set` was invalidated and the entry from `last` compacted
    /// into it (the cache keeps valid entries as a prefix).
    fn on_invalidate(&mut self, set: usize, hole: usize, last: usize);
}

/// True least-recently-used replacement — the paper's baseline and the
/// default. Stateless: the cache's stamp words are the recency order, and
/// the probe scan finds the minimum for free (`LRU_SCAN`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueLru;

impl ReplacementPolicy for TrueLru {
    const KIND: ReplacementPolicyKind = ReplacementPolicyKind::Lru;
    const LRU_SCAN: bool = true;

    #[inline]
    fn new(_sets: usize, _ways: usize) -> Self {
        TrueLru
    }

    #[inline]
    fn reset(&mut self) {}

    #[inline]
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    #[inline]
    fn on_fill(&mut self, _set: usize, _way: usize) {}

    #[inline]
    fn pick_victim(&mut self, _set: usize, _ways: usize) -> usize {
        debug_assert!(false, "LRU victims come from the probe scan");
        0
    }

    #[inline]
    fn on_invalidate(&mut self, _set: usize, _hole: usize, _last: usize) {}
}

/// Tree pseudo-LRU: one decision bit per internal node of a binary tree
/// over the (power-of-two padded) ways of each set, packed into one `u64`
/// per set.  An access flips the path bits away from the touched way; the
/// victim walk follows the bits, never descending into padding.
#[derive(Debug, Clone)]
pub struct TreePlru {
    /// Padded leaf count (`ways.next_power_of_two()`).
    leaves: usize,
    /// Decision bits, one word per set (node `i`'s bit is bit `i`; set bit
    /// means "the right subtree was less recently used").
    bits: Vec<u64>,
}

impl TreePlru {
    #[inline]
    fn walk_access(word: &mut u64, leaves: usize, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Went left: point the bit right (away from the access).
                *word |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                *word &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    const KIND: ReplacementPolicyKind = ReplacementPolicyKind::Plru;

    fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= 64, "tree-PLRU state is packed into 64-bit words");
        Self {
            leaves: ways.next_power_of_two(),
            bits: vec![0u64; sets],
        }
    }

    fn reset(&mut self) {
        self.bits.fill(0);
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize) {
        let leaves = self.leaves;
        Self::walk_access(&mut self.bits[set], leaves, way);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize) {
        let leaves = self.leaves;
        Self::walk_access(&mut self.bits[set], leaves, way);
    }

    fn pick_victim(&mut self, set: usize, ways: usize) -> usize {
        let word = self.bits[set];
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            // Follow the bit, but never descend into padding leaves beyond
            // the real associativity.
            if (word >> node) & 1 == 1 && mid < ways {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo.min(ways - 1)
    }

    #[inline]
    fn on_invalidate(&mut self, _set: usize, _hole: usize, _last: usize) {
        // PLRU bits are heuristic; compaction leaves them as-is (stale bits
        // only bias, never break, victim selection).
    }
}

/// 2-bit static re-reference interval prediction (SRRIP-HP): lines are
/// inserted with a long predicted re-reference interval, promoted to the
/// shortest on a hit, and the first way predicted "distant" is evicted,
/// ageing the whole set until one qualifies.
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize,
    /// Per-way re-reference prediction values, set-major (`sets × ways`).
    rrpv: Vec<u8>,
}

/// Distant-future RRPV (the eviction threshold of 2-bit SRRIP).
const RRPV_MAX: u8 = 3;
/// Insertion RRPV (long re-reference interval, SRRIP-HP).
const RRPV_INSERT: u8 = 2;

impl ReplacementPolicy for Srrip {
    const KIND: ReplacementPolicyKind = ReplacementPolicyKind::Srrip;

    fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
        }
    }

    fn reset(&mut self) {
        self.rrpv.fill(RRPV_MAX);
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = RRPV_INSERT;
    }

    fn pick_victim(&mut self, set: usize, ways: usize) -> usize {
        let base = set * self.ways;
        loop {
            for way in 0..ways {
                if self.rrpv[base + way] >= RRPV_MAX {
                    return way;
                }
            }
            for way in 0..ways {
                self.rrpv[base + way] += 1;
            }
        }
    }

    #[inline]
    fn on_invalidate(&mut self, set: usize, hole: usize, last: usize) {
        let base = set * self.ways;
        self.rrpv[base + hole] = self.rrpv[base + last];
        self.rrpv[base + last] = RRPV_MAX;
    }
}

/// Deterministic "random" eviction: a fixed-seed xorshift64 generator in
/// the policy state picks the victim way.  Reset restores the seed, so a
/// reset cache replays exactly like a fresh one and sweeps are
/// reproducible.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    state: u64,
}

/// Fixed xorshift64 seed (the 64-bit golden-ratio constant).
const RANDOM_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl ReplacementPolicy for RandomEvict {
    const KIND: ReplacementPolicyKind = ReplacementPolicyKind::Random;

    fn new(_sets: usize, _ways: usize) -> Self {
        Self { state: RANDOM_SEED }
    }

    fn reset(&mut self) {
        self.state = RANDOM_SEED;
    }

    #[inline]
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    #[inline]
    fn on_fill(&mut self, _set: usize, _way: usize) {}

    #[inline]
    fn pick_victim(&mut self, _set: usize, ways: usize) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x % ways as u64) as usize
    }

    #[inline]
    fn on_invalidate(&mut self, _set: usize, _hole: usize, _last: usize) {}
}

/// Store-miss behaviour of a simulated hierarchy.
///
/// The policy is a type-level strategy: `handle_store_line` receives the
/// private half of the core plus the last-level bank so implementations
/// can drive the hierarchy, the SpecI2M model and the traffic counters
/// exactly like the original hard-coded store path did.  Implementations
/// live next to `PrivateCore` (they need its internals); this trait and
/// the marker types are the public surface.
pub trait WritePolicy: std::fmt::Debug + Clone + Send + Sized + 'static {
    /// Selector this implementation corresponds to (used in memo keys and
    /// dispatch tables).
    const KIND: WritePolicyKind;

    /// Retire one coalesced store line through the hierarchy: the private
    /// half of the core plus whatever last-level bank it currently shares
    /// (its own on the solo path, the tenant-shared LLC on a co-run).
    fn handle_store_line<B: CacheBank, L: CacheBank>(
        core: &mut PrivateCore<B, Self>,
        llc: &mut L,
        ev: FinalizedLine,
    );
}

/// Write-back + write-allocate with SpecI2M evasion — the paper's default
/// store path, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteAllocate;

/// Write-back + no-write-allocate (CVA6-style): store misses are written
/// through to memory without fetching the line; store hits dirty the cache
/// as usual.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWriteAllocate;

/// Every coalesced store stream behaves like software non-temporal stores:
/// lines bypass (and invalidate) the hierarchy, paying the partial
/// write-combine flush penalty instead of write-allocate reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonTemporal;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Accessing ways round-robin must never evict the just-accessed way.
        let ways = 8;
        let mut p = TreePlru::new(4, ways);
        let mut seen = vec![false; ways];
        let mut last = usize::MAX;
        for i in 0..4 * ways {
            let v = p.pick_victim(1, ways);
            assert!(v < ways);
            assert_ne!(v, last, "victim {v} was just accessed (step {i})");
            p.on_fill(1, v);
            seen[v] = true;
            last = v;
        }
        assert!(seen.iter().all(|&s| s), "every way must eventually cycle");
    }

    #[test]
    fn tree_plru_handles_non_power_of_two_ways() {
        let ways = 12; // padded to 16 leaves
        let mut p = TreePlru::new(2, ways);
        for _ in 0..64 {
            let v = p.pick_victim(0, ways);
            assert!(v < ways, "victim must be a real way, got {v}");
            p.on_hit(0, v);
        }
    }

    #[test]
    fn srrip_prefers_distant_lines_and_ages() {
        let ways = 4;
        let mut p = Srrip::new(1, ways);
        for way in 0..ways {
            p.on_fill(0, way);
        }
        p.on_hit(0, 2); // way 2 is re-referenced: protected
        let v = p.pick_victim(0, ways);
        assert_ne!(v, 2, "recently re-referenced way must survive ageing");
        // After enough rounds even the protected way becomes evictable.
        p.on_fill(0, v);
        let mut victims = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = p.pick_victim(0, ways);
            victims.insert(v);
            p.on_fill(0, v);
        }
        assert!(victims.len() > 1);
    }

    #[test]
    fn srrip_invalidate_moves_state() {
        let mut p = Srrip::new(1, 4);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_fill(0, 2);
        p.on_hit(0, 2); // rrpv[2] = 0
                        // Invalidate way 0; way 2 (last valid) compacts into the hole.
        p.on_invalidate(0, 0, 2);
        assert_eq!(p.rrpv[0], 0, "compacted way keeps its RRPV");
        assert_eq!(p.rrpv[2], RRPV_MAX, "vacated slot is distant again");
    }

    #[test]
    fn random_is_deterministic_and_reset_replays() {
        let mut a = RandomEvict::new(16, 8);
        let mut b = RandomEvict::new(16, 8);
        let seq_a: Vec<usize> = (0..32).map(|_| a.pick_victim(0, 8)).collect();
        let seq_b: Vec<usize> = (0..32).map(|_| b.pick_victim(0, 8)).collect();
        assert_eq!(seq_a, seq_b);
        a.reset();
        let replay: Vec<usize> = (0..32).map(|_| a.pick_victim(0, 8)).collect();
        assert_eq!(seq_a, replay);
        assert!(seq_a.iter().any(|&v| v != seq_a[0]), "must vary victims");
        assert!(seq_a.iter().all(|&v| v < 8));
    }

    #[test]
    fn kinds_match_the_machine_registry() {
        assert_eq!(TrueLru::KIND, ReplacementPolicyKind::Lru);
        assert_eq!(TreePlru::KIND, ReplacementPolicyKind::Plru);
        assert_eq!(Srrip::KIND, ReplacementPolicyKind::Srrip);
        assert_eq!(RandomEvict::KIND, ReplacementPolicyKind::Random);
        assert_eq!(WriteAllocate::KIND, WritePolicyKind::Allocate);
        assert_eq!(NoWriteAllocate::KIND, WritePolicyKind::NoAllocate);
        assert_eq!(NonTemporal::KIND, WritePolicyKind::NonTemporal);
        assert!(TrueLru::LRU_SCAN && !TreePlru::LRU_SCAN);
    }
}
