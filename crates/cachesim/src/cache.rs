//! Set-associative cache with true-LRU replacement and write-back lines.

use std::collections::HashMap;

/// Result of probing or filling a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Evicted line index.
    pub line: u64,
    /// Whether the evicted line was dirty (needs a write-back).
    pub dirty: bool,
}

/// A single set-associative cache level with true-LRU replacement.
///
/// Lines are identified by their global line index (`addr / 64`); the set
/// index is derived from the line index, the tag is the full line index
/// (simple and unambiguous).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<CacheLine>>,
    ways: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine {
    line: u64,
    dirty: bool,
    /// LRU timestamp; larger = more recently used.
    lru: u64,
}

impl SetAssocCache {
    /// Create a cache with `capacity_bytes` total capacity, `ways`
    /// associativity and 64-byte lines.  The number of sets is rounded down
    /// to the next power of two so the set index is a simple mask; capacity
    /// is preserved by widening the ways accordingly.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(capacity_bytes >= 64 && ways > 0);
        let total_lines = capacity_bytes / 64;
        let ideal_sets = (total_lines / ways).max(1);
        let sets_pow2 = if ideal_sets.is_power_of_two() {
            ideal_sets
        } else {
            (ideal_sets.next_power_of_two()) / 2
        }
        .max(1);
        let effective_ways = (total_lines / sets_pow2).max(1);
        Self {
            sets: vec![Vec::with_capacity(effective_ways); sets_pow2],
            ways: effective_ways,
            set_mask: (sets_pow2 - 1) as u64,
            hits: 0,
            misses: 0,
            stamp: 0,
        }
    }

    /// Total capacity in cache lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Probe for a line without modifying LRU state or counters.
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|l| l.line == line)
    }

    /// Access (touch) a line: returns `Hit` and refreshes LRU if present,
    /// `Miss` otherwise (the line is *not* filled — call [`fill`]).
    ///
    /// `write` marks the line dirty on a hit.
    pub fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        let set = self.set_index(line);
        let stamp = self.next_stamp();
        if let Some(entry) = self.sets[set].iter_mut().find(|l| l.line == line) {
            entry.lru = stamp;
            if write {
                entry.dirty = true;
            }
            self.hits += 1;
            LookupResult::Hit
        } else {
            self.misses += 1;
            LookupResult::Miss
        }
    }

    /// Insert a line (after a miss), possibly evicting the LRU line of its
    /// set.  Returns the eviction, if any.  `dirty` marks the new line dirty
    /// immediately (used for stores and for ITOM-claimed lines).
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        let stamp = self.next_stamp();
        let ways = self.ways;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|l| l.line == line) {
            // Already present (e.g. racing prefetch): refresh.
            entry.lru = stamp;
            entry.dirty |= dirty;
            return None;
        }
        let evicted = if set.len() >= ways {
            let (idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let victim = set.swap_remove(idx);
            Some(Eviction {
                line: victim.line,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set.push(CacheLine {
            line,
            dirty,
            lru: stamp,
        });
        evicted
    }

    /// Remove a specific line (e.g. when an NT store invalidates it).
    /// Returns whether the removed line was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(idx) = set.iter().position(|l| l.line == line) {
            let victim = set.swap_remove(idx);
            Some(victim.dirty)
        } else {
            None
        }
    }

    /// Drain every resident line, returning the dirty ones (used to flush
    /// write-backs at the end of a measurement region).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for line in set.drain(..) {
                if line.dirty {
                    dirty.push(line.line);
                }
            }
        }
        dirty
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

/// A simple fully-associative helper cache used for small structures
/// (e.g. the streamer prefetcher's stream table).  Maps a key to a value
/// with LRU eviction.
#[derive(Debug, Clone)]
pub struct LruTable<V> {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, (V, u64)>,
}

impl<V> LruTable<V> {
    /// Create a table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    /// Get a mutable reference to the value for `key`, refreshing its LRU
    /// position.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|(v, s)| {
            *s = stamp;
            v
        })
    }

    /// Insert a value, evicting the least recently used entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        self.stamp += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, (_, s))| *s) {
                self.entries.remove(&lru_key);
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(4096, 8);
        assert_eq!(c.touch(42, false), LookupResult::Miss);
        assert!(c.fill(42, false).is_none());
        assert_eq!(c.touch(42, false), LookupResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_and_eviction() {
        // 8 lines total, fully associative in one set is unlikely; use a
        // direct check of capacity.
        let mut c = SetAssocCache::new(8 * 64, 8);
        assert_eq!(c.capacity_lines(), 8);
        for line in 0..8 {
            c.touch(line, false);
            assert!(c.fill(line, false).is_none());
        }
        assert_eq!(c.resident_lines(), 8);
        // A ninth distinct line must evict something.
        c.touch(100, false);
        let ev = c.fill(100, false);
        assert!(ev.is_some() || c.resident_lines() <= 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single-set cache with 2 ways.
        let mut c = SetAssocCache::new(2 * 64, 2);
        c.touch(0, false);
        c.fill(0, false);
        c.touch(1, false);
        c.fill(1, false);
        // Touch 0 again so 1 becomes LRU (both map to the same set because
        // there is a single set).
        c.touch(0, false);
        c.touch(2, false);
        let ev = c.fill(2, false).expect("eviction expected");
        assert_eq!(ev.line, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(2 * 64, 2);
        c.fill(0, true);
        c.fill(1, false);
        let ev = c.fill(2, false).expect("eviction");
        // Line 0 was LRU and dirty.
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = SetAssocCache::new(4 * 64, 4);
        c.fill(7, false);
        c.touch(7, true);
        let dirty = c.flush_dirty();
        assert_eq!(dirty, vec![7]);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(4 * 64, 4);
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn fill_existing_line_is_idempotent() {
        let mut c = SetAssocCache::new(4 * 64, 4);
        c.fill(5, false);
        assert!(c.fill(5, true).is_none());
        assert_eq!(c.resident_lines(), 1);
        // The second fill marked it dirty.
        assert_eq!(c.flush_dirty(), vec![5]);
    }

    #[test]
    fn geometry_rounded_to_power_of_two_sets_preserves_capacity() {
        // 48 KiB, 12-way: 768 lines, 64 sets (power of two already).
        let c = SetAssocCache::new(48 * 1024, 12);
        assert_eq!(c.capacity_lines(), 768);
        // 54 MiB, 12-way: 884736 lines; sets rounded to power of two.
        let c = SetAssocCache::new(54 * 1024 * 1024, 12);
        let lines = c.capacity_lines();
        assert!(
            lines >= 800_000,
            "capacity must be preserved approximately, got {lines}"
        );
    }

    #[test]
    fn lru_table_evicts() {
        let mut t: LruTable<u32> = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.get_mut(1).copied(), Some(10));
        t.insert(3, 30); // evicts key 2 (LRU)
        assert_eq!(t.len(), 2);
        assert!(t.get_mut(2).is_none());
        assert!(t.get_mut(1).is_some());
        assert!(t.get_mut(3).is_some());
    }
}
