//! Set-associative cache with pluggable replacement and write-back lines.
//!
//! Storage is a pair of parallel flat lanes (structure-of-arrays): a packed
//! **tag lane** (`Box<[u64]>`, one line index per slot) and a **meta lane**
//! (`Box<[u64]>`, the LRU stamp and dirty bit packed as `stamp << 1 |
//! dirty`), both with a fixed `ways` stride per set and mask-derived set
//! indices.  A probe touches only the tag lane — at most `ways` contiguous
//! `u64`s — so the hot scan is a chunked branch-free compare over 8-wide
//! groups (`u64x8`-style: accumulate hit/empty bit masks, one
//! `trailing_zeros` resolve per chunk) instead of a scalar early-exit loop.
//! The meta lane is read only on the slot the probe resolved to, or by the
//! miss-path victim scan.  Validity is encoded in the tag itself
//! (`tag == INVALID_LINE`).
//!
//! The SIMD path is tiered by runtime feature detection (stable
//! `std::arch` intrinsics behind `is_x86_feature_detected!` — no nightly
//! `std::simd`): AVX-512 mask-register compares where available, then
//! AVX2 compare + movemask, then the portable chunked loop everywhere
//! else.  Single probes pay one dispatched call; batch probes
//! ([`resident_count`](SetAssocCache::resident_count)) resolve the
//! dispatch once and run the whole scan loop inside the selected
//! implementation.  The `const SIMD: bool` type parameter selects the
//! scalar reference scan at compile time (used by the equivalence
//! proptests), and the `scalar-probe` cargo feature forces the scalar
//! path crate-wide so CI can run the whole suite on the fallback.
//!
//! The victim-selection strategy is a zero-cost generic parameter
//! ([`ReplacementPolicy`], default [`TrueLru`]).  True LRU derives the
//! victim from the meta lane (stamps are unique, so ordering by the packed
//! word orders by recency regardless of the dirty bit); other policies
//! carry their own per-set state and are consulted through
//! compile-time-guarded hooks, so all 12 policy × write-policy combos stay
//! fully monomorphised.
//!
//! Three invariants keep the scans short:
//!
//! * **prefix invariant** — within a set, valid entries always form a
//!   prefix ([`invalidate`](SetAssocCache::invalidate) compacts), so a hit
//!   always precedes the first empty slot and every probe stops at the
//!   first chunk containing either;
//! * **miss memo** — a [`touch`](SetAssocCache::touch) that misses records
//!   the slot a fill of that line would use, so the
//!   [`fill`](SetAssocCache::fill) that typically follows is O(1);
//! * **used-set tracking** — draining operations (and
//!   [`resident_lines`](SetAssocCache::resident_lines)) visit only sets
//!   that ever received a fill, so they cost O(resident), not O(capacity).

use std::collections::HashMap;

use crate::policy::{ReplacementPolicy, TrueLru};

/// Sentinel line index marking an empty arena slot.  Real line indices are
/// `addr / 64 <= 2^58`, so the all-ones value can never collide.
const INVALID_LINE: u64 = u64::MAX;

/// Result of probing or filling a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Evicted line index.
    pub line: u64,
    /// Whether the evicted line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Outcome of scanning one set's tag lane for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetProbe {
    /// Line resident at this way index.
    Hit(usize),
    /// Line absent; first empty slot at this way index (a fill goes here).
    Empty(usize),
    /// Line absent and the set is full (a fill needs a victim).
    Full,
}

/// Scalar reference probe: the pre-SoA early-exit loop over the tag lane.
#[inline(always)]
fn probe_scalar(tags: &[u64], line: u64) -> SetProbe {
    for (idx, &tag) in tags.iter().enumerate() {
        if tag == line {
            return SetProbe::Hit(idx);
        }
        if tag == INVALID_LINE {
            // Prefix invariant: nothing valid beyond the first hole.
            return SetProbe::Empty(idx);
        }
    }
    SetProbe::Full
}

/// Chunked branch-free probe: accumulate 8-wide hit/empty bit masks per
/// chunk of the tag lane (`u64x8`-style — the compare loop has no
/// data-dependent branch, so it vectorises), then resolve each chunk with
/// two `trailing_zeros`.  The prefix invariant guarantees a hit precedes
/// the first empty slot, so the first chunk with either mask non-zero
/// decides the probe.
#[inline(always)]
fn probe_chunked(tags: &[u64], line: u64) -> SetProbe {
    let mut base = 0usize;
    for chunk in tags.chunks(8) {
        let mut hit = 0u32;
        let mut empty = 0u32;
        for (j, &tag) in chunk.iter().enumerate() {
            hit |= ((tag == line) as u32) << j;
            empty |= ((tag == INVALID_LINE) as u32) << j;
        }
        if hit | empty != 0 {
            let h = hit.trailing_zeros();
            let e = empty.trailing_zeros();
            return if h < e {
                SetProbe::Hit(base + h as usize)
            } else {
                SetProbe::Empty(base + e as usize)
            };
        }
        base += chunk.len();
    }
    SetProbe::Full
}

/// AVX2 probe: one `_mm256_cmpeq_epi64` against the needle and one against
/// the empty sentinel per 4-wide group, compressed to hit/empty bit masks
/// with `_mm256_movemask_pd` and resolved exactly like the portable chunked
/// path.  The win over the scalar loop is largest when the probed line is
/// *absent from a full set* — the streaming-eviction hot case, where the
/// scalar scan has no early exit and must walk all `ways` tags.
///
/// # Safety
/// Callers must guarantee AVX2 is available (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn probe_avx2(tags: &[u64], line: u64) -> SetProbe {
    use std::arch::x86_64::*;
    let needle = _mm256_set1_epi64x(line as i64);
    let hole = _mm256_set1_epi64x(-1i64); // INVALID_LINE in every lane
    let mut base = 0usize;
    let mut chunks = tags.chunks_exact(4);
    for chunk in &mut chunks {
        let lane = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        let hit = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, needle))) as u32;
        let empty = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, hole))) as u32;
        if hit | empty != 0 {
            let h = hit.trailing_zeros();
            let e = empty.trailing_zeros();
            return if h < e {
                SetProbe::Hit(base + h as usize)
            } else {
                SetProbe::Empty(base + e as usize)
            };
        }
        base += 4;
    }
    for (j, &tag) in chunks.remainder().iter().enumerate() {
        if tag == line {
            return SetProbe::Hit(base + j);
        }
        if tag == INVALID_LINE {
            return SetProbe::Empty(base + j);
        }
    }
    SetProbe::Full
}

/// AVX-512 probe: eight tags per `_mm512_cmpeq_epi64_mask`, with the
/// hit/empty masks landing directly in mask registers (`__mmask8`) — no
/// float-domain movemask round trip — and the sub-8 tail handled by one
/// masked load + masked compare instead of a scalar remainder loop.  The
/// compares are *masked* (`_mm512_mask_cmpeq_epi64_mask`) on the tail so
/// the zeroed masked-out lanes can never fake a hit on line 0.
///
/// # Safety
/// Callers must guarantee AVX-512F is available
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn probe_avx512(tags: &[u64], line: u64) -> SetProbe {
    use std::arch::x86_64::*;
    let needle = _mm512_set1_epi64(line as i64);
    let hole = _mm512_set1_epi64(-1i64); // INVALID_LINE in every lane
    let mut base = 0usize;
    let mut chunks = tags.chunks_exact(8);
    for chunk in &mut chunks {
        let lane = _mm512_loadu_epi64(chunk.as_ptr() as *const i64);
        let hit = _mm512_cmpeq_epi64_mask(lane, needle) as u32;
        let empty = _mm512_cmpeq_epi64_mask(lane, hole) as u32;
        if hit | empty != 0 {
            let h = hit.trailing_zeros();
            let e = empty.trailing_zeros();
            return if h < e {
                SetProbe::Hit(base + h as usize)
            } else {
                SetProbe::Empty(base + e as usize)
            };
        }
        base += 8;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let k: __mmask8 = (1u8 << rem.len()) - 1;
        let lane = _mm512_maskz_loadu_epi64(k, rem.as_ptr() as *const i64);
        let hit = _mm512_mask_cmpeq_epi64_mask(k, lane, needle) as u32;
        let empty = _mm512_mask_cmpeq_epi64_mask(k, lane, hole) as u32;
        if hit | empty != 0 {
            let h = hit.trailing_zeros();
            let e = empty.trailing_zeros();
            return if h < e {
                SetProbe::Hit(base + h as usize)
            } else {
                SetProbe::Empty(base + e as usize)
            };
        }
    }
    SetProbe::Full
}

/// Which probe implementation runtime feature detection picked for the
/// `SIMD = true` path.  Detected once per cache construction and cached as
/// a plain field ([`detect_probe_tier`]): a non-atomic field load is
/// loop-invariant to LLVM, so hot probe loops hoist the dispatch branch
/// instead of re-reading `std`'s atomic detection cache every probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeTier {
    /// Mask-register compares, 8 tags per instruction ([`probe_avx512`]).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// 256-bit compares + movemask, 4 tags per instruction
    /// ([`probe_avx2`]).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// The portable chunked loop ([`probe_chunked`]).
    Portable,
}

/// One-time probe-tier detection (see [`ProbeTier`]).
#[inline]
fn detect_probe_tier() -> ProbeTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            ProbeTier::Avx512
        } else if std::is_x86_feature_detected!("avx2") {
            ProbeTier::Avx2
        } else {
            ProbeTier::Portable
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        ProbeTier::Portable
    }
}

/// Runtime-dispatched SIMD probe: the widest vector compare the CPU has,
/// the portable chunked loop everywhere else.  `tier` must come from
/// [`detect_probe_tier`].
#[inline(always)]
fn probe_simd(tags: &[u64], line: u64, tier: ProbeTier) -> SetProbe {
    match tier {
        // SAFETY: each tier is picked only when its runtime feature
        // detection succeeded.
        #[cfg(target_arch = "x86_64")]
        ProbeTier::Avx512 => unsafe { probe_avx512(tags, line) },
        #[cfg(target_arch = "x86_64")]
        ProbeTier::Avx2 => unsafe { probe_avx2(tags, line) },
        ProbeTier::Portable => probe_chunked(tags, line),
    }
}

/// Compile-time probe selection: the SIMD lane scan unless the type asked
/// for the scalar reference (`SIMD = false`) or the `scalar-probe` feature
/// forces the fallback crate-wide.
#[inline(always)]
fn probe_lane<const SIMD: bool>(tags: &[u64], line: u64, tier: ProbeTier) -> SetProbe {
    if SIMD && !cfg!(feature = "scalar-probe") {
        probe_simd(tags, line, tier)
    } else {
        probe_scalar(tags, line)
    }
}

/// Length of the valid prefix of a set's tag lane (index of the first
/// empty slot, or `ways` if the set is full).
#[inline(always)]
fn valid_prefix_len(tags: &[u64]) -> usize {
    tags.iter()
        .position(|&t| t == INVALID_LINE)
        .unwrap_or(tags.len())
}

/// True-LRU victim of a full set: the way with the minimum packed meta
/// word.  Stamps are unique, so the first strict minimum is the least
/// recently used line regardless of dirty bits — exactly the victim the
/// pre-SoA fused scan produced.
#[inline(always)]
fn min_meta_slot(meta: &[u64]) -> usize {
    let mut victim = 0usize;
    let mut best = meta[0];
    for (idx, &m) in meta.iter().enumerate().skip(1) {
        if m < best {
            victim = idx;
            best = m;
        }
    }
    victim
}

/// Pack a meta word: the dirty flag lives in the low bit of the LRU word
/// (`meta = stamp << 1 | dirty`).  Stamps are unique, so ordering by the
/// packed word orders by stamp regardless of the dirty bit.
#[inline(always)]
fn make_meta(stamp: u64, dirty: bool) -> u64 {
    stamp << 1 | dirty as u64
}

/// Whether a meta word carries the dirty bit.
#[inline(always)]
fn meta_dirty(meta: u64) -> bool {
    meta & 1 == 1
}

/// Refresh a meta word's LRU stamp, keeping (and optionally setting) dirty.
#[inline(always)]
fn refresh_meta(meta: &mut u64, stamp: u64, write: bool) {
    *meta = stamp << 1 | (*meta & 1) | write as u64;
}

/// A single set-associative cache level with a pluggable replacement
/// policy (true LRU by default) and a compile-time probe-path selector
/// (`SIMD = true` is the chunked lane scan, `false` the scalar reference).
///
/// Lines are identified by their global line index (`addr / 64`); the set
/// index is derived from the line index, the tag is the full line index
/// (simple and unambiguous).
#[derive(Debug, Clone)]
pub struct SetAssocCache<R: ReplacementPolicy = TrueLru, const SIMD: bool = true> {
    /// Tag lane: `sets × ways` line indices, set-major.  Slot validity is
    /// encoded in the tag (`INVALID_LINE`); valid tags form a prefix of
    /// each set.
    tags: Box<[u64]>,
    /// Meta lane, parallel to `tags`: `stamp << 1 | dirty` per slot
    /// (`0` for empty slots).
    meta: Box<[u64]>,
    /// Set indices that received at least one fill since the last
    /// reset/flush, so draining operations touch O(resident) entries
    /// instead of the whole arena (a streaming kernel leaves most of a
    /// large L3 share untouched).
    used_sets: Vec<u32>,
    /// One bit per set: whether it is in `used_sets`.
    used_bitmap: Box<[u64]>,
    /// Insertion slot remembered by the last missing [`touch`]
    /// (see [`Self::fill`]); valid only while `stamp` is unchanged.
    ///
    /// [`touch`]: Self::touch
    miss_memo: Option<MissMemo>,
    /// Replacement-policy state (zero-sized for [`TrueLru`]).
    policy: R,
    ways: usize,
    set_mask: u64,
    /// Cached [`detect_probe_tier`] result (see there);
    /// geometry-independent.
    probe_tier: ProbeTier,
    hits: u64,
    misses: u64,
    stamp: u64,
}

/// See [`SetAssocCache::fill`]: the slot a fill of `line` would use, as
/// determined by the scan of a missing touch at stamp `stamp`.
#[derive(Debug, Clone, Copy)]
struct MissMemo {
    line: u64,
    slot: usize,
    stamp: u64,
}

impl<R: ReplacementPolicy, const SIMD: bool> SetAssocCache<R, SIMD> {
    /// Create a cache with `capacity_bytes` total capacity, `ways`
    /// associativity and 64-byte lines.  The number of sets is rounded down
    /// to the next power of two so the set index is a simple mask; capacity
    /// is preserved by widening the ways accordingly.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let (sets, effective_ways) = Self::geometry(capacity_bytes, ways);
        Self {
            tags: vec![INVALID_LINE; sets * effective_ways].into_boxed_slice(),
            meta: vec![0u64; sets * effective_ways].into_boxed_slice(),
            used_sets: Vec::new(),
            used_bitmap: vec![0u64; sets.div_ceil(64)].into_boxed_slice(),
            miss_memo: None,
            policy: R::new(sets, effective_ways),
            ways: effective_ways,
            set_mask: (sets - 1) as u64,
            probe_tier: detect_probe_tier(),
            hits: 0,
            misses: 0,
            stamp: 0,
        }
    }

    /// The `(sets, ways)` geometry [`new`] would pick for a capacity and
    /// associativity — exposed so callers can tell whether an existing cache
    /// can be [`reset`] in place instead of reallocated.
    ///
    /// [`new`]: Self::new
    /// [`reset`]: Self::reset
    pub fn geometry(capacity_bytes: usize, ways: usize) -> (usize, usize) {
        assert!(capacity_bytes >= 64 && ways > 0);
        let total_lines = capacity_bytes / 64;
        let ideal_sets = (total_lines / ways).max(1);
        let sets_pow2 = if ideal_sets.is_power_of_two() {
            ideal_sets
        } else {
            (ideal_sets.next_power_of_two()) / 2
        }
        .max(1);
        let effective_ways = (total_lines / sets_pow2).max(1);
        (sets_pow2, effective_ways)
    }

    /// True if this cache has exactly the geometry [`new`]`(capacity_bytes,
    /// ways)` would produce, i.e. [`reset`] yields the same state as a fresh
    /// construction.
    ///
    /// [`new`]: Self::new
    /// [`reset`]: Self::reset
    pub fn matches_geometry(&self, capacity_bytes: usize, ways: usize) -> bool {
        let (sets, effective_ways) = Self::geometry(capacity_bytes, ways);
        self.ways == effective_ways && self.set_mask == (sets - 1) as u64
    }

    /// Empty the cache and zero the counters, reusing the lane allocations.
    /// Afterwards the cache is indistinguishable from a freshly constructed
    /// one of the same geometry.  Costs O(sets ever filled), not
    /// O(capacity).
    pub fn reset(&mut self) {
        self.clear_entries();
        self.hits = 0;
        self.misses = 0;
        self.stamp = 0;
    }

    /// Empty every set that ever received a fill and forget the used-set
    /// tracking.
    fn clear_entries(&mut self) {
        for i in 0..self.used_sets.len() {
            let start = self.used_sets[i] as usize * self.ways;
            for slot in start..start + self.ways {
                if self.tags[slot] == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                self.tags[slot] = INVALID_LINE;
                self.meta[slot] = 0;
            }
        }
        self.used_sets.clear();
        self.used_bitmap.fill(0);
        self.miss_memo = None;
        self.policy.reset();
    }

    /// Record that `set_idx` holds (or held) lines, so draining operations
    /// can skip every never-touched set.
    #[inline]
    fn mark_used(&mut self, set_idx: usize) {
        let word = set_idx / 64;
        let bit = 1u64 << (set_idx % 64);
        if self.used_bitmap[word] & bit == 0 {
            self.used_bitmap[word] |= bit;
            self.used_sets.push(set_idx as u32);
        }
    }

    /// Total capacity in cache lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }

    /// Number of lines currently resident.  Costs O(sets ever filled):
    /// only used sets are visited, and the prefix invariant stops each
    /// walk at the first hole — the never-filled bulk of the arena is
    /// never touched.
    pub fn resident_lines(&self) -> usize {
        self.used_sets
            .iter()
            .map(|&set| {
                let start = set as usize * self.ways;
                valid_prefix_len(&self.tags[start..start + self.ways])
            })
            .sum()
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Start offset of `line`'s set in the flat lanes.
    #[inline]
    fn lane_start(&self, line: u64) -> usize {
        (line & self.set_mask) as usize * self.ways
    }

    /// Tag lane of the set starting at flat offset `start`, without a
    /// per-probe bounds check (measurably visible in probe-bound scans).
    ///
    /// SAFETY: `start` is always `(set index masked to sets - 1) * ways`,
    /// and the lanes are allocated with exactly `sets * ways` slots, so
    /// `start + ways <= tags.len()` holds by construction (debug-asserted).
    #[inline(always)]
    fn set_tags(&self, start: usize) -> &[u64] {
        debug_assert!(start + self.ways <= self.tags.len());
        unsafe { self.tags.get_unchecked(start..start + self.ways) }
    }

    /// Probe for a line without modifying LRU state or counters.
    /// (`#[inline]` so cross-crate hot loops — the hierarchy, the probe
    /// benchmarks — inline the scan instead of paying a call per probe.)
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        let start = self.lane_start(line);
        matches!(
            probe_lane::<SIMD>(self.set_tags(start), line, self.probe_tier),
            SetProbe::Hit(_)
        )
    }

    /// Count how many of `lines` are resident — a bulk [`contains`] that
    /// modifies no LRU state or counters.
    ///
    /// The probe-path dispatch (AVX-512 / AVX2 / portable) is resolved
    /// *once for the whole batch* and the scan loop runs inside the
    /// selected implementation, so the per-probe call, `vzeroupper` and
    /// needle-broadcast overhead of a dispatched single probe is amortised
    /// away.  This is the shape a working-set residency question has
    /// (many lines against one cache), and what the probe-scan benchmark
    /// measures.
    ///
    /// [`contains`]: Self::contains
    pub fn resident_count(&self, lines: &[u64]) -> usize {
        if SIMD && !cfg!(feature = "scalar-probe") {
            match self.probe_tier {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: each tier is picked only when its runtime
                // feature detection succeeded.
                ProbeTier::Avx512 => unsafe { self.resident_count_avx512(lines) },
                #[cfg(target_arch = "x86_64")]
                ProbeTier::Avx2 => unsafe { self.resident_count_avx2(lines) },
                ProbeTier::Portable => self.resident_count_with(lines, probe_chunked),
            }
        } else {
            self.resident_count_with(lines, probe_scalar)
        }
    }

    /// [`resident_count`](Self::resident_count) loop over one concrete
    /// probe implementation (inlined into the feature-enabled wrappers, so
    /// the probe itself inlines into the batch loop).
    #[inline(always)]
    fn resident_count_with(&self, lines: &[u64], probe: impl Fn(&[u64], u64) -> SetProbe) -> usize {
        lines
            .iter()
            .filter(|&&line| {
                matches!(
                    probe(self.set_tags(self.lane_start(line)), line),
                    SetProbe::Hit(_)
                )
            })
            .count()
    }

    /// # Safety
    /// AVX-512F must be available (`is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn resident_count_avx512(&self, lines: &[u64]) -> usize {
        // SAFETY: the caller guarantees AVX-512F; the closure inherits the
        // feature context, so the probe inlines without a per-line call.
        self.resident_count_with(lines, |tags, line| unsafe { probe_avx512(tags, line) })
    }

    /// # Safety
    /// AVX2 must be available (`is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn resident_count_avx2(&self, lines: &[u64]) -> usize {
        // SAFETY: the caller guarantees AVX2 (see above on inlining).
        self.resident_count_with(lines, |tags, line| unsafe { probe_avx2(tags, line) })
    }

    /// Write `line` into `slot` of `set_idx` with a fresh meta word,
    /// returning the eviction if the slot held a valid line.
    #[inline]
    fn replace_slot(
        &mut self,
        set_idx: usize,
        slot: usize,
        line: u64,
        stamp: u64,
        dirty: bool,
    ) -> Option<Eviction> {
        let i = set_idx * self.ways + slot;
        let old = self.tags[i];
        let evicted = (old != INVALID_LINE).then(|| Eviction {
            line: old,
            dirty: meta_dirty(self.meta[i]),
        });
        self.tags[i] = line;
        self.meta[i] = make_meta(stamp, dirty);
        if !R::LRU_SCAN {
            self.policy.on_fill(set_idx, slot);
        }
        evicted
    }

    /// Access (touch) a line: returns `Hit` and refreshes LRU if present,
    /// `Miss` otherwise (the line is *not* filled — call [`fill`] or use the
    /// combined [`probe_fill`]).  On a miss the insertion slot found by the
    /// scan is remembered, making the [`fill`] that typically follows O(1).
    ///
    /// `write` marks the line dirty on a hit.
    ///
    /// [`fill`]: Self::fill
    /// [`probe_fill`]: Self::probe_fill
    #[inline]
    pub fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        match probe_lane::<SIMD>(self.set_tags(start), line, self.probe_tier) {
            SetProbe::Hit(idx) => {
                refresh_meta(&mut self.meta[start + idx], stamp, write);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += 1;
                LookupResult::Hit
            }
            probe => {
                self.misses += 1;
                // For non-LRU policies a full set has no victim yet (the
                // policy is consulted — and possibly aged — only by the fill
                // itself), so only an empty slot can be remembered.
                let slot = match probe {
                    SetProbe::Empty(idx) => Some(idx),
                    _ if R::LRU_SCAN => Some(min_meta_slot(&self.meta[start..start + self.ways])),
                    _ => None,
                };
                if let Some(slot) = slot {
                    self.miss_memo = Some(MissMemo { line, slot, stamp });
                }
                LookupResult::Miss
            }
        }
    }

    /// Account `n` additional guaranteed hits on a line that is known to be
    /// resident, refreshing its LRU position once.  This is the batched
    /// equivalent of calling [`touch`] `n` times in a row on a resident line
    /// — the hit counter advances by `n` while the set is scanned only once.
    /// Returns `false` (and changes nothing) if the line is not resident;
    /// callers fall back to the scalar path in that case.
    ///
    /// This is a **load-only** fast path: the refresh deliberately passes
    /// `write = false`, so an already-dirty line stays dirty and a clean
    /// line stays clean.  Repeated *stores* must go through the regular
    /// store path ([`touch`] with `write = true`, or the write-policy
    /// handler above this level) — which is how every in-tree caller uses
    /// it (`PrivateCore::load_run` and the pattern drivers' bulk-load
    /// phases).  The dirty-bit semantics are regression-tested.
    ///
    /// [`touch`]: Self::touch
    #[inline]
    pub fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        match probe_lane::<SIMD>(self.set_tags(start), line, self.probe_tier) {
            SetProbe::Hit(idx) => {
                refresh_meta(&mut self.meta[start + idx], stamp, false);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += n;
                true
            }
            _ => false,
        }
    }

    /// Combined touch-or-fill in a single set scan: counts a hit or a miss
    /// like [`touch`], and on a miss inserts the line (dirty if `write`)
    /// like [`fill`], returning the eviction if one was needed.
    ///
    /// Equivalent to `touch(line, write)` followed by `fill(line, write)` on
    /// a miss, but probes the set once instead of twice.
    ///
    /// [`touch`]: Self::touch
    /// [`fill`]: Self::fill
    #[inline]
    pub fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        match probe_lane::<SIMD>(self.set_tags(start), line, self.probe_tier) {
            SetProbe::Hit(idx) => {
                refresh_meta(&mut self.meta[start + idx], stamp, write);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += 1;
                (LookupResult::Hit, None)
            }
            probe => {
                let victim = match probe {
                    SetProbe::Empty(idx) => idx,
                    _ if R::LRU_SCAN => min_meta_slot(&self.meta[start..start + self.ways]),
                    _ => self.policy.pick_victim(set_idx, self.ways),
                };
                let evicted = self.replace_slot(set_idx, victim, line, stamp, write);
                self.misses += 1;
                self.mark_used(set_idx);
                (LookupResult::Miss, evicted)
            }
        }
    }

    /// Insert a line (after a miss), possibly evicting the LRU line of its
    /// set.  Returns the eviction, if any.  `dirty` marks the new line dirty
    /// immediately (used for stores and for ITOM-claimed lines).
    #[inline]
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        // Fast path: the scan of a missing `touch` already determined the
        // slot, and nothing has changed since (same stamp).  The full scan
        // below would reproduce exactly that slot.
        if let Some(memo) = self.miss_memo {
            if memo.line == line && memo.stamp == self.stamp {
                let stamp = self.next_stamp();
                self.miss_memo = None;
                let set_idx = (line & self.set_mask) as usize;
                let evicted = self.replace_slot(set_idx, memo.slot, line, stamp, dirty);
                self.mark_used(set_idx);
                return evicted;
            }
        }
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        match probe_lane::<SIMD>(self.set_tags(start), line, self.probe_tier) {
            SetProbe::Hit(idx) => {
                // Already present (e.g. racing prefetch): refresh.
                refresh_meta(&mut self.meta[start + idx], stamp, dirty);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                None
            }
            probe => {
                let victim = match probe {
                    SetProbe::Empty(idx) => idx,
                    _ if R::LRU_SCAN => min_meta_slot(&self.meta[start..start + self.ways]),
                    _ => self.policy.pick_victim(set_idx, self.ways),
                };
                let evicted = self.replace_slot(set_idx, victim, line, stamp, dirty);
                self.mark_used(set_idx);
                evicted
            }
        }
    }

    /// Remove a specific line (e.g. when an NT store invalidates it).
    /// Returns whether the removed line was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        // The removal moves entries around; a remembered slot may go stale.
        self.miss_memo = None;
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        let tags = &self.tags[start..start + self.ways];
        let idx = match probe_lane::<SIMD>(tags, line, self.probe_tier) {
            SetProbe::Hit(idx) => idx,
            _ => return None,
        };
        // The hit sits inside the valid prefix; find where that prefix ends.
        let valid = idx + 1 + valid_prefix_len(&tags[idx + 1..]);
        let dirty = meta_dirty(self.meta[start + idx]);
        // Preserve the prefix invariant by moving the last valid entry into
        // the hole (the same reordering the old `Vec::swap_remove` did).
        self.tags[start + idx] = self.tags[start + valid - 1];
        self.meta[start + idx] = self.meta[start + valid - 1];
        self.tags[start + valid - 1] = INVALID_LINE;
        self.meta[start + valid - 1] = 0;
        if !R::LRU_SCAN {
            self.policy.on_invalidate(set_idx, idx, valid - 1);
        }
        Some(dirty)
    }

    /// Drain every resident line, returning the dirty ones in no
    /// particular order (used to flush write-backs at the end of a
    /// measurement region).  Costs O(sets ever filled), not O(capacity).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        // Single pass: collect the dirty lines and clear each set while its
        // lanes are still in the host cache.
        for i in 0..self.used_sets.len() {
            let start = self.used_sets[i] as usize * self.ways;
            for slot in start..start + self.ways {
                if self.tags[slot] == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                if meta_dirty(self.meta[slot]) {
                    dirty.push(self.tags[slot]);
                }
                self.tags[slot] = INVALID_LINE;
                self.meta[slot] = 0;
            }
        }
        self.used_sets.clear();
        self.used_bitmap.fill(0);
        self.miss_memo = None;
        self.policy.reset();
        dirty
    }

    /// Visit every resident line without draining it, in `used_sets`
    /// order (the same order [`flush_dirty`](Self::flush_dirty) drains).
    /// Used by the co-run engine to attribute shared-level occupancy to
    /// tenants at the end of a run.  Costs O(sets ever filled).
    pub fn for_each_resident(&self, mut f: impl FnMut(u64, bool)) {
        for &set in &self.used_sets {
            let start = set as usize * self.ways;
            for slot in start..start + self.ways {
                if self.tags[slot] == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                f(self.tags[slot], meta_dirty(self.meta[slot]));
            }
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

/// One cache level viewed through a policy-erased lens.
///
/// `CoreSim<R, W>` monomorphises every level over a single replacement
/// policy `R`; the private/shared hierarchy split introduces call sites
/// that must be generic over *which concrete cache* sits at a level — the
/// private half is driven against whatever last-level bank the scheduler
/// hands it, and the per-level policy simulator mixes different policies
/// across levels of one hierarchy.  This trait is the seam: every
/// `SetAssocCache<R>` implements it by delegating to its inherent methods
/// (fully inlined, so `CoreSim`'s default monomorphisation is unchanged
/// instruction for instruction), and [`AnyCache`] implements it by
/// matching on the policy variant.
pub trait CacheBank: std::fmt::Debug + Clone + Send + 'static {
    /// Probe for `line`, refreshing recency (and dirtiness on a write hit).
    fn touch(&mut self, line: u64, write: bool) -> LookupResult;
    /// Repeat `n` guaranteed hits on `line`; `false` if it is absent.
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool;
    /// Probe and, on a miss, fill in one scan.
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>);
    /// Insert `line`, evicting a victim if the set is full.
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction>;
    /// Remove `line`; `Some(dirty)` if it was resident.
    fn invalidate(&mut self, line: u64) -> Option<bool>;
    /// Whether `line` is resident (no recency update).
    fn contains(&self, line: u64) -> bool;
    /// Drain every resident line, returning the dirty ones.
    fn flush_dirty(&mut self) -> Vec<u64>;
    /// Empty the cache and its statistics.
    fn reset(&mut self);
    /// Hits recorded so far.
    fn hits(&self) -> u64;
    /// Misses recorded so far.
    fn misses(&self) -> u64;
}

impl<R: ReplacementPolicy, const SIMD: bool> CacheBank for SetAssocCache<R, SIMD> {
    #[inline]
    fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        SetAssocCache::touch(self, line, write)
    }

    #[inline]
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        SetAssocCache::touch_repeat(self, line, n)
    }

    #[inline]
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        SetAssocCache::probe_fill(self, line, write)
    }

    #[inline]
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        SetAssocCache::fill(self, line, dirty)
    }

    #[inline]
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        SetAssocCache::invalidate(self, line)
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        SetAssocCache::contains(self, line)
    }

    #[inline]
    fn flush_dirty(&mut self) -> Vec<u64> {
        SetAssocCache::flush_dirty(self)
    }

    #[inline]
    fn reset(&mut self) {
        SetAssocCache::reset(self)
    }

    #[inline]
    fn hits(&self) -> u64 {
        SetAssocCache::hits(self)
    }

    #[inline]
    fn misses(&self) -> u64 {
        SetAssocCache::misses(self)
    }
}

/// A cache level whose replacement policy is chosen at *runtime* from the
/// machine model's per-level [`CacheSpec::replacement`] field.
///
/// The policy-generic `SetAssocCache<R>` is zero-cost but forces one `R`
/// per monomorphisation; a hierarchy that mixes policies across levels
/// (the CVA6 preset runs random-evict L1/L2 under a PLRU last level)
/// needs one *type* covering all four policies.  The enum dispatch costs
/// one predictable branch per operation and is only used on the
/// mixed-policy path — the paper-default simulators keep the generic
/// banks.
///
/// [`CacheSpec::replacement`]: clover_machine::CacheSpec
#[derive(Debug, Clone)]
pub enum AnyCache {
    /// True-LRU bank.
    Lru(SetAssocCache<TrueLru>),
    /// Tree-PLRU bank.
    Plru(SetAssocCache<crate::policy::TreePlru>),
    /// SRRIP bank.
    Srrip(SetAssocCache<crate::policy::Srrip>),
    /// Deterministic random-evict bank.
    Random(SetAssocCache<crate::policy::RandomEvict>),
}

impl AnyCache {
    /// Build a bank for `kind` with the given geometry.
    pub fn for_kind(
        kind: clover_machine::ReplacementPolicyKind,
        capacity_bytes: usize,
        ways: usize,
    ) -> Self {
        use clover_machine::ReplacementPolicyKind as K;
        match kind {
            K::Lru => AnyCache::Lru(SetAssocCache::new(capacity_bytes, ways)),
            K::Plru => AnyCache::Plru(SetAssocCache::new(capacity_bytes, ways)),
            K::Srrip => AnyCache::Srrip(SetAssocCache::new(capacity_bytes, ways)),
            K::Random => AnyCache::Random(SetAssocCache::new(capacity_bytes, ways)),
        }
    }

    /// The policy kind this bank was built for.
    pub fn kind(&self) -> clover_machine::ReplacementPolicyKind {
        use clover_machine::ReplacementPolicyKind as K;
        match self {
            AnyCache::Lru(_) => K::Lru,
            AnyCache::Plru(_) => K::Plru,
            AnyCache::Srrip(_) => K::Srrip,
            AnyCache::Random(_) => K::Random,
        }
    }
}

/// Expand one delegation arm per policy variant.
macro_rules! any_cache_delegate {
    ($self:ident, $bank:ident => $body:expr) => {
        match $self {
            AnyCache::Lru($bank) => $body,
            AnyCache::Plru($bank) => $body,
            AnyCache::Srrip($bank) => $body,
            AnyCache::Random($bank) => $body,
        }
    };
}

impl CacheBank for AnyCache {
    #[inline]
    fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        any_cache_delegate!(self, bank => bank.touch(line, write))
    }

    #[inline]
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        any_cache_delegate!(self, bank => bank.touch_repeat(line, n))
    }

    #[inline]
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        any_cache_delegate!(self, bank => bank.probe_fill(line, write))
    }

    #[inline]
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        any_cache_delegate!(self, bank => bank.fill(line, dirty))
    }

    #[inline]
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        any_cache_delegate!(self, bank => bank.invalidate(line))
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        any_cache_delegate!(self, bank => bank.contains(line))
    }

    #[inline]
    fn flush_dirty(&mut self) -> Vec<u64> {
        any_cache_delegate!(self, bank => bank.flush_dirty())
    }

    #[inline]
    fn reset(&mut self) {
        any_cache_delegate!(self, bank => bank.reset())
    }

    #[inline]
    fn hits(&self) -> u64 {
        any_cache_delegate!(self, bank => bank.hits())
    }

    #[inline]
    fn misses(&self) -> u64 {
        any_cache_delegate!(self, bank => bank.misses())
    }
}

/// A simple fully-associative helper cache used for small structures
/// (e.g. the streamer prefetcher's stream table).  Maps a key to a value
/// with LRU eviction.
#[derive(Debug, Clone)]
pub struct LruTable<V> {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, (V, u64)>,
}

impl<V> LruTable<V> {
    /// Create a table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    /// Get a mutable reference to the value for `key`, refreshing its LRU
    /// position.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|(v, s)| {
            *s = stamp;
            v
        })
    }

    /// Insert a value, evicting the least recently used entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        self.stamp += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, (_, s))| *s) {
                self.entries.remove(&lru_key);
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stamp = 0;
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RandomEvict, Srrip, TreePlru};

    /// Default-policy cache (the bare `SetAssocCache::new` call would leave
    /// the replacement parameter unconstrained in a `let`).
    fn lru(capacity_bytes: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(capacity_bytes, ways)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = lru(4096, 8);
        assert_eq!(c.touch(42, false), LookupResult::Miss);
        assert!(c.fill(42, false).is_none());
        assert_eq!(c.touch(42, false), LookupResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_and_eviction() {
        // 8 lines total, fully associative in one set is unlikely; use a
        // direct check of capacity.
        let mut c = lru(8 * 64, 8);
        assert_eq!(c.capacity_lines(), 8);
        for line in 0..8 {
            c.touch(line, false);
            assert!(c.fill(line, false).is_none());
        }
        assert_eq!(c.resident_lines(), 8);
        // A ninth distinct line must evict something.
        c.touch(100, false);
        let ev = c.fill(100, false);
        assert!(ev.is_some() || c.resident_lines() <= 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single-set cache with 2 ways.
        let mut c = lru(2 * 64, 2);
        c.touch(0, false);
        c.fill(0, false);
        c.touch(1, false);
        c.fill(1, false);
        // Touch 0 again so 1 becomes LRU (both map to the same set because
        // there is a single set).
        c.touch(0, false);
        c.touch(2, false);
        let ev = c.fill(2, false).expect("eviction expected");
        assert_eq!(ev.line, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = lru(2 * 64, 2);
        c.fill(0, true);
        c.fill(1, false);
        let ev = c.fill(2, false).expect("eviction");
        // Line 0 was LRU and dirty.
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = lru(4 * 64, 4);
        c.fill(7, false);
        c.touch(7, true);
        let dirty = c.flush_dirty();
        assert_eq!(dirty, vec![7]);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = lru(4 * 64, 4);
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn fill_existing_line_is_idempotent() {
        let mut c = lru(4 * 64, 4);
        c.fill(5, false);
        assert!(c.fill(5, true).is_none());
        assert_eq!(c.resident_lines(), 1);
        // The second fill marked it dirty.
        assert_eq!(c.flush_dirty(), vec![5]);
    }

    #[test]
    fn geometry_rounded_to_power_of_two_sets_preserves_capacity() {
        // 48 KiB, 12-way: 768 lines, 64 sets (power of two already).
        let c = lru(48 * 1024, 12);
        assert_eq!(c.capacity_lines(), 768);
        // 54 MiB, 12-way: 884736 lines; sets rounded to power of two.
        let c = lru(54 * 1024 * 1024, 12);
        let lines = c.capacity_lines();
        assert!(
            lines >= 800_000,
            "capacity must be preserved approximately, got {lines}"
        );
    }

    #[test]
    fn probe_fill_matches_touch_then_fill() {
        // Drive two caches with the same line stream, one through the
        // combined probe and one through the two-step path; every counter
        // and the final eviction behaviour must agree.
        let mut combined = lru(4 * 64, 2);
        let mut twostep = lru(4 * 64, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 10, 0, 4, 6];
        for (n, &line) in stream.iter().enumerate() {
            let write = n % 3 == 0;
            let (r1, ev1) = combined.probe_fill(line, write);
            let r2 = twostep.touch(line, write);
            let ev2 = if r2 == LookupResult::Miss {
                twostep.fill(line, write)
            } else {
                None
            };
            assert_eq!(r1, r2, "access {n}");
            assert_eq!(ev1, ev2, "access {n}");
        }
        assert_eq!(combined.hits(), twostep.hits());
        assert_eq!(combined.misses(), twostep.misses());
        let mut d1 = combined.flush_dirty();
        let mut d2 = twostep.flush_dirty();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn touch_repeat_counts_bulk_hits() {
        let mut c = lru(4 * 64, 4);
        c.fill(9, false);
        assert!(c.touch_repeat(9, 7));
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 0);
        // Non-resident lines are refused without touching the counters.
        assert!(!c.touch_repeat(13, 3));
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 0);
        // n == 0 is a no-op that reports success.
        assert!(c.touch_repeat(13, 0));
    }

    #[test]
    fn touch_repeat_preserves_the_dirty_bit() {
        // The batched path is load-only: it must neither clear an existing
        // dirty bit nor set one — repeated resident *stores* go through the
        // regular write path instead.
        let mut c = lru(4 * 64, 4);
        c.fill(5, true); // resident and dirty
        assert!(c.touch_repeat(5, 4));
        assert_eq!(c.flush_dirty(), vec![5], "dirty bit must survive repeats");
        c.fill(6, false); // resident and clean
        assert!(c.touch_repeat(6, 3));
        assert!(
            c.flush_dirty().is_empty(),
            "repeats must never dirty a clean line"
        );
    }

    #[test]
    fn resident_lines_tracks_fills_invalidates_and_flushes() {
        // A large cache where a full-arena scan would visit ~16k slots:
        // the used-set walk must still report exact counts through every
        // mutation that changes residency.
        let mut c = lru(1 << 20, 16);
        assert_eq!(c.resident_lines(), 0);
        for line in 0..48u64 {
            c.fill(line, line % 5 == 0);
        }
        assert_eq!(c.resident_lines(), 48);
        c.invalidate(7);
        c.invalidate(31);
        assert_eq!(c.resident_lines(), 46);
        c.flush_dirty();
        assert_eq!(c.resident_lines(), 0);
        c.fill(3, false);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = lru(8 * 64, 4);
        for line in 0..12u64 {
            c.probe_fill(line, line % 2 == 0);
        }
        assert!(c.resident_lines() > 0 && c.misses() > 0);
        c.reset();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        // Behaves exactly like a fresh cache afterwards.
        let mut fresh = lru(8 * 64, 4);
        for line in [3u64, 7, 3, 11, 3] {
            assert_eq!(c.probe_fill(line, false), fresh.probe_fill(line, false));
        }
        assert!(c.matches_geometry(8 * 64, 4));
        assert!(!c.matches_geometry(16 * 64, 4));
    }

    #[test]
    fn flush_drains_and_tracking_restarts() {
        let mut c = lru(64 * 64, 4);
        c.fill(1, true);
        c.fill(2, false);
        c.fill(65, true); // second set
        let mut d = c.flush_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 65]);
        assert_eq!(c.resident_lines(), 0);
        // Used-set tracking restarts cleanly: a second flush is empty, new
        // fills are drained again.
        assert!(c.flush_dirty().is_empty());
        c.fill(130, true);
        assert_eq!(c.flush_dirty(), vec![130]);
    }

    /// Mirror of `probe_fill_matches_touch_then_fill` for every non-LRU
    /// policy: the combined scan and the two-step path must stay equivalent
    /// when the victim comes from policy state instead of the probe scan.
    fn probe_fill_equivalence_generic<R: ReplacementPolicy>() {
        let mut combined: SetAssocCache<R> = SetAssocCache::new(4 * 64, 2);
        let mut twostep: SetAssocCache<R> = SetAssocCache::new(4 * 64, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 10, 0, 4, 6, 12, 2, 14, 0];
        for (n, &line) in stream.iter().enumerate() {
            let write = n % 3 == 0;
            let (r1, ev1) = combined.probe_fill(line, write);
            let r2 = twostep.touch(line, write);
            let ev2 = if r2 == LookupResult::Miss {
                twostep.fill(line, write)
            } else {
                None
            };
            assert_eq!(r1, r2, "{}: access {n}", R::KIND);
            assert_eq!(ev1, ev2, "{}: access {n}", R::KIND);
        }
        assert_eq!(combined.hits(), twostep.hits());
        assert_eq!(combined.misses(), twostep.misses());
        let mut d1 = combined.flush_dirty();
        let mut d2 = twostep.flush_dirty();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "{}", R::KIND);
    }

    #[test]
    fn probe_fill_equivalence_holds_for_every_policy() {
        probe_fill_equivalence_generic::<TrueLru>();
        probe_fill_equivalence_generic::<TreePlru>();
        probe_fill_equivalence_generic::<Srrip>();
        probe_fill_equivalence_generic::<RandomEvict>();
    }

    /// Drive the chunked-probe and scalar-probe instantiations of the same
    /// policy with an identical mixed operation stream; every result,
    /// counter and flush must agree bit for bit.
    fn chunked_matches_scalar_generic<R: ReplacementPolicy>(capacity: usize, ways: usize) {
        let mut simd: SetAssocCache<R, true> = SetAssocCache::new(capacity, ways);
        let mut scalar: SetAssocCache<R, false> = SetAssocCache::new(capacity, ways);
        // Deterministic mixed stream over a working set larger than the
        // cache so full sets, evictions and invalidations all occur.
        let mut x = 0x9e3779b97f4a7c15u64;
        for n in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (x >> 33) % 512;
            match n % 7 {
                0 | 1 => {
                    assert_eq!(simd.touch(line, n % 3 == 0), scalar.touch(line, n % 3 == 0));
                }
                2 => {
                    assert_eq!(simd.fill(line, n % 5 == 0), scalar.fill(line, n % 5 == 0));
                }
                3 | 4 => {
                    assert_eq!(
                        simd.probe_fill(line, n % 2 == 0),
                        scalar.probe_fill(line, n % 2 == 0)
                    );
                }
                5 => {
                    assert_eq!(
                        simd.touch_repeat(line, n % 4),
                        scalar.touch_repeat(line, n % 4)
                    );
                }
                _ => {
                    assert_eq!(simd.invalidate(line), scalar.invalidate(line));
                }
            }
            assert_eq!(simd.contains(line), scalar.contains(line), "{}", R::KIND);
        }
        assert_eq!(simd.hits(), scalar.hits(), "{}", R::KIND);
        assert_eq!(simd.misses(), scalar.misses(), "{}", R::KIND);
        assert_eq!(
            simd.resident_lines(),
            scalar.resident_lines(),
            "{}",
            R::KIND
        );
        let mut d1 = simd.flush_dirty();
        let mut d2 = scalar.flush_dirty();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "{}", R::KIND);
    }

    #[test]
    fn chunked_probe_matches_scalar_probe_for_every_policy() {
        // Geometries straddling the 8-wide chunk size: narrower, equal,
        // wider and non-multiple ways counts.
        for &(capacity, ways) in &[(16 * 64, 4), (64 * 64, 8), (96 * 64, 12), (128 * 64, 16)] {
            chunked_matches_scalar_generic::<TrueLru>(capacity, ways);
            chunked_matches_scalar_generic::<TreePlru>(capacity, ways);
            chunked_matches_scalar_generic::<Srrip>(capacity, ways);
            chunked_matches_scalar_generic::<RandomEvict>(capacity, ways);
        }
    }

    #[test]
    fn probe_implementations_agree_on_synthetic_lanes() {
        // Every probe tier against the scalar reference on raw tag lanes:
        // widths straddling both the 4-wide AVX2 group and the 8-wide
        // portable chunk, every valid-prefix length (prefix invariant), and
        // probes that hit each resident slot, miss entirely, or sit next to
        // the sentinel.  This covers the portable chunked path directly even
        // on hosts where the runtime dispatch always picks AVX2.
        let mut x = 0x243f6a8885a308d3u64;
        for ways in [1usize, 3, 4, 5, 8, 11, 12, 16, 24] {
            for valid in 0..=ways {
                let mut tags = vec![INVALID_LINE; ways];
                for slot in tags.iter_mut().take(valid) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *slot = x >> 8;
                }
                let mut probes: Vec<u64> = tags[..valid].to_vec();
                probes.push(12345);
                probes.push(u64::MAX - 1);
                for line in probes {
                    let want = probe_scalar(&tags, line);
                    assert_eq!(
                        probe_chunked(&tags, line),
                        want,
                        "chunked ways={ways} valid={valid}"
                    );
                    assert_eq!(
                        probe_simd(&tags, line, detect_probe_tier()),
                        want,
                        "simd ways={ways} valid={valid}"
                    );
                    #[cfg(target_arch = "x86_64")]
                    if std::is_x86_feature_detected!("avx2") {
                        // SAFETY: guarded by the runtime detection above.
                        let got = unsafe { probe_avx2(&tags, line) };
                        assert_eq!(got, want, "avx2 ways={ways} valid={valid}");
                    }
                }
            }
        }
    }

    #[test]
    fn resident_count_matches_contains_under_both_probe_paths() {
        fn check<const SIMD: bool>() {
            let mut cache: SetAssocCache<TrueLru, SIMD> = SetAssocCache::new(64 * 64, 8);
            // Mixed population: some sets full, some partial, some empty.
            for line in 0..40u64 {
                cache.probe_fill(line * 3, line % 2 == 0);
            }
            // Resident lines, absent lines aliasing populated sets, and
            // lines mapping to never-filled sets, interleaved.
            let probes: Vec<u64> = (0..200u64).collect();
            let expected = probes.iter().filter(|&&l| cache.contains(l)).count();
            assert!(expected > 0 && expected < probes.len());
            assert_eq!(cache.resident_count(&probes), expected);
            assert_eq!(cache.resident_count(&[]), 0);
            // Bulk probing must not touch counters or LRU state.
            let (hits, misses) = (cache.hits(), cache.misses());
            cache.resident_count(&probes);
            assert_eq!((cache.hits(), cache.misses()), (hits, misses));
        }
        check::<true>();
        check::<false>();
    }

    #[test]
    fn non_lru_policies_reset_to_fresh_state() {
        fn check<R: ReplacementPolicy>() {
            let mut c: SetAssocCache<R> = SetAssocCache::new(8 * 64, 4);
            for line in 0..32u64 {
                c.probe_fill(line, line % 2 == 0);
            }
            c.reset();
            let mut fresh: SetAssocCache<R> = SetAssocCache::new(8 * 64, 4);
            for line in [3u64, 7, 3, 11, 3, 19, 27, 3, 35, 43, 7] {
                assert_eq!(
                    c.probe_fill(line, false),
                    fresh.probe_fill(line, false),
                    "{}: reset must replay like a fresh cache",
                    R::KIND
                );
            }
        }
        check::<TreePlru>();
        check::<Srrip>();
        check::<RandomEvict>();
    }

    #[test]
    fn non_lru_victims_diverge_from_lru_under_pressure() {
        // Sanity check that the policies actually differ: overflow one set
        // and compare eviction orders against true LRU.
        fn victims<R: ReplacementPolicy>() -> Vec<u64> {
            let mut c: SetAssocCache<R> = SetAssocCache::new(2 * 64, 2);
            let mut out = Vec::new();
            // Re-reference both resident lines in opposite order before the
            // next insertion: LRU tracks the exact recency, SRRIP collapses
            // both to "recent" and falls back to way order.
            for line in [0u64, 1, 1, 0, 2, 3, 4, 4, 3, 5, 6, 7] {
                if let (_, Some(ev)) = c.probe_fill(line, false) {
                    out.push(ev.line);
                }
            }
            out
        }
        let lru_order = victims::<TrueLru>();
        assert!(!lru_order.is_empty());
        // SRRIP inserts at distant-future, so its order deviates from LRU.
        assert_ne!(victims::<Srrip>(), lru_order);
        // Tree-PLRU with 2 ways degenerates to true LRU on this pattern —
        // only assert it produced the same number of evictions.
        assert_eq!(victims::<TreePlru>().len(), lru_order.len());
        // A different victim choice changes which later accesses hit, so
        // the deterministic-random policy may evict more lines than LRU —
        // only its sequence must deviate.
        assert_ne!(victims::<RandomEvict>(), lru_order);
    }

    #[test]
    fn lru_table_evicts() {
        let mut t: LruTable<u32> = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.get_mut(1).copied(), Some(10));
        t.insert(3, 30); // evicts key 2 (LRU)
        assert_eq!(t.len(), 2);
        assert!(t.get_mut(2).is_none());
        assert!(t.get_mut(1).is_some());
        assert!(t.get_mut(3).is_some());
    }
}
