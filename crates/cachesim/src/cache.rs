//! Set-associative cache with pluggable replacement and write-back lines.
//!
//! Storage is a single flat arena (`Box<[CacheLine]>`) with a fixed
//! `ways` stride per set and mask-derived set indices, so a probe is one
//! contiguous scan of at most `ways` entries — no per-set `Vec`, no pointer
//! chasing, no allocation after construction.  Validity is encoded in the
//! entry itself (`line == INVALID_LINE`).
//!
//! The victim-selection strategy is a zero-cost generic parameter
//! ([`ReplacementPolicy`], default [`TrueLru`]).  True LRU keeps the
//! original fused probe scan (the stamp words double as the recency
//! order); other policies carry their own per-set state and are consulted
//! through compile-time-guarded hooks, so the default monomorphisation is
//! the pre-refactor hot path instruction for instruction.
//!
//! Three invariants keep the scans short:
//!
//! * **prefix invariant** — within a set, valid entries always form a
//!   prefix ([`invalidate`](SetAssocCache::invalidate) compacts), so every
//!   probe stops at the first empty slot instead of walking all ways;
//! * **miss memo** — a [`touch`](SetAssocCache::touch) that misses records
//!   the slot a fill of that line would use, so the
//!   [`fill`](SetAssocCache::fill) that typically follows is O(1);
//! * **used-set tracking** — draining operations visit only sets that ever
//!   received a fill, so reset/flush cost O(resident), not O(capacity).

use std::collections::HashMap;

use crate::policy::{ReplacementPolicy, TrueLru};

/// Sentinel line index marking an empty arena slot.  Real line indices are
/// `addr / 64 <= 2^58`, so the all-ones value can never collide.
const INVALID_LINE: u64 = u64::MAX;

/// Result of probing or filling a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Evicted line index.
    pub line: u64,
    /// Whether the evicted line was dirty (needs a write-back).
    pub dirty: bool,
}

/// A single set-associative cache level with a pluggable replacement
/// policy (true LRU by default).
///
/// Lines are identified by their global line index (`addr / 64`); the set
/// index is derived from the line index, the tag is the full line index
/// (simple and unambiguous).
#[derive(Debug, Clone)]
pub struct SetAssocCache<R: ReplacementPolicy = TrueLru> {
    /// Flat arena: `sets × ways` entries, set-major.  Slot validity is
    /// encoded in the entry (`line == INVALID_LINE`).
    entries: Box<[CacheLine]>,
    /// Set indices that received at least one fill since the last
    /// reset/flush, so draining operations touch O(resident) entries
    /// instead of the whole arena (a streaming kernel leaves most of a
    /// large L3 share untouched).
    used_sets: Vec<u32>,
    /// One bit per set: whether it is in `used_sets`.
    used_bitmap: Box<[u64]>,
    /// Insertion slot remembered by the last missing [`touch`]
    /// (see [`Self::fill`]); valid only while `stamp` is unchanged.
    ///
    /// [`touch`]: Self::touch
    miss_memo: Option<MissMemo>,
    /// Replacement-policy state (zero-sized for [`TrueLru`]).
    policy: R,
    ways: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
    stamp: u64,
}

/// See [`SetAssocCache::fill`]: the slot a fill of `line` would use, as
/// determined by the scan of a missing touch at stamp `stamp`.
#[derive(Debug, Clone, Copy)]
struct MissMemo {
    line: u64,
    slot: usize,
    stamp: u64,
}

/// One arena slot, packed to 16 bytes: the dirty flag lives in the low bit
/// of the LRU word (`lru_dirty = stamp << 1 | dirty`).  Stamps are unique,
/// so ordering by `lru_dirty` orders by stamp regardless of the dirty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine {
    line: u64,
    lru_dirty: u64,
}

impl CacheLine {
    #[inline]
    fn make(line: u64, stamp: u64, dirty: bool) -> Self {
        Self {
            line,
            lru_dirty: stamp << 1 | dirty as u64,
        }
    }

    #[inline]
    fn dirty(&self) -> bool {
        self.lru_dirty & 1 == 1
    }

    /// Refresh the LRU stamp, keeping (and optionally setting) dirty.
    #[inline]
    fn refresh(&mut self, stamp: u64, write: bool) {
        self.lru_dirty = stamp << 1 | (self.lru_dirty & 1) | write as u64;
    }
}

const EMPTY_SLOT: CacheLine = CacheLine {
    line: INVALID_LINE,
    lru_dirty: 0,
};

impl<R: ReplacementPolicy> SetAssocCache<R> {
    /// Create a cache with `capacity_bytes` total capacity, `ways`
    /// associativity and 64-byte lines.  The number of sets is rounded down
    /// to the next power of two so the set index is a simple mask; capacity
    /// is preserved by widening the ways accordingly.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let (sets, effective_ways) = Self::geometry(capacity_bytes, ways);
        Self {
            entries: vec![EMPTY_SLOT; sets * effective_ways].into_boxed_slice(),
            used_sets: Vec::new(),
            used_bitmap: vec![0u64; sets.div_ceil(64)].into_boxed_slice(),
            miss_memo: None,
            policy: R::new(sets, effective_ways),
            ways: effective_ways,
            set_mask: (sets - 1) as u64,
            hits: 0,
            misses: 0,
            stamp: 0,
        }
    }

    /// The `(sets, ways)` geometry [`new`] would pick for a capacity and
    /// associativity — exposed so callers can tell whether an existing cache
    /// can be [`reset`] in place instead of reallocated.
    ///
    /// [`new`]: Self::new
    /// [`reset`]: Self::reset
    pub fn geometry(capacity_bytes: usize, ways: usize) -> (usize, usize) {
        assert!(capacity_bytes >= 64 && ways > 0);
        let total_lines = capacity_bytes / 64;
        let ideal_sets = (total_lines / ways).max(1);
        let sets_pow2 = if ideal_sets.is_power_of_two() {
            ideal_sets
        } else {
            (ideal_sets.next_power_of_two()) / 2
        }
        .max(1);
        let effective_ways = (total_lines / sets_pow2).max(1);
        (sets_pow2, effective_ways)
    }

    /// True if this cache has exactly the geometry [`new`]`(capacity_bytes,
    /// ways)` would produce, i.e. [`reset`] yields the same state as a fresh
    /// construction.
    ///
    /// [`new`]: Self::new
    /// [`reset`]: Self::reset
    pub fn matches_geometry(&self, capacity_bytes: usize, ways: usize) -> bool {
        let (sets, effective_ways) = Self::geometry(capacity_bytes, ways);
        self.ways == effective_ways && self.set_mask == (sets - 1) as u64
    }

    /// Empty the cache and zero the counters, reusing the arena allocation.
    /// Afterwards the cache is indistinguishable from a freshly constructed
    /// one of the same geometry.  Costs O(sets ever filled), not
    /// O(capacity).
    pub fn reset(&mut self) {
        self.clear_entries();
        self.hits = 0;
        self.misses = 0;
        self.stamp = 0;
    }

    /// Empty every set that ever received a fill and forget the used-set
    /// tracking.
    fn clear_entries(&mut self) {
        for i in 0..self.used_sets.len() {
            let start = self.used_sets[i] as usize * self.ways;
            for entry in &mut self.entries[start..start + self.ways] {
                if entry.line == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                *entry = EMPTY_SLOT;
            }
        }
        self.used_sets.clear();
        self.used_bitmap.fill(0);
        self.miss_memo = None;
        self.policy.reset();
    }

    /// Record that `set_idx` holds (or held) lines, so draining operations
    /// can skip every never-touched set.
    #[inline]
    fn mark_used(&mut self, set_idx: usize) {
        let word = set_idx / 64;
        let bit = 1u64 << (set_idx % 64);
        if self.used_bitmap[word] & bit == 0 {
            self.used_bitmap[word] |= bit;
            self.used_sets.push(set_idx as u32);
        }
    }

    /// Total capacity in cache lines.
    pub fn capacity_lines(&self) -> usize {
        self.entries.len()
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.entries
            .iter()
            .filter(|l| l.line != INVALID_LINE)
            .count()
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let start = (line & self.set_mask) as usize * self.ways;
        start..start + self.ways
    }

    /// Probe for a line without modifying LRU state or counters.
    pub fn contains(&self, line: u64) -> bool {
        for entry in &self.entries[self.set_range(line)] {
            if entry.line == line {
                return true;
            }
            if entry.line == INVALID_LINE {
                // Prefix invariant: nothing valid beyond the first hole.
                return false;
            }
        }
        false
    }

    /// Access (touch) a line: returns `Hit` and refreshes LRU if present,
    /// `Miss` otherwise (the line is *not* filled — call [`fill`] or use the
    /// combined [`probe_fill`]).  On a miss the insertion slot found by the
    /// scan is remembered, making the [`fill`] that typically follows O(1).
    ///
    /// `write` marks the line dirty on a hit.
    ///
    /// [`fill`]: Self::fill
    /// [`probe_fill`]: Self::probe_fill
    pub fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        let set = &mut self.entries[start..start + self.ways];
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        let mut empty_found = false;
        for (idx, entry) in set.iter_mut().enumerate() {
            if entry.line == line {
                entry.refresh(stamp, write);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += 1;
                return LookupResult::Hit;
            }
            if entry.line == INVALID_LINE {
                // Prefix invariant: nothing valid beyond; a fill would use
                // this slot.
                victim = idx;
                empty_found = true;
                break;
            }
            if entry.lru_dirty < victim_lru {
                victim = idx;
                victim_lru = entry.lru_dirty;
            }
        }
        self.misses += 1;
        // For non-LRU policies a full set has no victim yet (the policy is
        // consulted — and possibly aged — only by the fill itself), so only
        // an empty slot can be remembered.
        if R::LRU_SCAN || empty_found {
            self.miss_memo = Some(MissMemo {
                line,
                slot: victim,
                stamp,
            });
        }
        LookupResult::Miss
    }

    /// Account `n` additional guaranteed hits on a line that is known to be
    /// resident, refreshing its LRU position once.  This is the batched
    /// equivalent of calling [`touch`] `n` times in a row on a resident line
    /// — the hit counter advances by `n` while the set is scanned only once.
    /// Returns `false` (and changes nothing) if the line is not resident;
    /// callers fall back to the scalar path in that case.
    ///
    /// [`touch`]: Self::touch
    pub fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let range = self.set_range(line);
        for (idx, entry) in self.entries[range].iter_mut().enumerate() {
            if entry.line == line {
                entry.refresh(stamp, false);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += n;
                return true;
            }
            if entry.line == INVALID_LINE {
                break;
            }
        }
        false
    }

    /// Combined touch-or-fill in a single set scan: counts a hit or a miss
    /// like [`touch`], and on a miss inserts the line (dirty if `write`)
    /// like [`fill`], returning the eviction if one was needed.
    ///
    /// Equivalent to `touch(line, write)` followed by `fill(line, write)` on
    /// a miss, but probes the set once instead of twice.
    ///
    /// [`touch`]: Self::touch
    /// [`fill`]: Self::fill
    pub fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        let set = &mut self.entries[start..start + self.ways];
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        let mut empty_found = false;
        for (idx, entry) in set.iter_mut().enumerate() {
            if entry.line == line {
                entry.refresh(stamp, write);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                self.hits += 1;
                return (LookupResult::Hit, None);
            }
            if entry.line == INVALID_LINE {
                // Prefix invariant: nothing valid beyond; insert here.
                victim = idx;
                empty_found = true;
                break;
            }
            if entry.lru_dirty < victim_lru {
                victim = idx;
                victim_lru = entry.lru_dirty;
            }
        }
        if !(R::LRU_SCAN || empty_found) {
            victim = self.policy.pick_victim(set_idx, self.ways);
        }
        let slot = &mut self.entries[start + victim];
        let evicted = if slot.line != INVALID_LINE {
            Some(Eviction {
                line: slot.line,
                dirty: slot.dirty(),
            })
        } else {
            None
        };
        *slot = CacheLine::make(line, stamp, write);
        if !R::LRU_SCAN {
            self.policy.on_fill(set_idx, victim);
        }
        self.misses += 1;
        self.mark_used(set_idx);
        (LookupResult::Miss, evicted)
    }

    /// Insert a line (after a miss), possibly evicting the LRU line of its
    /// set.  Returns the eviction, if any.  `dirty` marks the new line dirty
    /// immediately (used for stores and for ITOM-claimed lines).
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        // Fast path: the scan of a missing `touch` already determined the
        // slot, and nothing has changed since (same stamp).  The full scan
        // below would reproduce exactly that slot.
        if let Some(memo) = self.miss_memo {
            if memo.line == line && memo.stamp == self.stamp {
                let stamp = self.next_stamp();
                self.miss_memo = None;
                let set_idx = (line & self.set_mask) as usize;
                let slot = &mut self.entries[set_idx * self.ways + memo.slot];
                let evicted = if slot.line != INVALID_LINE {
                    Some(Eviction {
                        line: slot.line,
                        dirty: slot.dirty(),
                    })
                } else {
                    None
                };
                *slot = CacheLine::make(line, stamp, dirty);
                if !R::LRU_SCAN {
                    self.policy.on_fill(set_idx, memo.slot);
                }
                self.mark_used(set_idx);
                return evicted;
            }
        }
        let stamp = self.next_stamp();
        let set_idx = (line & self.set_mask) as usize;
        let start = set_idx * self.ways;
        let set = &mut self.entries[start..start + self.ways];
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        let mut empty_found = false;
        for (idx, entry) in set.iter_mut().enumerate() {
            if entry.line == line {
                // Already present (e.g. racing prefetch): refresh.
                entry.refresh(stamp, dirty);
                if !R::LRU_SCAN {
                    self.policy.on_hit(set_idx, idx);
                }
                return None;
            }
            if entry.line == INVALID_LINE {
                // Prefix invariant: nothing valid beyond; insert here.
                victim = idx;
                empty_found = true;
                break;
            }
            if entry.lru_dirty < victim_lru {
                victim = idx;
                victim_lru = entry.lru_dirty;
            }
        }
        if !(R::LRU_SCAN || empty_found) {
            victim = self.policy.pick_victim(set_idx, self.ways);
        }
        let slot = &mut self.entries[start + victim];
        let evicted = if slot.line != INVALID_LINE {
            Some(Eviction {
                line: slot.line,
                dirty: slot.dirty(),
            })
        } else {
            None
        };
        *slot = CacheLine::make(line, stamp, dirty);
        if !R::LRU_SCAN {
            self.policy.on_fill(set_idx, victim);
        }
        self.mark_used(set_idx);
        evicted
    }

    /// Remove a specific line (e.g. when an NT store invalidates it).
    /// Returns whether the removed line was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        // The removal moves entries around; a remembered slot may go stale.
        self.miss_memo = None;
        let set_idx = (line & self.set_mask) as usize;
        let range = self.set_range(line);
        let set = &mut self.entries[range];
        let mut found: Option<(usize, bool)> = None;
        let mut valid = 0usize;
        for (idx, entry) in set.iter().enumerate() {
            if entry.line == INVALID_LINE {
                break;
            }
            valid += 1;
            if entry.line == line {
                found = Some((idx, entry.dirty()));
            }
        }
        let (idx, dirty) = found?;
        // Preserve the prefix invariant by moving the last valid entry into
        // the hole (the same reordering the old `Vec::swap_remove` did).
        set[idx] = set[valid - 1];
        set[valid - 1] = EMPTY_SLOT;
        if !R::LRU_SCAN {
            self.policy.on_invalidate(set_idx, idx, valid - 1);
        }
        Some(dirty)
    }

    /// Drain every resident line, returning the dirty ones in no
    /// particular order (used to flush write-backs at the end of a
    /// measurement region).  Costs O(sets ever filled), not O(capacity).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        // Single pass: collect the dirty lines and clear each set while its
        // entries are still in the host cache.
        for i in 0..self.used_sets.len() {
            let start = self.used_sets[i] as usize * self.ways;
            for entry in &mut self.entries[start..start + self.ways] {
                if entry.line == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                if entry.dirty() {
                    dirty.push(entry.line);
                }
                *entry = EMPTY_SLOT;
            }
        }
        self.used_sets.clear();
        self.used_bitmap.fill(0);
        self.miss_memo = None;
        self.policy.reset();
        dirty
    }

    /// Visit every resident line without draining it, in `used_sets`
    /// order (the same order [`flush_dirty`](Self::flush_dirty) drains).
    /// Used by the co-run engine to attribute shared-level occupancy to
    /// tenants at the end of a run.  Costs O(sets ever filled).
    pub fn for_each_resident(&self, mut f: impl FnMut(u64, bool)) {
        for &set in &self.used_sets {
            let start = set as usize * self.ways;
            for entry in &self.entries[start..start + self.ways] {
                if entry.line == INVALID_LINE {
                    // Prefix invariant: everything beyond is already empty.
                    break;
                }
                f(entry.line, entry.dirty());
            }
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

/// One cache level viewed through a policy-erased lens.
///
/// `CoreSim<R, W>` monomorphises every level over a single replacement
/// policy `R`; the private/shared hierarchy split introduces call sites
/// that must be generic over *which concrete cache* sits at a level — the
/// private half is driven against whatever last-level bank the scheduler
/// hands it, and the per-level policy simulator mixes different policies
/// across levels of one hierarchy.  This trait is the seam: every
/// `SetAssocCache<R>` implements it by delegating to its inherent methods
/// (fully inlined, so `CoreSim`'s default monomorphisation is unchanged
/// instruction for instruction), and [`AnyCache`] implements it by
/// matching on the policy variant.
pub trait CacheBank: std::fmt::Debug + Clone + Send + 'static {
    /// Probe for `line`, refreshing recency (and dirtiness on a write hit).
    fn touch(&mut self, line: u64, write: bool) -> LookupResult;
    /// Repeat `n` guaranteed hits on `line`; `false` if it is absent.
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool;
    /// Probe and, on a miss, fill in one scan.
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>);
    /// Insert `line`, evicting a victim if the set is full.
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction>;
    /// Remove `line`; `Some(dirty)` if it was resident.
    fn invalidate(&mut self, line: u64) -> Option<bool>;
    /// Whether `line` is resident (no recency update).
    fn contains(&self, line: u64) -> bool;
    /// Drain every resident line, returning the dirty ones.
    fn flush_dirty(&mut self) -> Vec<u64>;
    /// Empty the cache and its statistics.
    fn reset(&mut self);
    /// Hits recorded so far.
    fn hits(&self) -> u64;
    /// Misses recorded so far.
    fn misses(&self) -> u64;
}

impl<R: ReplacementPolicy> CacheBank for SetAssocCache<R> {
    #[inline]
    fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        SetAssocCache::touch(self, line, write)
    }

    #[inline]
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        SetAssocCache::touch_repeat(self, line, n)
    }

    #[inline]
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        SetAssocCache::probe_fill(self, line, write)
    }

    #[inline]
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        SetAssocCache::fill(self, line, dirty)
    }

    #[inline]
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        SetAssocCache::invalidate(self, line)
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        SetAssocCache::contains(self, line)
    }

    #[inline]
    fn flush_dirty(&mut self) -> Vec<u64> {
        SetAssocCache::flush_dirty(self)
    }

    #[inline]
    fn reset(&mut self) {
        SetAssocCache::reset(self)
    }

    #[inline]
    fn hits(&self) -> u64 {
        SetAssocCache::hits(self)
    }

    #[inline]
    fn misses(&self) -> u64 {
        SetAssocCache::misses(self)
    }
}

/// A cache level whose replacement policy is chosen at *runtime* from the
/// machine model's per-level [`CacheSpec::replacement`] field.
///
/// The policy-generic `SetAssocCache<R>` is zero-cost but forces one `R`
/// per monomorphisation; a hierarchy that mixes policies across levels
/// (the CVA6 preset runs random-evict L1/L2 under a PLRU last level)
/// needs one *type* covering all four policies.  The enum dispatch costs
/// one predictable branch per operation and is only used on the
/// mixed-policy path — the paper-default simulators keep the generic
/// banks.
///
/// [`CacheSpec::replacement`]: clover_machine::CacheSpec
#[derive(Debug, Clone)]
pub enum AnyCache {
    /// True-LRU bank.
    Lru(SetAssocCache<TrueLru>),
    /// Tree-PLRU bank.
    Plru(SetAssocCache<crate::policy::TreePlru>),
    /// SRRIP bank.
    Srrip(SetAssocCache<crate::policy::Srrip>),
    /// Deterministic random-evict bank.
    Random(SetAssocCache<crate::policy::RandomEvict>),
}

impl AnyCache {
    /// Build a bank for `kind` with the given geometry.
    pub fn for_kind(
        kind: clover_machine::ReplacementPolicyKind,
        capacity_bytes: usize,
        ways: usize,
    ) -> Self {
        use clover_machine::ReplacementPolicyKind as K;
        match kind {
            K::Lru => AnyCache::Lru(SetAssocCache::new(capacity_bytes, ways)),
            K::Plru => AnyCache::Plru(SetAssocCache::new(capacity_bytes, ways)),
            K::Srrip => AnyCache::Srrip(SetAssocCache::new(capacity_bytes, ways)),
            K::Random => AnyCache::Random(SetAssocCache::new(capacity_bytes, ways)),
        }
    }

    /// The policy kind this bank was built for.
    pub fn kind(&self) -> clover_machine::ReplacementPolicyKind {
        use clover_machine::ReplacementPolicyKind as K;
        match self {
            AnyCache::Lru(_) => K::Lru,
            AnyCache::Plru(_) => K::Plru,
            AnyCache::Srrip(_) => K::Srrip,
            AnyCache::Random(_) => K::Random,
        }
    }
}

/// Expand one delegation arm per policy variant.
macro_rules! any_cache_delegate {
    ($self:ident, $bank:ident => $body:expr) => {
        match $self {
            AnyCache::Lru($bank) => $body,
            AnyCache::Plru($bank) => $body,
            AnyCache::Srrip($bank) => $body,
            AnyCache::Random($bank) => $body,
        }
    };
}

impl CacheBank for AnyCache {
    #[inline]
    fn touch(&mut self, line: u64, write: bool) -> LookupResult {
        any_cache_delegate!(self, bank => bank.touch(line, write))
    }

    #[inline]
    fn touch_repeat(&mut self, line: u64, n: u64) -> bool {
        any_cache_delegate!(self, bank => bank.touch_repeat(line, n))
    }

    #[inline]
    fn probe_fill(&mut self, line: u64, write: bool) -> (LookupResult, Option<Eviction>) {
        any_cache_delegate!(self, bank => bank.probe_fill(line, write))
    }

    #[inline]
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        any_cache_delegate!(self, bank => bank.fill(line, dirty))
    }

    #[inline]
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        any_cache_delegate!(self, bank => bank.invalidate(line))
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        any_cache_delegate!(self, bank => bank.contains(line))
    }

    #[inline]
    fn flush_dirty(&mut self) -> Vec<u64> {
        any_cache_delegate!(self, bank => bank.flush_dirty())
    }

    #[inline]
    fn reset(&mut self) {
        any_cache_delegate!(self, bank => bank.reset())
    }

    #[inline]
    fn hits(&self) -> u64 {
        any_cache_delegate!(self, bank => bank.hits())
    }

    #[inline]
    fn misses(&self) -> u64 {
        any_cache_delegate!(self, bank => bank.misses())
    }
}

/// A simple fully-associative helper cache used for small structures
/// (e.g. the streamer prefetcher's stream table).  Maps a key to a value
/// with LRU eviction.
#[derive(Debug, Clone)]
pub struct LruTable<V> {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, (V, u64)>,
}

impl<V> LruTable<V> {
    /// Create a table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    /// Get a mutable reference to the value for `key`, refreshing its LRU
    /// position.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|(v, s)| {
            *s = stamp;
            v
        })
    }

    /// Insert a value, evicting the least recently used entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        self.stamp += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, (_, s))| *s) {
                self.entries.remove(&lru_key);
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stamp = 0;
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RandomEvict, Srrip, TreePlru};

    /// Default-policy cache (the bare `SetAssocCache::new` call would leave
    /// the replacement parameter unconstrained in a `let`).
    fn lru(capacity_bytes: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(capacity_bytes, ways)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = lru(4096, 8);
        assert_eq!(c.touch(42, false), LookupResult::Miss);
        assert!(c.fill(42, false).is_none());
        assert_eq!(c.touch(42, false), LookupResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_and_eviction() {
        // 8 lines total, fully associative in one set is unlikely; use a
        // direct check of capacity.
        let mut c = lru(8 * 64, 8);
        assert_eq!(c.capacity_lines(), 8);
        for line in 0..8 {
            c.touch(line, false);
            assert!(c.fill(line, false).is_none());
        }
        assert_eq!(c.resident_lines(), 8);
        // A ninth distinct line must evict something.
        c.touch(100, false);
        let ev = c.fill(100, false);
        assert!(ev.is_some() || c.resident_lines() <= 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single-set cache with 2 ways.
        let mut c = lru(2 * 64, 2);
        c.touch(0, false);
        c.fill(0, false);
        c.touch(1, false);
        c.fill(1, false);
        // Touch 0 again so 1 becomes LRU (both map to the same set because
        // there is a single set).
        c.touch(0, false);
        c.touch(2, false);
        let ev = c.fill(2, false).expect("eviction expected");
        assert_eq!(ev.line, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = lru(2 * 64, 2);
        c.fill(0, true);
        c.fill(1, false);
        let ev = c.fill(2, false).expect("eviction");
        // Line 0 was LRU and dirty.
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = lru(4 * 64, 4);
        c.fill(7, false);
        c.touch(7, true);
        let dirty = c.flush_dirty();
        assert_eq!(dirty, vec![7]);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = lru(4 * 64, 4);
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn fill_existing_line_is_idempotent() {
        let mut c = lru(4 * 64, 4);
        c.fill(5, false);
        assert!(c.fill(5, true).is_none());
        assert_eq!(c.resident_lines(), 1);
        // The second fill marked it dirty.
        assert_eq!(c.flush_dirty(), vec![5]);
    }

    #[test]
    fn geometry_rounded_to_power_of_two_sets_preserves_capacity() {
        // 48 KiB, 12-way: 768 lines, 64 sets (power of two already).
        let c = lru(48 * 1024, 12);
        assert_eq!(c.capacity_lines(), 768);
        // 54 MiB, 12-way: 884736 lines; sets rounded to power of two.
        let c = lru(54 * 1024 * 1024, 12);
        let lines = c.capacity_lines();
        assert!(
            lines >= 800_000,
            "capacity must be preserved approximately, got {lines}"
        );
    }

    #[test]
    fn probe_fill_matches_touch_then_fill() {
        // Drive two caches with the same line stream, one through the
        // combined probe and one through the two-step path; every counter
        // and the final eviction behaviour must agree.
        let mut combined = lru(4 * 64, 2);
        let mut twostep = lru(4 * 64, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 10, 0, 4, 6];
        for (n, &line) in stream.iter().enumerate() {
            let write = n % 3 == 0;
            let (r1, ev1) = combined.probe_fill(line, write);
            let r2 = twostep.touch(line, write);
            let ev2 = if r2 == LookupResult::Miss {
                twostep.fill(line, write)
            } else {
                None
            };
            assert_eq!(r1, r2, "access {n}");
            assert_eq!(ev1, ev2, "access {n}");
        }
        assert_eq!(combined.hits(), twostep.hits());
        assert_eq!(combined.misses(), twostep.misses());
        let mut d1 = combined.flush_dirty();
        let mut d2 = twostep.flush_dirty();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn touch_repeat_counts_bulk_hits() {
        let mut c = lru(4 * 64, 4);
        c.fill(9, false);
        assert!(c.touch_repeat(9, 7));
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 0);
        // Non-resident lines are refused without touching the counters.
        assert!(!c.touch_repeat(13, 3));
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 0);
        // n == 0 is a no-op that reports success.
        assert!(c.touch_repeat(13, 0));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut c = lru(8 * 64, 4);
        for line in 0..12u64 {
            c.probe_fill(line, line % 2 == 0);
        }
        assert!(c.resident_lines() > 0 && c.misses() > 0);
        c.reset();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        // Behaves exactly like a fresh cache afterwards.
        let mut fresh = lru(8 * 64, 4);
        for line in [3u64, 7, 3, 11, 3] {
            assert_eq!(c.probe_fill(line, false), fresh.probe_fill(line, false));
        }
        assert!(c.matches_geometry(8 * 64, 4));
        assert!(!c.matches_geometry(16 * 64, 4));
    }

    #[test]
    fn flush_drains_and_tracking_restarts() {
        let mut c = lru(64 * 64, 4);
        c.fill(1, true);
        c.fill(2, false);
        c.fill(65, true); // second set
        let mut d = c.flush_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 65]);
        assert_eq!(c.resident_lines(), 0);
        // Used-set tracking restarts cleanly: a second flush is empty, new
        // fills are drained again.
        assert!(c.flush_dirty().is_empty());
        c.fill(130, true);
        assert_eq!(c.flush_dirty(), vec![130]);
    }

    /// Mirror of `probe_fill_matches_touch_then_fill` for every non-LRU
    /// policy: the combined scan and the two-step path must stay equivalent
    /// when the victim comes from policy state instead of the probe scan.
    fn probe_fill_equivalence_generic<R: ReplacementPolicy>() {
        let mut combined: SetAssocCache<R> = SetAssocCache::new(4 * 64, 2);
        let mut twostep: SetAssocCache<R> = SetAssocCache::new(4 * 64, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 10, 0, 4, 6, 12, 2, 14, 0];
        for (n, &line) in stream.iter().enumerate() {
            let write = n % 3 == 0;
            let (r1, ev1) = combined.probe_fill(line, write);
            let r2 = twostep.touch(line, write);
            let ev2 = if r2 == LookupResult::Miss {
                twostep.fill(line, write)
            } else {
                None
            };
            assert_eq!(r1, r2, "{}: access {n}", R::KIND);
            assert_eq!(ev1, ev2, "{}: access {n}", R::KIND);
        }
        assert_eq!(combined.hits(), twostep.hits());
        assert_eq!(combined.misses(), twostep.misses());
        let mut d1 = combined.flush_dirty();
        let mut d2 = twostep.flush_dirty();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "{}", R::KIND);
    }

    #[test]
    fn probe_fill_equivalence_holds_for_every_policy() {
        probe_fill_equivalence_generic::<TrueLru>();
        probe_fill_equivalence_generic::<TreePlru>();
        probe_fill_equivalence_generic::<Srrip>();
        probe_fill_equivalence_generic::<RandomEvict>();
    }

    #[test]
    fn non_lru_policies_reset_to_fresh_state() {
        fn check<R: ReplacementPolicy>() {
            let mut c: SetAssocCache<R> = SetAssocCache::new(8 * 64, 4);
            for line in 0..32u64 {
                c.probe_fill(line, line % 2 == 0);
            }
            c.reset();
            let mut fresh: SetAssocCache<R> = SetAssocCache::new(8 * 64, 4);
            for line in [3u64, 7, 3, 11, 3, 19, 27, 3, 35, 43, 7] {
                assert_eq!(
                    c.probe_fill(line, false),
                    fresh.probe_fill(line, false),
                    "{}: reset must replay like a fresh cache",
                    R::KIND
                );
            }
        }
        check::<TreePlru>();
        check::<Srrip>();
        check::<RandomEvict>();
    }

    #[test]
    fn non_lru_victims_diverge_from_lru_under_pressure() {
        // Sanity check that the policies actually differ: overflow one set
        // and compare eviction orders against true LRU.
        fn victims<R: ReplacementPolicy>() -> Vec<u64> {
            let mut c: SetAssocCache<R> = SetAssocCache::new(2 * 64, 2);
            let mut out = Vec::new();
            // Re-reference both resident lines in opposite order before the
            // next insertion: LRU tracks the exact recency, SRRIP collapses
            // both to "recent" and falls back to way order.
            for line in [0u64, 1, 1, 0, 2, 3, 4, 4, 3, 5, 6, 7] {
                if let (_, Some(ev)) = c.probe_fill(line, false) {
                    out.push(ev.line);
                }
            }
            out
        }
        let lru_order = victims::<TrueLru>();
        assert!(!lru_order.is_empty());
        // SRRIP inserts at distant-future, so its order deviates from LRU.
        assert_ne!(victims::<Srrip>(), lru_order);
        // Tree-PLRU with 2 ways degenerates to true LRU on this pattern —
        // only assert it produced the same number of evictions.
        assert_eq!(victims::<TreePlru>().len(), lru_order.len());
        // A different victim choice changes which later accesses hit, so
        // the deterministic-random policy may evict more lines than LRU —
        // only its sequence must deviate.
        assert_ne!(victims::<RandomEvict>(), lru_order);
    }

    #[test]
    fn lru_table_evicts() {
        let mut t: LruTable<u32> = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.get_mut(1).copied(), Some(10));
        t.insert(3, 30); // evicts key 2 (LRU)
        assert_eq!(t.len(), 2);
        assert!(t.get_mut(2).is_none());
        assert!(t.get_mut(1).is_some());
        assert!(t.get_mut(3).is_some());
    }
}
