//! Memory-controller and SpecI2M event counters.
//!
//! Counters are kept in *cache lines* as `f64` because the simulator uses
//! deterministic fractional accounting for probabilistic events (a 70 %
//! evasion probability contributes 0.3 read lines).  Volumes in bytes are
//! derived by multiplying with the 64-byte line size.

use crate::access::LINE_BYTES;

/// Aggregated traffic counters, mirroring the LIKWID events used in the
/// paper (`CAS_COUNT_RD`, `CAS_COUNT_WR`, `TOR_INSERTS.IA_ITOM`).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemCounters {
    /// Cache lines read from main memory (demand misses, write-allocates,
    /// prefetches, speculative reads).
    pub read_lines: f64,
    /// Cache lines written back / streamed to main memory.
    pub write_lines: f64,
    /// Cache lines claimed via SpecI2M (ITOM) without a read-for-ownership.
    pub itom_lines: f64,
    /// Write-allocate transfers that were *not* evaded (subset of
    /// `read_lines`), kept separately for model validation.
    pub write_allocate_lines: f64,
    /// Reads issued by hardware prefetchers (subset of `read_lines`).
    pub prefetch_lines: f64,
    /// Reads caused by failed SpecI2M speculation (subset of `read_lines`).
    pub speculative_read_lines: f64,
}

impl MemCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read data volume in bytes.
    pub fn read_bytes(&self) -> f64 {
        self.read_lines * LINE_BYTES as f64
    }

    /// Write data volume in bytes.
    pub fn write_bytes(&self) -> f64 {
        self.write_lines * LINE_BYTES as f64
    }

    /// SpecI2M (ITOM) data volume in bytes.
    pub fn itom_bytes(&self) -> f64 {
        self.itom_lines * LINE_BYTES as f64
    }

    /// Total memory data volume (read + write) in bytes — the quantity
    /// LIKWID's `MEM` group reports.
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes() + self.write_bytes()
    }

    /// Ratio of read to write volume (used for the copy-kernel figures).
    /// Returns `f64::INFINITY` when nothing was written.
    pub fn read_write_ratio(&self) -> f64 {
        if self.write_lines <= 0.0 {
            f64::INFINITY
        } else {
            self.read_lines / self.write_lines
        }
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &MemCounters) {
        self.read_lines += other.read_lines;
        self.write_lines += other.write_lines;
        self.itom_lines += other.itom_lines;
        self.write_allocate_lines += other.write_allocate_lines;
        self.prefetch_lines += other.prefetch_lines;
        self.speculative_read_lines += other.speculative_read_lines;
    }

    /// Scale every counter by a factor (used to extrapolate row-sampled
    /// measurements to the full iteration space).
    pub fn scaled(&self, factor: f64) -> MemCounters {
        MemCounters {
            read_lines: self.read_lines * factor,
            write_lines: self.write_lines * factor,
            itom_lines: self.itom_lines * factor,
            write_allocate_lines: self.write_allocate_lines * factor,
            prefetch_lines: self.prefetch_lines * factor,
            speculative_read_lines: self.speculative_read_lines * factor,
        }
    }

    /// Difference `self - other` (used by region markers to compute
    /// per-region deltas).
    pub fn delta(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            read_lines: self.read_lines - earlier.read_lines,
            write_lines: self.write_lines - earlier.write_lines,
            itom_lines: self.itom_lines - earlier.itom_lines,
            write_allocate_lines: self.write_allocate_lines - earlier.write_allocate_lines,
            prefetch_lines: self.prefetch_lines - earlier.prefetch_lines,
            speculative_read_lines: self.speculative_read_lines - earlier.speculative_read_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversions() {
        let c = MemCounters {
            read_lines: 2.0,
            write_lines: 1.0,
            ..Default::default()
        };
        assert_eq!(c.read_bytes(), 128.0);
        assert_eq!(c.write_bytes(), 64.0);
        assert_eq!(c.total_bytes(), 192.0);
    }

    #[test]
    fn ratio_handles_zero_writes() {
        let c = MemCounters {
            read_lines: 5.0,
            ..Default::default()
        };
        assert!(c.read_write_ratio().is_infinite());
        let c2 = MemCounters {
            read_lines: 3.0,
            write_lines: 2.0,
            ..Default::default()
        };
        assert!((c2.read_write_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = MemCounters {
            read_lines: 1.0,
            write_lines: 2.0,
            itom_lines: 0.5,
            ..Default::default()
        };
        let b = MemCounters {
            read_lines: 3.0,
            write_lines: 1.0,
            itom_lines: 0.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.read_lines, 4.0);
        assert_eq!(a.itom_lines, 1.0);
        let s = a.scaled(2.0);
        assert_eq!(s.write_lines, 6.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = MemCounters {
            read_lines: 1.0,
            write_lines: 1.0,
            ..Default::default()
        };
        let late = MemCounters {
            read_lines: 4.0,
            write_lines: 1.5,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.read_lines, 3.0);
        assert_eq!(d.write_lines, 0.5);
    }
}
