//! Cache-hierarchy and memory-traffic simulator with SpecI2M write-allocate
//! evasion.
//!
//! The paper's observables are *memory data volumes*: read and write traffic
//! at the memory controllers (LIKWID `CAS_COUNT_RD`/`CAS_COUNT_WR`) and the
//! number of cache lines claimed without a read-for-ownership
//! (`TOR_INSERTS.IA_ITOM`, the SpecI2M event).  This crate reproduces those
//! counters for arbitrary access streams:
//!
//! * a **set-associative, write-back, write-allocate cache hierarchy**
//!   (private L1/L2 plus a per-core share of the L3) so that layer
//!   conditions and capacity effects emerge from first principles,
//! * a **write-coalescing store tracker** that detects full-line store
//!   streaks — the prerequisite for SpecI2M eligibility and for
//!   non-temporal stores avoiding reads,
//! * a **SpecI2M engine** applying the machine's phenomenological evasion
//!   parameters (activation with bandwidth utilisation, stream-count and
//!   streak-length response, node-population penalty),
//! * **hardware prefetcher models** (adjacent-line and streamer) whose
//!   effect on read volume can be switched off, mirroring the paper's
//!   "PF off" experiments,
//! * **memory-controller counters** aggregated per core and per node.
//!
//! The simulator is line-granular and uses deterministic *fractional*
//! accounting for probabilistic events (an evasion probability of 0.7 adds
//! 0.3 read lines), which keeps results exactly reproducible.
//!
//! # Performance
//!
//! The hot state is allocation-free in steady state: each cache level is a
//! single flat arena probed by one contiguous scan, the store path hands
//! finalized lines to the hierarchy without building event vectors, and the
//! batched [`AccessRun`]/[`CoreSim::drive_run`] API expands contiguous
//! element runs into one hierarchy operation per 64-byte cache line — the
//! granularity at which traffic is decided — while staying bit-identical to
//! the scalar per-element path.  `figures bench --json` (crate
//! `clover-bench`) tracks the throughput of these paths across PRs.

pub mod access;
pub mod cache;
pub mod coalescer;
pub mod counters;
pub mod engine;
pub mod flight;
pub mod hierarchy;
pub mod memo;
pub mod patterns;
pub mod policy;
pub mod prefetch;

/// Schema version of the simulator as seen by persisted memo entries.
///
/// Any change that can alter a simulated [`MemCounters`] for an unchanged
/// [`SimKey`] — new counter semantics, prefetcher model changes, SpecI2M
/// response changes — must bump this constant.  It feeds the model hash
/// that versions on-disk memo stores (`clover-service`), so stale stores
/// are rebuilt instead of silently serving outdated counters.
pub const SIM_SCHEMA_VERSION: u32 = 1;

pub use access::{line_of, Access, AccessKind, AccessRun, ELEM_BYTES, LINE_BYTES};
pub use cache::{AnyCache, CacheBank, SetAssocCache};
pub use coalescer::{StreakTracker, WriteCoalescer};
pub use counters::MemCounters;
pub use engine::{CoRunReport, NodeSim, NodeSimReport, SimConfig, TenantReport};
pub use flight::FlightMemo;
pub use hierarchy::{CoreSim, DomainOccupancy, LevelPolicySim, OccupancyContext, PrivateCore};
pub use memo::{
    with_pooled_core, CoRunKey, KernelSpec, MemoStats, RankBase, SimKey, SimMemo, SpecOperand,
};
pub use patterns::{ArraySweep, RowSweep, StencilRowSweep, SweepCursor};
pub use policy::{
    NoWriteAllocate, NonTemporal, RandomEvict, ReplacementPolicy, Srrip, TreePlru, TrueLru,
    WriteAllocate, WritePolicy,
};
pub use prefetch::PrefetcherConfig;
