//! Hardware prefetcher models: adjacent-line and streamer prefetch.
//!
//! The paper's Fig. 8 compares the copy microbenchmark with all hardware
//! prefetchers enabled and disabled ("PF off").  Two effects matter for the
//! memory traffic:
//!
//! * the **adjacent-line prefetcher** fetches the buddy line of every demand
//!   miss, effectively doubling the line size — harmless for long sequential
//!   streams (the buddy is needed anyway) but wasteful for short rows;
//! * the **streamer** runs ahead of sequential miss streams and keeps the
//!   line-fill buffers busy; the paper observes that active prefetchers and
//!   long streams *help* SpecI2M, while disabling them makes the
//!   read-to-write ratio rise drastically for partially written lines.
//!
//! The streamer here detects ascending sequential misses within 4 KiB pages
//! and issues a configurable number of prefetch requests ahead of the
//! demand stream.

use crate::cache::LruTable;

/// Page size used for stream detection (prefetchers do not cross 4 KiB
/// boundaries).
const PAGE_LINES: u64 = 4096 / 64;

/// Configuration of the hardware prefetchers of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetcherConfig {
    /// Adjacent-line ("buddy") prefetcher enabled.
    pub adjacent_line: bool,
    /// Streamer prefetcher enabled.
    pub streamer: bool,
    /// How many lines the streamer runs ahead of the demand stream.
    pub streamer_distance: u64,
    /// Multiplier applied to the SpecI2M evasion efficiency when the
    /// prefetchers are *disabled* (the paper observes prefetchers assist
    /// the feature; "PF off" makes the read-to-write ratio rise).
    pub pf_off_evasion_factor: f64,
}

impl PrefetcherConfig {
    /// All prefetchers on (the default BIOS setting of the test systems).
    pub fn enabled() -> Self {
        Self {
            adjacent_line: true,
            streamer: true,
            streamer_distance: 8,
            pf_off_evasion_factor: 0.55,
        }
    }

    /// All prefetchers off (the paper's "PF off" experiments).
    pub fn disabled() -> Self {
        Self {
            adjacent_line: false,
            streamer: false,
            streamer_distance: 0,
            pf_off_evasion_factor: 0.55,
        }
    }

    /// True if any prefetcher is active.
    pub fn any_enabled(&self) -> bool {
        self.adjacent_line || self.streamer
    }

    /// Factor applied to the SpecI2M evasion efficiency under this
    /// prefetcher configuration.
    pub fn evasion_factor(&self) -> f64 {
        if self.any_enabled() {
            1.0
        } else {
            self.pf_off_evasion_factor
        }
    }
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        Self::enabled()
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamState {
    last_line: u64,
    ascending_hits: u32,
    prefetched_up_to: u64,
}

/// Streamer prefetcher: detects ascending sequential demand-miss streams per
/// page and issues prefetches ahead of them.
#[derive(Debug, Clone)]
pub struct StreamerPrefetcher {
    streams: LruTable<StreamState>,
    distance: u64,
}

impl StreamerPrefetcher {
    /// Create a streamer with the given lookahead distance (lines).
    pub fn new(distance: u64) -> Self {
        Self {
            streams: LruTable::new(16),
            distance,
        }
    }

    /// Forget every tracked stream and adopt a new lookahead distance,
    /// reusing the table allocation (the cheap counterpart of `new` used by
    /// `CoreSim::reset`).
    pub fn reset(&mut self, distance: u64) {
        self.streams.clear();
        self.distance = distance;
    }

    /// Inform the prefetcher about a demand read miss at `line`.  Returns
    /// the contiguous range of lines it wants to prefetch, if any — the
    /// streamer always requests a gap-free window ahead of the stream, so a
    /// `Range` conveys it without allocating.
    pub fn on_demand_miss(&mut self, line: u64) -> Option<std::ops::Range<u64>> {
        if self.distance == 0 {
            return None;
        }
        let page = line / PAGE_LINES;
        let page_end = (page + 1) * PAGE_LINES;
        if let Some(s) = self.streams.get_mut(page) {
            let ascending = line == s.last_line + 1;
            s.last_line = line;
            if ascending {
                s.ascending_hits += 1;
            } else {
                s.ascending_hits = 0;
                s.prefetched_up_to = line;
                return None;
            }
            if s.ascending_hits >= 2 {
                let start = s.prefetched_up_to.max(line) + 1;
                let end = (line + self.distance + 1).min(page_end);
                if start < end {
                    s.prefetched_up_to = end - 1;
                    return Some(start..end);
                }
            }
            None
        } else {
            self.streams.insert(
                page,
                StreamState {
                    last_line: line,
                    ascending_hits: 0,
                    prefetched_up_to: line,
                },
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        assert!(PrefetcherConfig::enabled().any_enabled());
        assert!(!PrefetcherConfig::disabled().any_enabled());
        assert_eq!(PrefetcherConfig::enabled().evasion_factor(), 1.0);
        assert!(PrefetcherConfig::disabled().evasion_factor() < 1.0);
    }

    #[test]
    fn streamer_needs_a_sequential_run_before_prefetching() {
        let mut p = StreamerPrefetcher::new(4);
        assert!(p.on_demand_miss(100).is_none());
        assert!(p.on_demand_miss(101).is_none());
        let pf = p
            .on_demand_miss(102)
            .expect("third sequential miss should trigger prefetch");
        assert!(pf.start > 102);
        assert!(!pf.is_empty());
    }

    #[test]
    fn streamer_does_not_cross_page_boundary() {
        let mut p = StreamerPrefetcher::new(16);
        let page_last = PAGE_LINES - 1;
        p.on_demand_miss(page_last - 2);
        p.on_demand_miss(page_last - 1);
        let pf = p.on_demand_miss(page_last);
        assert!(
            pf.is_none(),
            "prefetch must stop at the page boundary, got {pf:?}"
        );
    }

    #[test]
    fn streamer_resets_on_non_sequential_access() {
        let mut p = StreamerPrefetcher::new(4);
        p.on_demand_miss(10);
        p.on_demand_miss(11);
        assert!(p.on_demand_miss(12).is_some());
        // Jump backwards: the stream resets and needs a new run.
        assert!(p.on_demand_miss(5).is_none());
        assert!(p.on_demand_miss(6).is_none());
        assert!(p.on_demand_miss(7).is_some());
    }

    #[test]
    fn streamer_does_not_reprefetch_already_covered_lines() {
        let mut p = StreamerPrefetcher::new(4);
        p.on_demand_miss(20);
        p.on_demand_miss(21);
        let first = p.on_demand_miss(22).unwrap_or(0..0);
        let second = p.on_demand_miss(23).unwrap_or(0..0);
        // The second batch must not contain lines already prefetched.
        assert!(second.start >= first.end);
    }

    #[test]
    fn zero_distance_streamer_is_inert() {
        let mut p = StreamerPrefetcher::new(0);
        for l in 0..10 {
            assert!(p.on_demand_miss(l).is_none());
        }
    }

    #[test]
    fn reset_forgets_streams_and_adopts_new_distance() {
        let mut p = StreamerPrefetcher::new(4);
        p.on_demand_miss(10);
        p.on_demand_miss(11);
        assert!(p.on_demand_miss(12).is_some());
        p.reset(8);
        // History is gone: a new sequential run is needed again.
        assert!(p.on_demand_miss(13).is_none());
        assert!(p.on_demand_miss(14).is_none());
        let pf = p.on_demand_miss(15).expect("stream re-detected");
        // And the new lookahead distance is in effect.
        assert_eq!(pf.end - pf.start, 8);
    }
}
