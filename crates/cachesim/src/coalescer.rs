//! Store-stream tracking: write coalescing, full-line detection and streak
//! lengths.
//!
//! Both SpecI2M and non-temporal stores only avoid the write-allocate when a
//! cache line is overwritten *entirely* by a consecutive burst of stores.
//! The hardware detects this in the store buffers; we model it with a small
//! table of open "write streams", each tracking the byte coverage of its
//! current line and the length of its streak of consecutive full lines.
//!
//! The per-line results are handed back to the hierarchy simulator, which
//! decides — based on the machine's SpecI2M parameters — whether the
//! write-allocate is evaded.

use crate::access::{line_of, LINE_BYTES};

/// Result of finalizing one written cache line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinalizedLine {
    /// Line index.
    pub line: u64,
    /// Whether every byte of the line was covered by stores.
    pub full: bool,
    /// Estimated streak length in lines the hardware would attribute to the
    /// stream at this point (steady-state rows report the full row length).
    pub streak_estimate: f64,
    /// Number of store streams the core had open when the line completed.
    pub active_streams: usize,
}

#[derive(Debug, Clone)]
struct WriteStream {
    /// Line currently being assembled.
    line: u64,
    /// Byte coverage bitmask of the current line (bit i = byte i written).
    coverage: u64,
    /// Consecutive full lines completed by this stream without a gap.
    current_streak: u64,
    /// Length of the last completed streak (e.g. the previous grid row).
    last_streak: u64,
    /// LRU stamp.
    stamp: u64,
}

impl WriteStream {
    fn full(&self) -> bool {
        self.coverage == u64::MAX
    }
}

/// Tracks the open store streams of one core.
#[derive(Debug, Clone)]
pub struct WriteCoalescer {
    streams: Vec<WriteStream>,
    max_streams: usize,
    stamp: u64,
}

/// Streak bookkeeping shared by [`WriteCoalescer`] consumers that only need
/// the streak statistics (e.g. analytic models feeding row lengths).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreakTracker {
    current: u64,
    last_completed: u64,
}

impl StreakTracker {
    /// Record a completed full line.
    pub fn full_line(&mut self) {
        self.current += 1;
    }

    /// Record a gap (partial line or address jump), closing the streak.
    pub fn gap(&mut self) {
        if self.current > 0 {
            self.last_completed = self.current;
        }
        self.current = 0;
    }

    /// Steady-state streak estimate in lines.
    pub fn estimate(&self) -> f64 {
        self.current.max(self.last_completed) as f64
    }
}

impl Default for WriteCoalescer {
    fn default() -> Self {
        Self::new(8)
    }
}

impl WriteCoalescer {
    /// Create a coalescer tracking at most `max_streams` concurrent store
    /// streams (the hardware store buffer can only follow a handful).
    pub fn new(max_streams: usize) -> Self {
        assert!(max_streams > 0);
        Self {
            streams: Vec::new(),
            max_streams,
            stamp: 0,
        }
    }

    /// Number of store streams currently open.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// True if some open stream is currently assembling `line`.  Batched
    /// drivers use this to prove that a follow-up [`store_segment`] on the
    /// same line is a pure coverage merge (no event, no stream churn).
    ///
    /// [`store_segment`]: Self::store_segment
    pub fn stream_at_line(&self, line: u64) -> bool {
        self.streams.iter().any(|s| s.line == line)
    }

    /// Drop every open stream without finalizing it and reset the stamp,
    /// reusing the allocation.  Afterwards the coalescer is
    /// indistinguishable from a freshly constructed one.
    pub fn reset(&mut self) {
        self.streams.clear();
        self.stamp = 0;
    }

    /// Record a store of `bytes` bytes at `addr`.  Returns the lines that
    /// were *finalized* by this store (the stream moved past them or a new
    /// stream displaced an old one).
    ///
    /// This is the allocating convenience wrapper around
    /// [`store_segment`]; hot paths split the store into per-line segments
    /// themselves and consume each event as it is produced.
    ///
    /// [`store_segment`]: Self::store_segment
    pub fn store(&mut self, addr: u64, bytes: u32) -> Vec<FinalizedLine> {
        let mut finalized = Vec::new();
        let mut addr = addr;
        let mut remaining = bytes as u64;
        while remaining > 0 {
            let line = line_of(addr);
            let offset = addr % LINE_BYTES;
            let in_line = (LINE_BYTES - offset).min(remaining);
            finalized.extend(self.store_segment(line, offset, in_line));
            addr += in_line;
            remaining -= in_line;
        }
        finalized
    }

    fn coverage_mask(offset: u64, len: u64) -> u64 {
        debug_assert!(offset + len <= LINE_BYTES);
        if len >= 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << offset
        }
    }

    /// Record a store covering `[offset, offset + len)` of a single cache
    /// line.  Returns the at most one line this store finalizes (a stream
    /// advanced past its previous line, or a new stream displaced the
    /// oldest).  This is the allocation-free core of the store path: an
    /// 8-byte scalar store and a 64-byte batched line store both cost one
    /// call.
    pub fn store_segment(&mut self, line: u64, offset: u64, len: u64) -> Option<FinalizedLine> {
        self.stamp += 1;
        let stamp = self.stamp;
        let mask = Self::coverage_mask(offset, len);

        // 1. The store continues an existing stream on its current line.
        if let Some(s) = self.streams.iter_mut().find(|s| s.line == line) {
            s.coverage |= mask;
            s.stamp = stamp;
            return None;
        }

        // 2. The store advances an existing stream to a nearby later line.
        //    Small forward gaps (an aligned halo of up to a few cache lines)
        //    do not break the hardware's stream detection, so the streak
        //    carries across them as long as the completed lines were full.
        const GAP_TOLERANCE: u64 = 4;
        let active = self.streams.len();
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|s| line > s.line && line - s.line <= GAP_TOLERANCE)
        {
            let was_full = s.full();
            if was_full {
                s.current_streak += 1;
            } else {
                if s.current_streak > 0 {
                    s.last_streak = s.current_streak;
                }
                s.current_streak = 0;
            }
            let streak_estimate = s.current_streak.max(s.last_streak) as f64;
            let finalized = FinalizedLine {
                line: s.line,
                full: was_full,
                streak_estimate,
                active_streams: active,
            };
            s.line = line;
            s.coverage = mask;
            s.stamp = stamp;
            return Some(finalized);
        }

        // 3. Otherwise open a new stream, possibly displacing the oldest.
        let mut finalized = None;
        if self.streams.len() >= self.max_streams {
            let (idx, _) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .expect("non-empty streams");
            let old = self.streams.swap_remove(idx);
            finalized = Some(Self::finalize_stream(&old, self.streams.len() + 1));
        }
        self.streams.push(WriteStream {
            line,
            coverage: mask,
            current_streak: 0,
            last_streak: 0,
            stamp,
        });
        finalized
    }

    fn finalize_stream(s: &WriteStream, active: usize) -> FinalizedLine {
        let full = s.full();
        let streak = if full {
            s.current_streak + 1
        } else {
            s.current_streak
        };
        FinalizedLine {
            line: s.line,
            full,
            streak_estimate: streak.max(s.last_streak) as f64,
            active_streams: active,
        }
    }

    /// Finalize every open stream (end of a measurement region or kernel).
    pub fn flush(&mut self) -> Vec<FinalizedLine> {
        let active = self.streams.len();
        let out = self
            .streams
            .iter()
            .map(|s| Self::finalize_stream(s, active))
            .collect();
        self.streams.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Store an entire contiguous array of `n` doubles starting at `base`,
    /// 8 bytes at a time, and return all finalized lines plus the flush.
    fn store_doubles(c: &mut WriteCoalescer, base: u64, n: u64) -> Vec<FinalizedLine> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend(c.store(base + 8 * i, 8));
        }
        out
    }

    #[test]
    fn contiguous_stores_produce_full_lines() {
        let mut c = WriteCoalescer::new(4);
        let mut lines = store_doubles(&mut c, 0, 64); // 8 lines worth
        lines.extend(c.flush());
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.full), "all lines fully covered");
    }

    #[test]
    fn streak_grows_with_consecutive_full_lines() {
        let mut c = WriteCoalescer::new(4);
        let lines = store_doubles(&mut c, 0, 64);
        // 7 lines finalized by advancing (the 8th is still open).
        assert_eq!(lines.len(), 7);
        let estimates: Vec<f64> = lines.iter().map(|l| l.streak_estimate).collect();
        assert_eq!(estimates, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn partial_line_breaks_streak_and_reports_not_full() {
        let mut c = WriteCoalescer::new(4);
        // Fill line 0 fully, then skip half of line 1, continue on line 2.
        store_doubles(&mut c, 0, 8); // line 0 complete, line cursor at 0
                                     // Write only the first 4 doubles of line 1.
        store_doubles(&mut c, 64, 4);
        // Jump to line 2: a new store at line 2 advances stream, finalizing
        // line 1 as partial.
        let fin = c.store(128, 8);
        assert_eq!(fin.len(), 1);
        assert!(!fin[0].full);
        assert_eq!(fin[0].line, 1);
    }

    #[test]
    fn unaligned_halo_rows_yield_partial_boundary_lines() {
        // Rows of 27 doubles (216 bytes + change): with a 5-double halo gap,
        // row starts are not line-aligned so boundary lines are partial.
        let mut c = WriteCoalescer::new(4);
        let row_elems = 27u64;
        let halo = 5u64;
        let mut all = Vec::new();
        for row in 0..4u64 {
            let base = (row * (row_elems + halo)) * 8;
            all.extend(store_doubles(&mut c, base, row_elems));
        }
        all.extend(c.flush());
        assert!(
            all.iter().any(|l| !l.full),
            "expect partial lines at row boundaries"
        );
        assert!(all.iter().any(|l| l.full), "interior lines are still full");
    }

    #[test]
    fn two_interleaved_streams_are_tracked_separately() {
        let mut c = WriteCoalescer::new(4);
        let mut fin = Vec::new();
        // Interleave stores to two far-apart arrays.
        for i in 0..32u64 {
            fin.extend(c.store(i * 8, 8));
            fin.extend(c.store(1 << 20 | (i * 8), 8));
        }
        assert_eq!(c.active_streams(), 2);
        fin.extend(c.flush());
        assert!(fin.iter().all(|l| l.full));
        assert!(fin.iter().all(|l| l.active_streams == 2));
    }

    #[test]
    fn stream_table_eviction_finalizes_oldest() {
        let mut c = WriteCoalescer::new(2);
        c.store(0, 8);
        c.store(1 << 20, 8);
        // Third distinct stream evicts the first (partial line).
        let fin = c.store(1 << 30, 8);
        assert_eq!(fin.len(), 1);
        assert!(!fin[0].full);
        assert_eq!(c.active_streams(), 2);
    }

    #[test]
    fn streak_estimate_uses_last_completed_row() {
        // Aligned rows of exactly 8 lines separated by a jump: after the
        // first row, the estimate for early lines of the next row should
        // report the previous row's length, not the small running count.
        let mut c = WriteCoalescer::new(4);
        let mut fin = store_doubles(&mut c, 0, 64); // row 0: lines 0..8
                                                    // Jump to a new row far away (same stream cannot continue).
        fin.extend(store_doubles(&mut c, 1 << 16, 64));
        fin.extend(c.flush());
        // Find finalized lines belonging to the second row.
        let second_row: Vec<&FinalizedLine> =
            fin.iter().filter(|l| l.line >= (1 << 16) / 64).collect();
        assert!(!second_row.is_empty());
        // The coalescer opens a fresh stream for the jump, so the streak
        // estimate within the new row grows again from 1 — this mirrors the
        // hardware losing its history on a far jump.
        assert!(second_row[0].streak_estimate >= 1.0);
    }

    #[test]
    fn coverage_mask_edges() {
        assert_eq!(WriteCoalescer::coverage_mask(0, 64), u64::MAX);
        assert_eq!(WriteCoalescer::coverage_mask(0, 8), 0xFF);
        assert_eq!(WriteCoalescer::coverage_mask(56, 8), 0xFF00_0000_0000_0000);
    }

    #[test]
    fn streak_tracker_estimates() {
        let mut t = StreakTracker::default();
        assert_eq!(t.estimate(), 0.0);
        t.full_line();
        t.full_line();
        assert_eq!(t.estimate(), 2.0);
        t.gap();
        assert_eq!(t.estimate(), 2.0);
        t.full_line();
        assert_eq!(t.estimate(), 2.0);
        t.full_line();
        t.full_line();
        assert_eq!(t.estimate(), 3.0);
    }

    #[test]
    fn zero_byte_store_is_noop() {
        let mut c = WriteCoalescer::new(2);
        assert!(c.store(0, 0).is_empty());
        assert_eq!(c.active_streams(), 0);
    }
}
