//! Memory access primitives.

/// Cache-line size in bytes (64 on every evaluated platform).
pub const LINE_BYTES: u64 = 64;

/// Kind of memory access issued by a core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum AccessKind {
    /// Ordinary load.
    Load,
    /// Ordinary (temporal) store; misses trigger a write-allocate unless the
    /// hardware evades it.
    Store,
    /// Non-temporal (streaming) store; bypasses the cache hierarchy through
    /// a write-combine buffer.
    StoreNT,
}

impl AccessKind {
    /// True for either store flavour.
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::StoreNT)
    }
}

/// One memory access: a byte range `[addr, addr + bytes)` of a given kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Starting byte address (virtual, arbitrary origin).
    pub addr: u64,
    /// Length in bytes (typically 8 for a double).
    pub bytes: u32,
    /// Load / store / non-temporal store.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for an 8-byte (double precision) load.
    pub fn load8(addr: u64) -> Self {
        Self {
            addr,
            bytes: 8,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for an 8-byte (double precision) store.
    pub fn store8(addr: u64) -> Self {
        Self {
            addr,
            bytes: 8,
            kind: AccessKind::Store,
        }
    }

    /// Convenience constructor for an 8-byte non-temporal store.
    pub fn store8_nt(addr: u64) -> Self {
        Self {
            addr,
            bytes: 8,
            kind: AccessKind::StoreNT,
        }
    }

    /// First cache line touched by this access.
    pub fn first_line(&self) -> u64 {
        line_of(self.addr)
    }

    /// Last cache line touched by this access (inclusive).
    pub fn last_line(&self) -> u64 {
        line_of(self.addr + self.bytes.max(1) as u64 - 1)
    }

    /// Iterator over all cache-line indices touched by this access.
    pub fn lines(&self) -> impl Iterator<Item = u64> {
        self.first_line()..=self.last_line()
    }
}

/// Cache-line index of a byte address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}

/// Size of a double-precision element in bytes.
pub const ELEM_BYTES: u64 = 8;

/// A contiguous run of double-precision elements accessed in ascending
/// address order — the unit of the batched fast path.
///
/// `CoreSim::drive_run` expands a run into one hierarchy operation per
/// 64-byte cache line (plus exact bookkeeping for the repeated touches of a
/// line and for partially covered head/tail lines) instead of one operation
/// per 8-byte element, producing bit-identical counters to the scalar
/// per-element path at a fraction of the cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRun {
    /// First byte address of the run.
    pub base: u64,
    /// Number of contiguous 8-byte elements.
    pub elements: u64,
    /// Load / store / non-temporal store.
    pub kind: AccessKind,
}

impl AccessRun {
    /// A contiguous run of loads.
    pub fn load(base: u64, elements: u64) -> Self {
        Self {
            base,
            elements,
            kind: AccessKind::Load,
        }
    }

    /// A contiguous run of stores.
    pub fn store(base: u64, elements: u64) -> Self {
        Self {
            base,
            elements,
            kind: AccessKind::Store,
        }
    }

    /// A contiguous run of non-temporal stores.
    pub fn store_nt(base: u64, elements: u64) -> Self {
        Self {
            base,
            elements,
            kind: AccessKind::StoreNT,
        }
    }

    /// Total bytes covered by the run.
    pub fn bytes(&self) -> u64 {
        self.elements * ELEM_BYTES
    }

    /// Number of distinct cache lines the run touches (0 for an empty run).
    pub fn lines_touched(&self) -> u64 {
        if self.elements == 0 {
            0
        } else {
            line_of(self.base + self.bytes() - 1) - line_of(self.base) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(130), 2);
    }

    #[test]
    fn access_within_one_line() {
        let a = Access::load8(16);
        assert_eq!(a.first_line(), 0);
        assert_eq!(a.last_line(), 0);
        assert_eq!(a.lines().count(), 1);
    }

    #[test]
    fn access_straddling_lines() {
        let a = Access {
            addr: 60,
            bytes: 8,
            kind: AccessKind::Load,
        };
        assert_eq!(a.first_line(), 0);
        assert_eq!(a.last_line(), 1);
        assert_eq!(a.lines().count(), 2);
    }

    #[test]
    fn store_kinds() {
        assert!(AccessKind::Store.is_store());
        assert!(AccessKind::StoreNT.is_store());
        assert!(!AccessKind::Load.is_store());
        assert_eq!(Access::store8(0).kind, AccessKind::Store);
        assert_eq!(Access::store8_nt(0).kind, AccessKind::StoreNT);
    }

    #[test]
    fn access_run_line_counts() {
        assert_eq!(AccessRun::load(0, 8).lines_touched(), 1);
        assert_eq!(AccessRun::load(0, 9).lines_touched(), 2);
        // Misaligned base: 5 elements starting at byte 56 span 40 bytes
        // across the 64- and 128-byte boundaries.
        assert_eq!(AccessRun::store(56, 5).lines_touched(), 2);
        assert_eq!(AccessRun::store_nt(60, 1).lines_touched(), 2);
        assert_eq!(AccessRun::load(128, 0).lines_touched(), 0);
        assert_eq!(AccessRun::store(8, 2).bytes(), 16);
    }

    #[test]
    fn zero_length_access_touches_one_line() {
        let a = Access {
            addr: 100,
            bytes: 0,
            kind: AccessKind::Load,
        };
        assert_eq!(a.lines().count(), 1);
    }
}
