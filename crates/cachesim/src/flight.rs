//! Generic sharded memo with single-flight computation.
//!
//! Both memo layers of the workspace — [`SimMemo`](crate::memo::SimMemo)
//! over representative-core simulations and `clover_core`'s `SweepMemo`
//! over analytic scaling points — share the same concurrency problem: many
//! workers look up overlapping keys, a miss triggers an expensive pure
//! computation, and the caches must stay exact (a hit returns the
//! bit-identical value the computation would produce).
//!
//! The first-generation implementation ("simulate outside the lock, first
//! insert wins") was correct on values but wasteful and *inexact on
//! statistics*: two workers racing on the same key both simulated and both
//! counted a miss, so the duplicate simulation burned CPU and the reported
//! hit rate undercounted sharing.  This module replaces it with
//! **single-flight** lookups:
//!
//! * the first worker to miss a key becomes its *leader*: it publishes an
//!   in-flight marker, runs the computation outside every lock and
//!   completes the marker with the value;
//! * every other worker arriving while the computation runs becomes a
//!   *waiter*: it blocks on the marker and is handed the leader's value —
//!   one computation, N waiters, and exactly one `miss` plus N `hits`
//!   counted;
//! * a leader that panics abandons the marker: waiters wake, retry, and
//!   one of them becomes the new leader, so a poisoned key never wedges
//!   the memo.
//!
//! Lookups and inserts lock only the shard a key hashes to; waiting uses a
//! per-flight `Mutex`/`Condvar` pair so a slow computation never blocks
//! the shard.  Exact hit/miss accounting under concurrency is asserted by
//! a tier-1 proptest.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

/// Number of independent shards; a small power of two keeps the map
/// contention-free for any realistic worker count without wasting memory.
const SHARDS: usize = 16;

/// State of one in-flight computation.
enum FlightState<V> {
    /// The leader is still computing.
    Running,
    /// The leader finished; waiters take a clone.
    Done(V),
    /// The leader panicked; waiters must retry (and may become leaders).
    Abandoned,
}

/// One in-flight computation: a state cell plus the condvar its waiters
/// block on.  `std::sync` primitives are used (not the vendored
/// `parking_lot` subset, which has no condvar); only the leader ever
/// mutates the state, so lock poisoning cannot occur in practice.
struct Flight<V> {
    state: StdMutex<FlightState<V>>,
    cv: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Self {
            state: StdMutex::new(FlightState::Running),
            cv: Condvar::new(),
        }
    }

    /// Block until the leader resolves the flight.  `Some(value)` on
    /// completion, `None` when the leader abandoned (panicked).
    fn wait(&self) -> Option<V> {
        let mut state = self.state.lock().expect("flight state never poisoned");
        loop {
            match &*state {
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Abandoned => return None,
                FlightState::Running => {
                    state = self.cv.wait(state).expect("flight state never poisoned");
                }
            }
        }
    }

    fn resolve(&self, outcome: FlightState<V>) {
        *self.state.lock().expect("flight state never poisoned") = outcome;
        self.cv.notify_all();
    }
}

/// A key's slot in a shard map.
enum Slot<V> {
    /// Value published; hits clone it.  The `u64` is the entry's access
    /// stamp: the memo-wide clock value of its most recent touch (compute,
    /// hit or `get`).  Preloaded entries start at stamp 0, so entries
    /// warm-loaded from disk and never used again are the first candidates
    /// a capped persistence pass evicts.
    Ready(V, u64),
    /// A leader is computing it right now.
    InFlight(Arc<Flight<V>>),
}

/// Sharded concurrent memo with single-flight computation and exact
/// hit/miss statistics.  See the module docs for the concurrency contract.
pub struct FlightMemo<K, V> {
    shards: [Mutex<HashMap<K, Slot<V>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotonic access clock; every publish or touch of a `Ready` slot
    /// takes the next value.  Purely in-memory (never persisted): it only
    /// orders entries by recency for capped persistence passes.
    clock: AtomicU64,
}

impl<K, V> Default for FlightMemo<K, V> {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }
}

impl<K, V> std::fmt::Debug for FlightMemo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightMemo")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Drop guard of a flight leader: on a panic in the computation it removes
/// the in-flight marker and wakes the waiters so one of them can retry as
/// the new leader.
struct LeaderGuard<'a, K: Hash + Eq + Clone, V: Clone> {
    memo: &'a FlightMemo<K, V>,
    key: Option<K>,
    flight: Arc<Flight<V>>,
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.memo.shard_of(&key).lock().remove(&key);
            self.flight.resolve(FlightState::Abandoned);
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> FlightMemo<K, V> {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, key: &K) -> &Mutex<HashMap<K, Slot<V>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Next access-clock value.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up `key`, computing it with `compute` on a miss.  The
    /// computation runs outside every lock; concurrent lookups of the same
    /// key wait for the one in-flight computation instead of repeating it,
    /// and are counted as hits (exactly one miss is counted per distinct
    /// key actually computed).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        // `compute` is called at most once: only a leader consumes it, and
        // a waiter re-enters the loop as leader only after its previous
        // leader abandoned without calling it on this thread.
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut shard = self.shard_of(&key).lock();
                match shard.get_mut(&key) {
                    Some(Slot::Ready(v, stamp)) => {
                        *stamp = self.tick();
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return v.clone();
                    }
                    Some(Slot::InFlight(flight)) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                        drop(shard);
                        // Leader path: compute outside the shard lock, with
                        // a guard that abandons the flight on panic.
                        let mut guard = LeaderGuard {
                            memo: self,
                            key: Some(key.clone()),
                            flight: Arc::clone(&flight),
                        };
                        let value = (compute.take().expect("leader computes once"))();
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let guard_key = guard.key.take().expect("guard armed until here");
                        let stamp = self.tick();
                        self.shard_of(&guard_key)
                            .lock()
                            .insert(guard_key, Slot::Ready(value.clone(), stamp));
                        flight.resolve(FlightState::Done(value.clone()));
                        return value;
                    }
                }
            };
            // Waiter path: block on the flight outside the shard lock.  A
            // completed flight is a hit (the memo saved this computation);
            // an abandoned one sends us back to race for leadership.
            if let Some(value) = flight.wait() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return value;
            }
        }
    }

    /// Value of `key`, if already computed and published.  Counts as an
    /// access: the entry's recency stamp is refreshed.
    pub fn get(&self, key: &K) -> Option<V> {
        match self.shard_of(key).lock().get_mut(key) {
            Some(Slot::Ready(v, stamp)) => {
                *stamp = self.tick();
                Some(v.clone())
            }
            _ => None,
        }
    }

    /// Number of published (fully computed) entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(..)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.  Waiters of an in-flight
    /// computation count as hits, so `misses` is exactly the number of
    /// computations run.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Snapshot every published entry (for persistence).  In-flight
    /// computations are skipped; the snapshot order is unspecified.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.entries_stamped()
            .into_iter()
            .map(|(k, v, _)| (k, v))
            .collect()
    }

    /// Snapshot every published entry together with its access stamp (the
    /// memo-wide clock value of its most recent touch; 0 for preloaded
    /// entries never accessed since).  Higher stamp ⇒ more recently used;
    /// a capped persistence pass keeps the highest-stamped entries.
    pub fn entries_stamped(&self) -> Vec<(K, V, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, slot) in shard.lock().iter() {
                if let Slot::Ready(v, stamp) = slot {
                    out.push((key.clone(), v.clone(), *stamp));
                }
            }
        }
        out
    }

    /// Publish previously snapshotted entries (warm-loading a persisted
    /// store).  Keys that are already present — published or in flight —
    /// are left untouched, and the hit/miss statistics are not changed:
    /// preloaded entries only show up as hits once something looks them
    /// up.
    pub fn preload(&self, entries: impl IntoIterator<Item = (K, V)>) {
        for (key, value) in entries {
            let mut shard = self.shard_of(&key).lock();
            // Stamp 0: a preloaded entry nothing ever touches again sorts
            // behind every computed or hit entry when a capped save evicts.
            shard.entry(key).or_insert(Slot::Ready(value, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn sequential_hit_miss_accounting() {
        let memo: FlightMemo<u32, u64> = FlightMemo::new();
        assert_eq!(memo.get_or_insert_with(7, || 70), 70);
        assert_eq!(memo.get_or_insert_with(7, || unreachable!()), 70);
        assert_eq!(memo.get_or_insert_with(8, || 80), 80);
        assert_eq!(memo.stats(), (1, 2));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get(&7), Some(70));
        assert_eq!(memo.get(&9), None);
    }

    #[test]
    fn racing_lookups_compute_once_and_count_exactly() {
        // All threads hit the same key at the same time: exactly one
        // computation runs, everyone gets its value, and the stats are
        // exactly (threads - 1) hits + 1 miss.
        const THREADS: usize = 8;
        let memo: FlightMemo<u32, u64> = FlightMemo::new();
        let computed = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    let v = memo.get_or_insert_with(42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually wait.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        4242
                    });
                    assert_eq!(v, 4242);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single flight");
        assert_eq!(memo.stats(), ((THREADS - 1) as u64, 1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn abandoned_flight_is_retried_by_a_waiter() {
        let memo: FlightMemo<u32, u64> = FlightMemo::new();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                let memo = &memo;
                let barrier = &barrier;
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    memo.get_or_insert_with(1, || {
                        barrier.wait();
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        panic!("leader dies mid-flight");
                    })
                }));
                assert!(result.is_err());
            });
            let waiter = scope.spawn(|| {
                barrier.wait(); // the leader is now inside its computation
                memo.get_or_insert_with(1, || 11)
            });
            assert_eq!(waiter.join().unwrap(), 11);
            leader.join().unwrap();
        });
        // The successful retry is the one counted miss; the panicked
        // leader counted nothing.
        assert_eq!(memo.stats().1, 1);
        assert_eq!(memo.get(&1), Some(11));
    }

    #[test]
    fn preload_publishes_without_touching_stats() {
        let memo: FlightMemo<u32, u64> = FlightMemo::new();
        memo.preload([(1, 10), (2, 20)]);
        assert_eq!(memo.stats(), (0, 0));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get_or_insert_with(1, || unreachable!()), 10);
        assert_eq!(memo.stats(), (1, 0));
        // Preload never clobbers an existing entry.
        memo.preload([(1, 999)]);
        assert_eq!(memo.get(&1), Some(10));
    }

    #[test]
    fn access_stamps_order_entries_by_recency() {
        let memo: FlightMemo<u32, u64> = FlightMemo::new();
        memo.preload([(1, 10)]);
        memo.get_or_insert_with(2, || 20);
        memo.get_or_insert_with(3, || 30);
        let stamp_of = |memo: &FlightMemo<u32, u64>, key: u32| {
            memo.entries_stamped()
                .into_iter()
                .find(|(k, _, _)| *k == key)
                .map(|(_, _, s)| s)
                .unwrap()
        };
        // Untouched preloads sit at stamp 0; computes take increasing stamps.
        assert_eq!(stamp_of(&memo, 1), 0);
        assert!(stamp_of(&memo, 2) < stamp_of(&memo, 3));
        // A hit refreshes the stamp past every earlier access...
        memo.get_or_insert_with(2, || unreachable!());
        assert!(stamp_of(&memo, 2) > stamp_of(&memo, 3));
        // ...and so does a plain `get`.
        assert_eq!(memo.get(&1), Some(10));
        assert!(stamp_of(&memo, 1) > stamp_of(&memo, 2));
    }

    #[test]
    fn entries_round_trip_through_preload() {
        let memo: FlightMemo<String, u64> = FlightMemo::new();
        for i in 0..50u64 {
            memo.get_or_insert_with(format!("k{i}"), || i * i);
        }
        let mut snapshot = memo.entries();
        snapshot.sort();
        assert_eq!(snapshot.len(), 50);
        let restored: FlightMemo<String, u64> = FlightMemo::new();
        restored.preload(snapshot.clone());
        let mut restored_snapshot = restored.entries();
        restored_snapshot.sort();
        assert_eq!(snapshot, restored_snapshot);
        assert_eq!(
            restored.get_or_insert_with("k7".into(), || unreachable!()),
            49
        );
    }
}
