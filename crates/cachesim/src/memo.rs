//! Cross-sweep simulation memoization.
//!
//! The node simulator runs one *representative* core per distinct ccNUMA
//! domain load ([`NodeSim::run_spmd`]), but a scaling curve evaluates dozens
//! of neighbouring rank counts whose domain-load contexts overlap massively:
//! on an 18-core-per-domain machine the full-domain level `(18 cores,
//! 2 active domains)` recurs for every rank count from 19 to 36.  Without a
//! memo each of those rank points re-simulates the identical workload.
//!
//! This module makes the representative-core simulation the cached unit of
//! work:
//!
//! * [`KernelSpec`] — a typed, hashable description of an SPMD kernel (the
//!   workloads previously passed to `run_spmd` as bare closures),
//! * [`SimKey`] — the identity of one representative simulation: machine,
//!   [`OccupancyContext`], [`CoreSimOptions`] and kernel,
//! * [`SimMemo`] — a sharded, concurrently usable map from [`SimKey`] to
//!   [`MemCounters`], shared across a whole sweep (or several sweeps) so a
//!   72-point curve performs O(distinct contexts) core simulations instead
//!   of O(points × levels),
//! * [`with_pooled_core`] — a thread-local [`CoreSim`] pool that reuses the
//!   cache arenas across memo misses instead of reallocating (and zeroing)
//!   multi-megabyte arenas per simulation.
//!
//! Memoization is exact, not approximate: a memo hit returns the
//! bit-identical [`MemCounters`] the simulation would produce, because the
//! key captures everything the simulation depends on.  Kernel address bases
//! may differ per rank ([`RankBase`]), but all rank bases are aligned far
//! beyond any cache's set-index range, so the counters are rank-invariant —
//! a property the tier-1 equivalence proptests assert.
//!
//! [`NodeSim::run_spmd`]: crate::engine::NodeSim::run_spmd

use std::cell::RefCell;
use std::sync::Arc;

use clover_machine::{Machine, ReplacementPolicyKind, WritePolicyKind};

use crate::access::AccessKind;
use crate::counters::MemCounters;
use crate::flight::FlightMemo;
use crate::hierarchy::{replay_trace, CoreSim, CoreSimOptions, OccupancyContext, TraceOp};
use crate::patterns::{StencilOperand, StencilRowSweep};
use crate::policy::{ReplacementPolicy, TrueLru, WriteAllocate, WritePolicy};

/// Smallest [`RankBase::Shifted`] shift the memo accepts: 2^30-aligned
/// rank windows are a multiple of every cache level's `sets × line` span
/// (sets are power-of-two and far below 2^24), so shifting the base moves
/// the tags but not the set indices — the property that makes counters
/// rank-invariant and memo hits exact.
pub const MIN_MEMO_SHIFT: u32 = 30;

/// How an operand's base address depends on the simulated rank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum RankBase {
    /// Every rank uses the same addresses (e.g. the CloverLeaf kernel
    /// replay, whose field bases are fixed offsets in a private address
    /// space).
    Shared,
    /// `(rank + plus) << shift` — the convention of the microbenchmarks,
    /// which place each rank's streams in a private high-address window.
    ///
    /// For memoized use the shift must be at least [`MIN_MEMO_SHIFT`]: a
    /// smaller shift puts rank bases inside the caches' set-index range,
    /// making counters genuinely rank-dependent, which would break the
    /// memo's bit-exactness contract ([`SimKey::new`] debug-asserts this).
    Shifted {
        /// Left shift applied to `rank + plus`.
        shift: u32,
        /// Offset added to the rank id before shifting.
        plus: u64,
    },
}

impl RankBase {
    /// The base address of `rank` under this scheme.
    pub fn base(self, rank: usize) -> u64 {
        match self {
            RankBase::Shared => 0,
            RankBase::Shifted { shift, plus } => (rank as u64 + plus) << shift,
        }
    }
}

/// One array operand of a [`KernelSpec`]: a byte offset relative to the
/// rank base plus the stencil points and access kind of the stream.
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SpecOperand {
    /// Byte offset added to the rank base.
    pub offset: u64,
    /// Stencil points `(di, dk)` in element units (see
    /// [`StencilOperand::offsets`]).
    pub points: Vec<(i64, i64)>,
    /// Access kind of this operand.
    pub kind: AccessKind,
}

/// A typed, hashable SPMD kernel: the stencil row sweep an SPMD rank
/// drives through its core simulator, parameterised over the rank id only
/// through the [`RankBase`] of its operands.
///
/// Everything the node simulator previously received as a closure (the
/// store/copy microbenchmark kernels, the CloverLeaf kernel footprints,
/// plain contiguous runs) is expressible as a `KernelSpec`; driving the
/// spec reproduces the exact same [`StencilRowSweep`] the closures built,
/// so converting a call site changes no output byte.
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct KernelSpec {
    /// Rank-dependence of the operand base addresses.
    pub rank_base: RankBase,
    /// Array operands in the access order of the loop body.
    pub operands: Vec<SpecOperand>,
    /// Row stride of the logical grid in elements.
    pub row_stride: u64,
    /// First inner index of the sweep.
    pub i0: u64,
    /// Inner iterations per row.
    pub inner: u64,
    /// First row of the sweep.
    pub k0: u64,
    /// Number of rows.
    pub rows: u64,
}

impl KernelSpec {
    /// A single contiguous run of `elements` accesses of `kind` at
    /// `offset` relative to the rank base.
    pub fn contiguous(rank_base: RankBase, offset: u64, elements: u64, kind: AccessKind) -> Self {
        Self {
            rank_base,
            operands: vec![SpecOperand {
                offset,
                points: vec![(0, 0)],
                kind,
            }],
            row_stride: elements.max(1),
            i0: 0,
            inner: elements,
            k0: 0,
            rows: 1,
        }
    }

    /// Materialise the sweep this kernel drives on `rank`.
    pub fn sweep(&self, rank: usize) -> StencilRowSweep {
        let base = self.rank_base.base(rank);
        StencilRowSweep {
            operands: self
                .operands
                .iter()
                .map(|op| StencilOperand {
                    base: base + op.offset,
                    offsets: op.points.clone(),
                    kind: op.kind,
                })
                .collect(),
            row_stride: self.row_stride,
            i0: self.i0,
            inner: self.inner,
            k0: self.k0,
            rows: self.rows,
        }
    }

    /// Drive the kernel through `core` as rank `rank`.
    pub fn drive<R: ReplacementPolicy, W: WritePolicy>(
        &self,
        rank: usize,
        core: &mut CoreSim<R, W>,
    ) {
        self.sweep(rank).drive(core);
    }

    /// Grid-point updates performed per rank.
    pub fn iterations(&self) -> u64 {
        self.inner * self.rows
    }

    /// Inclusive cache-line window `[first, last]` this kernel touches when
    /// driven as `rank`, or `None` for an empty kernel (no operands or a
    /// zero-trip sweep).
    ///
    /// Every access address is affine in `(i, k)` with non-negative
    /// coefficients (`row_stride`, element size), so the extrema lie at the
    /// sweep corners: the window is exact, not an over-approximation.
    pub fn line_span(&self, rank: usize) -> Option<(u64, u64)> {
        use crate::access::{ELEM_BYTES, LINE_BYTES};
        if self.operands.is_empty() || self.inner == 0 || self.rows == 0 {
            return None;
        }
        let base = self.rank_base.base(rank) as i128;
        let stride = self.row_stride as i128;
        let (mut lo, mut hi) = (i128::MAX, i128::MIN);
        for op in &self.operands {
            for &(di, dk) in &op.points {
                let term = dk as i128 * stride + di as i128;
                let min_idx = self.k0 as i128 * stride + self.i0 as i128 + term;
                let max_idx = (self.k0 + self.rows - 1) as i128 * stride
                    + (self.i0 + self.inner - 1) as i128
                    + term;
                lo = lo.min(base + op.offset as i128 + min_idx * ELEM_BYTES as i128);
                hi = hi.max(
                    base + op.offset as i128
                        + max_idx * ELEM_BYTES as i128
                        + (ELEM_BYTES - 1) as i128,
                );
            }
        }
        if lo > hi {
            return None;
        }
        debug_assert!(lo >= 0, "stencil kernel reaches below address zero");
        Some((lo as u64 / LINE_BYTES, hi as u64 / LINE_BYTES))
    }
}

/// Identity of one representative-core simulation.  Two simulations with
/// equal keys produce bit-identical counters, so the key is exactly what a
/// memo may share: the machine (identified by its preset id — preset
/// machines with equal ids are structurally identical), the occupancy
/// context, the core options (floats keyed by their bit patterns) and the
/// kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SimKey {
    /// `Machine::id` of the simulated machine.
    pub machine: String,
    /// `OccupancyContext::domain_utilization` bit pattern.
    pub utilization_bits: u64,
    /// Populated ccNUMA domains.
    pub active_domains: usize,
    /// Total ccNUMA domains.
    pub total_domains: usize,
    /// SpecI2M MSR switch.
    pub speci2m_enabled: bool,
    /// Adjacent-line prefetcher switch.
    pub adjacent_line: bool,
    /// Streamer prefetcher switch.
    pub streamer: bool,
    /// Streamer prefetch distance.
    pub streamer_distance: u64,
    /// `PrefetcherConfig::pf_off_evasion_factor` bit pattern.
    pub pf_off_evasion_bits: u64,
    /// Cores sharing the L3.
    pub l3_sharers: usize,
    /// Replacement policy of the simulated hierarchy.
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the simulated hierarchy.
    pub write_policy: WritePolicyKind,
    /// The SPMD kernel.
    pub kernel: KernelSpec,
}

impl SimKey {
    /// Key of the simulation of `kernel` on `machine` under `ctx` and
    /// `options` with the paper's default policies (true-LRU,
    /// write-allocate).
    pub fn new(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
    ) -> Self {
        Self::for_policies(
            machine,
            ctx,
            options,
            kernel,
            ReplacementPolicyKind::Lru,
            WritePolicyKind::Allocate,
        )
    }

    /// Key of the simulation of `kernel` under an explicit policy pair.
    /// Keys of distinct policies never collide, so one memo can span a
    /// sweep that mixes policy configurations.
    pub fn for_policies(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        replacement: ReplacementPolicyKind,
        write_policy: WritePolicyKind,
    ) -> Self {
        // The key omits the rank: that is only sound when the rank base
        // cannot change any set index (see `MIN_MEMO_SHIFT`).
        if let RankBase::Shifted { shift, .. } = kernel.rank_base {
            debug_assert!(
                shift >= MIN_MEMO_SHIFT,
                "RankBase::Shifted {{ shift: {shift} }} is below MIN_MEMO_SHIFT \
                 ({MIN_MEMO_SHIFT}): counters would be rank-dependent and \
                 memoization inexact"
            );
        }
        Self {
            machine: machine.id.clone(),
            utilization_bits: ctx.domain_utilization.to_bits(),
            active_domains: ctx.active_domains,
            total_domains: ctx.total_domains,
            speci2m_enabled: options.speci2m_enabled,
            adjacent_line: options.prefetchers.adjacent_line,
            streamer: options.prefetchers.streamer,
            streamer_distance: options.prefetchers.streamer_distance,
            pf_off_evasion_bits: options.prefetchers.pf_off_evasion_factor.to_bits(),
            l3_sharers: options.l3_sharers,
            replacement,
            write_policy,
            kernel: kernel.clone(),
        }
    }
}

/// Identity of one multi-tenant co-run simulation (see
/// [`NodeSim::run_corun`](crate::engine::NodeSim::run_corun)).
///
/// The key carries the *sorted* tenant kernels plus the interleave
/// granularity on top of every machine/occupancy/option field of
/// [`SimKey`].  A co-run key can therefore never collide with a solo
/// [`SimKey`] (they live in separate memo tables) and two co-runs share an
/// entry only when their tenant multisets, interleave and environment all
/// match — a solo result is never served for a contended run and vice
/// versa.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CoRunKey {
    /// `Machine::id` of the simulated machine.
    pub machine: String,
    /// `OccupancyContext::domain_utilization` bit pattern.
    pub utilization_bits: u64,
    /// Populated ccNUMA domains.
    pub active_domains: usize,
    /// Total ccNUMA domains.
    pub total_domains: usize,
    /// SpecI2M MSR switch.
    pub speci2m_enabled: bool,
    /// Adjacent-line prefetcher switch.
    pub adjacent_line: bool,
    /// Streamer prefetcher switch.
    pub streamer: bool,
    /// Streamer prefetch distance.
    pub streamer_distance: u64,
    /// `PrefetcherConfig::pf_off_evasion_factor` bit pattern.
    pub pf_off_evasion_bits: u64,
    /// Cores sharing the L3.
    pub l3_sharers: usize,
    /// Replacement policy of the simulated hierarchies.
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the simulated hierarchies.
    pub write_policy: WritePolicyKind,
    /// Tenant kernels in canonical (sorted) order.
    pub tenants: Vec<KernelSpec>,
    /// Lines each tenant streams per round-robin turn at the shared LLC.
    pub interleave_lines: u64,
}

impl CoRunKey {
    /// Key of the co-run of `tenants` under an explicit policy pair.
    /// `tenants` must already be in canonical (sorted) order; the caller
    /// sorts so the stored permutation maps reports back to input order.
    pub fn for_policies(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        tenants: &[KernelSpec],
        interleave_lines: u64,
        replacement: ReplacementPolicyKind,
        write_policy: WritePolicyKind,
    ) -> Self {
        debug_assert!(
            tenants.windows(2).all(|w| w[0] <= w[1]),
            "CoRunKey tenants must be in canonical sorted order"
        );
        Self {
            machine: machine.id.clone(),
            utilization_bits: ctx.domain_utilization.to_bits(),
            active_domains: ctx.active_domains,
            total_domains: ctx.total_domains,
            speci2m_enabled: options.speci2m_enabled,
            adjacent_line: options.prefetchers.adjacent_line,
            streamer: options.prefetchers.streamer,
            streamer_distance: options.prefetchers.streamer_distance,
            pf_off_evasion_bits: options.prefetchers.pf_off_evasion_factor.to_bits(),
            l3_sharers: options.l3_sharers,
            replacement,
            write_policy,
            tenants: tenants.to_vec(),
            interleave_lines,
        }
    }
}

/// Identity of one *cache-dynamics* trace: a [`SimKey`] with the five
/// neighbour axes removed.
///
/// The occupancy context (`domain_utilization`, `active_domains`,
/// `total_domains`), the SpecI2M MSR switch and the prefetch-off evasion
/// factor scale *fractional counter accounting* only — which lines hit,
/// miss, evict or write back is decided entirely by the cache geometry,
/// the enabled prefetchers, the policies and the kernel's address stream.
/// Sweep points that differ only along those five axes are "neighbours":
/// they share one event trace, so the memo records the trace once and
/// replays it (bit-identically — same floating-point addition order per
/// counter field) under each neighbour's accounting parameters instead of
/// re-simulating the cache dynamics from scratch.
///
/// Everything that *can* change the event sequence stays in the key, so a
/// differential replay can never be served across machines, prefetcher
/// switches, L3 sharer counts, policies or kernels — the same soundness
/// discipline [`CoRunKey`] applies to co-runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct DiffKey {
    /// `Machine::id` of the simulated machine.
    machine: String,
    /// Adjacent-line prefetcher switch.
    adjacent_line: bool,
    /// Streamer prefetcher switch.
    streamer: bool,
    /// Streamer prefetch distance.
    streamer_distance: u64,
    /// Cores sharing the L3.
    l3_sharers: usize,
    /// Replacement policy of the simulated hierarchy.
    replacement: ReplacementPolicyKind,
    /// Store-miss policy of the simulated hierarchy.
    write_policy: WritePolicyKind,
    /// The SPMD kernel.
    kernel: KernelSpec,
}

impl DiffKey {
    /// The trace identity shared by every neighbour of `(machine,
    /// options, kernel)` under the `(replacement, write_policy)` pair.
    fn for_policies(
        machine: &Machine,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        replacement: ReplacementPolicyKind,
        write_policy: WritePolicyKind,
    ) -> Self {
        Self {
            machine: machine.id.clone(),
            adjacent_line: options.prefetchers.adjacent_line,
            streamer: options.prefetchers.streamer,
            streamer_distance: options.prefetchers.streamer_distance,
            l3_sharers: options.l3_sharers,
            replacement,
            write_policy,
            kernel: kernel.clone(),
        }
    }
}

/// One memoized cache-dynamics trace (or the fact that recording it was
/// abandoned).
#[derive(Debug, Clone)]
pub(crate) enum DiffEntry {
    /// The recorded event trace, replayable under any neighbour context.
    Trace(Arc<[TraceOp]>),
    /// The kernel overflowed [`TRACE_OP_CAP`](crate::hierarchy::TRACE_OP_CAP)
    /// events; neighbours of this key re-simulate from scratch.
    Oversized,
}

/// Sharded concurrent memo of representative-core simulations.
///
/// One `SimMemo` is meant to span a whole sweep (or a whole plan of
/// sweeps, or a whole `figures serve` daemon lifetime): every evaluation
/// point consults it before simulating and publishes its result
/// afterwards.  Lookups and inserts lock only the shard the key hashes
/// to; the simulation itself runs outside any lock.  Concurrent lookups
/// of the same missing key are *single-flight* (via [`FlightMemo`]): one
/// worker simulates, every other worker waits for that result and counts
/// as a hit, so the duplicate simulation of the old racing path — and its
/// double-counted miss — cannot occur.
#[derive(Debug)]
pub struct SimMemo {
    inner: FlightMemo<SimKey, MemCounters>,
    /// Co-run results, keyed separately from solo simulations: a
    /// [`CoRunKey`] and a [`SimKey`] live in disjoint tables, so a memo
    /// shared across solo and contended sweeps can never serve a solo
    /// result for a co-run (or one interleave's result for another).
    corun: FlightMemo<CoRunKey, Vec<crate::engine::TenantReport>>,
    /// Cache-dynamics traces keyed by [`DiffKey`]: the differential
    /// re-simulation layer underneath `inner`.  A [`SimKey`] miss whose
    /// [`DiffKey`] already holds a trace replays it under the point's own
    /// accounting context instead of re-simulating — and the replayed
    /// counters are published into `inner` under the full [`SimKey`], so
    /// differential and from-scratch results can never mix.
    diff: FlightMemo<DiffKey, DiffEntry>,
    /// Whether misses record/replay traces.  `false` forces every miss
    /// down the from-scratch path (used by the equivalence tests and
    /// available for debugging); results are bit-identical either way.
    differential: bool,
}

impl Default for SimMemo {
    fn default() -> Self {
        Self {
            inner: FlightMemo::default(),
            corun: FlightMemo::default(),
            diff: FlightMemo::default(),
            differential: true,
        }
    }
}

/// Hit/miss statistics of a [`SimMemo`] (or [`with_pooled_core`]'s pool):
/// how many simulations the memo avoided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl MemoStats {
    /// Fraction of lookups answered from the memo (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl SimMemo {
    /// An empty memo (differential re-simulation enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty memo with differential re-simulation disabled: every miss
    /// simulates from scratch.  Counters are bit-identical to the
    /// differential path (a tested property); this exists for the
    /// equivalence tests and as a debugging escape hatch.
    pub fn without_differential() -> Self {
        Self {
            differential: false,
            ..Self::default()
        }
    }

    /// Look up `key`, simulating with `simulate` on a miss and publishing
    /// the result.  The simulation runs outside every lock; concurrent
    /// lookups of the same key wait for the one in-flight simulation
    /// (single-flight) instead of repeating it, and exactly one miss is
    /// counted per simulation actually run.
    pub fn get_or_insert_with(
        &self,
        key: SimKey,
        simulate: impl FnOnce() -> MemCounters,
    ) -> MemCounters {
        self.inner.get_or_insert_with(key, simulate)
    }

    /// Counters of `kernel` on `machine` under `ctx`/`options` with the
    /// paper's default policies, simulated as rank `rank` on a miss (via
    /// the thread-local core pool).
    pub fn counters(
        &self,
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        rank: usize,
    ) -> MemCounters {
        self.counters_for::<TrueLru, WriteAllocate>(machine, ctx, options, kernel, rank)
    }

    /// Counters of `kernel` under an explicit policy pair `(R, W)`.  The
    /// key carries the policy kinds, so a hit can never be served from a
    /// different policy's entry.  The default pair reuses the thread-local
    /// core pool; other pairs build a fresh typed core (the branch is a
    /// compile-time constant per monomorphisation).
    pub fn counters_for<R: ReplacementPolicy, W: WritePolicy>(
        &self,
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        rank: usize,
    ) -> MemCounters {
        let key = SimKey::for_policies(machine, ctx, options, kernel, R::KIND, W::KIND);
        self.get_or_insert_with(key, || {
            if !self.differential {
                return Self::simulate_plain::<R, W>(machine, ctx, options, kernel, rank);
            }
            // Differential path: one trace per DiffKey (the SimKey minus
            // the five accounting-only neighbour axes).  The first miss on
            // a trace key simulates live *with recording* and keeps its
            // own counters; every neighbour replays the recorded events
            // under its own context instead of re-simulating.  Both memo
            // layers are single-flight and the simulation/replay runs
            // outside every lock; the diff lookup never waits on an
            // `inner` flight (only the reverse), so the nesting cannot
            // deadlock.
            let dkey = DiffKey::for_policies(machine, options, kernel, R::KIND, W::KIND);
            let mut live: Option<MemCounters> = None;
            let entry = self.diff.get_or_insert_with(dkey, || {
                let (counters, ops) =
                    Self::simulate_traced::<R, W>(machine, ctx, options, kernel, rank);
                live = Some(counters);
                match ops {
                    Some(ops) => DiffEntry::Trace(ops.into()),
                    None => DiffEntry::Oversized,
                }
            });
            if let Some(counters) = live {
                // Trace leader: its live counters are the result.
                return counters;
            }
            match entry {
                DiffEntry::Trace(ops) => replay_trace(&machine.speci2m, ctx, options, &ops),
                DiffEntry::Oversized => {
                    Self::simulate_plain::<R, W>(machine, ctx, options, kernel, rank)
                }
            }
        })
    }

    /// From-scratch simulation of one representative core (no trace).
    fn simulate_plain<R: ReplacementPolicy, W: WritePolicy>(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        rank: usize,
    ) -> MemCounters {
        if R::KIND == ReplacementPolicyKind::Lru && W::KIND == WritePolicyKind::Allocate {
            with_pooled_core(machine, ctx, options, |core| {
                kernel.drive(rank, core);
                core.flush()
            })
        } else {
            let mut core = CoreSim::<R, W>::new(machine, ctx, options);
            kernel.drive(rank, &mut core);
            core.flush()
        }
    }

    /// From-scratch simulation that also records the event trace.
    /// Returns `None` for the trace when the kernel overflowed the
    /// recording cap (the counters are still exact).
    fn simulate_traced<R: ReplacementPolicy, W: WritePolicy>(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        kernel: &KernelSpec,
        rank: usize,
    ) -> (MemCounters, Option<Vec<TraceOp>>) {
        if R::KIND == ReplacementPolicyKind::Lru && W::KIND == WritePolicyKind::Allocate {
            with_pooled_core(machine, ctx, options, |core| {
                core.start_trace();
                kernel.drive(rank, core);
                let counters = core.flush();
                (counters, core.take_trace())
            })
        } else {
            let mut core = CoreSim::<R, W>::new(machine, ctx, options);
            core.start_trace();
            kernel.drive(rank, &mut core);
            let counters = core.flush();
            (counters, core.take_trace())
        }
    }

    /// Number of memoized simulations.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss statistics since construction.  Waiters of an in-flight
    /// simulation count as hits, so `misses` is exactly the number of
    /// simulations run.
    pub fn stats(&self) -> MemoStats {
        let (hits, misses) = self.inner.stats();
        MemoStats { hits, misses }
    }

    /// Look up the co-run `key`, simulating with `simulate` on a miss and
    /// publishing the per-tenant reports (in the key's canonical tenant
    /// order).  Same single-flight semantics as
    /// [`get_or_insert_with`](Self::get_or_insert_with), over a table
    /// disjoint from the solo one.
    pub fn corun_get_or_insert_with(
        &self,
        key: CoRunKey,
        simulate: impl FnOnce() -> Vec<crate::engine::TenantReport>,
    ) -> Vec<crate::engine::TenantReport> {
        self.corun.get_or_insert_with(key, simulate)
    }

    /// Number of memoized co-run simulations.
    pub fn corun_len(&self) -> usize {
        self.corun.len()
    }

    /// Hit/miss statistics of the co-run table since construction.
    pub fn corun_stats(&self) -> MemoStats {
        let (hits, misses) = self.corun.stats();
        MemoStats { hits, misses }
    }

    /// Number of memoized cache-dynamics traces (including keys recorded
    /// as oversized).  Always 0 when differential re-simulation is off.
    pub fn diff_len(&self) -> usize {
        self.diff.len()
    }

    /// Hit/miss statistics of the trace table since construction.  A
    /// `hit` is a sweep point answered by replaying a neighbour's trace
    /// instead of re-simulating the cache dynamics.
    pub fn diff_stats(&self) -> MemoStats {
        let (hits, misses) = self.diff.stats();
        MemoStats { hits, misses }
    }

    /// Snapshot every memoized `(key, counters)` pair, e.g. for
    /// persistence to an on-disk store.  Simulations still in flight are
    /// skipped; the order is unspecified.
    pub fn entries(&self) -> Vec<(SimKey, MemCounters)> {
        self.inner.entries()
    }

    /// [`entries`](Self::entries) plus each entry's access stamp (see
    /// [`FlightMemo::entries_stamped`]): higher stamp ⇒ more recently
    /// touched.  A capped persistence pass keeps the highest-stamped
    /// entries and evicts the rest.
    pub fn entries_stamped(&self) -> Vec<(SimKey, MemCounters, u64)> {
        self.inner.entries_stamped()
    }

    /// Publish previously snapshotted entries (warm-loading a persisted
    /// store).  Keys already present are left untouched and the hit/miss
    /// statistics are unchanged — preloaded entries surface as hits only
    /// once a lookup finds them.
    pub fn preload(&self, entries: impl IntoIterator<Item = (SimKey, MemCounters)>) {
        self.inner.preload(entries);
    }
}

thread_local! {
    /// One reusable [`CoreSim`] per machine (identified by `Machine::id`)
    /// per worker thread.
    static CORE_POOL: RefCell<Vec<(String, CoreSim)>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` on a pooled, freshly [`reset`](CoreSim::reset) core simulator
/// for `machine` under `ctx`/`options`.
///
/// A reset core is indistinguishable from `CoreSim::new` (a tested
/// property), so pooling changes no counter bit — it only skips the
/// allocation and zeroing of the multi-megabyte cache arenas on every
/// simulation after a thread's first one on that machine.  `f` must not
/// re-enter the pool (no nested `with_pooled_core` on the same thread).
pub fn with_pooled_core<R>(
    machine: &Machine,
    ctx: OccupancyContext,
    options: CoreSimOptions,
    f: impl FnOnce(&mut CoreSim) -> R,
) -> R {
    CORE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let idx = match pool.iter().position(|(id, _)| id == &machine.id) {
            Some(i) => {
                pool[i].1.reset(ctx, options);
                i
            }
            None => {
                pool.push((machine.id.clone(), CoreSim::new(machine, ctx, options)));
                pool.len() - 1
            }
        };
        f(&mut pool[idx].1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{NodeSim, SimConfig};
    use clover_machine::{icelake_sp_8360y, sapphire_rapids_8480};

    fn store_spec(elements: u64) -> KernelSpec {
        KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            elements,
            AccessKind::Store,
        )
    }

    #[test]
    fn rank_base_addressing() {
        assert_eq!(RankBase::Shared.base(7), 0);
        assert_eq!(RankBase::Shifted { shift: 40, plus: 1 }.base(0), 1 << 40);
        assert_eq!(RankBase::Shifted { shift: 36, plus: 0 }.base(3), 3 << 36);
    }

    #[test]
    fn spec_sweep_reproduces_the_closure_sweep() {
        let spec = KernelSpec {
            rank_base: RankBase::Shifted { shift: 40, plus: 1 },
            operands: vec![
                SpecOperand {
                    offset: 0,
                    points: vec![(0, 0)],
                    kind: AccessKind::Load,
                },
                SpecOperand {
                    offset: 1 << 30,
                    points: vec![(0, 0)],
                    kind: AccessKind::Store,
                },
            ],
            row_stride: 221,
            i0: 0,
            inner: 216,
            k0: 0,
            rows: 4,
        };
        let sweep = spec.sweep(2);
        assert_eq!(sweep.operands.len(), 2);
        assert_eq!(sweep.operands[0].base, 3 << 40);
        assert_eq!(sweep.operands[1].base, (3 << 40) + (1 << 30));
        assert_eq!(sweep.row_stride, 221);
        assert_eq!(sweep.rows, 4);
        assert_eq!(spec.iterations(), 216 * 4);
    }

    #[test]
    fn memo_hit_returns_the_identical_counters() {
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        let spec = store_spec(2048);
        let ctx = OccupancyContext::compact(&m, 18);
        let options = CoreSimOptions::default();
        let first = memo.counters(&m, ctx, options, &spec, 0);
        let second = memo.counters(&m, ctx, options, &spec, 0);
        assert_eq!(first, second);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(memo.len(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memo_distinguishes_contexts_options_and_kernels() {
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        let options = CoreSimOptions::default();
        let serial = OccupancyContext::serial(&m);
        let loaded = OccupancyContext::compact(&m, m.total_cores());
        let _ = memo.counters(&m, serial, options, &store_spec(512), 0);
        let _ = memo.counters(&m, loaded, options, &store_spec(512), 0);
        let _ = memo.counters(&m, serial, options, &store_spec(513), 0);
        let off = CoreSimOptions {
            speci2m_enabled: false,
            ..Default::default()
        };
        let _ = memo.counters(&m, serial, off, &store_spec(512), 0);
        assert_eq!(memo.len(), 4);
        assert_eq!(memo.stats().misses, 4);
    }

    #[test]
    fn memoized_counters_are_rank_invariant() {
        // The memo shares results across ranks: rank bases are aligned far
        // beyond the set-index range, so simulating as rank 0 or rank 40
        // produces the same counters bit for bit.
        let m = icelake_sp_8360y();
        let spec = store_spec(4096);
        let ctx = OccupancyContext::domain_load(&m, 18, 3);
        let options = CoreSimOptions {
            l3_sharers: 36,
            ..Default::default()
        };
        let a = SimMemo::new().counters(&m, ctx, options, &spec, 0);
        let b = SimMemo::new().counters(&m, ctx, options, &spec, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_core_matches_a_fresh_core_across_machines() {
        let icx = icelake_sp_8360y();
        let spr = sapphire_rapids_8480();
        let spec = store_spec(2048);
        for machine in [&icx, &spr, &icx] {
            let ctx = OccupancyContext::serial(machine);
            let options = CoreSimOptions::default();
            let pooled = with_pooled_core(machine, ctx, options, |core| {
                spec.drive(0, core);
                core.flush()
            });
            let mut fresh: CoreSim = CoreSim::new(machine, ctx, options);
            spec.drive(0, &mut fresh);
            assert_eq!(pooled, fresh.flush(), "machine {}", machine.id);
        }
    }

    #[test]
    fn run_spmd_memo_equals_run_spmd_across_a_curve() {
        // One shared memo across rank counts 1..=40: later points reuse
        // earlier full-domain simulations, and the node reports must stay
        // bit-identical to the unmemoized closure path at every point.
        let m = icelake_sp_8360y();
        let spec = store_spec(1024);
        let memo = SimMemo::new();
        for ranks in [1usize, 5, 17, 18, 19, 20, 36, 37, 40] {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let plain = sim.run_spmd(|rank, core| spec.drive(rank, core));
            let memoized = sim.run_spmd_memo(&spec, &memo);
            assert_eq!(plain.total, memoized.total, "ranks={ranks}");
            assert_eq!(plain.per_rank, memoized.per_rank, "ranks={ranks}");
            assert_eq!(
                plain.cores_per_domain, memoized.cores_per_domain,
                "ranks={ranks}"
            );
        }
        // The (18 cores, 2 domains) level is shared by ranks 19, 20 and 36.
        let stats = SimMemo::stats(&memo);
        assert!(stats.hits >= 2, "expected cross-point reuse: {stats:?}");
    }

    #[test]
    fn memo_never_serves_across_policies() {
        use crate::policy::{NoWriteAllocate, TreePlru};
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        let spec = store_spec(1024);
        let ctx = OccupancyContext::serial(&m);
        let options = CoreSimOptions::default();
        let lru = memo.counters_for::<TrueLru, WriteAllocate>(&m, ctx, options, &spec, 0);
        let nowa = memo.counters_for::<TrueLru, NoWriteAllocate>(&m, ctx, options, &spec, 0);
        let _plru = memo.counters_for::<TreePlru, WriteAllocate>(&m, ctx, options, &spec, 0);
        // Three distinct entries: the policy pair is part of the key.
        assert_eq!(memo.len(), 3);
        assert_eq!(memo.stats().misses, 3);
        // No-write-allocate genuinely changes the counters (no WA reads),
        // so serving it from the write-allocate entry would be wrong.
        assert!(nowa.write_allocate_lines < lru.write_allocate_lines);
        // The untyped default path hits the TrueLru+WriteAllocate entry.
        assert_eq!(memo.counters(&m, ctx, options, &spec, 0), lru);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn differential_replay_matches_from_scratch_across_neighbour_axes() {
        // Neighbour axes: occupancy context, SpecI2M switch, prefetch-off
        // evasion factor.  Every point after the first per (machine,
        // prefetchers, l3_sharers, policies, kernel) replays the leader's
        // trace; counters must equal the from-scratch memo's bit for bit.
        let m = icelake_sp_8360y();
        let diff = SimMemo::new();
        let scratch = SimMemo::without_differential();
        let spec = store_spec(4096);
        let contexts = [
            OccupancyContext::serial(&m),
            OccupancyContext::compact(&m, 7),
            OccupancyContext::domain_load(&m, 18, 2),
            OccupancyContext::domain_load(&m, 18, 4),
        ];
        for ctx in contexts {
            for speci2m_enabled in [true, false] {
                let options = CoreSimOptions {
                    speci2m_enabled,
                    l3_sharers: 36,
                    ..Default::default()
                };
                let a = diff.counters(&m, ctx, options, &spec, 0);
                let b = scratch.counters(&m, ctx, options, &spec, 0);
                assert_eq!(a, b, "ctx={ctx:?} speci2m={speci2m_enabled}");
            }
        }
        // One trace serves all eight neighbour points.
        assert_eq!(diff.diff_len(), 1);
        let dstats = diff.diff_stats();
        assert_eq!((dstats.hits, dstats.misses), (7, 1));
        // The from-scratch memo recorded no traces.
        assert_eq!(scratch.diff_len(), 0);
        // Both memos hold the same eight full-key entries.
        assert_eq!(diff.len(), 8);
        assert_eq!(scratch.len(), 8);
    }

    #[test]
    fn differential_traces_never_mix_across_dynamics_axes() {
        use crate::policy::NoWriteAllocate;
        use crate::prefetch::PrefetcherConfig;
        // Anything that can change the event sequence — kernel, L3
        // sharers, prefetcher switches, policies — gets its own trace key.
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        let ctx = OccupancyContext::serial(&m);
        let options = CoreSimOptions::default();
        let scratch = SimMemo::without_differential();
        let mut expect = Vec::new();

        let _ = memo.counters(&m, ctx, options, &store_spec(1024), 0);
        expect.push((options, store_spec(1024)));
        let _ = memo.counters(&m, ctx, options, &store_spec(1025), 0);
        expect.push((options, store_spec(1025)));
        let sharers = CoreSimOptions {
            l3_sharers: 36,
            ..Default::default()
        };
        let _ = memo.counters(&m, ctx, sharers, &store_spec(1024), 0);
        expect.push((sharers, store_spec(1024)));
        let no_pf = CoreSimOptions {
            prefetchers: PrefetcherConfig::disabled(),
            ..Default::default()
        };
        let _ = memo.counters(&m, ctx, no_pf, &store_spec(1024), 0);
        expect.push((no_pf, store_spec(1024)));
        let nowa =
            memo.counters_for::<TrueLru, NoWriteAllocate>(&m, ctx, options, &store_spec(1024), 0);

        // Five distinct dynamics identities, zero replays.
        assert_eq!(memo.diff_len(), 5);
        assert_eq!(memo.diff_stats().hits, 0);
        // And every result still equals the from-scratch reference.
        for (opts, spec) in expect {
            assert_eq!(
                memo.counters(&m, ctx, opts, &spec, 0),
                scratch.counters(&m, ctx, opts, &spec, 0)
            );
        }
        assert_eq!(
            nowa,
            scratch.counters_for::<TrueLru, NoWriteAllocate>(
                &m,
                ctx,
                options,
                &store_spec(1024),
                0
            )
        );
    }

    #[test]
    fn differential_memo_matches_across_a_rank_curve() {
        // End-to-end through `run_spmd_memo`: a differential memo and a
        // from-scratch memo walk the same rank curve and every node report
        // stays bit-identical, while the differential memo actually
        // replays (diff hits > 0 once several domain-load levels share a
        // trace key).
        let m = icelake_sp_8360y();
        let spec = store_spec(2048);
        let diff = SimMemo::new();
        let scratch = SimMemo::without_differential();
        for ranks in [1usize, 7, 18, 19, 36, 54, 72] {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let a = sim.run_spmd_memo(&spec, &diff);
            let b = sim.run_spmd_memo(&spec, &scratch);
            assert_eq!(a.total, b.total, "ranks={ranks}");
            assert_eq!(a.per_rank, b.per_rank, "ranks={ranks}");
        }
        assert!(
            diff.diff_stats().hits > 0,
            "expected trace replays across the curve: {:?}",
            diff.diff_stats()
        );
    }

    #[test]
    fn memo_respects_config_switches() {
        let m = icelake_sp_8360y();
        let spec = store_spec(2048);
        let memo = SimMemo::new();
        let on = NodeSim::new(SimConfig::new(m.clone(), 36)).run_spmd_memo(&spec, &memo);
        let off = NodeSim::new(SimConfig::new(m.clone(), 36).without_speci2m())
            .run_spmd_memo(&spec, &memo);
        // SpecI2M off must not be served from the SpecI2M-on entry.
        assert!(off.total.itom_lines < 1e-9);
        assert!(on.total.itom_lines > 0.0);
    }
}
