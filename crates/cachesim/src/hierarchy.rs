//! Per-core cache hierarchy simulation with write-allocate evasion.
//!
//! A [`CoreSim`] models one core's private L1/L2 caches plus its share of
//! the socket's L3 cache, a write-coalescing store path with the SpecI2M
//! engine, a non-temporal store path, and the hardware prefetchers.  It
//! produces the memory-controller counters ([`MemCounters`]) for the access
//! stream fed to it.
//!
//! Two entry points exist: the scalar per-access API ([`CoreSim::load`],
//! [`CoreSim::store`], …) and the batched [`CoreSim::drive_run`], which
//! expands a contiguous element run into one hierarchy operation per
//! 64-byte cache line (the granularity at which traffic is decided) while
//! producing bit-identical counters to the scalar path.
//!
//! Probabilistic micro-architectural events (evasion success, speculative
//! reads, partial write-combine flushes) use fractional accounting so the
//! results are deterministic.

use std::marker::PhantomData;

use clover_machine::speci2m::EvasionContext;
use clover_machine::{Machine, WritePolicyKind};

use crate::access::{line_of, Access, AccessKind, AccessRun, ELEM_BYTES, LINE_BYTES};
use crate::cache::{AnyCache, CacheBank, LookupResult, SetAssocCache};
use crate::coalescer::{FinalizedLine, WriteCoalescer};
use crate::counters::MemCounters;
use crate::policy::{
    NoWriteAllocate, NonTemporal, ReplacementPolicy, TrueLru, WriteAllocate, WritePolicy,
};
use crate::prefetch::{PrefetcherConfig, StreamerPrefetcher};

/// Per-domain activity of a compactly pinned job — the statistics that
/// every occupancy-dependent component (evasion context, L3 sharing, the
/// node simulator's representative-core loop) derives its numbers from.
/// Previously each caller re-derived these from the topology on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainOccupancy {
    /// Active cores per ccNUMA domain (compact pinning, domain 0 first).
    pub cores_per_domain: Vec<usize>,
    /// Number of domains with at least one active core (at least 1).
    pub active_domains: usize,
    /// Active cores in the most loaded domain (at least 1).
    pub busiest: usize,
}

impl DomainOccupancy {
    /// Statistics for compact pinning of `total_ranks` ranks on `machine`.
    pub fn compact(machine: &Machine, total_ranks: usize) -> Self {
        let cores_per_domain = machine.topology.active_cores_per_domain(total_ranks);
        let active_domains = cores_per_domain.iter().filter(|&&c| c > 0).count().max(1);
        let busiest = cores_per_domain.iter().copied().max().unwrap_or(1).max(1);
        Self {
            cores_per_domain,
            active_domains,
            busiest,
        }
    }

    /// Number of cores sharing the L3 with a core in a domain that has
    /// `cores_in_domain` active cores: the active cores of the socket under
    /// compact pinning, capped at the hardware sharer count.
    pub fn l3_sharers(machine: &Machine, cores_in_domain: usize) -> usize {
        (cores_in_domain * machine.topology.domains_per_socket())
            .clamp(1, machine.caches.l3_sharers)
    }
}

/// Occupancy of the machine while this core runs: how loaded its ccNUMA
/// domain is and how many domains of the node are populated.  This is what
/// makes SpecI2M "dynamic-adaptive".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyContext {
    /// Bandwidth utilisation (0..=1) of the core's ccNUMA domain.
    pub domain_utilization: f64,
    /// Number of ccNUMA domains with at least one active core.
    pub active_domains: usize,
    /// Total ccNUMA domains in the node.
    pub total_domains: usize,
}

impl OccupancyContext {
    /// Context of a single active core on an otherwise idle node.
    pub fn serial(machine: &Machine) -> Self {
        Self {
            domain_utilization: machine.domain_utilization(1),
            active_domains: 1,
            total_domains: machine.topology.domains.len(),
        }
    }

    /// Context for compact pinning of `total_ranks` ranks, seen from a core
    /// in the most loaded domain.
    pub fn compact(machine: &Machine, total_ranks: usize) -> Self {
        let occ = DomainOccupancy::compact(machine, total_ranks);
        Self {
            domain_utilization: machine.domain_utilization(occ.busiest),
            active_domains: occ.active_domains,
            total_domains: machine.topology.domains.len(),
        }
    }

    /// Context for a core running in a domain with `cores_in_domain` active
    /// cores while `active_domains` domains of the node are populated.
    pub fn domain_load(machine: &Machine, cores_in_domain: usize, active_domains: usize) -> Self {
        Self {
            domain_utilization: machine.domain_utilization(cores_in_domain),
            active_domains: active_domains.max(1),
            total_domains: machine.topology.domains.len(),
        }
    }
}

/// Simulation switches for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSimOptions {
    /// Whether the SpecI2M feature is enabled (MSR bit).
    pub speci2m_enabled: bool,
    /// Hardware prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
    /// Number of cores actively sharing the L3 (determines this core's L3
    /// share).  `1` gives the full L3 to this core.
    pub l3_sharers: usize,
}

impl Default for CoreSimOptions {
    fn default() -> Self {
        Self {
            speci2m_enabled: true,
            prefetchers: PrefetcherConfig::enabled(),
            l3_sharers: 1,
        }
    }
}

/// The per-core L3 share for a sharer count, floored at 64 lines.
pub(crate) fn l3_share_bytes(l3_full_bytes: usize, sharers: usize) -> usize {
    (l3_full_bytes / sharers.max(1)).max(64 * 64)
}

/// One counter-affecting event of a simulation, recorded at the exact
/// sites where [`MemCounters`] fields are mutated.
///
/// The cache *dynamics* of a simulation (which lines hit, miss, evict,
/// prefetch or coalesce) depend only on the machine geometry, the
/// prefetcher configuration, the L3 sharer count, the policies and the
/// kernel — **not** on the occupancy context, the SpecI2M MSR switch or
/// the prefetch-off evasion factor, which scale purely *fractional*
/// accounting terms.  A trace of these ops therefore replays
/// bit-identically under any of those "neighbour" axis values by
/// recomputing only the fractional terms, in the same order the live
/// simulation adds them (float addition order is preserved per field).
/// This is the foundation of [`SimMemo`]'s differential re-simulation.
///
/// [`SimMemo`]: crate::memo::SimMemo
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TraceOp {
    /// A demand-miss memory read (`read_lines += 1`).
    DemandRead,
    /// A prefetch fill (`read_lines += 1; prefetch_lines += 1`).
    PrefetchRead,
    /// One dirty-line write-back (`write_lines += 1`).
    Writeback,
    /// A write-allocate store miss: the five SpecI2M accounting terms,
    /// parameterised by the live stream state the evasion context needs.
    WaStore {
        /// Whether the finalized line was fully covered by stores.
        full: bool,
        /// `FinalizedLine::active_streams` at finalization (raw; the
        /// `.max(1)` floor is applied at replay, exactly as live).
        streams: usize,
        /// `FinalizedLine::streak_estimate` (raw; `.max(1.0)` at replay).
        streak: f64,
    },
    /// A non-temporal store line (`write_lines += 1` plus the full/partial
    /// read term).
    NtLine {
        /// Whether the line was fully covered (partial flush fraction)
        /// or partial (a whole read-modify-write).
        full: bool,
    },
    /// The final write-back accounting (`write_lines += distinct`).
    WritebackBulk {
        /// Distinct dirty lines drained across all levels.
        distinct: u64,
    },
}

/// Cap on recorded ops: a trace past this size stops recording (the memo
/// falls back to plain re-simulation for that dynamics class).  2^20 ops
/// cover every in-tree kernel with room to spare while bounding worst-case
/// memory per class to a few MiB.
pub(crate) const TRACE_OP_CAP: usize = 1 << 20;

/// Opt-in recorder of [`TraceOp`]s attached to a [`PrivateCore`].
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRecorder {
    ops: Vec<TraceOp>,
    overflowed: bool,
}

impl TraceRecorder {
    #[inline]
    fn push(&mut self, op: TraceOp) {
        if self.overflowed {
            return;
        }
        if self.ops.len() >= TRACE_OP_CAP {
            self.overflowed = true;
            self.ops = Vec::new();
            return;
        }
        self.ops.push(op);
    }
}

/// Recompute [`MemCounters`] from a recorded op trace under a (possibly
/// different) neighbour configuration: occupancy context, SpecI2M MSR
/// switch and prefetcher evasion factor.  `speci2m` is the machine's raw
/// parameter block (the MSR switch is applied here, like
/// [`PrivateCore::from_parts`] does).  Every counter field is accumulated
/// by the same sequence of float additions the live simulation performs,
/// so the result is bit-identical — asserted by the equivalence proptests.
pub(crate) fn replay_trace(
    speci2m: &clover_machine::SpecI2MParams,
    ctx: OccupancyContext,
    options: CoreSimOptions,
    ops: &[TraceOp],
) -> MemCounters {
    let speci2m_store = if options.speci2m_enabled {
        speci2m.clone()
    } else {
        speci2m.switched_off()
    };
    let pf_factor = options.prefetchers.evasion_factor();
    let mut c = MemCounters::new();
    for op in ops {
        match *op {
            TraceOp::DemandRead => c.read_lines += 1.0,
            TraceOp::PrefetchRead => {
                c.read_lines += 1.0;
                c.prefetch_lines += 1.0;
            }
            TraceOp::Writeback => c.write_lines += 1.0,
            TraceOp::WaStore {
                full,
                streams,
                streak,
            } => {
                let ectx = EvasionContext {
                    domain_utilization: ctx.domain_utilization,
                    active_domains: ctx.active_domains,
                    total_domains: ctx.total_domains,
                    store_streams: streams.max(1),
                    streak_lines: streak.max(1.0),
                };
                let (evaded, spec_read) = if full {
                    let e = speci2m_store.evasion_fraction(&ectx) * pf_factor;
                    let s = speci2m_store.speculative_read_fraction(&ectx);
                    (e.clamp(0.0, 1.0), s)
                } else {
                    (0.0, speci2m_store.speculative_read_fraction(&ectx))
                };
                c.itom_lines += evaded;
                c.write_allocate_lines += 1.0 - evaded;
                c.read_lines += 1.0 - evaded;
                c.read_lines += spec_read;
                c.speculative_read_lines += spec_read;
            }
            TraceOp::NtLine { full } => {
                c.write_lines += 1.0;
                if full {
                    // The NT partial-flush model deliberately ignores the
                    // MSR switch (matching `handle_nt_line`, which reads
                    // the raw parameter block).
                    let frac = speci2m.nt_partial_flush_fraction(
                        ctx.domain_utilization,
                        ctx.active_domains,
                        ctx.total_domains,
                    );
                    c.read_lines += frac;
                } else {
                    c.read_lines += 1.0;
                }
            }
            TraceOp::WritebackBulk { distinct } => c.write_lines += distinct as f64,
        }
    }
    c
}

/// The private half of one core's hierarchy: L1 + L2 + the store paths
/// (coalescers, SpecI2M model, streamer prefetcher) and this core's
/// traffic counters — everything *except* the last level.
///
/// Every driving method takes the last-level bank as a parameter: the solo
/// [`CoreSim`] passes its own per-core L3 share, the co-run engine passes
/// the tenant-shared LLC, and the per-level [`LevelPolicySim`] passes an
/// [`AnyCache`].  Generic over the bank type `B` of the private levels and
/// the store-miss policy `W`; for the defaults the monomorphised code is
/// the pre-split `CoreSim` instruction for instruction.
#[derive(Debug, Clone)]
pub struct PrivateCore<B: CacheBank = SetAssocCache<TrueLru>, W: WritePolicy = WriteAllocate> {
    l1: B,
    l2: B,
    coalescer: WriteCoalescer,
    nt_coalescer: WriteCoalescer,
    streamer: StreamerPrefetcher,
    options: CoreSimOptions,
    ctx: OccupancyContext,
    speci2m: clover_machine::SpecI2MParams,
    /// `speci2m` with the MSR switch applied — precomputed so the store
    /// path does not clone the parameter block per finalized line.
    speci2m_store: clover_machine::SpecI2MParams,
    counters: MemCounters,
    /// Differential-re-simulation recorder; `None` (the default) costs one
    /// predictable branch per counter-site event.
    trace: Option<TraceRecorder>,
    _write: PhantomData<W>,
}

impl<R: ReplacementPolicy, W: WritePolicy, const SIMD: bool>
    PrivateCore<SetAssocCache<R, SIMD>, W>
{
    /// Build the private half for `machine` with policy-`R` L1/L2 banks.
    pub fn new(machine: &Machine, ctx: OccupancyContext, options: CoreSimOptions) -> Self {
        let caches = &machine.caches;
        Self::from_parts(
            machine,
            ctx,
            options,
            SetAssocCache::new(caches.l1.capacity_bytes, caches.l1.associativity),
            SetAssocCache::new(caches.l2.capacity_bytes, caches.l2.associativity),
        )
    }
}

impl<B: CacheBank, W: WritePolicy> PrivateCore<B, W> {
    /// Build the private half from already-constructed L1/L2 banks (the
    /// caller chooses their policies and geometry).
    pub fn from_parts(
        machine: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
        l1: B,
        l2: B,
    ) -> Self {
        let speci2m = machine.speci2m.clone();
        let speci2m_store = if options.speci2m_enabled {
            speci2m.clone()
        } else {
            speci2m.switched_off()
        };
        Self {
            l1,
            l2,
            coalescer: WriteCoalescer::default(),
            nt_coalescer: WriteCoalescer::default(),
            streamer: StreamerPrefetcher::new(options.prefetchers.streamer_distance),
            options,
            ctx,
            speci2m,
            speci2m_store,
            counters: MemCounters::new(),
            trace: None,
            _write: PhantomData,
        }
    }

    /// Re-arm the private half for a fresh measurement under a (possibly
    /// different) occupancy and option set, reusing the bank allocations.
    pub fn reset(&mut self, ctx: OccupancyContext, options: CoreSimOptions) {
        self.l1.reset();
        self.l2.reset();
        self.coalescer.reset();
        self.nt_coalescer.reset();
        self.streamer.reset(options.prefetchers.streamer_distance);
        self.speci2m_store = if options.speci2m_enabled {
            self.speci2m.clone()
        } else {
            self.speci2m.switched_off()
        };
        self.options = options;
        self.ctx = ctx;
        self.counters = MemCounters::new();
        self.trace = None;
    }

    /// Start recording counter-site events for differential re-simulation.
    pub(crate) fn start_trace(&mut self) {
        self.trace = Some(TraceRecorder::default());
    }

    /// Stop recording and return the trace, or `None` if recording was
    /// never started or the trace overflowed [`TRACE_OP_CAP`].
    pub(crate) fn take_trace(&mut self) -> Option<Vec<TraceOp>> {
        self.trace
            .take()
            .and_then(|t| (!t.overflowed).then_some(t.ops))
    }

    /// Record one counter-site event if a trace is active.
    #[inline]
    fn record(&mut self, op: TraceOp) {
        if let Some(t) = self.trace.as_mut() {
            t.push(op);
        }
    }

    /// The occupancy context this core was configured with.
    pub fn context(&self) -> OccupancyContext {
        self.ctx
    }

    /// Current counter snapshot (without flushing pending state).
    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// `(hits, misses)` of the private L1 and L2 banks.
    pub fn upper_cache_stats(&self) -> [(u64, u64); 2] {
        [
            (self.l1.hits(), self.l1.misses()),
            (self.l2.hits(), self.l2.misses()),
        ]
    }

    /// Feed a single access against the given last-level bank.
    pub fn access<L: CacheBank>(&mut self, llc: &mut L, access: Access) {
        match access.kind {
            AccessKind::Load => {
                for line in access.lines() {
                    self.load_line(llc, line);
                }
            }
            AccessKind::Store => self.store_span(llc, access.addr, access.bytes as u64, false),
            AccessKind::StoreNT => self.store_span(llc, access.addr, access.bytes as u64, true),
        }
    }

    /// Feed a load of `bytes` bytes at `addr`.
    pub fn load<L: CacheBank>(&mut self, llc: &mut L, addr: u64, bytes: u32) {
        self.access(
            llc,
            Access {
                addr,
                bytes,
                kind: AccessKind::Load,
            },
        );
    }

    /// Feed a store of `bytes` bytes at `addr`.
    pub fn store<L: CacheBank>(&mut self, llc: &mut L, addr: u64, bytes: u32) {
        self.access(
            llc,
            Access {
                addr,
                bytes,
                kind: AccessKind::Store,
            },
        );
    }

    /// Feed a non-temporal store of `bytes` bytes at `addr`.
    pub fn store_nt<L: CacheBank>(&mut self, llc: &mut L, addr: u64, bytes: u32) {
        self.access(
            llc,
            Access {
                addr,
                bytes,
                kind: AccessKind::StoreNT,
            },
        );
    }

    /// Drive a contiguous run of 8-byte elements through the hierarchy at
    /// cache-line granularity (see [`CoreSim::drive_run`]).
    pub fn drive_run<L: CacheBank>(&mut self, llc: &mut L, run: AccessRun) {
        if run.elements == 0 {
            return;
        }
        match run.kind {
            AccessKind::Load => self.load_run(llc, run.base, run.bytes()),
            AccessKind::Store => self.store_span(llc, run.base, run.bytes(), false),
            AccessKind::StoreNT => self.store_span(llc, run.base, run.bytes(), true),
        }
    }

    /// Batched load path: touch each line once and account the remaining
    /// element touches as the guaranteed L1 hits they are in the scalar
    /// path (consecutive touches of a just-accessed line cannot miss — no
    /// fill happens in between).
    fn load_run<L: CacheBank>(&mut self, llc: &mut L, base: u64, bytes: u64) {
        let first = line_of(base);
        let last = line_of(base + bytes - 1);
        for line in first..=last {
            let seg_start = (line * LINE_BYTES).max(base);
            let seg_end = ((line + 1) * LINE_BYTES).min(base + bytes);
            // Elements overlapping [seg_start, seg_end): the scalar path
            // touches this line once per overlapping element.
            let elem_first = (seg_start - base) / ELEM_BYTES;
            let elem_last = (seg_end - 1 - base) / ELEM_BYTES;
            let repeats = elem_last - elem_first;
            self.load_line(llc, line);
            if repeats > 0 && !self.l1.touch_repeat(line, repeats) {
                debug_assert!(false, "a just-loaded line must be L1-resident");
                for _ in 0..repeats {
                    self.load_line(llc, line);
                }
            }
        }
    }

    /// Allocation-free store path shared by the scalar API and the batched
    /// run driver: split the span into per-line segments and consume each
    /// finalized line as the coalescer produces it.
    fn store_span<L: CacheBank>(&mut self, llc: &mut L, base: u64, bytes: u64, nt: bool) {
        let mut addr = base;
        let mut remaining = bytes;
        while remaining > 0 {
            let line = line_of(addr);
            let offset = addr % LINE_BYTES;
            let in_line = (LINE_BYTES - offset).min(remaining);
            self.store_line_segment(llc, line, offset, in_line, nt);
            addr += in_line;
            remaining -= in_line;
        }
    }

    /// Feed one single-line store segment to the matching coalescer and
    /// handle the at most one line it finalizes.
    pub(crate) fn store_line_segment<L: CacheBank>(
        &mut self,
        llc: &mut L,
        line: u64,
        offset: u64,
        len: u64,
        nt: bool,
    ) {
        if nt {
            if let Some(ev) = self.nt_coalescer.store_segment(line, offset, len) {
                self.handle_nt_line(llc, ev);
            }
        } else if let Some(ev) = self.coalescer.store_segment(line, offset, len) {
            W::handle_store_line(self, llc, ev);
        }
    }

    /// True if `line` is resident in the L1 (no LRU or counter effect).
    pub(crate) fn l1_contains(&self, line: u64) -> bool {
        self.l1.contains(line)
    }

    /// Account `n` guaranteed L1 hits on a resident line (see
    /// [`SetAssocCache::touch_repeat`]); `false` if the line is not
    /// resident and nothing was counted.
    pub(crate) fn l1_touch_repeat(&mut self, line: u64, n: u64) -> bool {
        self.l1.touch_repeat(line, n)
    }

    /// True if the (normal or NT) write coalescer has an open stream on
    /// `line`, i.e. a further store segment to it is a pure coverage merge.
    pub(crate) fn coalescer_at_line(&self, line: u64, nt: bool) -> bool {
        if nt {
            self.nt_coalescer.stream_at_line(line)
        } else {
            self.coalescer.stream_at_line(line)
        }
    }

    /// First half of a flush: finalize pending store streams (which may
    /// still generate traffic against `llc`) and drain the private banks,
    /// returning their dirty lines.  The caller drains the last level —
    /// once per *core* on the solo path, once per *node* on a co-run —
    /// and completes the accounting with [`account_writebacks`].
    ///
    /// [`account_writebacks`]: Self::account_writebacks
    pub(crate) fn flush_streams_and_upper<L: CacheBank>(
        &mut self,
        llc: &mut L,
    ) -> (Vec<u64>, Vec<u64>) {
        let events = self.coalescer.flush();
        for ev in events {
            W::handle_store_line(self, llc, ev);
        }
        let nt_events = self.nt_coalescer.flush();
        for ev in nt_events {
            self.handle_nt_line(llc, ev);
        }
        (self.l1.flush_dirty(), self.l2.flush_dirty())
    }

    /// Second half of a flush: write back every dirty line exactly once
    /// (inclusive hierarchy).  Each level's own list is duplicate-free;
    /// the sort-based dedup is only needed when a line could be dirty at
    /// several levels at once, i.e. when more than one level has dirty
    /// lines at all — streaming kernels keep the dirty bit at L3 only and
    /// skip it.  Returns the final counters.
    pub(crate) fn account_writebacks(
        &mut self,
        l1_dirty: Vec<u64>,
        l2_dirty: Vec<u64>,
        l3_dirty: Vec<u64>,
    ) -> MemCounters {
        let levels_with_dirty = [&l1_dirty, &l2_dirty, &l3_dirty]
            .iter()
            .filter(|d| !d.is_empty())
            .count();
        let distinct = if levels_with_dirty > 1 {
            let mut dirty = l1_dirty;
            dirty.extend(l2_dirty);
            dirty.extend(l3_dirty);
            dirty.sort_unstable();
            dirty.dedup();
            dirty.len()
        } else {
            l1_dirty.len() + l2_dirty.len() + l3_dirty.len()
        };
        self.counters.write_lines += distinct as f64;
        self.record(TraceOp::WritebackBulk {
            distinct: distinct as u64,
        });
        self.counters
    }

    fn hierarchy_hit<L: CacheBank>(&mut self, llc: &mut L, line: u64, write: bool) -> bool {
        if self.l1.touch(line, write) == LookupResult::Hit {
            return true;
        }
        if self.l2.touch(line, write) == LookupResult::Hit {
            // Promote to L1 (clean copy; the dirty bit stays in L2).
            self.fill_upper(llc, line, false, 1);
            return true;
        }
        if llc.touch(line, write) == LookupResult::Hit {
            self.fill_upper(llc, line, false, 2);
            return true;
        }
        false
    }

    /// Land a dirty line evicted from an upper level in the last level
    /// (present or not), counting the write-back its own victim may cause.
    /// One combined probe instead of a touch followed by a fill.
    fn sink_dirty_into_llc<L: CacheBank>(&mut self, llc: &mut L, line: u64) {
        let (_, evicted) = llc.probe_fill(line, true);
        if let Some(ev3) = evicted {
            if ev3.dirty {
                self.counters.write_lines += 1.0;
                self.record(TraceOp::Writeback);
            }
        }
    }

    /// Fill a line into the upper levels (L1 and optionally L2), cascading
    /// dirty evictions downwards without generating memory traffic.
    fn fill_upper<L: CacheBank>(&mut self, llc: &mut L, line: u64, dirty: bool, levels: usize) {
        if levels >= 2 {
            if let Some(ev) = self.l2.fill(line, dirty) {
                if ev.dirty {
                    // Dirty eviction from L2 lands in the LLC (present or
                    // not).
                    self.sink_dirty_into_llc(llc, ev.line);
                }
            }
        }
        if let Some(ev) = self.l1.fill(line, dirty) {
            if ev.dirty {
                let (_, evicted) = self.l2.probe_fill(ev.line, true);
                if let Some(ev2) = evicted {
                    if ev2.dirty {
                        self.sink_dirty_into_llc(llc, ev2.line);
                    }
                }
            }
        }
    }

    /// Fill a line into the whole hierarchy after a memory read or an ITOM
    /// claim.  The dirty bit is kept at the last level only so the eventual
    /// write-back is counted exactly once.
    fn fill_all<L: CacheBank>(&mut self, llc: &mut L, line: u64, dirty: bool) {
        if let Some(ev) = llc.fill(line, dirty) {
            if ev.dirty {
                self.counters.write_lines += 1.0;
                self.record(TraceOp::Writeback);
            }
        }
        self.fill_upper(llc, line, false, 2);
    }

    /// Fill a prefetched line into the last level only.
    fn fill_prefetch<L: CacheBank>(&mut self, llc: &mut L, line: u64) {
        if llc.contains(line) {
            return;
        }
        self.counters.read_lines += 1.0;
        self.counters.prefetch_lines += 1.0;
        self.record(TraceOp::PrefetchRead);
        if let Some(ev) = llc.fill(line, false) {
            if ev.dirty {
                self.counters.write_lines += 1.0;
                self.record(TraceOp::Writeback);
            }
        }
    }

    fn load_line<L: CacheBank>(&mut self, llc: &mut L, line: u64) {
        if self.hierarchy_hit(llc, line, false) {
            return;
        }
        // Demand miss: read from memory.
        self.counters.read_lines += 1.0;
        self.record(TraceOp::DemandRead);
        self.fill_all(llc, line, false);
        // Prefetchers react to demand misses.
        if self.options.prefetchers.adjacent_line {
            let buddy = line ^ 1;
            self.fill_prefetch(llc, buddy);
        }
        if self.options.prefetchers.streamer {
            if let Some(pf_lines) = self.streamer.on_demand_miss(line) {
                for pf in pf_lines {
                    self.fill_prefetch(llc, pf);
                }
            }
        }
    }

    fn evasion_context(&self, ev: &FinalizedLine) -> EvasionContext {
        EvasionContext {
            domain_utilization: self.ctx.domain_utilization,
            active_domains: self.ctx.active_domains,
            total_domains: self.ctx.total_domains,
            store_streams: ev.active_streams.max(1),
            streak_lines: ev.streak_estimate.max(1.0),
        }
    }

    fn handle_nt_line<L: CacheBank>(&mut self, llc: &mut L, ev: FinalizedLine) {
        // NT stores bypass the hierarchy; stale copies must be invalidated.
        self.l1.invalidate(ev.line);
        self.l2.invalidate(ev.line);
        llc.invalidate(ev.line);
        self.counters.write_lines += 1.0;
        self.record(TraceOp::NtLine { full: ev.full });
        if ev.full {
            // Under heavy load a fraction of write-combine buffers is
            // flushed early, causing a read-modify-write.
            let frac = self.speci2m.nt_partial_flush_fraction(
                self.ctx.domain_utilization,
                self.ctx.active_domains,
                self.ctx.total_domains,
            );
            self.counters.read_lines += frac;
        } else {
            self.counters.read_lines += 1.0;
        }
    }
}

/// Cache hierarchy + store path of a single core.
///
/// Generic over the replacement policy `R` of all three levels and the
/// store-miss policy `W`; both default to the paper's configuration
/// (true-LRU, write-allocate), for which the monomorphised code is
/// instruction-identical to the pre-policy-space simulator.
///
/// Since the private/shared split this is a thin facade: the L1/L2 banks,
/// store paths and counters live in a [`PrivateCore`] and the per-core L3
/// share is the last-level bank it is driven against — the same composition
/// the co-run engine builds with a *tenant-shared* LLC instead.
#[derive(Debug, Clone)]
pub struct CoreSim<
    R: ReplacementPolicy = TrueLru,
    W: WritePolicy = WriteAllocate,
    const SIMD: bool = true,
> {
    private: PrivateCore<SetAssocCache<R, SIMD>, W>,
    l3: SetAssocCache<R, SIMD>,
    /// Full (unshared) L3 capacity, kept so [`reset`](Self::reset) can
    /// re-derive the per-core share for a different sharer count.
    l3_full_bytes: usize,
    l3_ways: usize,
}

impl<R: ReplacementPolicy, W: WritePolicy, const SIMD: bool> CoreSim<R, W, SIMD> {
    /// Build a core simulator for `machine` under the given occupancy and
    /// options.
    pub fn new(machine: &Machine, ctx: OccupancyContext, options: CoreSimOptions) -> Self {
        let caches = &machine.caches;
        let l3_share = l3_share_bytes(caches.l3.capacity_bytes, options.l3_sharers);
        Self {
            private: PrivateCore::new(machine, ctx, options),
            l3: SetAssocCache::new(l3_share, caches.l3.associativity),
            l3_full_bytes: caches.l3.capacity_bytes,
            l3_ways: caches.l3.associativity,
        }
    }

    /// Re-arm the simulator for a fresh measurement under a (possibly
    /// different) occupancy and option set, reusing the cache arena
    /// allocations.  Afterwards the state is indistinguishable from
    /// `CoreSim::new` on the same machine — only cheaper: the L1/L2 arenas
    /// are always reused and the L3 arena whenever the sharer count implies
    /// the same geometry.
    pub fn reset(&mut self, ctx: OccupancyContext, options: CoreSimOptions) {
        let l3_share = l3_share_bytes(self.l3_full_bytes, options.l3_sharers);
        if self.l3.matches_geometry(l3_share, self.l3_ways) {
            self.l3.reset();
        } else {
            self.l3 = SetAssocCache::new(l3_share, self.l3_ways);
        }
        self.private.reset(ctx, options);
    }

    /// The occupancy context this core was configured with.
    pub fn context(&self) -> OccupancyContext {
        self.private.context()
    }

    /// Current counter snapshot (without flushing pending state).
    pub fn counters(&self) -> MemCounters {
        self.private.counters()
    }

    /// Per-level `(hits, misses)` of the L1, L2 and L3 caches — exposed so
    /// the scalar/batched equivalence tests can assert that the fast path
    /// reproduces not just the memory counters but the full cache
    /// behaviour.
    pub fn cache_stats(&self) -> [(u64, u64); 3] {
        let [l1, l2] = self.private.upper_cache_stats();
        [l1, l2, (self.l3.hits(), self.l3.misses())]
    }

    /// Feed a single access.
    pub fn access(&mut self, access: Access) {
        self.private.access(&mut self.l3, access);
    }

    /// Feed a load of `bytes` bytes at `addr`.
    pub fn load(&mut self, addr: u64, bytes: u32) {
        self.private.load(&mut self.l3, addr, bytes);
    }

    /// Feed a store of `bytes` bytes at `addr`.
    pub fn store(&mut self, addr: u64, bytes: u32) {
        self.private.store(&mut self.l3, addr, bytes);
    }

    /// Feed a non-temporal store of `bytes` bytes at `addr`.
    pub fn store_nt(&mut self, addr: u64, bytes: u32) {
        self.private.store_nt(&mut self.l3, addr, bytes);
    }

    /// Drive a contiguous run of 8-byte elements through the hierarchy at
    /// cache-line granularity: one hierarchy touch per 64-byte line and one
    /// coalescer transition per line instead of eight scalar calls, with
    /// partially covered head/tail lines handled exactly.  Produces
    /// bit-identical [`MemCounters`] and per-level hit/miss counts to
    /// feeding the same elements one by one through [`load`]/[`store`]/
    /// [`store_nt`].
    ///
    /// [`load`]: Self::load
    /// [`store`]: Self::store
    /// [`store_nt`]: Self::store_nt
    pub fn drive_run(&mut self, run: AccessRun) {
        self.private.drive_run(&mut self.l3, run);
    }

    /// Feed one single-line store segment to the matching coalescer and
    /// handle the at most one line it finalizes.
    pub(crate) fn store_line_segment(&mut self, line: u64, offset: u64, len: u64, nt: bool) {
        self.private
            .store_line_segment(&mut self.l3, line, offset, len, nt);
    }

    /// True if `line` is resident in the L1 (no LRU or counter effect).
    pub(crate) fn l1_contains(&self, line: u64) -> bool {
        self.private.l1_contains(line)
    }

    /// Account `n` guaranteed L1 hits on a resident line (see
    /// [`SetAssocCache::touch_repeat`]); `false` if the line is not
    /// resident and nothing was counted.
    pub(crate) fn l1_touch_repeat(&mut self, line: u64, n: u64) -> bool {
        self.private.l1_touch_repeat(line, n)
    }

    /// True if the (normal or NT) write coalescer has an open stream on
    /// `line`, i.e. a further store segment to it is a pure coverage merge.
    pub(crate) fn coalescer_at_line(&self, line: u64, nt: bool) -> bool {
        self.private.coalescer_at_line(line, nt)
    }

    /// Finalize pending store streams and flush dirty cache lines to memory.
    /// Must be called at the end of a measurement region; returns the final
    /// counters.
    pub fn flush(&mut self) -> MemCounters {
        let (l1_dirty, l2_dirty) = self.private.flush_streams_and_upper(&mut self.l3);
        let l3_dirty = self.l3.flush_dirty();
        self.private
            .account_writebacks(l1_dirty, l2_dirty, l3_dirty)
    }

    /// Start recording counter-site events for differential re-simulation
    /// (see [`TraceOp`]).
    pub(crate) fn start_trace(&mut self) {
        self.private.start_trace();
    }

    /// Stop recording and return the trace, or `None` if recording was not
    /// active or the trace overflowed.
    pub(crate) fn take_trace(&mut self) -> Option<Vec<TraceOp>> {
        self.private.take_trace()
    }
}

/// A hierarchy whose replacement policy is chosen *per level* from the
/// machine model's [`CacheSpec::replacement`] fields.
///
/// `CoreSim<R, W>` applies one policy hierarchy-wide because `R` is a
/// single type parameter; machines like the CVA6 preset specify different
/// policies per level (random-evict L1/L2 under a PLRU last level), which
/// the simulator silently ignored until this type.  Built from
/// [`AnyCache`] banks, it pays one branch per cache operation and is only
/// used when the per-level fields actually differ — for uniform machines
/// it produces bit-identical counters to the generic `CoreSim` (asserted
/// in tests).
///
/// [`CacheSpec::replacement`]: clover_machine::CacheSpec
#[derive(Debug, Clone)]
pub struct LevelPolicySim<W: WritePolicy = WriteAllocate> {
    private: PrivateCore<AnyCache, W>,
    llc: AnyCache,
}

impl<W: WritePolicy> LevelPolicySim<W> {
    /// Build a per-level-policy simulator for `machine`, honouring each
    /// level's `CacheSpec::replacement` field.
    pub fn new(machine: &Machine, ctx: OccupancyContext, options: CoreSimOptions) -> Self {
        let caches = &machine.caches;
        let l3_share = l3_share_bytes(caches.l3.capacity_bytes, options.l3_sharers);
        let l1 = AnyCache::for_kind(
            caches.l1.replacement,
            caches.l1.capacity_bytes,
            caches.l1.associativity,
        );
        let l2 = AnyCache::for_kind(
            caches.l2.replacement,
            caches.l2.capacity_bytes,
            caches.l2.associativity,
        );
        let llc = AnyCache::for_kind(caches.l3.replacement, l3_share, caches.l3.associativity);
        Self {
            private: PrivateCore::from_parts(machine, ctx, options, l1, l2),
            llc,
        }
    }

    /// The replacement policy each level was constructed with
    /// (L1, L2, L3).
    pub fn level_policies(&self) -> [clover_machine::ReplacementPolicyKind; 3] {
        let [l1, l2] = self.private.level_kinds();
        [l1, l2, self.llc.kind()]
    }

    /// Current counter snapshot (without flushing pending state).
    pub fn counters(&self) -> MemCounters {
        self.private.counters()
    }

    /// Per-level `(hits, misses)` of the three levels.
    pub fn cache_stats(&self) -> [(u64, u64); 3] {
        let [l1, l2] = self.private.upper_cache_stats();
        [l1, l2, (self.llc.hits(), self.llc.misses())]
    }

    /// Feed a load of `bytes` bytes at `addr`.
    pub fn load(&mut self, addr: u64, bytes: u32) {
        self.private.load(&mut self.llc, addr, bytes);
    }

    /// Feed a store of `bytes` bytes at `addr`.
    pub fn store(&mut self, addr: u64, bytes: u32) {
        self.private.store(&mut self.llc, addr, bytes);
    }

    /// Feed a non-temporal store of `bytes` bytes at `addr`.
    pub fn store_nt(&mut self, addr: u64, bytes: u32) {
        self.private.store_nt(&mut self.llc, addr, bytes);
    }

    /// Drive a contiguous element run (see [`CoreSim::drive_run`]).
    pub fn drive_run(&mut self, run: AccessRun) {
        self.private.drive_run(&mut self.llc, run);
    }

    /// Finalize pending store streams and flush dirty cache lines to
    /// memory; returns the final counters.
    pub fn flush(&mut self) -> MemCounters {
        let (l1_dirty, l2_dirty) = self.private.flush_streams_and_upper(&mut self.llc);
        let l3_dirty = self.llc.flush_dirty();
        self.private
            .account_writebacks(l1_dirty, l2_dirty, l3_dirty)
    }
}

impl<W: WritePolicy> PrivateCore<AnyCache, W> {
    /// The policy kinds of the private banks (L1, L2).
    fn level_kinds(&self) -> [clover_machine::ReplacementPolicyKind; 2] {
        [self.l1.kind(), self.l2.kind()]
    }
}

impl WritePolicy for WriteAllocate {
    const KIND: WritePolicyKind = WritePolicyKind::Allocate;

    /// The paper machines' store-miss path: a write-allocate read unless
    /// SpecI2M claims the line without one (ITOM).
    fn handle_store_line<B: CacheBank, L: CacheBank>(
        core: &mut PrivateCore<B, Self>,
        llc: &mut L,
        ev: FinalizedLine,
    ) {
        if core.hierarchy_hit(llc, ev.line, true) {
            // Store hit: no memory traffic now; the dirty line is written
            // back on eviction.
            return;
        }
        let ectx = core.evasion_context(&ev);
        let params = &core.speci2m_store;
        let pf_factor = core.options.prefetchers.evasion_factor();
        let (evaded, spec_read) = if ev.full {
            let e = params.evasion_fraction(&ectx) * pf_factor;
            let s = params.speculative_read_fraction(&ectx);
            (e.clamp(0.0, 1.0), s)
        } else {
            // Partially written lines can never be claimed without a read;
            // under load they still trigger speculative activity.
            (0.0, params.speculative_read_fraction(&ectx))
        };
        core.counters.itom_lines += evaded;
        core.counters.write_allocate_lines += 1.0 - evaded;
        core.counters.read_lines += 1.0 - evaded;
        core.counters.read_lines += spec_read;
        core.counters.speculative_read_lines += spec_read;
        core.record(TraceOp::WaStore {
            full: ev.full,
            streams: ev.active_streams,
            streak: ev.streak_estimate,
        });
        // The line now lives dirty in the hierarchy either way.
        core.fill_all(llc, ev.line, true);
    }
}

impl WritePolicy for NoWriteAllocate {
    const KIND: WritePolicyKind = WritePolicyKind::NoAllocate;

    /// No-write-allocate: a store miss writes the line through to memory
    /// without claiming it in the hierarchy — no read-for-ownership, no
    /// fill, no SpecI2M involvement.  Store hits stay write-back.
    fn handle_store_line<B: CacheBank, L: CacheBank>(
        core: &mut PrivateCore<B, Self>,
        llc: &mut L,
        ev: FinalizedLine,
    ) {
        if core.hierarchy_hit(llc, ev.line, true) {
            return;
        }
        core.counters.write_lines += 1.0;
        core.record(TraceOp::Writeback);
    }
}

impl WritePolicy for NonTemporal {
    const KIND: WritePolicyKind = WritePolicyKind::NonTemporal;

    /// Every regular store behaves like a non-temporal streaming store:
    /// the coalesced line bypasses the hierarchy entirely.
    fn handle_store_line<B: CacheBank, L: CacheBank>(
        core: &mut PrivateCore<B, Self>,
        llc: &mut L,
        ev: FinalizedLine,
    ) {
        core.handle_nt_line(llc, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn serial_core(machine: &Machine) -> CoreSim {
        CoreSim::new(
            machine,
            OccupancyContext::serial(machine),
            CoreSimOptions::default(),
        )
    }

    fn loaded_core(machine: &Machine) -> CoreSim {
        // Full node: every domain saturated.
        let ctx = OccupancyContext::compact(machine, machine.total_cores());
        CoreSim::new(
            machine,
            ctx,
            CoreSimOptions {
                l3_sharers: 36,
                ..Default::default()
            },
        )
    }

    /// Stream `n` doubles: load from `src`, store to `dst`.
    fn copy_kernel(core: &mut CoreSim, src: u64, dst: u64, n: u64, nt: bool) {
        for i in 0..n {
            core.load(src + 8 * i, 8);
            if nt {
                core.store_nt(dst + 8 * i, 8);
            } else {
                core.store(dst + 8 * i, 8);
            }
        }
    }

    #[test]
    fn pure_load_sweep_reads_each_line_once() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        let n = 8 * 1024u64; // 64 KiB of doubles = 1024 lines
        for i in 0..n {
            core.load(i * 8, 8);
        }
        let c = core.flush();
        // Prefetchers may overfetch a few lines past the end, but the order
        // of magnitude must be exactly one read per line and no writes.
        assert!(c.read_lines >= 1024.0);
        assert!(c.read_lines <= 1100.0, "read lines = {}", c.read_lines);
        assert_eq!(c.write_lines, 0.0);
    }

    #[test]
    fn serial_copy_has_write_allocates() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        let n = 8 * 4096u64;
        copy_kernel(&mut core, 0, 1 << 30, n, false);
        let c = core.flush();
        let lines = (n / 8) as f64;
        // Serial: SpecI2M inactive → every store line needs a write-allocate.
        // Read = source + WA ≈ 2 lines/iteration-line, write = 1.
        assert!(
            c.write_allocate_lines > 0.95 * lines,
            "WA = {}",
            c.write_allocate_lines
        );
        assert!(
            (c.read_lines / lines - 2.0).abs() < 0.15,
            "reads/line = {}",
            c.read_lines / lines
        );
        assert!((c.write_lines / lines - 1.0).abs() < 0.05);
        assert!(c.itom_lines < 0.05 * lines);
    }

    #[test]
    fn loaded_copy_evades_write_allocates() {
        let m = icelake_sp_8360y();
        let mut core = loaded_core(&m);
        let n = 8 * 4096u64;
        copy_kernel(&mut core, 0, 1 << 30, n, false);
        let c = core.flush();
        let lines = (n / 8) as f64;
        // Under full-node load SpecI2M claims most store lines via ITOM.
        assert!(
            c.itom_lines > 0.6 * lines,
            "itom = {} of {}",
            c.itom_lines,
            lines
        );
        assert!(c.read_lines / lines < 1.5);
        // The read/write ratio approaches 1 (paper Fig. 6 / Fig. 8).
        assert!(c.read_write_ratio() < 1.5);
    }

    #[test]
    fn speci2m_disabled_restores_write_allocates() {
        let m = icelake_sp_8360y();
        let ctx = OccupancyContext::compact(&m, m.total_cores());
        let mut core = CoreSim::new(
            &m,
            ctx,
            CoreSimOptions {
                speci2m_enabled: false,
                l3_sharers: 36,
                ..Default::default()
            },
        );
        let n = 8 * 4096u64;
        copy_kernel(&mut core, 0, 1 << 30, n, false);
        let c = core.flush();
        let lines = (n / 8) as f64;
        assert!(c.itom_lines < 1e-9);
        assert!(
            c.read_lines / lines > 1.9,
            "without SpecI2M every store needs a WA"
        );
    }

    #[test]
    fn nt_stores_avoid_write_allocates_when_serial() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        let n = 8 * 4096u64;
        copy_kernel(&mut core, 0, 1 << 30, n, true);
        let c = core.flush();
        let lines = (n / 8) as f64;
        // NT stores: read only the source, write the destination once.
        assert!(
            (c.read_lines / lines - 1.0).abs() < 0.1,
            "reads/line = {}",
            c.read_lines / lines
        );
        assert!((c.write_lines / lines - 1.0).abs() < 0.05);
        assert_eq!(c.write_allocate_lines, 0.0);
    }

    #[test]
    fn nt_stores_degrade_slightly_under_full_node_load() {
        let m = icelake_sp_8360y();
        let mut serial = serial_core(&m);
        let mut loaded = loaded_core(&m);
        let n = 8 * 4096u64;
        copy_kernel(&mut serial, 0, 1 << 30, n, true);
        copy_kernel(&mut loaded, 0, 1 << 30, n, true);
        let cs = serial.flush();
        let cl = loaded.flush();
        // Store ratio (traffic per byte written): rises from ~1.0 towards
        // ~1.16 on the full node (Fig. 5 NT curves).
        let extra_serial = cs.read_lines / cs.write_lines;
        let extra_loaded = cl.read_lines / cl.write_lines;
        assert!(extra_loaded > extra_serial);
        assert!(extra_loaded - 1.0 < 0.4);
    }

    #[test]
    fn short_rows_evade_less_than_long_rows() {
        let m = icelake_sp_8360y();
        let n_rows = 64u64;
        let mut ratios = Vec::new();
        for inner in [216u64, 1920u64] {
            let mut core = loaded_core(&m);
            // Copy row by row with a 5-element halo gap between rows, as the
            // prime-rank decomposition produces.
            for row in 0..n_rows {
                let src = row * (inner + 5) * 8;
                let dst = (1 << 32) + row * (inner + 5) * 8;
                copy_kernel(&mut core, src, dst, inner, false);
            }
            let c = core.flush();
            ratios.push(c.read_write_ratio());
        }
        assert!(
            ratios[0] > ratios[1] + 0.05,
            "short inner dimension must have a worse read/write ratio: {ratios:?}"
        );
    }

    #[test]
    fn store_hit_generates_no_memory_read() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        // Load a small array (fits in L1), then overwrite it.
        for i in 0..64u64 {
            core.load(i * 8, 8);
        }
        let after_loads = core.counters();
        for i in 0..64u64 {
            core.store(i * 8, 8);
        }
        let c = core.flush();
        assert_eq!(
            c.read_lines, after_loads.read_lines,
            "stores hit in cache: no extra reads"
        );
        assert!(c.write_lines >= 8.0, "dirty lines must be written back");
    }

    #[test]
    fn flush_is_idempotent_for_writes() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        for i in 0..512u64 {
            core.store(i * 8, 8);
        }
        let c1 = core.flush();
        let c2 = core.flush();
        assert_eq!(
            c1.write_lines, c2.write_lines,
            "second flush must not add writes"
        );
    }

    #[test]
    fn prefetchers_off_increase_wa_for_partial_lines() {
        let m = icelake_sp_8360y();
        let mk = |pf: PrefetcherConfig| {
            let ctx = OccupancyContext::compact(&m, m.total_cores());
            CoreSim::new(
                &m,
                ctx,
                CoreSimOptions {
                    prefetchers: pf,
                    l3_sharers: 36,
                    ..Default::default()
                },
            )
        };
        let run = |core: &mut CoreSim| {
            for row in 0..64u64 {
                let base = row * (216 + 3) * 8;
                for i in 0..216u64 {
                    core.load((1 << 33) + base + i * 8, 8);
                    core.store(base + i * 8, 8);
                }
            }
            core.flush()
        };
        let on = run(&mut mk(PrefetcherConfig::enabled()));
        let off = run(&mut mk(PrefetcherConfig::disabled()));
        assert!(
            off.read_write_ratio() > on.read_write_ratio(),
            "PF off must increase the read/write ratio: on={} off={}",
            on.read_write_ratio(),
            off.read_write_ratio()
        );
    }

    /// Drive the same accesses through the scalar API and `drive_run`; the
    /// counters and the per-level cache statistics must match bit for bit.
    fn assert_equivalent(runs: &[AccessRun], mk: impl Fn() -> CoreSim) {
        let mut scalar = mk();
        let mut batched = mk();
        for run in runs {
            for i in 0..run.elements {
                let addr = run.base + i * 8;
                match run.kind {
                    AccessKind::Load => scalar.load(addr, 8),
                    AccessKind::Store => scalar.store(addr, 8),
                    AccessKind::StoreNT => scalar.store_nt(addr, 8),
                }
            }
            batched.drive_run(*run);
        }
        assert_eq!(scalar.cache_stats(), batched.cache_stats());
        assert_eq!(scalar.flush(), batched.flush());
    }

    #[test]
    fn drive_run_matches_scalar_for_aligned_and_misaligned_runs() {
        let m = icelake_sp_8360y();
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::StoreNT] {
            for base in [0u64, 8, 24, 60, 63, 4096 - 4] {
                for elements in [0u64, 1, 7, 8, 9, 64, 513] {
                    assert_equivalent(
                        &[AccessRun {
                            base,
                            elements,
                            kind,
                        }],
                        || serial_core(&m),
                    );
                }
            }
        }
    }

    #[test]
    fn drive_run_matches_scalar_for_row_patterns_under_load() {
        let m = icelake_sp_8360y();
        // Rows with an unaligned halo gap, alternating load and store
        // arrays — the Fig. 8 pattern shape.
        let mut runs = Vec::new();
        for row in 0..24u64 {
            let off = row * (216 + 3) * 8;
            runs.push(AccessRun::load((1 << 33) + off, 216));
            runs.push(AccessRun::store(off, 216));
        }
        assert_equivalent(&runs, || loaded_core(&m));
    }

    #[test]
    fn reset_reproduces_a_fresh_core() {
        let m = icelake_sp_8360y();
        let run = |core: &mut CoreSim| {
            copy_kernel(core, 0, 1 << 30, 2048, false);
            copy_kernel(core, 1 << 33, 1 << 34, 512, true);
            core.flush()
        };
        // Dirty a core under one configuration, then reset it into the
        // serial configuration: it must reproduce a fresh serial core
        // exactly, including the L3 reallocation for the sharer change.
        let mut reused = loaded_core(&m);
        let _ = run(&mut reused);
        reused.reset(OccupancyContext::serial(&m), CoreSimOptions::default());
        let mut fresh = serial_core(&m);
        assert_eq!(run(&mut reused), run(&mut fresh));
        assert_eq!(reused.cache_stats(), fresh.cache_stats());
    }

    #[test]
    fn level_policy_sim_honours_per_level_policies() {
        use clover_machine::ReplacementPolicyKind as K;
        let m = clover_machine::cva6_like();
        let sim = LevelPolicySim::<NoWriteAllocate>::new(
            &m,
            OccupancyContext::serial(&m),
            CoreSimOptions {
                speci2m_enabled: false,
                l3_sharers: m.caches.l3_sharers,
                ..Default::default()
            },
        );
        // The CVA6 preset specifies random-evict L1/L2 under a PLRU LLC;
        // the per-level simulator must construct exactly those banks.
        assert_eq!(
            [
                m.caches.l1.replacement,
                m.caches.l2.replacement,
                m.caches.l3.replacement
            ],
            [K::Random, K::Random, K::Plru]
        );
        assert_eq!(sim.level_policies(), [K::Random, K::Random, K::Plru]);
    }

    #[test]
    fn level_policy_sim_produces_traffic_on_cva6() {
        let m = clover_machine::cva6_like();
        let mut sim = LevelPolicySim::<NoWriteAllocate>::new(
            &m,
            OccupancyContext::serial(&m),
            CoreSimOptions {
                speci2m_enabled: false,
                l3_sharers: m.caches.l3_sharers,
                ..Default::default()
            },
        );
        let n = 8 * 1024u64;
        for i in 0..n {
            sim.load(i * 8, 8);
            sim.store((1 << 30) + i * 8, 8);
        }
        let c = sim.flush();
        let lines = (n / 8) as f64;
        // No-write-allocate: store misses stream straight to memory.
        assert!(c.read_lines >= lines, "reads = {}", c.read_lines);
        assert!(c.write_lines >= lines, "writes = {}", c.write_lines);
        assert_eq!(c.write_allocate_lines, 0.0);
    }

    #[test]
    fn level_policy_sim_matches_generic_core_for_uniform_lru() {
        // ICX declares LRU at every level, so the per-level simulator and
        // the policy-generic CoreSim must agree bit for bit.
        let m = icelake_sp_8360y();
        let ctx = OccupancyContext::serial(&m);
        let mut mixed = LevelPolicySim::<WriteAllocate>::new(&m, ctx, CoreSimOptions::default());
        let mut generic: CoreSim = CoreSim::new(&m, ctx, CoreSimOptions::default());
        for row in 0..32u64 {
            let off = row * (216 + 3) * 8;
            for i in 0..216u64 {
                mixed.load((1 << 33) + off + i * 8, 8);
                mixed.store(off + i * 8, 8);
                generic.load((1 << 33) + off + i * 8, 8);
                generic.store(off + i * 8, 8);
            }
        }
        assert_eq!(mixed.cache_stats(), generic.cache_stats());
        assert_eq!(mixed.flush(), generic.flush());
    }

    #[test]
    fn domain_occupancy_matches_manual_derivation() {
        let m = icelake_sp_8360y();
        for ranks in [1usize, 17, 18, 19, 37, 72] {
            let occ = DomainOccupancy::compact(&m, ranks);
            let per = m.topology.active_cores_per_domain(ranks);
            assert_eq!(occ.cores_per_domain, per);
            assert_eq!(
                occ.active_domains,
                per.iter().filter(|&&c| c > 0).count().max(1)
            );
            assert_eq!(occ.busiest, per.iter().copied().max().unwrap().max(1));
        }
        assert_eq!(DomainOccupancy::l3_sharers(&m, 1), 2);
        assert_eq!(
            DomainOccupancy::l3_sharers(&m, 18),
            m.caches.l3_sharers.min(36)
        );
    }

    /// Run the Fig.-8-shaped row kernel (loads, stores and NT stores so
    /// every op variant is recorded) under `ctx`/`options`, returning the
    /// final counters and the recorded trace.
    fn traced_run(
        m: &Machine,
        ctx: OccupancyContext,
        options: CoreSimOptions,
    ) -> (MemCounters, Vec<TraceOp>) {
        let mut core: CoreSim = CoreSim::new(m, ctx, options);
        core.start_trace();
        for row in 0..16u64 {
            let off = row * (216 + 3) * 8;
            core.drive_run(AccessRun::load((1 << 33) + off, 216));
            core.drive_run(AccessRun::store(off, 216));
        }
        core.store_nt(1 << 35, 8 * 64);
        let c = core.flush();
        let trace = core.take_trace().expect("trace fits well under the cap");
        (c, trace)
    }

    #[test]
    fn trace_replay_reproduces_live_counters_across_neighbour_axes() {
        // The recorded dynamics of ONE simulation must replay bit-exactly
        // under every "neighbour" configuration — axes that only scale the
        // fractional accounting: occupancy context, the SpecI2M MSR switch.
        // (The trace itself is recorded once per axis value here purely to
        // obtain the live reference; replay always uses the leader's trace.)
        let m = icelake_sp_8360y();
        let base_opts = CoreSimOptions {
            l3_sharers: 36,
            ..Default::default()
        };
        let (_, leader_trace) = traced_run(&m, OccupancyContext::serial(&m), base_opts);
        for ranks in [1usize, 7, 18, 72] {
            for speci2m in [true, false] {
                let ctx = OccupancyContext::compact(&m, ranks);
                let options = CoreSimOptions {
                    speci2m_enabled: speci2m,
                    ..base_opts
                };
                let (live, live_trace) = traced_run(&m, ctx, options);
                // Same dynamics class ⇒ identical op traces...
                assert_eq!(live_trace, leader_trace, "ranks={ranks} s2m={speci2m}");
                // ...and replaying the leader's trace under this neighbour's
                // context reproduces the live counters bit for bit.
                let replayed = replay_trace(&m.speci2m, ctx, options, &leader_trace);
                assert_eq!(replayed, live, "ranks={ranks} s2m={speci2m}");
            }
        }
    }

    #[test]
    fn trace_replay_tracks_the_prefetch_evasion_factor() {
        // Prefetcher config changes the dynamics (different trace), so a
        // replay is only valid against a trace recorded under the same
        // config — verify the pf-off factor is honoured within the class.
        let m = icelake_sp_8360y();
        let options = CoreSimOptions {
            prefetchers: PrefetcherConfig::disabled(),
            l3_sharers: 36,
            ..Default::default()
        };
        let ctx = OccupancyContext::compact(&m, 72);
        let (live, trace) = traced_run(&m, ctx, options);
        assert_eq!(replay_trace(&m.speci2m, ctx, options, &trace), live);
    }

    #[test]
    fn trace_overflow_discards_the_recording() {
        let mut rec = TraceRecorder::default();
        for _ in 0..TRACE_OP_CAP {
            rec.push(TraceOp::DemandRead);
        }
        assert!(!rec.overflowed);
        rec.push(TraceOp::DemandRead);
        assert!(rec.overflowed);
        assert!(rec.ops.is_empty(), "an overflowed trace frees its buffer");
    }

    #[test]
    fn reset_clears_an_active_trace() {
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        core.start_trace();
        core.load(0, 8);
        core.reset(OccupancyContext::serial(&m), CoreSimOptions::default());
        assert!(
            core.take_trace().is_none(),
            "a pooled core must not leak a stale trace across resets"
        );
    }

    #[test]
    fn repeated_stores_to_a_resident_line_stay_dirty() {
        // `touch_repeat` is a load-only fast path; repeated *stores* to an
        // already-resident line must keep flowing through the write path so
        // the dirty bit survives and the write-back is accounted.
        let m = icelake_sp_8360y();
        let mut core = serial_core(&m);
        for i in 0..8u64 {
            core.load(i * 8, 8); // line 0 resident and clean
        }
        for _ in 0..3 {
            for i in 0..8u64 {
                core.store(i * 8, 8); // repeated stores, always hitting
            }
        }
        let c = core.flush();
        assert!(
            c.write_lines >= 1.0,
            "the stored line must be written back, got {}",
            c.write_lines
        );
        // And the batched driver agrees with the scalar path on the same
        // repeated-resident-store pattern.
        let runs: Vec<AccessRun> = std::iter::once(AccessRun::load(0, 8))
            .chain((0..3).map(|_| AccessRun::store(0, 8)))
            .collect();
        assert_equivalent(&runs, || serial_core(&m));
    }

    #[test]
    fn scalar_probe_core_matches_the_default_core() {
        // `CoreSim<_, _, false>` uses the scalar reference probe at every
        // level; the full hierarchy must behave identically to the chunked
        // default.
        let m = icelake_sp_8360y();
        let ctx = OccupancyContext::compact(&m, 72);
        let options = CoreSimOptions {
            l3_sharers: 36,
            ..Default::default()
        };
        let mut simd: CoreSim = CoreSim::new(&m, ctx, options);
        let mut scalar: CoreSim<TrueLru, WriteAllocate, false> = CoreSim::new(&m, ctx, options);
        for row in 0..24u64 {
            let off = row * (216 + 3) * 8;
            for c in [&mut simd as &mut dyn FnMutDriver, &mut scalar] {
                c.run(AccessRun::load((1 << 33) + off, 216));
                c.run(AccessRun::store(off, 216));
            }
        }
        assert_eq!(simd.cache_stats(), scalar.cache_stats());
        assert_eq!(simd.flush(), scalar.flush());
    }

    /// Object-safe shim so the test above can iterate over two `CoreSim`
    /// instantiations that are *different types*.
    trait FnMutDriver {
        fn run(&mut self, run: AccessRun);
    }

    impl<R: ReplacementPolicy, W: WritePolicy, const SIMD: bool> FnMutDriver for CoreSim<R, W, SIMD> {
        fn run(&mut self, run: AccessRun) {
            self.drive_run(run);
        }
    }
}
