//! Node-level simulation: SPMD kernels across ranks with compact pinning.
//!
//! The microbenchmarks and the CloverLeaf traffic measurements run the same
//! kernel on every rank (SPMD).  Ranks pinned to the same ccNUMA domain see
//! the same occupancy, so their memory traffic is identical; the node
//! simulator therefore simulates one *representative* core per distinct
//! domain load and scales the counters — with an exact per-rank mode kept
//! for validation (see the `row_sampling` ablation bench).

use clover_machine::{Machine, ReplacementPolicyKind, WritePolicyKind};

use crate::access::LINE_BYTES;
use crate::cache::SetAssocCache;
use crate::counters::MemCounters;
use crate::hierarchy::{
    l3_share_bytes, CoreSim, CoreSimOptions, DomainOccupancy, OccupancyContext, PrivateCore,
};
use crate::memo::{CoRunKey, KernelSpec, SimMemo};
use crate::patterns::SweepCursor;
use crate::policy::{
    NoWriteAllocate, NonTemporal, RandomEvict, ReplacementPolicy, Srrip, TreePlru, TrueLru,
    WriteAllocate, WritePolicy,
};
use crate::prefetch::PrefetcherConfig;

/// Configuration of one node-level simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine to simulate.
    pub machine: Machine,
    /// Number of ranks, pinned compactly (domain 0 fills first).
    pub ranks: usize,
    /// SpecI2M MSR switch.
    pub speci2m_enabled: bool,
    /// Hardware prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
    /// Replacement policy of the simulated hierarchy (all levels).
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the simulated hierarchy.
    pub write_policy: WritePolicyKind,
}

impl SimConfig {
    /// Default configuration: all features on, `ranks` ranks on `machine`,
    /// the paper's LRU + write-allocate hierarchy.
    pub fn new(machine: Machine, ranks: usize) -> Self {
        Self {
            machine,
            ranks,
            speci2m_enabled: true,
            prefetchers: PrefetcherConfig::enabled(),
            replacement: ReplacementPolicyKind::default(),
            write_policy: WritePolicyKind::default(),
        }
    }

    /// Disable SpecI2M (models clearing the MSR bit).
    pub fn without_speci2m(mut self) -> Self {
        self.speci2m_enabled = false;
        self
    }

    /// Disable all hardware prefetchers.
    pub fn without_prefetchers(mut self) -> Self {
        self.prefetchers = PrefetcherConfig::disabled();
        self
    }

    /// Select the replacement policy of every cache level.
    pub fn with_replacement(mut self, replacement: ReplacementPolicyKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Select the store-miss policy of the hierarchy.
    pub fn with_write_policy(mut self, write_policy: WritePolicyKind) -> Self {
        self.write_policy = write_policy;
        self
    }

    fn core_options(&self, cores_in_domain: usize) -> CoreSimOptions {
        // Cores in the same socket share the L3; the share shrinks with the
        // number of active cores on the socket (see
        // `DomainOccupancy::l3_sharers` for the approximation).
        CoreSimOptions {
            speci2m_enabled: self.speci2m_enabled,
            prefetchers: self.prefetchers,
            l3_sharers: DomainOccupancy::l3_sharers(&self.machine, cores_in_domain),
        }
    }
}

/// Aggregated result of a node-level simulation.
#[derive(Debug, Clone)]
pub struct NodeSimReport {
    /// Number of ranks simulated.
    pub ranks: usize,
    /// Traffic counters summed over all ranks.
    pub total: MemCounters,
    /// Traffic counters of a single rank in the most loaded domain.
    pub per_rank: MemCounters,
    /// Active cores per ccNUMA domain (compact pinning).
    pub cores_per_domain: Vec<usize>,
}

impl NodeSimReport {
    /// Total memory data volume in bytes (read + write).
    pub fn total_bytes(&self) -> f64 {
        self.total.total_bytes()
    }

    /// Node-wide read-to-write ratio.
    ///
    /// A report of a write-free kernel has no meaningful ratio; this
    /// returns `0.0` for it instead of propagating the raw counters'
    /// `INFINITY` (which poisons downstream arithmetic and serialises to
    /// `null` in JSON).  Callers that want the raw semantics can still ask
    /// `self.total.read_write_ratio()`.
    pub fn read_write_ratio(&self) -> f64 {
        if self.total.write_lines <= 0.0 {
            0.0
        } else {
            self.total.read_write_ratio()
        }
    }
}

/// Node-level SPMD simulator.
#[derive(Debug, Clone)]
pub struct NodeSim {
    config: SimConfig,
}

impl NodeSim {
    /// Create a simulator from a configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.ranks >= 1, "need at least one rank");
        assert!(
            config.ranks <= config.machine.total_cores(),
            "cannot oversubscribe the node"
        );
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The closure-based entry points always simulate the default
    /// LRU + write-allocate hierarchy; a non-default policy configuration
    /// would be silently ignored there, so flag it in debug builds.
    fn assert_default_policies(&self, entry: &str) {
        debug_assert!(
            self.config.replacement == ReplacementPolicyKind::default()
                && self.config.write_policy == WritePolicyKind::default(),
            "{entry} always simulates the default LRU + write-allocate hierarchy; \
             use run_spmd_memo for policy sweeps"
        );
    }

    /// Run an SPMD kernel, simulating one representative core per distinct
    /// domain occupancy and scaling the counters by the number of ranks at
    /// that occupancy.
    ///
    /// The kernel receives the rank id it is standing in for and the core
    /// simulator to drive.
    pub fn run_spmd<F>(&self, kernel: F) -> NodeSimReport
    where
        F: Fn(usize, &mut CoreSim),
    {
        self.assert_default_policies("run_spmd");
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut first = true;
        // Per-load dedup indexed by the domain load itself: O(1) per level
        // instead of a linear scan over every previously simulated load.
        let mut by_load: Vec<Option<MemCounters>> = vec![None; occ.busiest + 1];
        // One core simulator serves every distinct domain load: `reset`
        // reuses its cache arenas instead of reallocating three caches and
        // two coalescers per load level.
        let mut core: Option<CoreSim> = None;
        let mut first_rank_of_domain = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            // Re-use a previously simulated domain with the same load.
            let counters = if let Some(c) = by_load[count] {
                c
            } else {
                let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
                let options = self.config.core_options(count);
                if let Some(core) = core.as_mut() {
                    core.reset(ctx, options);
                } else {
                    core = Some(CoreSim::new(machine, ctx, options));
                }
                let core = core.as_mut().expect("initialised above");
                kernel(first_rank_of_domain, core);
                let c = core.flush();
                by_load[count] = Some(c);
                c
            };
            if first {
                per_rank = counters;
                first = false;
            }
            total.merge(&counters.scaled(count as f64));
            first_rank_of_domain += count;
        }

        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }

    /// Run an SPMD [`KernelSpec`] through a cross-sweep [`SimMemo`]: each
    /// distinct `(occupancy context, core options, kernel)` level is
    /// simulated at most once per memo lifetime and shared across every
    /// rank count of a sweep — bit-identical to [`run_spmd`] with a closure
    /// driving the same spec (see `crate::memo` for why memo hits are
    /// exact).  Misses simulate on the thread-local pooled core, so the
    /// cache arenas are reused across calls as well.
    ///
    /// [`run_spmd`]: Self::run_spmd
    ///
    /// Honours the configuration's [`replacement`](SimConfig::replacement)
    /// and [`write_policy`](SimConfig::write_policy) selectors by
    /// dispatching to the matching monomorphised hierarchy.
    pub fn run_spmd_memo(&self, kernel: &KernelSpec, memo: &SimMemo) -> NodeSimReport {
        use ReplacementPolicyKind as R;
        use WritePolicyKind as W;
        match (self.config.replacement, self.config.write_policy) {
            (R::Lru, W::Allocate) => {
                self.run_spmd_memo_typed::<TrueLru, WriteAllocate>(kernel, memo)
            }
            (R::Lru, W::NoAllocate) => {
                self.run_spmd_memo_typed::<TrueLru, NoWriteAllocate>(kernel, memo)
            }
            (R::Lru, W::NonTemporal) => {
                self.run_spmd_memo_typed::<TrueLru, NonTemporal>(kernel, memo)
            }
            (R::Plru, W::Allocate) => {
                self.run_spmd_memo_typed::<TreePlru, WriteAllocate>(kernel, memo)
            }
            (R::Plru, W::NoAllocate) => {
                self.run_spmd_memo_typed::<TreePlru, NoWriteAllocate>(kernel, memo)
            }
            (R::Plru, W::NonTemporal) => {
                self.run_spmd_memo_typed::<TreePlru, NonTemporal>(kernel, memo)
            }
            (R::Srrip, W::Allocate) => {
                self.run_spmd_memo_typed::<Srrip, WriteAllocate>(kernel, memo)
            }
            (R::Srrip, W::NoAllocate) => {
                self.run_spmd_memo_typed::<Srrip, NoWriteAllocate>(kernel, memo)
            }
            (R::Srrip, W::NonTemporal) => {
                self.run_spmd_memo_typed::<Srrip, NonTemporal>(kernel, memo)
            }
            (R::Random, W::Allocate) => {
                self.run_spmd_memo_typed::<RandomEvict, WriteAllocate>(kernel, memo)
            }
            (R::Random, W::NoAllocate) => {
                self.run_spmd_memo_typed::<RandomEvict, NoWriteAllocate>(kernel, memo)
            }
            (R::Random, W::NonTemporal) => {
                self.run_spmd_memo_typed::<RandomEvict, NonTemporal>(kernel, memo)
            }
        }
    }

    fn run_spmd_memo_typed<RP: ReplacementPolicy, WP: WritePolicy>(
        &self,
        kernel: &KernelSpec,
        memo: &SimMemo,
    ) -> NodeSimReport {
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut first = true;
        let mut by_load: Vec<Option<MemCounters>> = vec![None; occ.busiest + 1];
        let mut first_rank_of_domain = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            let counters = if let Some(c) = by_load[count] {
                c
            } else {
                let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
                let options = self.config.core_options(count);
                let c = memo.counters_for::<RP, WP>(
                    machine,
                    ctx,
                    options,
                    kernel,
                    first_rank_of_domain,
                );
                by_load[count] = Some(c);
                c
            };
            if first {
                per_rank = counters;
                first = false;
            }
            total.merge(&counters.scaled(count as f64));
            first_rank_of_domain += count;
        }

        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }

    /// Run an SPMD kernel simulating *every* rank individually.  Exact but
    /// linearly more expensive; used to validate the representative-core
    /// approximation.
    pub fn run_spmd_exact<F>(&self, kernel: F) -> NodeSimReport
    where
        F: Fn(usize, &mut CoreSim),
    {
        self.assert_default_policies("run_spmd_exact");
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut core: Option<CoreSim> = None;
        let mut rank = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
            for _ in 0..count {
                let options = self.config.core_options(count);
                if let Some(core) = core.as_mut() {
                    core.reset(ctx, options);
                } else {
                    core = Some(CoreSim::new(machine, ctx, options));
                }
                let core = core.as_mut().expect("initialised above");
                kernel(rank, core);
                let c = core.flush();
                if rank == 0 {
                    per_rank = c;
                }
                total.merge(&c);
                rank += 1;
            }
        }
        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }

    /// Co-schedule `tenants.len()` kernel streams on cores of one ccNUMA
    /// domain sharing the last-level cache, interleaving their line streams
    /// at the shared level in round-robin turns of `interleave_lines`
    /// line-granular operations.
    ///
    /// Each tenant keeps a private L1/L2 half ([`PrivateCore`]); the LLC is
    /// one [`SetAssocCache`] sized to the tenants' combined per-core share,
    /// so a single tenant (`tenants.len() == 1`) sees exactly the solo
    /// geometry and the result is bit-identical to [`run_spmd`] driving the
    /// same spec on one rank (a tested property).  The report carries, per
    /// tenant, the contended counters *and* a solo baseline simulated on an
    /// exclusive LLC of the same geometry, so the deltas isolate pure
    /// interference (competition for the shared level) from capacity
    /// effects.
    ///
    /// Results are memoized under a [`CoRunKey`] — sorted tenant specs plus
    /// interleave on top of every environment field — in a table disjoint
    /// from the solo memo, so a shared [`SimMemo`] can never serve a solo
    /// result for a contended run, or one interleave's result for another.
    ///
    /// Tenants are identified by their canonical rank (index after
    /// sorting), so their kernels must occupy pairwise-disjoint address
    /// windows under that rank assignment — rank-private bases
    /// ([`RankBase::Shifted`](crate::memo::RankBase)) guarantee this;
    /// overlapping windows panic.
    ///
    /// [`run_spmd`]: Self::run_spmd
    pub fn run_corun(
        &self,
        tenants: &[KernelSpec],
        interleave_lines: u64,
        memo: &SimMemo,
    ) -> CoRunReport {
        use ReplacementPolicyKind as R;
        use WritePolicyKind as W;
        match (self.config.replacement, self.config.write_policy) {
            (R::Lru, W::Allocate) => {
                self.run_corun_typed::<TrueLru, WriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Lru, W::NoAllocate) => {
                self.run_corun_typed::<TrueLru, NoWriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Lru, W::NonTemporal) => {
                self.run_corun_typed::<TrueLru, NonTemporal>(tenants, interleave_lines, memo)
            }
            (R::Plru, W::Allocate) => {
                self.run_corun_typed::<TreePlru, WriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Plru, W::NoAllocate) => {
                self.run_corun_typed::<TreePlru, NoWriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Plru, W::NonTemporal) => {
                self.run_corun_typed::<TreePlru, NonTemporal>(tenants, interleave_lines, memo)
            }
            (R::Srrip, W::Allocate) => {
                self.run_corun_typed::<Srrip, WriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Srrip, W::NoAllocate) => {
                self.run_corun_typed::<Srrip, NoWriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Srrip, W::NonTemporal) => {
                self.run_corun_typed::<Srrip, NonTemporal>(tenants, interleave_lines, memo)
            }
            (R::Random, W::Allocate) => {
                self.run_corun_typed::<RandomEvict, WriteAllocate>(tenants, interleave_lines, memo)
            }
            (R::Random, W::NoAllocate) => self.run_corun_typed::<RandomEvict, NoWriteAllocate>(
                tenants,
                interleave_lines,
                memo,
            ),
            (R::Random, W::NonTemporal) => {
                self.run_corun_typed::<RandomEvict, NonTemporal>(tenants, interleave_lines, memo)
            }
        }
    }

    fn run_corun_typed<RP: ReplacementPolicy, WP: WritePolicy>(
        &self,
        tenants: &[KernelSpec],
        interleave_lines: u64,
        memo: &SimMemo,
    ) -> CoRunReport {
        let machine = &self.config.machine;
        let n = tenants.len();
        assert!(n >= 1, "need at least one tenant");
        assert!(
            n <= machine.topology.cores_per_domain(),
            "co-run tenants are pinned within one ccNUMA domain \
             ({} cores on {})",
            machine.topology.cores_per_domain(),
            machine.id
        );
        let interleave = interleave_lines.max(1);
        let ctx = OccupancyContext::domain_load(machine, n, 1);
        let options = self.config.core_options(n);

        // Canonical tenant order: sort (stably) so permutations of the same
        // tenant multiset share one memo entry; `order[j]` is the input
        // index simulated as canonical rank `j`.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| tenants[a].cmp(&tenants[b]));
        let sorted: Vec<KernelSpec> = order.iter().map(|&i| tenants[i].clone()).collect();

        // The per-tenant attribution of shared-level state needs each
        // tenant to own a private address window under its canonical rank.
        let spans: Vec<Option<(u64, u64)>> = sorted
            .iter()
            .enumerate()
            .map(|(j, t)| t.line_span(j))
            .collect();
        for a in 0..n {
            for b in a + 1..n {
                if let (Some(x), Some(y)) = (spans[a], spans[b]) {
                    assert!(
                        x.1 < y.0 || y.1 < x.0,
                        "co-run tenants must occupy disjoint address windows \
                         (lines {x:?} vs {y:?})"
                    );
                }
            }
        }

        let key = CoRunKey::for_policies(
            machine,
            ctx,
            options,
            &sorted,
            interleave,
            RP::KIND,
            WP::KIND,
        );
        let sorted_reports = memo.corun_get_or_insert_with(key, || {
            simulate_corun::<RP, WP>(machine, ctx, options, &sorted, &spans, interleave)
        });

        let mut slots: Vec<Option<TenantReport>> = vec![None; n];
        for (j, rep) in sorted_reports.into_iter().enumerate() {
            slots[order[j]] = Some(rep);
        }
        let tenant_reports: Vec<TenantReport> = slots
            .into_iter()
            .map(|r| r.expect("the canonical order is a permutation"))
            .collect();
        let mut total = MemCounters::new();
        for t in &tenant_reports {
            total.merge(&t.counters);
        }
        let share = l3_share_bytes(machine.caches.l3.capacity_bytes, options.l3_sharers);
        CoRunReport {
            tenants: tenant_reports,
            interleave_lines: interleave,
            llc_lines: (share * n) as u64 / LINE_BYTES,
            total,
        }
    }
}

/// Per-tenant result of a co-run: the contended counters next to a solo
/// baseline of the *same* LLC geometry, so every delta isolates pure
/// interference from capacity effects.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Memory traffic of this tenant under contention.
    pub counters: MemCounters,
    /// Memory traffic of the same kernel alone on an exclusive LLC of the
    /// shared geometry.
    pub solo: MemCounters,
    /// Shared-LLC hits attributed to this tenant's turns.
    pub llc_hits: u64,
    /// Shared-LLC misses attributed to this tenant's turns.
    pub llc_misses: u64,
    /// LLC hits of the solo baseline.
    pub solo_llc_hits: u64,
    /// LLC misses of the solo baseline.
    pub solo_llc_misses: u64,
    /// Lines of this tenant's address window resident in the shared LLC at
    /// the end of the run (before the flush).
    pub occupancy_lines: u64,
    /// End-of-run LLC residency of the solo baseline.
    pub solo_occupancy_lines: u64,
}

impl TenantReport {
    /// Extra shared-LLC misses caused by contention (negative when the
    /// co-run happened to hit more, which disjoint windows make rare).
    pub fn extra_llc_misses(&self) -> f64 {
        self.llc_misses as f64 - self.solo_llc_misses as f64
    }

    /// End-of-run LLC occupancy lost (negative) or gained versus running
    /// alone.
    pub fn occupancy_delta_lines(&self) -> f64 {
        self.occupancy_lines as f64 - self.solo_occupancy_lines as f64
    }

    /// Extra memory read lines caused by contention.
    pub fn extra_read_lines(&self) -> f64 {
        self.counters.read_lines - self.solo.read_lines
    }

    /// Extra write-allocate traffic caused by contention — the quantity
    /// the paper's evasion machinery is supposed to keep low, eroded when
    /// an aggressor flushes the victim's store streams out of the shared
    /// level.
    pub fn extra_write_allocate_lines(&self) -> f64 {
        self.counters.write_allocate_lines - self.solo.write_allocate_lines
    }
}

/// Result of [`NodeSim::run_corun`]: per-tenant reports in the caller's
/// tenant order plus node totals.
#[derive(Debug, Clone, PartialEq)]
pub struct CoRunReport {
    /// Per-tenant contended-vs-solo reports, in input order.
    pub tenants: Vec<TenantReport>,
    /// Lines per round-robin turn at the shared LLC (as clamped to ≥ 1).
    pub interleave_lines: u64,
    /// Capacity of the shared LLC in lines (for occupancy fractions).
    pub llc_lines: u64,
    /// Traffic counters summed over all tenants.
    pub total: MemCounters,
}

impl CoRunReport {
    /// Fraction of the shared LLC the tenant at `idx` holds at the end of
    /// the run.
    pub fn occupancy_fraction(&self, idx: usize) -> f64 {
        self.tenants[idx].occupancy_lines as f64 / self.llc_lines.max(1) as f64
    }
}

/// Is `line` inside tenant `j`'s address window?
fn owner_of(line: u64, spans: &[Option<(u64, u64)>]) -> Option<usize> {
    spans
        .iter()
        .position(|s| s.is_some_and(|(lo, hi)| (lo..=hi).contains(&line)))
}

/// The co-run simulation proper: private halves round-robin over one
/// shared LLC, then solo baselines on an exclusive LLC of the same
/// geometry.  `tenants` are in canonical order; the returned reports match
/// that order.
fn simulate_corun<RP: ReplacementPolicy, WP: WritePolicy>(
    machine: &Machine,
    ctx: OccupancyContext,
    options: CoreSimOptions,
    tenants: &[KernelSpec],
    spans: &[Option<(u64, u64)>],
    interleave_lines: u64,
) -> Vec<TenantReport> {
    let n = tenants.len();
    let caches = &machine.caches;
    let shared_bytes = l3_share_bytes(caches.l3.capacity_bytes, options.l3_sharers) * n;
    let ways = caches.l3.associativity;

    let mut llc = SetAssocCache::<RP>::new(shared_bytes, ways);
    let mut cores: Vec<PrivateCore<SetAssocCache<RP>, WP>> = (0..n)
        .map(|_| PrivateCore::new(machine, ctx, options))
        .collect();
    let mut cursors: Vec<SweepCursor> = tenants
        .iter()
        .enumerate()
        .map(|(j, t)| SweepCursor::new(t.sweep(j)))
        .collect();
    let mut llc_hits = vec![0u64; n];
    let mut llc_misses = vec![0u64; n];
    let mut active = cursors.iter().filter(|c| !c.finished()).count();
    while active > 0 {
        for j in 0..n {
            if cursors[j].finished() {
                continue;
            }
            let (h0, m0) = (llc.hits(), llc.misses());
            cursors[j].advance(&mut cores[j], &mut llc, interleave_lines);
            llc_hits[j] += llc.hits() - h0;
            llc_misses[j] += llc.misses() - m0;
            if cursors[j].finished() {
                active -= 1;
            }
        }
    }

    // End-of-run occupancy, attributed by address window.  Prefetched
    // buddy lines can fall just outside every window; they are simply not
    // attributed (consistently so in the solo baseline below).
    let mut occupancy = vec![0u64; n];
    llc.for_each_resident(|line, _dirty| {
        if let Some(j) = owner_of(line, spans) {
            occupancy[j] += 1;
        }
    });

    // Flush in canonical order: finalize each tenant's store streams (which
    // still contend at the shared level), then drain the shared LLC once
    // and hand each tenant its own dirty lines for write-back accounting.
    let mut upper_dirty: Vec<(Vec<u64>, Vec<u64>)> = Vec::with_capacity(n);
    for j in 0..n {
        let (h0, m0) = (llc.hits(), llc.misses());
        upper_dirty.push(cores[j].flush_streams_and_upper(&mut llc));
        llc_hits[j] += llc.hits() - h0;
        llc_misses[j] += llc.misses() - m0;
    }
    let mut l3_by_tenant: Vec<Vec<u64>> = vec![Vec::new(); n];
    for line in llc.flush_dirty() {
        match owner_of(line, spans) {
            Some(j) => l3_by_tenant[j].push(line),
            // A dirty line only ever comes from a store, and every store
            // address lies inside its tenant's (exact) window.
            None => unreachable!("dirty LLC line outside every tenant window"),
        }
    }

    let mut reports = Vec::with_capacity(n);
    for (j, ((l1_dirty, l2_dirty), l3_dirty)) in
        upper_dirty.into_iter().zip(l3_by_tenant).enumerate()
    {
        let counters = cores[j].account_writebacks(l1_dirty, l2_dirty, l3_dirty);
        reports.push(TenantReport {
            counters,
            solo: counters,
            llc_hits: llc_hits[j],
            llc_misses: llc_misses[j],
            solo_llc_hits: llc_hits[j],
            solo_llc_misses: llc_misses[j],
            occupancy_lines: occupancy[j],
            solo_occupancy_lines: occupancy[j],
        });
    }

    // Solo baselines on an exclusive LLC of the *same* geometry, so the
    // deltas measure pure interference.  A single tenant has nothing to
    // contend with: its co-run IS the solo run (deltas exactly zero).
    if n > 1 {
        for (j, t) in tenants.iter().enumerate() {
            let mut llc = SetAssocCache::<RP>::new(shared_bytes, ways);
            let mut core = PrivateCore::<SetAssocCache<RP>, WP>::new(machine, ctx, options);
            let mut cursor = SweepCursor::new(t.sweep(j));
            while !cursor.finished() {
                cursor.advance(&mut core, &mut llc, u64::MAX);
            }
            let mut occ = 0u64;
            llc.for_each_resident(|line, _dirty| {
                if owner_of(line, &spans[j..=j]).is_some() {
                    occ += 1;
                }
            });
            let (l1_dirty, l2_dirty) = core.flush_streams_and_upper(&mut llc);
            let l3_dirty = llc.flush_dirty();
            let rep = &mut reports[j];
            rep.solo = core.account_writebacks(l1_dirty, l2_dirty, l3_dirty);
            rep.solo_llc_hits = llc.hits();
            rep.solo_llc_misses = llc.misses();
            rep.solo_occupancy_lines = occ;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn store_kernel(n: u64) -> impl Fn(usize, &mut CoreSim) {
        move |rank, core| {
            let base = (rank as u64) << 36;
            for i in 0..n {
                core.store(base + i * 8, 8);
            }
        }
    }

    #[test]
    fn representative_matches_exact_on_uniform_occupancy() {
        // 72 ranks load every ICX domain with exactly 18 cores; with one
        // distinct domain load the representative core must reproduce the
        // exact per-rank simulation bit for bit (regression guard for the
        // `CoreSim::reset` reuse in both loops).
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 72));
        let fast = sim.run_spmd(store_kernel(2048));
        let exact = sim.run_spmd_exact(store_kernel(2048));
        // The representative core is bit-identical; the node totals only up
        // to summation order (one `c * 18` versus eighteen additions).
        assert_eq!(fast.per_rank, exact.per_rank);
        assert_eq!(fast.cores_per_domain, exact.cores_per_domain);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        assert!(rel(fast.total.read_lines, exact.total.read_lines) < 1e-12);
        assert!(rel(fast.total.write_lines, exact.total.write_lines) < 1e-12);
        assert!(rel(fast.total.itom_lines, exact.total.itom_lines) < 1e-12);
        assert!(
            rel(
                fast.total.write_allocate_lines,
                exact.total.write_allocate_lines
            ) < 1e-12
        );
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_core_reuse() {
        // The reused core must carry no state between domain-load levels or
        // between whole runs.
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 20));
        let a = sim.run_spmd(store_kernel(2048));
        let b = sim.run_spmd(store_kernel(2048));
        assert_eq!(a.total, b.total);
        assert_eq!(a.per_rank, b.per_rank);
    }

    #[test]
    fn batched_kernel_matches_scalar_kernel_node_wide() {
        use crate::access::AccessRun;
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 19));
        let scalar = sim.run_spmd(store_kernel(4096));
        let batched = sim.run_spmd(|rank, core| {
            let base = (rank as u64) << 36;
            core.drive_run(AccessRun::store(base, 4096));
        });
        assert_eq!(scalar.total, batched.total);
        assert_eq!(scalar.per_rank, batched.per_rank);
    }

    #[test]
    fn representative_matches_exact_for_uniform_kernel() {
        let m = icelake_sp_8360y();
        let cfg = SimConfig::new(m, 4);
        let sim = NodeSim::new(cfg);
        let fast = sim.run_spmd(store_kernel(4096));
        let exact = sim.run_spmd_exact(store_kernel(4096));
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        assert!(rel(fast.total.read_lines, exact.total.read_lines) < 1e-9);
        assert!(rel(fast.total.write_lines, exact.total.write_lines) < 1e-9);
        assert!(rel(fast.total.itom_lines, exact.total.itom_lines.max(1e-12)) < 1e-9);
    }

    #[test]
    fn scaling_store_ratio_drops_with_cores() {
        let m = icelake_sp_8360y();
        let ratio = |ranks: usize| {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let rep = sim.run_spmd(store_kernel(4096));
            rep.total_bytes() / rep.total.write_bytes()
        };
        let serial = ratio(1);
        let saturated = ratio(18);
        assert!(serial > 1.9, "serial store ratio ≈ 2, got {serial}");
        assert!(
            saturated < 1.3,
            "saturated store ratio must drop, got {saturated}"
        );
    }

    #[test]
    fn new_domain_worsens_the_ratio_again() {
        let m = icelake_sp_8360y();
        let ratio = |ranks: usize| {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let rep = sim.run_spmd(store_kernel(4096));
            rep.total_bytes() / rep.total.write_bytes()
        };
        // 18 ranks saturate domain 0; 20 ranks put two lonely ranks on
        // domain 1 whose stores cannot be evaded → node ratio rises.
        assert!(ratio(20) > ratio(18));
    }

    #[test]
    fn speci2m_off_keeps_ratio_at_two() {
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 36).without_speci2m());
        let rep = sim.run_spmd(store_kernel(4096));
        let ratio = rep.total_bytes() / rep.total.write_bytes();
        assert!(
            ratio > 1.95,
            "without SpecI2M all stores write-allocate, got {ratio}"
        );
    }

    #[test]
    fn policy_selectors_change_the_memoized_simulation() {
        use crate::access::AccessKind;
        use crate::memo::RankBase;
        let m = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            4096,
            AccessKind::Store,
        );
        let memo = SimMemo::new();
        let run = |cfg: SimConfig| NodeSim::new(cfg).run_spmd_memo(&spec, &memo);
        let wa = run(SimConfig::new(m.clone(), 1));
        let nowa = run(SimConfig::new(m.clone(), 1).with_write_policy(WritePolicyKind::NoAllocate));
        let nt = run(SimConfig::new(m.clone(), 1).with_write_policy(WritePolicyKind::NonTemporal));
        // Serial write-allocate reads every store line back; no-allocate
        // writes it through without a read; the NT policy also avoids the
        // read-for-ownership on full lines.
        assert!(wa.total.read_lines > 0.9 * 512.0);
        assert!(nowa.total.read_lines < 1.0, "{}", nowa.total.read_lines);
        assert!(nt.total.read_lines < 0.2 * 512.0, "{}", nt.total.read_lines);
        assert!(nowa.total.write_lines > 0.95 * 512.0);
        // A non-LRU replacement policy still runs end to end and produces
        // a distinct memo entry (same kernel, different key).
        let before = memo.len();
        let plru = run(SimConfig::new(m, 1).with_replacement(ReplacementPolicyKind::Plru));
        assert_eq!(plru.ranks, 1);
        assert!(memo.len() > before);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_panics() {
        let m = icelake_sp_8360y();
        let cores = m.total_cores();
        let _ = NodeSim::new(SimConfig::new(m, cores + 1));
    }

    #[test]
    fn report_ratio_of_write_free_kernel_is_zero_not_infinite() {
        // Satellite guard: the raw counters keep the INFINITY semantics,
        // the node report clamps to 0.0 so downstream arithmetic and JSON
        // stay finite.
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 1));
        let rep = sim.run_spmd(|rank, core| {
            let base = (rank as u64) << 36;
            core.load(base, 8 * 1024);
        });
        assert!(rep.total.write_lines <= 0.0);
        assert!(rep.total.read_write_ratio().is_infinite());
        assert_eq!(rep.read_write_ratio(), 0.0);
    }

    fn corun_spec(kind: crate::access::AccessKind, elements: u64, rows: u64) -> KernelSpec {
        use crate::memo::{RankBase, SpecOperand};
        KernelSpec {
            rank_base: RankBase::Shifted { shift: 36, plus: 0 },
            operands: vec![SpecOperand {
                offset: 0,
                points: vec![(0, 0)],
                kind,
            }],
            // `row_stride: 0` makes every row revisit the same elements — a
            // pure reuse kernel, the shape most sensitive to LLC eviction.
            row_stride: if rows > 1 { 0 } else { elements.max(1) },
            i0: 0,
            inner: elements,
            k0: 0,
            rows,
        }
    }

    #[test]
    fn single_tenant_corun_is_bit_identical_to_run_spmd() {
        use crate::access::AccessKind;
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 1));
        let memo = SimMemo::new();
        let spec = corun_spec(AccessKind::Store, 8192, 1);
        let solo = sim.run_spmd_memo(&spec, &memo);
        let corun = sim.run_corun(std::slice::from_ref(&spec), 64, &memo);
        assert_eq!(corun.tenants.len(), 1);
        let t = &corun.tenants[0];
        assert_eq!(t.counters, solo.per_rank);
        // One tenant has nothing to contend with: every delta is exactly 0.
        assert_eq!(t.counters, t.solo);
        assert_eq!(
            (t.llc_hits, t.llc_misses),
            (t.solo_llc_hits, t.solo_llc_misses)
        );
        assert_eq!(t.occupancy_lines, t.solo_occupancy_lines);
        // Solo and co-run entries live in disjoint memo tables.
        assert_eq!(memo.corun_len(), 1);
        assert!(memo.len() >= 1);
    }

    #[test]
    fn thrashing_aggressor_inflicts_extra_misses_on_a_reuse_victim() {
        use crate::access::AccessKind;
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m.clone(), 2));
        let memo = SimMemo::new();
        // Victim: 16 MiB reused four times — larger than the private L2 and
        // resident in its solo LLC (27 MiB), but with an aggressor stream
        // interleaved the LRU reuse distance exceeds the shared capacity.
        let victim = corun_spec(AccessKind::Load, 16 * 1024 * 1024 / 8, 4);
        // Aggressor: a 64 MiB single-pass stream — larger than the whole
        // shared LLC, evicting the victim's working set as it goes.
        let aggressor = corun_spec(AccessKind::Load, 64 * 1024 * 1024 / 8, 1);
        let rep = sim.run_corun(&[victim, aggressor], 64, &memo);
        let v = &rep.tenants[0];
        assert!(
            v.extra_llc_misses() > 0.0,
            "contention must cost the victim LLC misses, got {}",
            v.extra_llc_misses()
        );
        assert!(
            v.extra_read_lines() > 0.0,
            "extra misses must surface as memory reads, got {}",
            v.extra_read_lines()
        );
        assert!(
            v.occupancy_delta_lines() < 0.0,
            "the aggressor must displace victim lines, got {}",
            v.occupancy_delta_lines()
        );
        // The streaming aggressor barely notices the victim.
        let a = &rep.tenants[1];
        assert!(a.extra_llc_misses() <= v.extra_llc_misses());
        // Totals are per-tenant sums; occupancy fractions are within [0,1].
        assert!(rep.total.read_lines >= v.counters.read_lines);
        assert!(rep.occupancy_fraction(0) <= 1.0 && rep.occupancy_fraction(1) <= 1.0);
    }

    #[test]
    fn corun_memo_never_crosses_tenant_order_or_interleave() {
        use crate::access::AccessKind;
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 2));
        let memo = SimMemo::new();
        let a = corun_spec(AccessKind::Load, 32 * 1024, 2);
        let b = corun_spec(AccessKind::Store, 64 * 1024, 1);
        let ab = sim.run_corun(&[a.clone(), b.clone()], 8, &memo);
        assert_eq!(memo.corun_stats().misses, 1);
        // Swapped tenant order is the same co-run: a memo hit, with the
        // per-tenant reports permuted back to input order.
        let ba = sim.run_corun(&[b.clone(), a.clone()], 8, &memo);
        assert_eq!(memo.corun_stats().misses, 1);
        assert_eq!(ab.tenants[0], ba.tenants[1]);
        assert_eq!(ab.tenants[1], ba.tenants[0]);
        // A different interleave is a different key (turn boundaries move,
        // so sharing would be unsound).
        let _ = sim.run_corun(&[a, b], 16, &memo);
        assert_eq!(memo.corun_stats().misses, 2);
    }

    #[test]
    fn report_helpers() {
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 2));
        let rep = sim.run_spmd(store_kernel(1024));
        assert_eq!(rep.ranks, 2);
        assert_eq!(rep.cores_per_domain.iter().sum::<usize>(), 2);
        assert!(rep.total_bytes() > 0.0);
        assert!(rep.read_write_ratio() > 0.0);
    }
}
