//! Node-level simulation: SPMD kernels across ranks with compact pinning.
//!
//! The microbenchmarks and the CloverLeaf traffic measurements run the same
//! kernel on every rank (SPMD).  Ranks pinned to the same ccNUMA domain see
//! the same occupancy, so their memory traffic is identical; the node
//! simulator therefore simulates one *representative* core per distinct
//! domain load and scales the counters — with an exact per-rank mode kept
//! for validation (see the `row_sampling` ablation bench).

use clover_machine::{Machine, ReplacementPolicyKind, WritePolicyKind};

use crate::counters::MemCounters;
use crate::hierarchy::{CoreSim, CoreSimOptions, DomainOccupancy, OccupancyContext};
use crate::memo::{KernelSpec, SimMemo};
use crate::policy::{
    NoWriteAllocate, NonTemporal, RandomEvict, ReplacementPolicy, Srrip, TreePlru, TrueLru,
    WriteAllocate, WritePolicy,
};
use crate::prefetch::PrefetcherConfig;

/// Configuration of one node-level simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine to simulate.
    pub machine: Machine,
    /// Number of ranks, pinned compactly (domain 0 fills first).
    pub ranks: usize,
    /// SpecI2M MSR switch.
    pub speci2m_enabled: bool,
    /// Hardware prefetcher configuration.
    pub prefetchers: PrefetcherConfig,
    /// Replacement policy of the simulated hierarchy (all levels).
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the simulated hierarchy.
    pub write_policy: WritePolicyKind,
}

impl SimConfig {
    /// Default configuration: all features on, `ranks` ranks on `machine`,
    /// the paper's LRU + write-allocate hierarchy.
    pub fn new(machine: Machine, ranks: usize) -> Self {
        Self {
            machine,
            ranks,
            speci2m_enabled: true,
            prefetchers: PrefetcherConfig::enabled(),
            replacement: ReplacementPolicyKind::default(),
            write_policy: WritePolicyKind::default(),
        }
    }

    /// Disable SpecI2M (models clearing the MSR bit).
    pub fn without_speci2m(mut self) -> Self {
        self.speci2m_enabled = false;
        self
    }

    /// Disable all hardware prefetchers.
    pub fn without_prefetchers(mut self) -> Self {
        self.prefetchers = PrefetcherConfig::disabled();
        self
    }

    /// Select the replacement policy of every cache level.
    pub fn with_replacement(mut self, replacement: ReplacementPolicyKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Select the store-miss policy of the hierarchy.
    pub fn with_write_policy(mut self, write_policy: WritePolicyKind) -> Self {
        self.write_policy = write_policy;
        self
    }

    fn core_options(&self, cores_in_domain: usize) -> CoreSimOptions {
        // Cores in the same socket share the L3; the share shrinks with the
        // number of active cores on the socket (see
        // `DomainOccupancy::l3_sharers` for the approximation).
        CoreSimOptions {
            speci2m_enabled: self.speci2m_enabled,
            prefetchers: self.prefetchers,
            l3_sharers: DomainOccupancy::l3_sharers(&self.machine, cores_in_domain),
        }
    }
}

/// Aggregated result of a node-level simulation.
#[derive(Debug, Clone)]
pub struct NodeSimReport {
    /// Number of ranks simulated.
    pub ranks: usize,
    /// Traffic counters summed over all ranks.
    pub total: MemCounters,
    /// Traffic counters of a single rank in the most loaded domain.
    pub per_rank: MemCounters,
    /// Active cores per ccNUMA domain (compact pinning).
    pub cores_per_domain: Vec<usize>,
}

impl NodeSimReport {
    /// Total memory data volume in bytes (read + write).
    pub fn total_bytes(&self) -> f64 {
        self.total.total_bytes()
    }

    /// Node-wide read-to-write ratio.
    pub fn read_write_ratio(&self) -> f64 {
        self.total.read_write_ratio()
    }
}

/// Node-level SPMD simulator.
#[derive(Debug, Clone)]
pub struct NodeSim {
    config: SimConfig,
}

impl NodeSim {
    /// Create a simulator from a configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.ranks >= 1, "need at least one rank");
        assert!(
            config.ranks <= config.machine.total_cores(),
            "cannot oversubscribe the node"
        );
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The closure-based entry points always simulate the default
    /// LRU + write-allocate hierarchy; a non-default policy configuration
    /// would be silently ignored there, so flag it in debug builds.
    fn assert_default_policies(&self, entry: &str) {
        debug_assert!(
            self.config.replacement == ReplacementPolicyKind::default()
                && self.config.write_policy == WritePolicyKind::default(),
            "{entry} always simulates the default LRU + write-allocate hierarchy; \
             use run_spmd_memo for policy sweeps"
        );
    }

    /// Run an SPMD kernel, simulating one representative core per distinct
    /// domain occupancy and scaling the counters by the number of ranks at
    /// that occupancy.
    ///
    /// The kernel receives the rank id it is standing in for and the core
    /// simulator to drive.
    pub fn run_spmd<F>(&self, kernel: F) -> NodeSimReport
    where
        F: Fn(usize, &mut CoreSim),
    {
        self.assert_default_policies("run_spmd");
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut first = true;
        // Per-load dedup indexed by the domain load itself: O(1) per level
        // instead of a linear scan over every previously simulated load.
        let mut by_load: Vec<Option<MemCounters>> = vec![None; occ.busiest + 1];
        // One core simulator serves every distinct domain load: `reset`
        // reuses its cache arenas instead of reallocating three caches and
        // two coalescers per load level.
        let mut core: Option<CoreSim> = None;
        let mut first_rank_of_domain = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            // Re-use a previously simulated domain with the same load.
            let counters = if let Some(c) = by_load[count] {
                c
            } else {
                let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
                let options = self.config.core_options(count);
                if let Some(core) = core.as_mut() {
                    core.reset(ctx, options);
                } else {
                    core = Some(CoreSim::new(machine, ctx, options));
                }
                let core = core.as_mut().expect("initialised above");
                kernel(first_rank_of_domain, core);
                let c = core.flush();
                by_load[count] = Some(c);
                c
            };
            if first {
                per_rank = counters;
                first = false;
            }
            total.merge(&counters.scaled(count as f64));
            first_rank_of_domain += count;
        }

        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }

    /// Run an SPMD [`KernelSpec`] through a cross-sweep [`SimMemo`]: each
    /// distinct `(occupancy context, core options, kernel)` level is
    /// simulated at most once per memo lifetime and shared across every
    /// rank count of a sweep — bit-identical to [`run_spmd`] with a closure
    /// driving the same spec (see `crate::memo` for why memo hits are
    /// exact).  Misses simulate on the thread-local pooled core, so the
    /// cache arenas are reused across calls as well.
    ///
    /// [`run_spmd`]: Self::run_spmd
    ///
    /// Honours the configuration's [`replacement`](SimConfig::replacement)
    /// and [`write_policy`](SimConfig::write_policy) selectors by
    /// dispatching to the matching monomorphised hierarchy.
    pub fn run_spmd_memo(&self, kernel: &KernelSpec, memo: &SimMemo) -> NodeSimReport {
        use ReplacementPolicyKind as R;
        use WritePolicyKind as W;
        match (self.config.replacement, self.config.write_policy) {
            (R::Lru, W::Allocate) => {
                self.run_spmd_memo_typed::<TrueLru, WriteAllocate>(kernel, memo)
            }
            (R::Lru, W::NoAllocate) => {
                self.run_spmd_memo_typed::<TrueLru, NoWriteAllocate>(kernel, memo)
            }
            (R::Lru, W::NonTemporal) => {
                self.run_spmd_memo_typed::<TrueLru, NonTemporal>(kernel, memo)
            }
            (R::Plru, W::Allocate) => {
                self.run_spmd_memo_typed::<TreePlru, WriteAllocate>(kernel, memo)
            }
            (R::Plru, W::NoAllocate) => {
                self.run_spmd_memo_typed::<TreePlru, NoWriteAllocate>(kernel, memo)
            }
            (R::Plru, W::NonTemporal) => {
                self.run_spmd_memo_typed::<TreePlru, NonTemporal>(kernel, memo)
            }
            (R::Srrip, W::Allocate) => {
                self.run_spmd_memo_typed::<Srrip, WriteAllocate>(kernel, memo)
            }
            (R::Srrip, W::NoAllocate) => {
                self.run_spmd_memo_typed::<Srrip, NoWriteAllocate>(kernel, memo)
            }
            (R::Srrip, W::NonTemporal) => {
                self.run_spmd_memo_typed::<Srrip, NonTemporal>(kernel, memo)
            }
            (R::Random, W::Allocate) => {
                self.run_spmd_memo_typed::<RandomEvict, WriteAllocate>(kernel, memo)
            }
            (R::Random, W::NoAllocate) => {
                self.run_spmd_memo_typed::<RandomEvict, NoWriteAllocate>(kernel, memo)
            }
            (R::Random, W::NonTemporal) => {
                self.run_spmd_memo_typed::<RandomEvict, NonTemporal>(kernel, memo)
            }
        }
    }

    fn run_spmd_memo_typed<RP: ReplacementPolicy, WP: WritePolicy>(
        &self,
        kernel: &KernelSpec,
        memo: &SimMemo,
    ) -> NodeSimReport {
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut first = true;
        let mut by_load: Vec<Option<MemCounters>> = vec![None; occ.busiest + 1];
        let mut first_rank_of_domain = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            let counters = if let Some(c) = by_load[count] {
                c
            } else {
                let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
                let options = self.config.core_options(count);
                let c = memo.counters_for::<RP, WP>(
                    machine,
                    ctx,
                    options,
                    kernel,
                    first_rank_of_domain,
                );
                by_load[count] = Some(c);
                c
            };
            if first {
                per_rank = counters;
                first = false;
            }
            total.merge(&counters.scaled(count as f64));
            first_rank_of_domain += count;
        }

        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }

    /// Run an SPMD kernel simulating *every* rank individually.  Exact but
    /// linearly more expensive; used to validate the representative-core
    /// approximation.
    pub fn run_spmd_exact<F>(&self, kernel: F) -> NodeSimReport
    where
        F: Fn(usize, &mut CoreSim),
    {
        self.assert_default_policies("run_spmd_exact");
        let machine = &self.config.machine;
        let occ = DomainOccupancy::compact(machine, self.config.ranks);

        let mut total = MemCounters::new();
        let mut per_rank = MemCounters::new();
        let mut core: Option<CoreSim> = None;
        let mut rank = 0usize;
        for &count in &occ.cores_per_domain {
            if count == 0 {
                break;
            }
            let ctx = OccupancyContext::domain_load(machine, count, occ.active_domains);
            for _ in 0..count {
                let options = self.config.core_options(count);
                if let Some(core) = core.as_mut() {
                    core.reset(ctx, options);
                } else {
                    core = Some(CoreSim::new(machine, ctx, options));
                }
                let core = core.as_mut().expect("initialised above");
                kernel(rank, core);
                let c = core.flush();
                if rank == 0 {
                    per_rank = c;
                }
                total.merge(&c);
                rank += 1;
            }
        }
        NodeSimReport {
            ranks: self.config.ranks,
            total,
            per_rank,
            cores_per_domain: occ.cores_per_domain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    fn store_kernel(n: u64) -> impl Fn(usize, &mut CoreSim) {
        move |rank, core| {
            let base = (rank as u64) << 36;
            for i in 0..n {
                core.store(base + i * 8, 8);
            }
        }
    }

    #[test]
    fn representative_matches_exact_on_uniform_occupancy() {
        // 72 ranks load every ICX domain with exactly 18 cores; with one
        // distinct domain load the representative core must reproduce the
        // exact per-rank simulation bit for bit (regression guard for the
        // `CoreSim::reset` reuse in both loops).
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 72));
        let fast = sim.run_spmd(store_kernel(2048));
        let exact = sim.run_spmd_exact(store_kernel(2048));
        // The representative core is bit-identical; the node totals only up
        // to summation order (one `c * 18` versus eighteen additions).
        assert_eq!(fast.per_rank, exact.per_rank);
        assert_eq!(fast.cores_per_domain, exact.cores_per_domain);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        assert!(rel(fast.total.read_lines, exact.total.read_lines) < 1e-12);
        assert!(rel(fast.total.write_lines, exact.total.write_lines) < 1e-12);
        assert!(rel(fast.total.itom_lines, exact.total.itom_lines) < 1e-12);
        assert!(
            rel(
                fast.total.write_allocate_lines,
                exact.total.write_allocate_lines
            ) < 1e-12
        );
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_core_reuse() {
        // The reused core must carry no state between domain-load levels or
        // between whole runs.
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 20));
        let a = sim.run_spmd(store_kernel(2048));
        let b = sim.run_spmd(store_kernel(2048));
        assert_eq!(a.total, b.total);
        assert_eq!(a.per_rank, b.per_rank);
    }

    #[test]
    fn batched_kernel_matches_scalar_kernel_node_wide() {
        use crate::access::AccessRun;
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 19));
        let scalar = sim.run_spmd(store_kernel(4096));
        let batched = sim.run_spmd(|rank, core| {
            let base = (rank as u64) << 36;
            core.drive_run(AccessRun::store(base, 4096));
        });
        assert_eq!(scalar.total, batched.total);
        assert_eq!(scalar.per_rank, batched.per_rank);
    }

    #[test]
    fn representative_matches_exact_for_uniform_kernel() {
        let m = icelake_sp_8360y();
        let cfg = SimConfig::new(m, 4);
        let sim = NodeSim::new(cfg);
        let fast = sim.run_spmd(store_kernel(4096));
        let exact = sim.run_spmd_exact(store_kernel(4096));
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        assert!(rel(fast.total.read_lines, exact.total.read_lines) < 1e-9);
        assert!(rel(fast.total.write_lines, exact.total.write_lines) < 1e-9);
        assert!(rel(fast.total.itom_lines, exact.total.itom_lines.max(1e-12)) < 1e-9);
    }

    #[test]
    fn scaling_store_ratio_drops_with_cores() {
        let m = icelake_sp_8360y();
        let ratio = |ranks: usize| {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let rep = sim.run_spmd(store_kernel(4096));
            rep.total_bytes() / rep.total.write_bytes()
        };
        let serial = ratio(1);
        let saturated = ratio(18);
        assert!(serial > 1.9, "serial store ratio ≈ 2, got {serial}");
        assert!(
            saturated < 1.3,
            "saturated store ratio must drop, got {saturated}"
        );
    }

    #[test]
    fn new_domain_worsens_the_ratio_again() {
        let m = icelake_sp_8360y();
        let ratio = |ranks: usize| {
            let sim = NodeSim::new(SimConfig::new(m.clone(), ranks));
            let rep = sim.run_spmd(store_kernel(4096));
            rep.total_bytes() / rep.total.write_bytes()
        };
        // 18 ranks saturate domain 0; 20 ranks put two lonely ranks on
        // domain 1 whose stores cannot be evaded → node ratio rises.
        assert!(ratio(20) > ratio(18));
    }

    #[test]
    fn speci2m_off_keeps_ratio_at_two() {
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 36).without_speci2m());
        let rep = sim.run_spmd(store_kernel(4096));
        let ratio = rep.total_bytes() / rep.total.write_bytes();
        assert!(
            ratio > 1.95,
            "without SpecI2M all stores write-allocate, got {ratio}"
        );
    }

    #[test]
    fn policy_selectors_change_the_memoized_simulation() {
        use crate::access::AccessKind;
        use crate::memo::RankBase;
        let m = icelake_sp_8360y();
        let spec = KernelSpec::contiguous(
            RankBase::Shifted { shift: 36, plus: 0 },
            0,
            4096,
            AccessKind::Store,
        );
        let memo = SimMemo::new();
        let run = |cfg: SimConfig| NodeSim::new(cfg).run_spmd_memo(&spec, &memo);
        let wa = run(SimConfig::new(m.clone(), 1));
        let nowa = run(SimConfig::new(m.clone(), 1).with_write_policy(WritePolicyKind::NoAllocate));
        let nt = run(SimConfig::new(m.clone(), 1).with_write_policy(WritePolicyKind::NonTemporal));
        // Serial write-allocate reads every store line back; no-allocate
        // writes it through without a read; the NT policy also avoids the
        // read-for-ownership on full lines.
        assert!(wa.total.read_lines > 0.9 * 512.0);
        assert!(nowa.total.read_lines < 1.0, "{}", nowa.total.read_lines);
        assert!(nt.total.read_lines < 0.2 * 512.0, "{}", nt.total.read_lines);
        assert!(nowa.total.write_lines > 0.95 * 512.0);
        // A non-LRU replacement policy still runs end to end and produces
        // a distinct memo entry (same kernel, different key).
        let before = memo.len();
        let plru = run(SimConfig::new(m, 1).with_replacement(ReplacementPolicyKind::Plru));
        assert_eq!(plru.ranks, 1);
        assert!(memo.len() > before);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_panics() {
        let m = icelake_sp_8360y();
        let cores = m.total_cores();
        let _ = NodeSim::new(SimConfig::new(m, cores + 1));
    }

    #[test]
    fn report_helpers() {
        let m = icelake_sp_8360y();
        let sim = NodeSim::new(SimConfig::new(m, 2));
        let rep = sim.run_spmd(store_kernel(1024));
        assert_eq!(rep.ranks, 2);
        assert_eq!(rep.cores_per_domain.iter().sum::<usize>(), 2);
        assert!(rep.total_bytes() > 0.0);
        assert!(rep.read_write_ratio() > 0.0);
    }
}
