//! Reusable access-pattern generators.
//!
//! The microbenchmarks (`clover-ubench`) and the row-sampled CloverLeaf
//! traffic measurements (`clover-perfmon`) drive the core simulator with a
//! small set of canonical patterns: contiguous array sweeps, row-wise sweeps
//! with halo gaps, and multi-array stencil row sweeps.
//!
//! All drivers run on the batched line-granular fast path
//! ([`CoreSim::drive_run`] and friends); each keeps a `drive_scalar`
//! reference implementation issuing one 8-byte access per element, used by
//! the equivalence tests to prove the fast path changes nothing but speed.

pub use crate::access::ELEM_BYTES;
use crate::access::{line_of, AccessKind, AccessRun, LINE_BYTES};
use crate::cache::CacheBank;
use crate::hierarchy::{CoreSim, PrivateCore};
use crate::policy::{ReplacementPolicy, WritePolicy};

/// Issue one scalar 8-byte access of the given kind.
fn scalar_access<R: ReplacementPolicy, W: WritePolicy>(
    core: &mut CoreSim<R, W>,
    kind: AccessKind,
    addr: u64,
) {
    match kind {
        AccessKind::Load => core.load(addr, ELEM_BYTES as u32),
        AccessKind::Store => core.store(addr, ELEM_BYTES as u32),
        AccessKind::StoreNT => core.store_nt(addr, ELEM_BYTES as u32),
    }
}

/// [`scalar_access`] against a split hierarchy (private half + explicit
/// last-level bank) — the co-run cursor's primitive.
fn scalar_access_split<B: CacheBank, W: WritePolicy, L: CacheBank>(
    core: &mut PrivateCore<B, W>,
    llc: &mut L,
    kind: AccessKind,
    addr: u64,
) {
    match kind {
        AccessKind::Load => core.load(llc, addr, ELEM_BYTES as u32),
        AccessKind::Store => core.store(llc, addr, ELEM_BYTES as u32),
        AccessKind::StoreNT => core.store_nt(llc, addr, ELEM_BYTES as u32),
    }
}

/// A contiguous sweep over `elements` doubles starting at `base`.
#[derive(Debug, Clone, Copy)]
pub struct ArraySweep {
    /// First byte address of the array.
    pub base: u64,
    /// Number of double elements.
    pub elements: u64,
    /// Kind of access performed on each element.
    pub kind: AccessKind,
}

impl ArraySweep {
    /// Drive the sweep through a core simulator (batched fast path).
    pub fn drive<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        core.drive_run(AccessRun {
            base: self.base,
            elements: self.elements,
            kind: self.kind,
        });
    }

    /// Per-element reference implementation (bit-identical, slower).
    pub fn drive_scalar<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        for i in 0..self.elements {
            scalar_access(core, self.kind, self.base + i * ELEM_BYTES);
        }
    }

    /// Total bytes explicitly touched by the sweep.
    pub fn touched_bytes(&self) -> u64 {
        self.elements * ELEM_BYTES
    }
}

/// A row-wise sweep: `rows` rows of `inner` doubles each, separated by a
/// halo gap of `halo` doubles that is *not* touched — the access pattern of
/// a rank that owns a narrow strip of a larger grid (the copy-with-halo
/// microbenchmark of Figs. 8 and 11).
#[derive(Debug, Clone, Copy)]
pub struct RowSweep {
    /// First byte address of the first row.
    pub base: u64,
    /// Touched elements per row.
    pub inner: u64,
    /// Untouched halo elements between consecutive rows.
    pub halo: u64,
    /// Number of rows.
    pub rows: u64,
    /// Kind of access performed on each element.
    pub kind: AccessKind,
}

impl RowSweep {
    /// Row stride in elements (touched + halo).
    pub fn stride_elements(&self) -> u64 {
        self.inner + self.halo
    }

    /// Byte address of element `i` in row `row`.
    pub fn addr(&self, row: u64, i: u64) -> u64 {
        self.base + (row * self.stride_elements() + i) * ELEM_BYTES
    }

    /// Drive the sweep through a core simulator: one batched run per row.
    pub fn drive<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        for row in 0..self.rows {
            core.drive_run(AccessRun {
                base: self.addr(row, 0),
                elements: self.inner,
                kind: self.kind,
            });
        }
    }

    /// Per-element reference implementation (bit-identical, slower).
    pub fn drive_scalar<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        for row in 0..self.rows {
            for i in 0..self.inner {
                scalar_access(core, self.kind, self.addr(row, i));
            }
        }
    }

    /// Total bytes explicitly touched.
    pub fn touched_bytes(&self) -> u64 {
        self.rows * self.inner * ELEM_BYTES
    }
}

/// One array operand of a stencil row sweep.
#[derive(Debug, Clone)]
pub struct StencilOperand {
    /// Base byte address of the array.
    pub base: u64,
    /// Offsets accessed relative to the centre point, in (di, dk) element
    /// units where `di` moves along the inner dimension and `dk` along the
    /// outer (row) dimension.
    pub offsets: Vec<(i64, i64)>,
    /// Kind of access for this operand.
    pub kind: AccessKind,
}

/// A row-wise sweep of a 2D stencil over several arrays: the access pattern
/// of one CloverLeaf hotspot loop restricted to a band of rows.
///
/// All arrays share the same logical grid layout: row stride
/// `row_stride` elements, the sweep covers rows `k0..k0+rows` and inner
/// indices `i0..i0+inner`.
#[derive(Debug, Clone)]
pub struct StencilRowSweep {
    /// Arrays read/written by the loop body, with their stencil offsets.
    pub operands: Vec<StencilOperand>,
    /// Row stride of the grid in elements (including halos).
    pub row_stride: u64,
    /// First inner index of the sweep.
    pub i0: u64,
    /// Number of inner iterations per row.
    pub inner: u64,
    /// First row of the sweep.
    pub k0: u64,
    /// Number of rows.
    pub rows: u64,
}

/// One flattened `(operand, offset)` access stream of a stencil sweep; its
/// address advances by 8 bytes per inner iteration.
#[derive(Debug, Clone, Copy)]
struct StencilStream {
    kind: AccessKind,
    /// Byte address at the first inner index of the current row.
    row_base: u64,
}

impl StencilRowSweep {
    /// Byte address of logical grid point `(i, k)` of an operand.
    fn addr(&self, base: u64, i: i64, k: i64) -> u64 {
        let idx = k * self.row_stride as i64 + i;
        debug_assert!(idx >= 0, "stencil access out of the allocated halo region");
        base + idx as u64 * ELEM_BYTES
    }

    /// Drive the sweep through a core simulator in the loop order of the
    /// Fortran source: outer loop over rows, inner loop over `i`, reads
    /// before the write of each iteration.
    ///
    /// Fast path: the inner loop advances every access stream by 8 bytes
    /// per iteration, so all streams cross cache-line boundaries at
    /// predictable points.  Between two crossings, every load is a
    /// guaranteed L1 hit of the line its stream just touched and every
    /// store is a pure coverage merge in the coalescer — so the driver
    /// executes only the first iteration of each such segment faithfully
    /// and accounts the rest in bulk, at one cache probe per line instead
    /// of one per element.  The result is bit-identical to
    /// [`drive_scalar`](Self::drive_scalar): the bulk phase performs no
    /// fills or stream transitions, leaves the same final LRU order (the
    /// streams are visited in operand order, like the last scalar
    /// iteration) and counts the same hits; whenever its preconditions
    /// cannot be proven (a misaligned operand base, a line evicted or a
    /// stream displaced within the first iteration) it falls back to the
    /// scalar path for the affected span.
    pub fn drive<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        // Element accesses below assume 8-byte-aligned operands (true for
        // every simulated allocation); otherwise elements straddle lines
        // and the segment bookkeeping no longer holds.
        if self.operands.iter().any(|op| op.base % ELEM_BYTES != 0) {
            self.drive_scalar(core);
            return;
        }
        let mut streams: Vec<StencilStream> = Vec::new();
        for k in self.k0..self.k0 + self.rows {
            streams.clear();
            for op in &self.operands {
                for &(di, dk) in &op.offsets {
                    streams.push(StencilStream {
                        kind: op.kind,
                        row_base: self.addr(op.base, self.i0 as i64 + di, k as i64 + dk),
                    });
                }
            }
            self.drive_row(core, &streams);
        }
    }

    /// Drive one row given the flattened streams positioned at `i0`.
    fn drive_row<R: ReplacementPolicy, W: WritePolicy>(
        &self,
        core: &mut CoreSim<R, W>,
        streams: &[StencilStream],
    ) {
        let mut done = 0u64; // inner iterations completed
        while done < self.inner {
            // Execute the segment's first iteration faithfully, in the
            // scalar operand order (this is where line crossings, cache
            // fills and coalescer transitions happen).
            for s in streams {
                scalar_access(core, s.kind, s.row_base + done * ELEM_BYTES);
            }
            // The segment extends until any stream reaches its next line
            // boundary (each stream advances 8 bytes per iteration and is
            // 8-aligned, so the residual is exact).
            let mut seg = self.inner - done;
            for s in streams {
                let addr = s.row_base + done * ELEM_BYTES;
                seg = seg.min((LINE_BYTES - addr % LINE_BYTES) / ELEM_BYTES);
            }
            if seg > 1 {
                // Bulk preconditions: every load line resident in L1 and
                // every store stream still open on its line.  After the
                // faithful first iteration this is the overwhelmingly
                // common case; it can only fail if that iteration evicted
                // one of its own lines or displaced a store stream.
                let provable = streams.iter().all(|s| {
                    let line = line_of(s.row_base + done * ELEM_BYTES);
                    match s.kind {
                        AccessKind::Load => core.l1_contains(line),
                        AccessKind::Store => core.coalescer_at_line(line, false),
                        AccessKind::StoreNT => core.coalescer_at_line(line, true),
                    }
                });
                if provable {
                    for s in streams {
                        let addr = s.row_base + (done + 1) * ELEM_BYTES;
                        let line = line_of(addr);
                        match s.kind {
                            AccessKind::Load => {
                                let resident = core.l1_touch_repeat(line, seg - 1);
                                debug_assert!(resident, "bulk phase cannot evict");
                            }
                            AccessKind::Store => core.store_line_segment(
                                line,
                                addr % LINE_BYTES,
                                (seg - 1) * ELEM_BYTES,
                                false,
                            ),
                            AccessKind::StoreNT => core.store_line_segment(
                                line,
                                addr % LINE_BYTES,
                                (seg - 1) * ELEM_BYTES,
                                true,
                            ),
                        }
                    }
                } else {
                    for step in 1..seg {
                        for s in streams {
                            scalar_access(core, s.kind, s.row_base + (done + step) * ELEM_BYTES);
                        }
                    }
                }
            }
            done += seg;
        }
    }

    /// Per-element reference implementation (bit-identical, slower).
    pub fn drive_scalar<R: ReplacementPolicy, W: WritePolicy>(&self, core: &mut CoreSim<R, W>) {
        for k in self.k0..self.k0 + self.rows {
            for i in self.i0..self.i0 + self.inner {
                for op in &self.operands {
                    for &(di, dk) in &op.offsets {
                        let addr = self.addr(op.base, i as i64 + di, k as i64 + dk);
                        scalar_access(core, op.kind, addr);
                    }
                }
            }
        }
    }

    /// Number of grid-point updates performed by the sweep.
    pub fn iterations(&self) -> u64 {
        self.inner * self.rows
    }
}

/// A resumable [`StencilRowSweep`] driver for co-scheduled tenants.
///
/// The co-run engine interleaves N tenants' access streams at the shared
/// last level in turns of a configurable number of cache lines; each
/// tenant's progress therefore has to survive across turns.  The cursor
/// holds the sweep position (row, inner iterations completed, the
/// flattened streams of the current row) and
/// [`advance`](Self::advance) drives the *same* operation sequence as
/// [`StencilRowSweep::drive`] — the fast segment loop with its faithful
/// first iteration, provable-bulk accounting and scalar fallbacks —
/// pausing only at segment boundaries.  Because no simulator state spans a
/// segment boundary (all carry-over lives in the caches and coalescers
/// themselves), a single-tenant cursor run is bit-identical to
/// `drive` for *any* turn budget, which the tier-1 proptests assert.
#[derive(Debug, Clone)]
pub struct SweepCursor {
    sweep: StencilRowSweep,
    /// Misaligned operand base: step per-element like
    /// [`StencilRowSweep::drive_scalar`] instead of per-segment.
    scalar: bool,
    /// Accesses per inner iteration (flattened stream count).
    ops_per_iter: u64,
    /// Current absolute row (`k0..k0 + rows`).
    k: u64,
    /// Inner iterations completed in the current row.
    done: u64,
    /// Flattened streams positioned at the current row (aligned mode).
    streams: Vec<StencilStream>,
    finished: bool,
}

impl SweepCursor {
    /// Position a cursor at the start of `sweep`.
    pub fn new(sweep: StencilRowSweep) -> Self {
        let scalar = sweep.operands.iter().any(|op| op.base % ELEM_BYTES != 0);
        let ops_per_iter: u64 = sweep
            .operands
            .iter()
            .map(|op| op.offsets.len() as u64)
            .sum();
        let finished = sweep.rows == 0;
        let mut cursor = Self {
            k: sweep.k0,
            sweep,
            scalar,
            ops_per_iter,
            done: 0,
            streams: Vec::new(),
            finished,
        };
        if !cursor.finished && !cursor.scalar {
            cursor.build_streams();
        }
        cursor
    }

    /// Whether the sweep has been driven to completion.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Drive until at least `budget_lines` line-granular operations have
    /// been issued or the sweep finishes, whichever comes first; returns
    /// the number actually issued.  A zero budget still makes progress
    /// (one segment), so a co-run round-robin can never stall.
    pub fn advance<B: CacheBank, W: WritePolicy, L: CacheBank>(
        &mut self,
        core: &mut PrivateCore<B, W>,
        llc: &mut L,
        budget_lines: u64,
    ) -> u64 {
        let budget = budget_lines.max(1);
        let mut spent = 0u64;
        while !self.finished && spent < budget {
            if self.done >= self.sweep.inner {
                self.next_row();
                continue;
            }
            if self.scalar {
                // One faithful per-element iteration in drive_scalar order.
                let i = (self.sweep.i0 + self.done) as i64;
                let k = self.k as i64;
                for op in &self.sweep.operands {
                    for &(di, dk) in &op.offsets {
                        let addr = self.sweep.addr(op.base, i + di, k + dk);
                        scalar_access_split(core, llc, op.kind, addr);
                    }
                }
                self.done += 1;
                spent += self.ops_per_iter.max(1);
                continue;
            }
            // One segment, transcribed from `StencilRowSweep::drive_row`:
            // faithful first iteration in stream order, then provable bulk.
            let done = self.done;
            for s in &self.streams {
                scalar_access_split(core, llc, s.kind, s.row_base + done * ELEM_BYTES);
            }
            let mut seg = self.sweep.inner - done;
            for s in &self.streams {
                let addr = s.row_base + done * ELEM_BYTES;
                seg = seg.min((LINE_BYTES - addr % LINE_BYTES) / ELEM_BYTES);
            }
            if seg > 1 {
                let provable = self.streams.iter().all(|s| {
                    let line = line_of(s.row_base + done * ELEM_BYTES);
                    match s.kind {
                        AccessKind::Load => core.l1_contains(line),
                        AccessKind::Store => core.coalescer_at_line(line, false),
                        AccessKind::StoreNT => core.coalescer_at_line(line, true),
                    }
                });
                if provable {
                    for s in &self.streams {
                        let addr = s.row_base + (done + 1) * ELEM_BYTES;
                        let line = line_of(addr);
                        match s.kind {
                            AccessKind::Load => {
                                let resident = core.l1_touch_repeat(line, seg - 1);
                                debug_assert!(resident, "bulk phase cannot evict");
                            }
                            AccessKind::Store => core.store_line_segment(
                                llc,
                                line,
                                addr % LINE_BYTES,
                                (seg - 1) * ELEM_BYTES,
                                false,
                            ),
                            AccessKind::StoreNT => core.store_line_segment(
                                llc,
                                line,
                                addr % LINE_BYTES,
                                (seg - 1) * ELEM_BYTES,
                                true,
                            ),
                        }
                    }
                } else {
                    for step in 1..seg {
                        for s in &self.streams {
                            scalar_access_split(
                                core,
                                llc,
                                s.kind,
                                s.row_base + (done + step) * ELEM_BYTES,
                            );
                        }
                    }
                }
            }
            self.done += seg;
            spent += (self.streams.len() as u64).max(1);
        }
        spent
    }

    /// Advance to the next row, rebuilding the streams (aligned mode).
    fn next_row(&mut self) {
        self.k += 1;
        self.done = 0;
        if self.k >= self.sweep.k0 + self.sweep.rows {
            self.finished = true;
            return;
        }
        if !self.scalar {
            self.build_streams();
        }
    }

    /// Flatten the operands into per-row streams positioned at `i0` of the
    /// current row — the same flattening `StencilRowSweep::drive` performs.
    fn build_streams(&mut self) {
        self.streams.clear();
        let k = self.k as i64;
        let i0 = self.sweep.i0 as i64;
        for op in &self.sweep.operands {
            for &(di, dk) in &op.offsets {
                self.streams.push(StencilStream {
                    kind: op.kind,
                    row_base: self.sweep.addr(op.base, i0 + di, k + dk),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{CoreSimOptions, OccupancyContext};
    use clover_machine::icelake_sp_8360y;

    fn serial_core() -> CoreSim {
        let m = icelake_sp_8360y();
        CoreSim::new(&m, OccupancyContext::serial(&m), CoreSimOptions::default())
    }

    fn loaded_core() -> CoreSim {
        let m = icelake_sp_8360y();
        let ctx = OccupancyContext::compact(&m, m.total_cores());
        CoreSim::new(
            &m,
            ctx,
            CoreSimOptions {
                l3_sharers: 36,
                ..Default::default()
            },
        )
    }

    #[test]
    fn array_sweep_load_volume() {
        let mut core = serial_core();
        let sweep = ArraySweep {
            base: 0,
            elements: 8192,
            kind: AccessKind::Load,
        };
        sweep.drive(&mut core);
        let c = core.flush();
        let expected_lines = 8192.0 / 8.0;
        assert!(c.read_lines >= expected_lines);
        assert!(c.read_lines <= expected_lines * 1.05);
        assert_eq!(sweep.touched_bytes(), 8192 * 8);
    }

    #[test]
    fn row_sweep_addressing() {
        let r = RowSweep {
            base: 1000,
            inner: 216,
            halo: 5,
            rows: 3,
            kind: AccessKind::Store,
        };
        assert_eq!(r.stride_elements(), 221);
        assert_eq!(r.addr(0, 0), 1000);
        assert_eq!(r.addr(1, 0), 1000 + 221 * 8);
        assert_eq!(r.touched_bytes(), 3 * 216 * 8);
    }

    #[test]
    fn row_sweep_store_generates_writes() {
        let mut core = serial_core();
        let r = RowSweep {
            base: 0,
            inner: 216,
            halo: 5,
            rows: 8,
            kind: AccessKind::Store,
        };
        r.drive(&mut core);
        let c = core.flush();
        let touched_lines = r.touched_bytes() as f64 / 64.0;
        assert!(c.write_lines >= touched_lines * 0.95);
        // Serial run: every written line needs a write-allocate read.
        assert!(c.read_lines >= touched_lines * 0.9);
    }

    #[test]
    fn array_and_row_sweeps_match_their_scalar_reference() {
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::StoreNT] {
            let sweep = ArraySweep {
                base: 24,
                elements: 700,
                kind,
            };
            let mut fast = serial_core();
            let mut slow = serial_core();
            sweep.drive(&mut fast);
            sweep.drive_scalar(&mut slow);
            assert_eq!(fast.cache_stats(), slow.cache_stats());
            assert_eq!(fast.flush(), slow.flush());

            let rowsweep = RowSweep {
                base: 8 * 3,
                inner: 216,
                halo: 5,
                rows: 12,
                kind,
            };
            let mut fast = loaded_core();
            let mut slow = loaded_core();
            rowsweep.drive(&mut fast);
            rowsweep.drive_scalar(&mut slow);
            assert_eq!(fast.cache_stats(), slow.cache_stats());
            assert_eq!(fast.flush(), slow.flush());
        }
    }

    fn copy_stencil(stride: u64, i0: u64, inner: u64, rows: u64) -> StencilRowSweep {
        StencilRowSweep {
            operands: vec![
                StencilOperand {
                    base: 1 << 30,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Load,
                },
                StencilOperand {
                    base: 1 << 31,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Store,
                },
            ],
            row_stride: stride,
            i0,
            inner,
            k0: 1,
            rows,
        }
    }

    #[test]
    fn stencil_row_sweep_copy_traffic() {
        // A plain copy stencil: read b(i,k), write a(i,k).
        let mut core = serial_core();
        let stride = 2048u64;
        let sweep = copy_stencil(stride, 0, stride, 4);
        sweep.drive(&mut core);
        let c = core.flush();
        let it = sweep.iterations() as f64;
        // Per iteration: 8 B read (b) + 8 B WA (a, serial) + 8 B write (a).
        let bytes_per_it = c.total_bytes() / it;
        assert!(
            (bytes_per_it - 24.0).abs() < 2.0,
            "bytes/it = {bytes_per_it}"
        );
    }

    #[test]
    fn stencil_four_point_layer_condition_satisfied() {
        // y(i,k) = f(x(i,k±1), x(i±1,k)) with a row length small enough for
        // the layer condition: x should be read from memory only once.
        let mut core = serial_core();
        let stride = 1024u64; // 8 KiB per row: 3 rows easily fit in L2
        let sweep = StencilRowSweep {
            operands: vec![
                StencilOperand {
                    base: 1 << 30,
                    offsets: vec![(0, 1), (-1, 0), (1, 0), (0, -1)],
                    kind: AccessKind::Load,
                },
                StencilOperand {
                    base: 1 << 31,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Store,
                },
            ],
            row_stride: stride,
            i0: 1,
            inner: stride - 2,
            k0: 1,
            rows: 16,
        };
        sweep.drive(&mut core);
        let c = core.flush();
        let it = sweep.iterations() as f64;
        // Layer condition fulfilled: x read once (8 B/it) + WA (8) + write (8)
        // ≈ 24 B/it (plus halo rows overhead).
        let bytes_per_it = c.total_bytes() / it;
        assert!(
            bytes_per_it < 30.0,
            "LC satisfied should give ~24-26 B/it, got {bytes_per_it}"
        );
    }

    #[test]
    fn stencil_drive_matches_scalar_reference() {
        // Shapes covering unaligned starts, short rows and neighbour
        // offsets, under both serial and loaded occupancy.
        let sweeps = [
            copy_stencil(221, 2, 216, 8),
            copy_stencil(67, 1, 63, 6),
            StencilRowSweep {
                operands: vec![
                    StencilOperand {
                        base: 1 << 30,
                        offsets: vec![(0, 1), (-1, 0), (1, 0), (0, -1)],
                        kind: AccessKind::Load,
                    },
                    StencilOperand {
                        base: (1 << 31) + 8,
                        offsets: vec![(0, 0), (1, 0)],
                        kind: AccessKind::Load,
                    },
                    StencilOperand {
                        base: 1 << 32,
                        offsets: vec![(0, 0)],
                        kind: AccessKind::Store,
                    },
                    StencilOperand {
                        base: 1 << 33,
                        offsets: vec![(0, 0)],
                        kind: AccessKind::StoreNT,
                    },
                ],
                row_stride: 529,
                i0: 2,
                inner: 525,
                k0: 1,
                rows: 7,
            },
        ];
        for (n, sweep) in sweeps.iter().enumerate() {
            for mk in [serial_core as fn() -> CoreSim, loaded_core] {
                let mut fast = mk();
                let mut slow = mk();
                sweep.drive(&mut fast);
                sweep.drive_scalar(&mut slow);
                assert_eq!(fast.cache_stats(), slow.cache_stats(), "sweep {n}");
                assert_eq!(fast.flush(), slow.flush(), "sweep {n}");
            }
        }
    }

    #[test]
    fn stencil_misaligned_base_falls_back_to_scalar() {
        // A 4-byte-aligned operand cannot use the segment fast path; the
        // driver must still produce the scalar result.
        let mut sweep = copy_stencil(128, 0, 128, 3);
        sweep.operands[0].base += 4;
        let mut fast = serial_core();
        let mut slow = serial_core();
        sweep.drive(&mut fast);
        sweep.drive_scalar(&mut slow);
        assert_eq!(fast.cache_stats(), slow.cache_stats());
        assert_eq!(fast.flush(), slow.flush());
    }

    #[test]
    fn stencil_iterations_count() {
        let sweep = StencilRowSweep {
            operands: vec![],
            row_stride: 100,
            i0: 2,
            inner: 50,
            k0: 3,
            rows: 7,
        };
        assert_eq!(sweep.iterations(), 350);
    }
}
