//! Reusable access-pattern generators.
//!
//! The microbenchmarks (`clover-ubench`) and the row-sampled CloverLeaf
//! traffic measurements (`clover-perfmon`) drive the core simulator with a
//! small set of canonical patterns: contiguous array sweeps, row-wise sweeps
//! with halo gaps, and multi-array stencil row sweeps.

use crate::access::AccessKind;
use crate::hierarchy::CoreSim;

/// Size of a double-precision element in bytes.
pub const ELEM_BYTES: u64 = 8;

/// A contiguous sweep over `elements` doubles starting at `base`.
#[derive(Debug, Clone, Copy)]
pub struct ArraySweep {
    /// First byte address of the array.
    pub base: u64,
    /// Number of double elements.
    pub elements: u64,
    /// Kind of access performed on each element.
    pub kind: AccessKind,
}

impl ArraySweep {
    /// Drive the sweep through a core simulator.
    pub fn drive(&self, core: &mut CoreSim) {
        for i in 0..self.elements {
            let addr = self.base + i * ELEM_BYTES;
            match self.kind {
                AccessKind::Load => core.load(addr, ELEM_BYTES as u32),
                AccessKind::Store => core.store(addr, ELEM_BYTES as u32),
                AccessKind::StoreNT => core.store_nt(addr, ELEM_BYTES as u32),
            }
        }
    }

    /// Total bytes explicitly touched by the sweep.
    pub fn touched_bytes(&self) -> u64 {
        self.elements * ELEM_BYTES
    }
}

/// A row-wise sweep: `rows` rows of `inner` doubles each, separated by a
/// halo gap of `halo` doubles that is *not* touched — the access pattern of
/// a rank that owns a narrow strip of a larger grid (the copy-with-halo
/// microbenchmark of Figs. 8 and 11).
#[derive(Debug, Clone, Copy)]
pub struct RowSweep {
    /// First byte address of the first row.
    pub base: u64,
    /// Touched elements per row.
    pub inner: u64,
    /// Untouched halo elements between consecutive rows.
    pub halo: u64,
    /// Number of rows.
    pub rows: u64,
    /// Kind of access performed on each element.
    pub kind: AccessKind,
}

impl RowSweep {
    /// Row stride in elements (touched + halo).
    pub fn stride_elements(&self) -> u64 {
        self.inner + self.halo
    }

    /// Byte address of element `i` in row `row`.
    pub fn addr(&self, row: u64, i: u64) -> u64 {
        self.base + (row * self.stride_elements() + i) * ELEM_BYTES
    }

    /// Drive the sweep through a core simulator.
    pub fn drive(&self, core: &mut CoreSim) {
        for row in 0..self.rows {
            for i in 0..self.inner {
                let addr = self.addr(row, i);
                match self.kind {
                    AccessKind::Load => core.load(addr, ELEM_BYTES as u32),
                    AccessKind::Store => core.store(addr, ELEM_BYTES as u32),
                    AccessKind::StoreNT => core.store_nt(addr, ELEM_BYTES as u32),
                }
            }
        }
    }

    /// Total bytes explicitly touched.
    pub fn touched_bytes(&self) -> u64 {
        self.rows * self.inner * ELEM_BYTES
    }
}

/// One array operand of a stencil row sweep.
#[derive(Debug, Clone)]
pub struct StencilOperand {
    /// Base byte address of the array.
    pub base: u64,
    /// Offsets accessed relative to the centre point, in (di, dk) element
    /// units where `di` moves along the inner dimension and `dk` along the
    /// outer (row) dimension.
    pub offsets: Vec<(i64, i64)>,
    /// Kind of access for this operand.
    pub kind: AccessKind,
}

/// A row-wise sweep of a 2D stencil over several arrays: the access pattern
/// of one CloverLeaf hotspot loop restricted to a band of rows.
///
/// All arrays share the same logical grid layout: row stride
/// `row_stride` elements, the sweep covers rows `k0..k0+rows` and inner
/// indices `i0..i0+inner`.
#[derive(Debug, Clone)]
pub struct StencilRowSweep {
    /// Arrays read/written by the loop body, with their stencil offsets.
    pub operands: Vec<StencilOperand>,
    /// Row stride of the grid in elements (including halos).
    pub row_stride: u64,
    /// First inner index of the sweep.
    pub i0: u64,
    /// Number of inner iterations per row.
    pub inner: u64,
    /// First row of the sweep.
    pub k0: u64,
    /// Number of rows.
    pub rows: u64,
}

impl StencilRowSweep {
    /// Byte address of logical grid point `(i, k)` of an operand.
    fn addr(&self, base: u64, i: i64, k: i64) -> u64 {
        let idx = k * self.row_stride as i64 + i;
        debug_assert!(idx >= 0, "stencil access out of the allocated halo region");
        base + idx as u64 * ELEM_BYTES
    }

    /// Drive the sweep through a core simulator in the loop order of the
    /// Fortran source: outer loop over rows, inner loop over `i`, reads
    /// before the write of each iteration.
    pub fn drive(&self, core: &mut CoreSim) {
        for k in self.k0..self.k0 + self.rows {
            for i in self.i0..self.i0 + self.inner {
                for op in &self.operands {
                    for &(di, dk) in &op.offsets {
                        let addr = self.addr(op.base, i as i64 + di, k as i64 + dk);
                        match op.kind {
                            AccessKind::Load => core.load(addr, ELEM_BYTES as u32),
                            AccessKind::Store => core.store(addr, ELEM_BYTES as u32),
                            AccessKind::StoreNT => core.store_nt(addr, ELEM_BYTES as u32),
                        }
                    }
                }
            }
        }
    }

    /// Number of grid-point updates performed by the sweep.
    pub fn iterations(&self) -> u64 {
        self.inner * self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{CoreSimOptions, OccupancyContext};
    use clover_machine::icelake_sp_8360y;

    fn serial_core() -> CoreSim {
        let m = icelake_sp_8360y();
        CoreSim::new(&m, OccupancyContext::serial(&m), CoreSimOptions::default())
    }

    #[test]
    fn array_sweep_load_volume() {
        let mut core = serial_core();
        let sweep = ArraySweep {
            base: 0,
            elements: 8192,
            kind: AccessKind::Load,
        };
        sweep.drive(&mut core);
        let c = core.flush();
        let expected_lines = 8192.0 / 8.0;
        assert!(c.read_lines >= expected_lines);
        assert!(c.read_lines <= expected_lines * 1.05);
        assert_eq!(sweep.touched_bytes(), 8192 * 8);
    }

    #[test]
    fn row_sweep_addressing() {
        let r = RowSweep {
            base: 1000,
            inner: 216,
            halo: 5,
            rows: 3,
            kind: AccessKind::Store,
        };
        assert_eq!(r.stride_elements(), 221);
        assert_eq!(r.addr(0, 0), 1000);
        assert_eq!(r.addr(1, 0), 1000 + 221 * 8);
        assert_eq!(r.touched_bytes(), 3 * 216 * 8);
    }

    #[test]
    fn row_sweep_store_generates_writes() {
        let mut core = serial_core();
        let r = RowSweep {
            base: 0,
            inner: 216,
            halo: 5,
            rows: 8,
            kind: AccessKind::Store,
        };
        r.drive(&mut core);
        let c = core.flush();
        let touched_lines = r.touched_bytes() as f64 / 64.0;
        assert!(c.write_lines >= touched_lines * 0.95);
        // Serial run: every written line needs a write-allocate read.
        assert!(c.read_lines >= touched_lines * 0.9);
    }

    #[test]
    fn stencil_row_sweep_copy_traffic() {
        // A plain copy stencil: read b(i,k), write a(i,k).
        let mut core = serial_core();
        let stride = 2048u64;
        let sweep = StencilRowSweep {
            operands: vec![
                StencilOperand {
                    base: 1 << 30,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Load,
                },
                StencilOperand {
                    base: 1 << 31,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Store,
                },
            ],
            row_stride: stride,
            i0: 0,
            inner: stride,
            k0: 1,
            rows: 4,
        };
        sweep.drive(&mut core);
        let c = core.flush();
        let it = sweep.iterations() as f64;
        // Per iteration: 8 B read (b) + 8 B WA (a, serial) + 8 B write (a).
        let bytes_per_it = c.total_bytes() / it;
        assert!(
            (bytes_per_it - 24.0).abs() < 2.0,
            "bytes/it = {bytes_per_it}"
        );
    }

    #[test]
    fn stencil_four_point_layer_condition_satisfied() {
        // y(i,k) = f(x(i,k±1), x(i±1,k)) with a row length small enough for
        // the layer condition: x should be read from memory only once.
        let mut core = serial_core();
        let stride = 1024u64; // 8 KiB per row: 3 rows easily fit in L2
        let sweep = StencilRowSweep {
            operands: vec![
                StencilOperand {
                    base: 1 << 30,
                    offsets: vec![(0, 1), (-1, 0), (1, 0), (0, -1)],
                    kind: AccessKind::Load,
                },
                StencilOperand {
                    base: 1 << 31,
                    offsets: vec![(0, 0)],
                    kind: AccessKind::Store,
                },
            ],
            row_stride: stride,
            i0: 1,
            inner: stride - 2,
            k0: 1,
            rows: 16,
        };
        sweep.drive(&mut core);
        let c = core.flush();
        let it = sweep.iterations() as f64;
        // Layer condition fulfilled: x read once (8 B/it) + WA (8) + write (8)
        // ≈ 24 B/it (plus halo rows overhead).
        let bytes_per_it = c.total_bytes() / it;
        assert!(
            bytes_per_it < 30.0,
            "LC satisfied should give ~24-26 B/it, got {bytes_per_it}"
        );
    }

    #[test]
    fn stencil_iterations_count() {
        let sweep = StencilRowSweep {
            operands: vec![],
            row_stride: 100,
            i0: 2,
            inner: 50,
            k0: 3,
            rows: 7,
        };
        assert_eq!(sweep.iterations(), 350);
    }
}
