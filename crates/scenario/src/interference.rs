//! Shared-LLC interference evaluation for contended scenarios.
//!
//! A scenario with a non-default [`Aggressor`] models a *multi-tenant*
//! node: next to each CloverLeaf rank, a competing kernel stream runs on a
//! sibling core of the same ccNUMA domain and fights for the shared
//! last-level cache.  The analytic scaling model knows nothing about
//! cache contention, so this module derives a per-scenario **victim
//! traffic inflation factor** from first principles: a two-tenant co-run
//! of the cache simulator ([`NodeSim::run_corun`]) pits a CloverLeaf-like
//! reuse proxy against the scenario's aggressor on one shared LLC, and the
//! ratio of the victim's contended to solo memory traffic scales the
//! model's per-step volume and time.
//!
//! The proxy footprints are derived from the machine's LLC capacity, so
//! the same aggressor thrashes a 54 MiB Ice Lake LLC and a 2 MiB CVA6 LLC
//! alike; the simulation is deterministic, so the factor — and every
//! artifact byte derived from it — is reproducible.

use clover_cachesim::{
    AccessKind, KernelSpec, NodeSim, RankBase, SimConfig, SimMemo, SpecOperand, LINE_BYTES,
};
use clover_machine::Machine;

use crate::plan::Aggressor;

/// Rank-window shift of the tenant kernels: 2^40 bytes per tenant, far
/// above every proxy footprint, so the windows are always disjoint (and
/// memo-exact, being above `MIN_MEMO_SHIFT`).
pub const TENANT_SHIFT: u32 = 40;

/// A reuse kernel: `passes` sweeps over the same `bytes`-sized window.
fn reuse_kernel(bytes: u64, passes: u64, kind: AccessKind) -> KernelSpec {
    let elements = (bytes / 8).max(1);
    KernelSpec {
        rank_base: RankBase::Shifted {
            shift: TENANT_SHIFT,
            plus: 0,
        },
        operands: vec![SpecOperand {
            offset: 0,
            points: vec![(0, 0)],
            kind,
        }],
        // A zero row stride makes every row revisit the same elements.
        row_stride: 0,
        i0: 0,
        inner: elements,
        k0: 0,
        rows: passes.max(1),
    }
}

/// A single-pass streaming kernel over `bytes` per operand.
fn stream_kernel(bytes: u64, kinds: &[AccessKind]) -> KernelSpec {
    let elements = (bytes / 8).max(1);
    KernelSpec {
        rank_base: RankBase::Shifted {
            shift: TENANT_SHIFT,
            plus: 0,
        },
        operands: kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| SpecOperand {
                // Separate sub-windows per stream, line-aligned.
                offset: i as u64 * bytes.next_multiple_of(LINE_BYTES) * 2,
                points: vec![(0, 0)],
                kind,
            })
            .collect(),
        row_stride: elements.max(1),
        i0: 0,
        inner: elements,
        k0: 0,
        rows: 1,
    }
}

/// The victim proxy: a read-reuse working set of a quarter of the LLC —
/// larger than any private level, solo-resident in the shared LLC, and the
/// shape CloverLeaf's field arrays take under the paper's layer condition.
pub fn victim_kernel(machine: &Machine) -> KernelSpec {
    reuse_kernel(
        machine.caches.l3.capacity_bytes as u64 / 4,
        3,
        AccessKind::Load,
    )
}

/// The aggressor kernel of `aggressor` on `machine`, or `None` for the
/// exclusive-node default.
pub fn aggressor_kernel(machine: &Machine, aggressor: Aggressor) -> Option<KernelSpec> {
    let llc = machine.caches.l3.capacity_bytes as u64;
    match aggressor {
        Aggressor::None => None,
        Aggressor::Stream => Some(stream_kernel(llc, &[AccessKind::Load])),
        Aggressor::StreamHeavy => {
            Some(stream_kernel(llc, &[AccessKind::Load, AccessKind::StoreNT]))
        }
        Aggressor::Thrash => Some(reuse_kernel(llc, 2, AccessKind::Load)),
    }
}

/// The victim traffic inflation factor of running `aggressor` next to a
/// CloverLeaf-like reuse tenant on `machine`'s shared LLC: contended over
/// solo memory bytes of the victim, `>= 1.0` (`1.0` exactly for
/// [`Aggressor::None`]).
///
/// Deterministic in all inputs; `memo` carries the underlying co-run and
/// solo simulations across calls (e.g. across the scenarios of one plan).
pub fn interference_factor(
    machine: &Machine,
    aggressor: Aggressor,
    interleave: u64,
    memo: &SimMemo,
) -> f64 {
    let Some(aggressor_spec) = aggressor_kernel(machine, aggressor) else {
        return 1.0;
    };
    let victim = victim_kernel(machine);
    let sim = NodeSim::new(SimConfig::new(machine.clone(), 2));
    let report = sim.run_corun(&[victim, aggressor_spec], interleave, memo);
    let v = &report.tenants[0];
    let solo = v.solo.total_bytes();
    if solo <= 0.0 {
        return 1.0;
    }
    (v.counters.total_bytes() / solo).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::{cva6_like, icelake_sp_8360y};

    #[test]
    fn no_aggressor_is_exactly_neutral() {
        let memo = SimMemo::new();
        let f = interference_factor(&icelake_sp_8360y(), Aggressor::None, 64, &memo);
        assert_eq!(f, 1.0);
        assert_eq!(memo.corun_len(), 0, "the neutral case must not simulate");
    }

    #[test]
    fn aggressors_inflate_victim_traffic_in_intensity_order() {
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        let stream = interference_factor(&m, Aggressor::Stream, 64, &memo);
        let thrash = interference_factor(&m, Aggressor::Thrash, 64, &memo);
        assert!(
            stream > 1.0,
            "a stream must inflict extra traffic, got {stream}"
        );
        assert!(
            thrash >= stream,
            "thrash ({thrash}) must be at least as hostile as stream ({stream})"
        );
        // Deterministic and memoized: a repeat costs no simulation.
        let misses = memo.corun_stats().misses;
        assert_eq!(
            interference_factor(&m, Aggressor::Stream, 64, &memo),
            stream
        );
        assert_eq!(memo.corun_stats().misses, misses);
    }

    #[test]
    fn factor_scales_to_small_machines_too() {
        // The CVA6's 2 MiB LLC gets footprints derived from *its* capacity;
        // the factor stays finite and >= 1.
        let f = interference_factor(&cva6_like(), Aggressor::StreamHeavy, 16, &SimMemo::new());
        assert!(f.is_finite() && f >= 1.0, "got {f}");
    }
}
