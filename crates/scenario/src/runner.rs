//! Parallel sweep runner.
//!
//! Scenarios are independent, so the runner fans them out across `jobs`
//! `crossbeam` scoped worker threads pulling indices from a shared atomic
//! counter (work stealing without any queue allocation).  Results travel
//! back tagged with their scenario index and are re-assembled into plan
//! order, so the output is byte-identical to the sequential path regardless
//! of worker interleaving — determinism is a tested property, not an
//! accident.

use std::sync::atomic::{AtomicUsize, Ordering};

use clover_golden::Artifact;

use crate::plan::{Scenario, SweepPlan};

/// Evaluate `scenarios` with `eval`, fanning out across `jobs` worker
/// threads.  The returned artifacts are in scenario order for any `jobs`.
///
/// # Panics
/// Panics if `jobs == 0` or a worker panics (the panic is propagated).
pub fn run_scenarios_with<F>(scenarios: &[Scenario], jobs: usize, eval: F) -> Vec<Artifact>
where
    F: Fn(&Scenario) -> Artifact + Sync,
{
    assert!(jobs >= 1, "jobs must be >= 1");
    if jobs == 1 || scenarios.len() <= 1 {
        return scenarios.iter().map(|s| eval(s)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let workers = jobs.min(scenarios.len());
    let eval = &eval;
    let next = &next;
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                if tx.send((i, eval(&scenarios[i]))).is_err() {
                    break;
                }
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    drop(tx);

    let mut slots: Vec<Option<Artifact>> = scenarios.iter().map(|_| None).collect();
    while let Ok((i, artifact)) = rx.recv() {
        debug_assert!(slots[i].is_none(), "scenario {i} evaluated twice");
        slots[i] = Some(artifact);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every scenario evaluated exactly once"))
        .collect()
}

/// Expand and run a whole plan with the default evaluator
/// ([`crate::evaluate`]).
pub fn run_plan(plan: &SweepPlan, jobs: usize) -> Vec<Artifact> {
    run_scenarios_with(&plan.expand(), jobs, crate::evaluate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{RankRange, Stage};
    use clover_machine::MachinePreset;

    fn small_plan() -> SweepPlan {
        SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .machine(MachinePreset::SapphireRapids8480)
            .grid(1920)
            .grid(960)
            .ranks(RankRange::new(1, 12))
            .stage(Stage::Original)
            .stage(Stage::Optimized)
    }

    /// Render artifacts to the exact bytes the CLI would print.
    fn bytes(artifacts: &[Artifact]) -> String {
        artifacts.iter().map(crate::render_block).collect()
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let plan = small_plan();
        let sequential = run_plan(&plan, 1);
        for jobs in [2, 4, 7] {
            let parallel = run_plan(&plan, jobs);
            assert_eq!(bytes(&sequential), bytes(&parallel), "jobs={jobs}");
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn results_come_back_in_plan_order() {
        let plan = small_plan();
        let scenarios = plan.expand();
        let artifacts = run_plan(&plan, 3);
        assert_eq!(artifacts.len(), scenarios.len());
        for (scenario, artifact) in scenarios.iter().zip(&artifacts) {
            assert_eq!(scenario.id(), artifact.id);
        }
    }

    #[test]
    fn more_jobs_than_scenarios_is_fine() {
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 4))
            .stage(Stage::Original);
        let artifacts = run_plan(&plan, 64);
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].rows.len(), 4);
    }

    #[test]
    fn empty_plan_runs_to_empty_output() {
        let artifacts = run_plan(&SweepPlan::new(), 4);
        assert!(artifacts.is_empty());
    }

    #[test]
    #[should_panic(expected = "jobs must be >= 1")]
    fn zero_jobs_is_rejected() {
        run_plan(&small_plan(), 0);
    }

    #[test]
    fn worker_panic_propagates() {
        let scenarios = small_plan().expand();
        let result = std::panic::catch_unwind(|| {
            run_scenarios_with(&scenarios, 2, |_| panic!("evaluator exploded"))
        });
        assert!(result.is_err());
    }
}
