//! Parallel sweep runner.
//!
//! The runner fans work out across `jobs` `crossbeam` scoped worker threads
//! pulling indices from a shared atomic counter (work stealing without any
//! queue allocation).  Since PR 5 the unit of work is not a whole scenario
//! but a *flattened `(scenario, item)` pair* — for the default evaluator an
//! item is one rank point — so a single large curve no longer serialises on
//! one worker.  Workers write each result straight into its pre-allocated
//! slot (no channel buffering the whole plan until the scope ends), and the
//! assembly walks the slots in plan order, so the output is byte-identical
//! to the sequential path regardless of worker interleaving — determinism
//! is a tested property, not an accident.

use std::sync::atomic::{AtomicUsize, Ordering};

use clover_golden::Artifact;
use parking_lot::Mutex;

use crate::plan::Scenario;

/// Evaluate the flattened `(scenario, item)` pairs of `scenarios` with
/// `eval_item`, fanning out across `jobs` worker threads, then assemble one
/// artifact per scenario (in plan order) from its items (in item order).
///
/// `item_count` declares how many independent items each scenario splits
/// into; `eval_item(scenario, i)` evaluates item `i` of a scenario;
/// `assemble(scenario, items)` builds the scenario's artifact from all its
/// item results.  The output is identical for any `jobs`.
///
/// # Panics
/// Panics if `jobs == 0` or a worker panics (the panic is propagated).
pub fn run_scenario_items_with<T, C, E, A>(
    scenarios: &[Scenario],
    jobs: usize,
    item_count: C,
    eval_item: E,
    assemble: A,
) -> Vec<Artifact>
where
    T: Send,
    C: Fn(&Scenario) -> usize,
    E: Fn(&Scenario, usize) -> T + Sync,
    A: Fn(&Scenario, Vec<T>) -> Artifact,
{
    // A constant key leaves the stable sort a no-op: execution stays in
    // plan order.
    run_scenario_items_scheduled(scenarios, jobs, item_count, |_, _| 0, eval_item, assemble)
}

/// [`run_scenario_items_with`] with a caller-supplied *affinity key*:
/// items with equal `schedule_key(scenario, i)` are executed consecutively
/// (stably, plan order within a key), so a work-stealing worker that picks
/// up one item of a group tends to pick up its siblings while whatever
/// per-group state the evaluator warms (a memoized trace, a pooled core
/// arena) is still hot.
///
/// The key reorders *execution only*: results land in the same
/// pre-allocated plan-position slots and assembly walks them in plan
/// order, so the output is byte-identical for every key function and every
/// `jobs` — the same determinism contract as the unscheduled runner.
///
/// # Panics
/// Panics if `jobs == 0` or a worker panics (the panic is propagated).
pub fn run_scenario_items_scheduled<T, C, K, E, A>(
    scenarios: &[Scenario],
    jobs: usize,
    item_count: C,
    schedule_key: K,
    eval_item: E,
    assemble: A,
) -> Vec<Artifact>
where
    T: Send,
    C: Fn(&Scenario) -> usize,
    K: Fn(&Scenario, usize) -> u64,
    E: Fn(&Scenario, usize) -> T + Sync,
    A: Fn(&Scenario, Vec<T>) -> Artifact,
{
    assert!(jobs >= 1, "jobs must be >= 1");
    let counts: Vec<usize> = scenarios.iter().map(&item_count).collect();
    let total: usize = counts.iter().sum();
    if jobs == 1 || total <= 1 {
        return scenarios
            .iter()
            .zip(&counts)
            .map(|(s, &n)| assemble(s, (0..n).map(|i| eval_item(s, i)).collect()))
            .collect();
    }

    // Flattened work list: global index -> (scenario index, item index).
    let index: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .flat_map(|(si, &n)| (0..n).map(move |ii| (si, ii)))
        .collect();
    // Execution order: stable-sorted by affinity key so key groups run
    // consecutively; slots stay addressed by plan position.
    let mut order: Vec<usize> = (0..index.len()).collect();
    order.sort_by_key(|&i| {
        let (si, ii) = index[i];
        schedule_key(&scenarios[si], ii)
    });
    // Pre-allocated result slots, written directly by the workers: peak
    // extra memory is the in-flight items of the `jobs` workers, not a
    // channel buffering the whole plan until the scope ends.
    let slots: Vec<Mutex<Option<T>>> = index.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(index.len());
    let eval_item = &eval_item;
    let next = &next;
    let index = &index;
    let order = &order;
    let slots = &slots;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move |_| loop {
                let pos = next.fetch_add(1, Ordering::Relaxed);
                if pos >= order.len() {
                    break;
                }
                let i = order[pos];
                let (si, ii) = index[i];
                let value = eval_item(&scenarios[si], ii);
                *slots[i].lock() = Some(value);
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));

    let mut artifacts = Vec::with_capacity(scenarios.len());
    let mut cursor = 0usize;
    for (s, &n) in scenarios.iter().zip(&counts) {
        let items: Vec<T> = slots[cursor..cursor + n]
            .iter()
            .map(|slot| {
                slot.lock()
                    .take()
                    .expect("every item evaluated exactly once")
            })
            .collect();
        cursor += n;
        artifacts.push(assemble(s, items));
    }
    artifacts
}

/// Evaluate `scenarios` with `eval`, fanning out across `jobs` worker
/// threads.  The returned artifacts are in scenario order for any `jobs`.
/// (One item per scenario; use [`run_scenario_items_with`] to split a
/// scenario into finer work items.)
///
/// # Panics
/// Panics if `jobs == 0` or a worker panics (the panic is propagated).
pub fn run_scenarios_with<F>(scenarios: &[Scenario], jobs: usize, eval: F) -> Vec<Artifact>
where
    F: Fn(&Scenario) -> Artifact + Sync,
{
    run_scenario_items_with(
        scenarios,
        jobs,
        |_| 1,
        |s, _| eval(s),
        |_, mut items| items.pop().expect("one item per scenario"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{RankRange, Stage, SweepPlan};
    use crate::run_plan;
    use clover_golden::Cell;
    use clover_machine::MachinePreset;

    fn small_plan() -> SweepPlan {
        SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .machine(MachinePreset::SapphireRapids8480)
            .grid(1920)
            .grid(960)
            .ranks(RankRange::new(1, 12))
            .stage(Stage::Original)
            .stage(Stage::Optimized)
    }

    /// Render artifacts to the exact bytes the CLI would print.
    fn bytes(artifacts: &[Artifact]) -> String {
        artifacts.iter().map(crate::render_block).collect()
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let plan = small_plan();
        let sequential = run_plan(&plan, 1);
        for jobs in [2, 4, 7] {
            let parallel = run_plan(&plan, jobs);
            assert_eq!(bytes(&sequential), bytes(&parallel), "jobs={jobs}");
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn nested_runner_matches_the_per_scenario_evaluator() {
        // The flattened (scenario, rank point) fan-out with the plan-wide
        // memo must reproduce the plain per-scenario evaluator exactly.
        let plan = small_plan();
        let reference: Vec<Artifact> = plan.expand().iter().map(crate::evaluate).collect();
        for jobs in [1, 3] {
            assert_eq!(reference, run_plan(&plan, jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn results_come_back_in_plan_order() {
        let plan = small_plan();
        let scenarios = plan.expand();
        let artifacts = run_plan(&plan, 3);
        assert_eq!(artifacts.len(), scenarios.len());
        for (scenario, artifact) in scenarios.iter().zip(&artifacts) {
            assert_eq!(scenario.id(), artifact.id);
        }
    }

    #[test]
    fn more_jobs_than_scenarios_is_fine() {
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 4))
            .stage(Stage::Original);
        let artifacts = run_plan(&plan, 64);
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].rows.len(), 4);
    }

    #[test]
    fn empty_plan_runs_to_empty_output() {
        let artifacts = run_plan(&SweepPlan::new(), 4);
        assert!(artifacts.is_empty());
    }

    #[test]
    #[should_panic(expected = "jobs must be >= 1")]
    fn zero_jobs_is_rejected() {
        run_plan(&small_plan(), 0);
    }

    #[test]
    fn scheduling_reorders_execution_but_not_output() {
        // An adversarial key (reverse plan order) and a grouping key (item
        // index across scenarios) must both produce byte-identical output
        // to the unscheduled runner, for any worker count.
        let scenarios = small_plan().expand();
        let count = |s: &Scenario| s.ranks.len();
        let eval = |s: &Scenario, i: usize| format!("{}#{}", s.id(), i);
        let assemble = |s: &Scenario, items: Vec<String>| {
            let mut a = Artifact::new(&s.id(), "sched").column("item", None);
            for item in items {
                a.push_row(vec![item.into()]);
            }
            a
        };
        let reference = run_scenario_items_with(&scenarios, 1, count, eval, assemble);
        for jobs in [1usize, 2, 5] {
            let reversed = run_scenario_items_scheduled(
                &scenarios,
                jobs,
                count,
                |s, i| u64::MAX - (s.ranks.start + i) as u64,
                eval,
                assemble,
            );
            assert_eq!(reference, reversed, "reversed key, jobs={jobs}");
            let grouped = run_scenario_items_scheduled(
                &scenarios,
                jobs,
                count,
                |_, i| i as u64,
                eval,
                assemble,
            );
            assert_eq!(reference, grouped, "grouping key, jobs={jobs}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let scenarios = small_plan().expand();
        let result = std::panic::catch_unwind(|| {
            run_scenarios_with(&scenarios, 2, |_| panic!("evaluator exploded"))
        });
        assert!(result.is_err());
    }

    #[test]
    fn item_runner_splits_and_reassembles_in_order() {
        let scenarios = small_plan().expand();
        for jobs in [1, 2, 5] {
            let artifacts = run_scenario_items_with(
                &scenarios,
                jobs,
                |s| s.ranks.len(),
                |s, i| format!("{}#{}", s.id(), i),
                |s, items| {
                    let mut a = Artifact::new(&s.id(), "item order").column("item", None);
                    for item in items {
                        a.push_row(vec![item.into()]);
                    }
                    a
                },
            );
            assert_eq!(artifacts.len(), scenarios.len());
            for (s, a) in scenarios.iter().zip(&artifacts) {
                assert_eq!(a.rows.len(), s.ranks.len());
                for (i, row) in a.rows.iter().enumerate() {
                    match &row[0] {
                        Cell::Text(text) => assert_eq!(*text, format!("{}#{}", s.id(), i)),
                        other => panic!("expected a text cell, got {other:?}"),
                    }
                }
            }
        }
    }
}
