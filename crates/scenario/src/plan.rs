//! Scenario and sweep-plan types.

use std::fmt;

use clover_core::{CodeVariant, TrafficOptions};
use clover_machine::{MachinePreset, ReplacementPolicyKind, WritePolicyKind};

/// Code stage of a scenario: which variant of CloverLeaf the traffic model
/// evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The unmodified code (hardware SpecI2M where applicable).
    Original,
    /// The unmodified code with SpecI2M disabled via the MSR bit.
    SpecI2MOff,
    /// The paper's optimized code (NT stores + ac01/ac05 restructuring).
    Optimized,
}

impl Stage {
    /// Every stage, in canonical order.
    pub fn all() -> Vec<Stage> {
        vec![Stage::Original, Stage::SpecI2MOff, Stage::Optimized]
    }

    /// Stable name used in artifact ids and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Original => "original",
            Stage::SpecI2MOff => "speci2m-off",
            Stage::Optimized => "optimized",
        }
    }

    /// Parse a `--stage` argument: a stage name or `"all"` (every stage).
    pub fn parse(s: &str) -> Option<Vec<Stage>> {
        match s {
            "all" => Some(Stage::all()),
            "original" => Some(vec![Stage::Original]),
            "speci2m-off" => Some(vec![Stage::SpecI2MOff]),
            "optimized" => Some(vec![Stage::Optimized]),
            _ => None,
        }
    }

    /// The traffic-model code variant this stage maps to.
    pub fn variant(&self) -> CodeVariant {
        match self {
            Stage::Original => CodeVariant::Original,
            Stage::SpecI2MOff => CodeVariant::SpecI2MOff,
            Stage::Optimized => CodeVariant::Optimized,
        }
    }

    /// Traffic-model options of this stage on `ranks` ranks.
    pub fn options(&self, ranks: usize) -> TrafficOptions {
        TrafficOptions::for_variant(self.variant(), ranks)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Layer-condition axis of a sweep: whether the stencil rows of the local
/// grid fit the caches.  The paper's Tiny working set always fulfils the
/// layer condition on the evaluated machines; `Broken` exposes the dormant
/// what-if hook of the traffic model as a sweepable axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayerCondition {
    /// Stencil rows fit: reads follow the LC-fulfilled balance (default).
    #[default]
    Ok,
    /// Rows evicted between uses: reads follow the LC-broken balance.
    Broken,
}

impl LayerCondition {
    /// Both settings, default first.
    pub fn all() -> Vec<LayerCondition> {
        vec![LayerCondition::Ok, LayerCondition::Broken]
    }

    /// Stable name used in artifact ids and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            LayerCondition::Ok => "ok",
            LayerCondition::Broken => "broken",
        }
    }

    /// Parse a `--layer-condition` argument: a name or `"all"`.
    pub fn parse(s: &str) -> Option<Vec<LayerCondition>> {
        match s {
            "all" => Some(Self::all()),
            "ok" => Some(vec![LayerCondition::Ok]),
            "broken" => Some(vec![LayerCondition::Broken]),
            _ => None,
        }
    }

    /// The flag value the traffic model consumes.
    pub fn is_ok(&self) -> bool {
        matches!(self, LayerCondition::Ok)
    }
}

impl fmt::Display for LayerCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lines each co-scheduled tenant streams per turn at the shared LLC when
/// a scenario runs against an aggressor; the paper-faithful solo scenarios
/// never consult it.
pub const DEFAULT_INTERLEAVE: u64 = 64;

/// Multi-tenant interference axis: which competing kernel stream (if any)
/// is co-scheduled against the scenario's CloverLeaf ranks on the shared
/// last-level cache.
///
/// The aggressor's intensity is folded into the variant: `Stream` is a
/// single read stream, `StreamHeavy` doubles the streamed volume with a
/// non-temporal write stream, and `Thrash` cycles a reused footprint the
/// size of the whole shared LLC — the LRU worst case for a reuse victim.
/// Note that "heavy" means memory-bandwidth-heavy, not LLC-hostile: the
/// NT-store half of `StreamHeavy` bypasses the cache, so it spends half of
/// every co-run turn on traffic that allocates nothing — on an LLC-capacity
/// view it is *gentler* than `Stream`, which the interference artifacts
/// make visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggressor {
    /// No co-tenant: the paper's exclusive-node setup (default).
    #[default]
    None,
    /// One streaming read tenant (one pass over the LLC capacity).
    Stream,
    /// A read + non-temporal-write streaming tenant at twice the volume.
    StreamHeavy,
    /// A capacity-thrashing tenant cycling an LLC-sized reused footprint.
    Thrash,
}

impl Aggressor {
    /// Every aggressor, default first.
    pub fn all() -> Vec<Aggressor> {
        vec![
            Aggressor::None,
            Aggressor::Stream,
            Aggressor::StreamHeavy,
            Aggressor::Thrash,
        ]
    }

    /// Stable name used in artifact ids and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            Aggressor::None => "none",
            Aggressor::Stream => "stream",
            Aggressor::StreamHeavy => "stream-heavy",
            Aggressor::Thrash => "thrash",
        }
    }

    /// Parse an `--aggressor` argument: a name or `"all"`.
    pub fn parse(s: &str) -> Option<Vec<Aggressor>> {
        match s {
            "all" => Some(Self::all()),
            "none" => Some(vec![Aggressor::None]),
            "stream" => Some(vec![Aggressor::Stream]),
            "stream-heavy" => Some(vec![Aggressor::StreamHeavy]),
            "thrash" => Some(vec![Aggressor::Thrash]),
            _ => None,
        }
    }
}

impl fmt::Display for Aggressor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An inclusive rank range, written `start..end` on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RankRange {
    /// First rank count (inclusive).
    pub start: usize,
    /// Last rank count (inclusive).
    pub end: usize,
}

impl RankRange {
    /// Inclusive range from `start` to `end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Parse `"A..B"` (also accepted: `"A..=B"`); both bounds inclusive.
    pub fn parse(s: &str) -> Option<Self> {
        let (a, b) = s.split_once("..")?;
        let b = b.strip_prefix('=').unwrap_or(b);
        let start: usize = a.trim().parse().ok()?;
        let end: usize = b.trim().parse().ok()?;
        Some(Self { start, end })
    }

    /// Number of rank counts in the range (0 when empty).
    pub fn len(&self) -> usize {
        if self.start > self.end {
            0
        } else {
            self.end - self.start + 1
        }
    }

    /// True when the range contains no rank count.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The range as the iterator the scaling model consumes.
    pub fn iter(&self) -> std::ops::RangeInclusive<usize> {
        self.start..=self.end
    }
}

impl fmt::Display for RankRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One evaluation point of a sweep: every axis pinned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Machine the scenario runs on.
    pub machine: MachinePreset,
    /// Square grid size (cells per dimension).
    pub grid: usize,
    /// Rank counts to evaluate.
    pub ranks: RankRange,
    /// Code stage.
    pub stage: Stage,
    /// Cache replacement policy of the modelled hierarchy.
    pub replacement: ReplacementPolicyKind,
    /// Store-miss policy of the modelled hierarchy.
    pub write_policy: WritePolicyKind,
    /// Layer-condition assumption of the traffic model.
    pub layer_condition: LayerCondition,
    /// Co-scheduled interference tenant on the shared LLC.
    pub aggressor: Aggressor,
    /// Shared-LLC interleave granularity of a contended run (lines per
    /// tenant turn); inert when [`aggressor`](Self::aggressor) is `None`.
    pub interleave: u64,
}

impl Scenario {
    /// Stable identifier, used as the artifact id of the default evaluator.
    /// Policy axes append a suffix only when they deviate from the paper's
    /// defaults, so every pre-existing artifact id is unchanged.
    pub fn id(&self) -> String {
        let mut id = format!(
            "sweep-{}-g{}-r{}-{}",
            self.machine.name(),
            self.grid,
            self.ranks,
            self.stage
        );
        if self.replacement != ReplacementPolicyKind::default() {
            id.push('-');
            id.push_str(self.replacement.name());
        }
        if self.write_policy != WritePolicyKind::default() {
            id.push('-');
            id.push_str(self.write_policy.name());
        }
        if self.layer_condition != LayerCondition::default() {
            id.push_str("-lc-");
            id.push_str(self.layer_condition.name());
        }
        if self.aggressor != Aggressor::default() {
            id.push_str("-vs-");
            id.push_str(self.aggressor.name());
        }
        if self.interleave != DEFAULT_INTERLEAVE {
            id.push_str(&format!("-il{}", self.interleave));
        }
        id
    }

    /// Traffic-model options of this scenario at `ranks` ranks: the stage's
    /// options refined by the policy and layer-condition axes.
    pub fn options(&self, ranks: usize) -> TrafficOptions {
        self.stage
            .options(ranks)
            .with_layer_condition(self.layer_condition.is_ok())
            .with_replacement(self.replacement)
            .with_write_policy(self.write_policy)
    }

    /// Human-readable artifact title.
    pub fn title(&self) -> String {
        format!(
            "scaling sweep on {}: {g}x{g} grid, ranks {}, {} code",
            self.machine.name(),
            self.ranks,
            self.stage,
            g = self.grid,
        )
    }

    /// Check the scenario is evaluable; the error text is suitable for a
    /// command-line usage message.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid == 0 {
            return Err(format!("{}: grid size must be >= 1", self.id()));
        }
        if self.ranks.is_empty() {
            return Err(format!(
                "{}: empty rank range {} (start must be <= end)",
                self.id(),
                self.ranks
            ));
        }
        if self.ranks.start == 0 {
            return Err(format!("{}: rank counts start at 1", self.id()));
        }
        let cores = self.machine.machine().total_cores();
        if self.ranks.end > cores {
            return Err(format!(
                "{}: rank range {} exceeds the {} cores of {}",
                self.id(),
                self.ranks,
                cores,
                self.machine.name()
            ));
        }
        if self.interleave == 0 {
            return Err(format!(
                "{}: interleave granularity must be >= 1 line",
                self.id()
            ));
        }
        Ok(())
    }
}

/// A cartesian grid of scenarios: every machine × grid × rank range × stage
/// (× replacement × write policy × layer condition × aggressor ×
/// interleave) combination.  The policy and tenancy axes are optional:
/// leaving one empty pins it to the paper's default instead of emptying the
/// plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepPlan {
    /// Machine axis.
    pub machines: Vec<MachinePreset>,
    /// Grid-size axis.
    pub grids: Vec<usize>,
    /// Rank-range axis.
    pub rank_ranges: Vec<RankRange>,
    /// Code-stage axis.
    pub stages: Vec<Stage>,
    /// Replacement-policy axis (empty = the default LRU).
    pub replacements: Vec<ReplacementPolicyKind>,
    /// Write-policy axis (empty = the default write-allocate).
    pub write_policies: Vec<WritePolicyKind>,
    /// Layer-condition axis (empty = the default fulfilled).
    pub layer_conditions: Vec<LayerCondition>,
    /// Interference-tenant axis (empty = the default exclusive node).
    pub aggressors: Vec<Aggressor>,
    /// Interleave-granularity axis (empty = [`DEFAULT_INTERLEAVE`]).
    pub interleaves: Vec<u64>,
}

impl SweepPlan {
    /// Empty plan; fill the axes with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a machine to the machine axis.
    pub fn machine(mut self, preset: MachinePreset) -> Self {
        self.machines.push(preset);
        self
    }

    /// Add a grid size to the grid axis.
    pub fn grid(mut self, grid: usize) -> Self {
        self.grids.push(grid);
        self
    }

    /// Add a rank range to the rank axis.
    pub fn ranks(mut self, range: RankRange) -> Self {
        self.rank_ranges.push(range);
        self
    }

    /// Add a code stage to the stage axis.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Add a replacement policy to the (optional) replacement axis.
    pub fn replacement(mut self, replacement: ReplacementPolicyKind) -> Self {
        self.replacements.push(replacement);
        self
    }

    /// Add a write policy to the (optional) write-policy axis.
    pub fn write_policy(mut self, write_policy: WritePolicyKind) -> Self {
        self.write_policies.push(write_policy);
        self
    }

    /// Add a layer condition to the (optional) layer-condition axis.
    pub fn layer_condition(mut self, layer_condition: LayerCondition) -> Self {
        self.layer_conditions.push(layer_condition);
        self
    }

    /// Add an aggressor to the (optional) interference axis.
    pub fn aggressor(mut self, aggressor: Aggressor) -> Self {
        self.aggressors.push(aggressor);
        self
    }

    /// Add an interleave granularity to the (optional) interleave axis.
    pub fn interleave(mut self, interleave: u64) -> Self {
        self.interleaves.push(interleave);
        self
    }

    /// Number of scenarios the plan expands to (the product of the axis
    /// lengths; the optional policy axes count 1 when left empty).
    pub fn len(&self) -> usize {
        self.machines.len()
            * self.grids.len()
            * self.rank_ranges.len()
            * self.stages.len()
            * self.replacements.len().max(1)
            * self.write_policies.len().max(1)
            * self.layer_conditions.len().max(1)
            * self.aggressors.len().max(1)
            * self.interleaves.len().max(1)
    }

    /// True when any mandatory axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the cartesian product in deterministic order: machines
    /// outermost, then grids, rank ranges, stages, and the optional axes
    /// innermost (replacement, write policy, layer condition, aggressor,
    /// interleave).
    pub fn expand(&self) -> Vec<Scenario> {
        fn or_default<T: Copy + Default>(axis: &[T]) -> Vec<T> {
            if axis.is_empty() {
                vec![T::default()]
            } else {
                axis.to_vec()
            }
        }
        let replacements = or_default(&self.replacements);
        let write_policies = or_default(&self.write_policies);
        let layer_conditions = or_default(&self.layer_conditions);
        let aggressors = or_default(&self.aggressors);
        let interleaves = if self.interleaves.is_empty() {
            vec![DEFAULT_INTERLEAVE]
        } else {
            self.interleaves.clone()
        };
        let mut scenarios = Vec::with_capacity(self.len());
        for &machine in &self.machines {
            for &grid in &self.grids {
                for &ranks in &self.rank_ranges {
                    for &stage in &self.stages {
                        for &replacement in &replacements {
                            for &write_policy in &write_policies {
                                for &layer_condition in &layer_conditions {
                                    for &aggressor in &aggressors {
                                        for &interleave in &interleaves {
                                            scenarios.push(Scenario {
                                                machine,
                                                grid,
                                                ranks,
                                                stage,
                                                replacement,
                                                write_policy,
                                                layer_condition,
                                                aggressor,
                                                interleave,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// Validate every scenario of the plan (first error wins).
    pub fn validate(&self) -> Result<(), String> {
        for scenario in self.expand() {
            scenario.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_range_parses_both_syntaxes() {
        assert_eq!(RankRange::parse("1..72"), Some(RankRange::new(1, 72)));
        assert_eq!(RankRange::parse("9..=18"), Some(RankRange::new(9, 18)));
        assert_eq!(RankRange::parse("7..7"), Some(RankRange::new(7, 7)));
        assert_eq!(RankRange::parse("72"), None);
        assert_eq!(RankRange::parse("a..b"), None);
        assert_eq!(RankRange::parse("1..-3"), None);
    }

    #[test]
    fn rank_range_length_and_emptiness() {
        assert_eq!(RankRange::new(1, 72).len(), 72);
        assert_eq!(RankRange::new(7, 7).len(), 1);
        assert!(RankRange::new(5, 4).is_empty());
        assert_eq!(RankRange::new(5, 4).len(), 0);
    }

    #[test]
    fn stage_parsing_covers_all_and_rejects_unknown() {
        assert_eq!(Stage::parse("all"), Some(Stage::all()));
        assert_eq!(Stage::parse("original"), Some(vec![Stage::Original]));
        assert_eq!(Stage::parse("speci2m-off"), Some(vec![Stage::SpecI2MOff]));
        assert_eq!(Stage::parse("optimized"), Some(vec![Stage::Optimized]));
        assert_eq!(Stage::parse("turbo"), None);
    }

    #[test]
    fn expansion_count_is_the_cartesian_product() {
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .machine(MachinePreset::SapphireRapids8480)
            .grid(1920)
            .grid(4000)
            .grid(15_360)
            .ranks(RankRange::new(1, 18))
            .ranks(RankRange::new(36, 72))
            .stage(Stage::Original)
            .stage(Stage::Optimized);
        assert_eq!(plan.len(), 2 * 3 * 2 * 2);
        let scenarios = plan.expand();
        assert_eq!(scenarios.len(), plan.len());
        // Deterministic order: machines outermost, stages innermost.
        assert_eq!(scenarios[0].machine, MachinePreset::IceLakeSp8360y);
        assert_eq!(scenarios[0].stage, Stage::Original);
        assert_eq!(scenarios[1].stage, Stage::Optimized);
        assert_eq!(scenarios[11].machine, MachinePreset::IceLakeSp8360y);
        assert_eq!(scenarios[12].machine, MachinePreset::SapphireRapids8480);
        // Ids are unique across the expansion.
        let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), scenarios.len());
    }

    #[test]
    fn policy_axes_multiply_the_expansion_and_suffix_the_ids() {
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 4))
            .stage(Stage::Original)
            .replacement(ReplacementPolicyKind::Lru)
            .replacement(ReplacementPolicyKind::Plru)
            .write_policy(WritePolicyKind::Allocate)
            .write_policy(WritePolicyKind::NoAllocate)
            .layer_condition(LayerCondition::Broken);
        assert_eq!(plan.len(), 2 * 2);
        let scenarios = plan.expand();
        assert_eq!(scenarios.len(), 4);
        // Innermost nesting: replacement, then write policy, then LC.
        assert_eq!(scenarios[0].replacement, ReplacementPolicyKind::Lru);
        assert_eq!(scenarios[0].write_policy, WritePolicyKind::Allocate);
        assert_eq!(scenarios[1].write_policy, WritePolicyKind::NoAllocate);
        assert_eq!(scenarios[2].replacement, ReplacementPolicyKind::Plru);
        // Ids carry suffixes only for the non-default choices.
        assert_eq!(
            scenarios[0].id(),
            "sweep-icx-8360y-g1920-r1..4-original-lc-broken"
        );
        assert_eq!(
            scenarios[3].id(),
            "sweep-icx-8360y-g1920-r1..4-original-plru-no-allocate-lc-broken"
        );
        let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), scenarios.len());
    }

    #[test]
    fn default_scenario_ids_are_byte_stable() {
        // Plans that never touch the policy axes must keep their pre-policy
        // artifact ids so `figures all --check` stays byte-identical.
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 18))
            .stage(Stage::Original);
        let scenarios = plan.expand();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].id(), "sweep-icx-8360y-g1920-r1..18-original");
    }

    #[test]
    fn layer_condition_parses_names_and_all() {
        assert_eq!(LayerCondition::parse("ok"), Some(vec![LayerCondition::Ok]));
        assert_eq!(
            LayerCondition::parse("broken"),
            Some(vec![LayerCondition::Broken])
        );
        assert_eq!(LayerCondition::parse("all"), Some(LayerCondition::all()));
        assert_eq!(LayerCondition::parse("maybe"), None);
        assert!(LayerCondition::Ok.is_ok());
        assert!(!LayerCondition::Broken.is_ok());
    }

    #[test]
    fn empty_axis_empties_the_plan() {
        let plan = SweepPlan::new().grid(1920).ranks(RankRange::new(1, 4));
        assert!(plan.is_empty());
        assert!(plan.expand().is_empty());
    }

    #[test]
    fn validation_catches_boundary_mistakes() {
        let base = Scenario {
            machine: MachinePreset::IceLakeSp8360y,
            grid: 1920,
            ranks: RankRange::new(1, 72),
            stage: Stage::Original,
            replacement: ReplacementPolicyKind::default(),
            write_policy: WritePolicyKind::default(),
            layer_condition: LayerCondition::default(),
            aggressor: Aggressor::default(),
            interleave: DEFAULT_INTERLEAVE,
        };
        assert!(base.validate().is_ok());
        let mut s = base.clone();
        s.grid = 0;
        assert!(s.validate().unwrap_err().contains("grid"));
        let mut s = base.clone();
        s.ranks = RankRange::new(5, 4);
        assert!(s.validate().unwrap_err().contains("empty rank range"));
        let mut s = base.clone();
        s.ranks = RankRange::new(0, 4);
        assert!(s.validate().unwrap_err().contains("start at 1"));
        let mut s = base.clone();
        s.ranks = RankRange::new(1, 104);
        assert!(s.validate().unwrap_err().contains("exceeds"));
        // SPR 8470 has 104 cores, so the same range is fine there.
        s.machine = MachinePreset::SapphireRapids8470 { snc: true };
        assert!(s.validate().is_ok());
        let mut s = base.clone();
        s.interleave = 0;
        assert!(s.validate().unwrap_err().contains("interleave"));
    }

    #[test]
    fn aggressor_parses_names_and_all() {
        assert_eq!(Aggressor::parse("all"), Some(Aggressor::all()));
        assert_eq!(Aggressor::parse("none"), Some(vec![Aggressor::None]));
        assert_eq!(Aggressor::parse("stream"), Some(vec![Aggressor::Stream]));
        assert_eq!(
            Aggressor::parse("stream-heavy"),
            Some(vec![Aggressor::StreamHeavy])
        );
        assert_eq!(Aggressor::parse("thrash"), Some(vec![Aggressor::Thrash]));
        assert_eq!(Aggressor::parse("polite"), None);
    }

    #[test]
    fn tenancy_axes_multiply_the_expansion_and_suffix_the_ids() {
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 4))
            .stage(Stage::Original)
            .aggressor(Aggressor::None)
            .aggressor(Aggressor::Thrash)
            .interleave(DEFAULT_INTERLEAVE)
            .interleave(8);
        assert_eq!(plan.len(), 2 * 2);
        let scenarios = plan.expand();
        assert_eq!(scenarios.len(), 4);
        // Innermost nesting: aggressor, then interleave; defaults keep the
        // pre-tenancy id bytes.
        assert_eq!(scenarios[0].id(), "sweep-icx-8360y-g1920-r1..4-original");
        assert_eq!(
            scenarios[1].id(),
            "sweep-icx-8360y-g1920-r1..4-original-il8"
        );
        assert_eq!(
            scenarios[2].id(),
            "sweep-icx-8360y-g1920-r1..4-original-vs-thrash"
        );
        assert_eq!(
            scenarios[3].id(),
            "sweep-icx-8360y-g1920-r1..4-original-vs-thrash-il8"
        );
        let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), scenarios.len());
    }
}
