//! Command-line axis parsing for sweep plans.
//!
//! The `figures sweep` subcommand and the `figures serve` daemon
//! (`clover-service`) accept the same repeatable axis flags; this module is
//! the single parser both front ends share, so a request line sent to the
//! daemon means exactly what the same words mean on the command line.
//!
//! The grammar: repeatable axis flags (`--machine`, `--grid`, `--ranks`,
//! `--stage`, `--replacement`, `--write-policy`, `--layer-condition`,
//! `--aggressor`, `--interleave`) span a cartesian [`SweepPlan`]; `--grid`
//! defaults to the Tiny grid, `--stage` to `original`, the cache-policy
//! axes to the paper's LRU + write-allocate + fulfilled layer condition,
//! and the tenancy axes to an exclusive node (no aggressor, 64-line
//! interleave).  `--jobs <n>` picks the worker count (default: available
//! parallelism) and `--json` switches the output format.

use clover_machine::{
    preset_names, replacement_names, write_policy_names, ReplacementPolicyKind, WritePolicyKind,
};

use crate::plan::{Aggressor, LayerCondition, RankRange, Stage, SweepPlan};

/// A parsed sweep invocation: the validated plan plus the execution flags
/// shared by every front end.
#[derive(Debug)]
pub struct SweepArgs {
    /// The validated cartesian plan.
    pub plan: SweepPlan,
    /// Worker count (defaults to the available parallelism).
    pub jobs: usize,
    /// Emit JSON artifacts instead of text blocks.
    pub json: bool,
}

impl SweepArgs {
    /// Parse the arguments after the `sweep` keyword (or of one daemon
    /// request).  Unknown arguments are rejected with the exact flag name;
    /// the returned plan has passed [`SweepPlan::validate`], so every
    /// scenario is evaluable before any worker starts.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut plan = SweepPlan::new();
        let mut jobs: Option<usize> = None;
        let mut json = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--machine" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--machine needs a machine name".to_string())?;
                    let preset = clover_machine::preset_by_name(value).ok_or_else(|| {
                        format!(
                            "unknown machine '{value}'; known machines: {}",
                            preset_names().join(", ")
                        )
                    })?;
                    if plan.machines.contains(&preset) {
                        return Err(format!("duplicate machine '{value}'"));
                    }
                    plan.machines.push(preset);
                }
                "--grid" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--grid needs a cell count".to_string())?;
                    let grid: usize =
                        value.parse().ok().filter(|&g| g >= 1).ok_or_else(|| {
                            format!("--grid: '{value}' is not a positive cell count")
                        })?;
                    if plan.grids.contains(&grid) {
                        return Err(format!("duplicate grid size {grid}"));
                    }
                    plan.grids.push(grid);
                }
                "--ranks" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--ranks needs a range (e.g. 1..72)".to_string())?;
                    let range = RankRange::parse(value)
                        .ok_or_else(|| format!("--ranks: '{value}' is not a range like 1..72"))?;
                    if plan.rank_ranges.contains(&range) {
                        return Err(format!("duplicate rank range {range}"));
                    }
                    plan.rank_ranges.push(range);
                }
                "--stage" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--stage needs a stage name or 'all'".to_string())?;
                    let stages = Stage::parse(value).ok_or_else(|| {
                        format!("unknown stage '{value}' (original, speci2m-off, optimized, all)")
                    })?;
                    for stage in stages {
                        if plan.stages.contains(&stage) {
                            return Err(format!("duplicate stage '{stage}'"));
                        }
                        plan.stages.push(stage);
                    }
                }
                "--replacement" => {
                    let value = iter.next().ok_or_else(|| {
                        format!(
                            "--replacement needs a policy name ({}) or 'all'",
                            replacement_names().join(", ")
                        )
                    })?;
                    let kinds = if value == "all" {
                        ReplacementPolicyKind::all()
                    } else {
                        vec![ReplacementPolicyKind::parse(value).ok_or_else(|| {
                            format!(
                                "--replacement: unknown policy '{value}' (known: {}, all)",
                                replacement_names().join(", ")
                            )
                        })?]
                    };
                    for kind in kinds {
                        if plan.replacements.contains(&kind) {
                            return Err(format!("--replacement: duplicate policy '{kind}'"));
                        }
                        plan.replacements.push(kind);
                    }
                }
                "--write-policy" => {
                    let value = iter.next().ok_or_else(|| {
                        format!(
                            "--write-policy needs a policy name ({}) or 'all'",
                            write_policy_names().join(", ")
                        )
                    })?;
                    let kinds = if value == "all" {
                        WritePolicyKind::all()
                    } else {
                        vec![WritePolicyKind::parse(value).ok_or_else(|| {
                            format!(
                                "--write-policy: unknown policy '{value}' (known: {}, all)",
                                write_policy_names().join(", ")
                            )
                        })?]
                    };
                    for kind in kinds {
                        if plan.write_policies.contains(&kind) {
                            return Err(format!("--write-policy: duplicate policy '{kind}'"));
                        }
                        plan.write_policies.push(kind);
                    }
                }
                "--layer-condition" => {
                    let value = iter.next().ok_or_else(|| {
                        "--layer-condition needs 'ok', 'broken' or 'all'".to_string()
                    })?;
                    let conditions = LayerCondition::parse(value).ok_or_else(|| {
                        format!("--layer-condition: unknown condition '{value}' (ok, broken, all)")
                    })?;
                    for condition in conditions {
                        if plan.layer_conditions.contains(&condition) {
                            return Err(format!(
                                "--layer-condition: duplicate condition '{condition}'"
                            ));
                        }
                        plan.layer_conditions.push(condition);
                    }
                }
                "--aggressor" => {
                    let value = iter.next().ok_or_else(|| {
                        "--aggressor needs a kernel name (none, stream, stream-heavy, thrash) or 'all'"
                            .to_string()
                    })?;
                    let aggressors = Aggressor::parse(value).ok_or_else(|| {
                        format!(
                            "--aggressor: unknown kernel '{value}' (none, stream, stream-heavy, thrash, all)"
                        )
                    })?;
                    for aggressor in aggressors {
                        if plan.aggressors.contains(&aggressor) {
                            return Err(format!("--aggressor: duplicate kernel '{aggressor}'"));
                        }
                        plan.aggressors.push(aggressor);
                    }
                }
                "--interleave" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--interleave needs a line count >= 1".to_string())?;
                    let interleave: u64 =
                        value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--interleave: '{value}' is not a line count >= 1")
                        })?;
                    if plan.interleaves.contains(&interleave) {
                        return Err(format!("--interleave: duplicate granularity {interleave}"));
                    }
                    plan.interleaves.push(interleave);
                }
                "--jobs" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| "--jobs needs a worker count".to_string())?;
                    if jobs.is_some() {
                        return Err("--jobs given twice".to_string());
                    }
                    jobs =
                        Some(value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--jobs: '{value}' is not a worker count >= 1")
                        })?);
                }
                "--json" => json = true,
                other => {
                    return Err(format!("sweep: unexpected argument '{other}'"));
                }
            }
        }
        if plan.machines.is_empty() {
            return Err(format!(
                "sweep needs at least one --machine; known machines: {}",
                preset_names().join(", ")
            ));
        }
        if plan.rank_ranges.is_empty() {
            return Err("sweep needs at least one --ranks range (e.g. --ranks 1..72)".to_string());
        }
        if plan.grids.is_empty() {
            plan.grids.push(clover_core::TINY_GRID);
        }
        if plan.stages.is_empty() {
            plan.stages.push(Stage::Original);
        }
        // Every scenario must be evaluable (non-empty range, ranks within
        // the machine's core count) before any worker starts.
        plan.validate()?;
        let jobs = jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Ok(SweepArgs { plan, jobs, json })
    }

    /// Canonical identity of this invocation's *output bytes*: the
    /// expanded scenario ids in plan order plus the output format.
    ///
    /// Two invocations with equal keys print byte-identical output, so a
    /// response cache may serve one's rendered payload for the other:
    ///
    /// * scenario ids capture every axis that reaches the output
    ///   (machine, grid, ranks, stage, policy/tenancy off-defaults) *and*
    ///   the plan expansion order, while collapsing different spellings
    ///   of the same plan (`--stage all` vs the three stages listed,
    ///   defaulted vs pinned-to-default axes) onto one key;
    /// * `--jobs` is deliberately excluded — output is byte-identical for
    ///   any worker count (a tier-1 tested property), so keying on it
    ///   would only fragment the cache.
    pub fn cache_key(&self) -> String {
        let mut key = String::new();
        for scenario in self.plan.expand() {
            key.push_str(&scenario.id());
            key.push('\n');
        }
        if self.json {
            key.push_str("#json");
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn axis_flags_build_a_validated_plan() {
        let parsed = SweepArgs::parse(&args(&[
            "--machine",
            "icx-8360y",
            "--machine",
            "spr-8480plus",
            "--grid",
            "4000",
            "--ranks",
            "1..72",
            "--stage",
            "all",
            "--jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(parsed.plan.len(), 2 * 3);
        assert_eq!(parsed.jobs, 4);
        assert!(!parsed.json);
    }

    #[test]
    fn defaults_fill_grid_and_stage() {
        let parsed =
            SweepArgs::parse(&args(&["--machine", "icx-8360y", "--ranks", "1..18"])).unwrap();
        assert_eq!(parsed.plan.grids, vec![clover_core::TINY_GRID]);
        assert_eq!(parsed.plan.stages, vec![Stage::Original]);
        assert!(parsed.jobs >= 1);
    }

    #[test]
    fn errors_name_the_flag_and_the_registry() {
        let err = SweepArgs::parse(&args(&["--machine", "epyc", "--ranks", "1..4"])).unwrap_err();
        assert!(err.contains("unknown machine") && err.contains("icx-8360y"));
        let err =
            SweepArgs::parse(&args(&["--machine", "icx-8360y", "--ranks", "5..4"])).unwrap_err();
        assert!(err.contains("empty rank range"));
        let err =
            SweepArgs::parse(&args(&["--machine", "icx-8360y", "--ranks", "1..104"])).unwrap_err();
        assert!(err.contains("exceeds"));
        assert!(SweepArgs::parse(&args(&["--ranks", "1..4"])).is_err());
        assert!(SweepArgs::parse(&args(&["--machine", "icx-8360y"])).is_err());
        let err = SweepArgs::parse(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "fig2",
        ]))
        .unwrap_err();
        assert!(err.contains("unexpected argument 'fig2'"));
    }

    #[test]
    fn cache_key_collapses_spellings_and_splits_on_output_axes() {
        let key = |list: &[&str]| SweepArgs::parse(&args(list)).unwrap().cache_key();
        // Different spellings of the same plan share one key: defaults
        // spelled out, `--stage all` vs listed stages, different --jobs.
        let base = key(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..8",
            "--stage",
            "all",
        ]);
        assert_eq!(
            base,
            key(&[
                "--machine",
                "icx-8360y",
                "--ranks",
                "1..8",
                "--stage",
                "original",
                "--stage",
                "speci2m-off",
                "--stage",
                "optimized",
                "--jobs",
                "7",
            ])
        );
        // Anything that changes the output bytes changes the key...
        assert_ne!(
            base,
            key(&[
                "--machine",
                "icx-8360y",
                "--ranks",
                "1..9",
                "--stage",
                "all"
            ])
        );
        assert_ne!(
            base,
            key(&[
                "--machine",
                "spr-8480plus",
                "--ranks",
                "1..8",
                "--stage",
                "all"
            ])
        );
        // ...including the output format and the scenario order.
        assert_ne!(
            base,
            key(&[
                "--machine",
                "icx-8360y",
                "--ranks",
                "1..8",
                "--stage",
                "all",
                "--json",
            ])
        );
        assert_ne!(
            key(&[
                "--machine",
                "icx-8360y",
                "--ranks",
                "1..4",
                "--ranks",
                "5..8"
            ]),
            key(&[
                "--machine",
                "icx-8360y",
                "--ranks",
                "5..8",
                "--ranks",
                "1..4"
            ]),
        );
    }

    #[test]
    fn tenancy_flags_expand_and_reject_bad_values() {
        let parsed = SweepArgs::parse(&args(&[
            "--machine",
            "icx-8360y",
            "--ranks",
            "1..4",
            "--aggressor",
            "all",
            "--interleave",
            "8",
            "--interleave",
            "64",
        ]))
        .unwrap();
        // 4 aggressors x 2 interleaves on one machine/grid/range/stage.
        assert_eq!(parsed.plan.len(), 4 * 2);
        assert_eq!(parsed.plan.aggressors, Aggressor::all());
        assert_eq!(parsed.plan.interleaves, vec![8, 64]);

        let base = ["--machine", "icx-8360y", "--ranks", "1..4"];
        let err = SweepArgs::parse(&args(&[&base[..], &["--aggressor", "rowhammer"]].concat()))
            .unwrap_err();
        assert!(
            err.contains("--aggressor") && err.contains("rowhammer"),
            "error must name the flag and the value, got: {err}"
        );
        let err = SweepArgs::parse(&args(
            &[
                &base[..],
                &["--aggressor", "thrash", "--aggressor", "thrash"],
            ]
            .concat(),
        ))
        .unwrap_err();
        assert!(err.contains("duplicate kernel 'thrash'"), "got: {err}");
        let err =
            SweepArgs::parse(&args(&[&base[..], &["--interleave", "0"]].concat())).unwrap_err();
        assert!(
            err.contains("--interleave") && err.contains("'0'"),
            "got: {err}"
        );
        let err = SweepArgs::parse(&args(
            &[&base[..], &["--interleave", "8", "--interleave", "8"]].concat(),
        ))
        .unwrap_err();
        assert!(err.contains("duplicate granularity 8"), "got: {err}");
    }
}
