//! `clover-scenario` — the scenario sweep engine.
//!
//! The paper evaluates one code on two machines at one grid size; this crate
//! turns that fixed setup into an axis-parameterised evaluation engine:
//!
//! * [`Scenario`] — one evaluation point: machine preset × grid size × rank
//!   range × code [`Stage`] (the `TrafficOptions` variant),
//! * [`SweepPlan`] — a cartesian grid of those axes that expands into a
//!   deterministic scenario list,
//! * [`runner`] — a parallel runner that fans scenarios out across
//!   `crossbeam` scoped worker threads and returns `clover_golden::Artifact`
//!   tables in deterministic (plan) order, byte-identical to the sequential
//!   path,
//! * [`evaluate`] — the default evaluator: the node-level scaling model of
//!   `clover-core` applied to the scenario's axes.
//!
//! `clover-bench` layers canned plans for the paper's own figures on top
//! (custom evaluators via [`runner::run_scenarios_with`]), and the `figures
//! sweep` subcommand exposes the engine on the command line.

pub mod cli;
pub mod interference;
pub mod plan;
pub mod runner;

pub use cli::SweepArgs;
pub use interference::interference_factor;
pub use plan::{
    Aggressor, LayerCondition, RankRange, Scenario, Stage, SweepPlan, DEFAULT_INTERLEAVE,
};
pub use runner::{run_scenario_items_with, run_scenarios_with};

use clover_cachesim::SimMemo;
use clover_core::{normalise_speedups, ScalingEngine, ScalingModel, ScalingPoint, SweepMemo};
use clover_golden::Artifact;

/// Render one artifact as the block the `figures` CLI prints (`==== id ====`
/// header + CSV).  The CLI and the byte-identity tests share this function,
/// so "byte-identical to the sequential path" is always asserted against
/// the actual output format.
pub fn render_block(artifact: &Artifact) -> String {
    format!("==== {} ====\n{}\n", artifact.id, artifact.to_csv())
}

/// Assemble the default scaling-sweep artifact of `scenario` from its
/// evaluated points.  [`evaluate`] and the nested-parallel [`run_plan`]
/// both render through this function, so the two paths cannot drift apart
/// in format.
pub fn sweep_artifact(scenario: &Scenario, points: &[ScalingPoint]) -> Artifact {
    let machine = scenario.machine.machine();
    let stage = scenario.stage;
    let mut a = Artifact::new(&scenario.id(), &scenario.title())
        .column("ranks", None)
        .column("prime", None)
        .column("local_inner", Some("cells"))
        .num_column("time_per_step", Some("ms"), 4)
        .num_column("speedup", None, 3)
        .num_column("bandwidth", Some("GB/s"), 1)
        .num_column("volume_per_step", Some("MB"), 1);
    for p in points {
        a.push_row(vec![
            p.ranks.into(),
            (p.prime as i64).into(),
            p.local_inner.into(),
            (p.time_per_step * 1e3).into(),
            p.speedup.into(),
            (p.memory_bandwidth / 1e9).into(),
            (p.volume_per_step / 1e6).into(),
        ]);
    }
    let mut note = format!(
        "machine: {}; grid {g}x{g}; stage: {}",
        machine.name,
        stage.name(),
        g = scenario.grid,
    );
    // Policy axes annotate the note only off the paper's defaults, keeping
    // every pre-existing artifact byte-identical.
    if scenario.replacement != Default::default() {
        note.push_str(&format!("; replacement: {}", scenario.replacement));
    }
    if scenario.write_policy != Default::default() {
        note.push_str(&format!("; write policy: {}", scenario.write_policy));
    }
    if scenario.layer_condition != Default::default() {
        note.push_str(&format!("; layer condition: {}", scenario.layer_condition));
    }
    if scenario.aggressor != Default::default() {
        note.push_str(&format!(
            "; aggressor: {} (victim traffic scaled by a shared-LLC co-run)",
            scenario.aggressor
        ));
    }
    if scenario.interleave != DEFAULT_INTERLEAVE {
        note.push_str(&format!("; interleave: {} lines", scenario.interleave));
    }
    a.push_note(note);
    a
}

/// Scale a contended scenario's points by its co-run interference factor:
/// the victim moves `factor`× the bytes in `factor`× the time (same
/// bandwidth, same speedup curve).  A no-aggressor scenario is untouched —
/// bit for bit, since the factor is exactly `1.0` and no scaling runs.
fn apply_interference(scenario: &Scenario, points: &mut [ScalingPoint], memo: &SimMemo) {
    let factor = interference_factor(
        &scenario.machine.machine(),
        scenario.aggressor,
        scenario.interleave,
        memo,
    );
    if factor == 1.0 {
        return;
    }
    for p in points.iter_mut() {
        p.time_per_step *= factor;
        p.volume_per_step *= factor;
    }
}

/// Default scenario evaluator: the node-level scaling model swept over the
/// scenario's rank range on its machine, grid and code stage.
pub fn evaluate(scenario: &Scenario) -> Artifact {
    let machine = scenario.machine.machine();
    let model = ScalingModel::new(machine.clone()).with_grid(scenario.grid);
    let mut points = model.sweep_range(scenario.ranks.iter(), |r| scenario.options(r));
    apply_interference(scenario, &mut points, &SimMemo::new());
    sweep_artifact(scenario, &points)
}

/// Expand and run a whole plan with the default evaluator.
///
/// The plan is flattened into `(scenario, rank point)` work items fanned
/// out across `jobs` workers ([`run_scenario_items_with`]), every point is
/// evaluated through one [`SweepMemo`] spanning the whole plan (scenarios
/// with overlapping rank ranges on the same machine, grid and stage share
/// their points instead of re-evaluating them), and each scenario's points
/// are assembled back in plan order — byte-identical to evaluating every
/// scenario sequentially with [`evaluate`], which the tier-1 suite asserts.
pub fn run_plan(plan: &SweepPlan, jobs: usize) -> Vec<Artifact> {
    run_plan_memo(plan, jobs, &SweepMemo::new())
}

/// [`run_plan`] through an external, caller-owned [`SweepMemo`].
///
/// The memo may outlive the plan: a persistent store (`clover-service`)
/// or a `figures serve` daemon passes one memo to every plan it runs, so
/// points evaluated by earlier plans — or warm-loaded from disk — are
/// served as hits.  Points are memoized pre-normalisation, so sharing a
/// memo across plans cannot leak one range's speedup baseline into
/// another; the output stays byte-identical to a cold [`run_plan`].
pub fn run_plan_memo(plan: &SweepPlan, jobs: usize, memo: &SweepMemo) -> Vec<Artifact> {
    let scenarios = plan.expand();
    // One engine per (machine, grid) axis pair, shared by every worker; the
    // few-entry list makes the per-item lookup a short scan.
    let mut engines: Vec<((clover_machine::MachinePreset, usize), ScalingEngine)> = Vec::new();
    for s in &scenarios {
        if !engines
            .iter()
            .any(|((m, g), _)| *m == s.machine && *g == s.grid)
        {
            engines.push((
                (s.machine, s.grid),
                ScalingEngine::new(s.machine.machine(), s.grid),
            ));
        }
    }
    let engine_for = |s: &Scenario| -> &ScalingEngine {
        engines
            .iter()
            .find(|((m, g), _)| *m == s.machine && *g == s.grid)
            .map(|(_, e)| e)
            .expect("every scenario's engine was built above")
    };
    // One co-run memo spans the plan: scenarios sharing (machine,
    // aggressor, interleave) pay for one interference simulation.
    let corun_memo = SimMemo::new();
    // Schedule by neighbour class: points that differ only in their
    // traffic options (same machine, grid and rank count) run
    // consecutively, so the differential simulation memo's trace leader
    // and its replays share one worker's warm path.  Scheduling reorders
    // execution only — the output stays byte-identical (a tested runner
    // property).
    runner::run_scenario_items_scheduled(
        &scenarios,
        jobs,
        |s| s.ranks.len(),
        |s, i| engine_for(s).neighbour_class(s.ranks.start + i),
        |s, i| {
            let ranks = s.ranks.start + i;
            engine_for(s).point_memo(ranks, &s.options(ranks), memo)
        },
        |s, mut points| {
            apply_interference(s, &mut points, &corun_memo);
            normalise_speedups(&mut points);
            sweep_artifact(s, &points)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::MachinePreset;

    #[test]
    fn default_evaluator_produces_one_row_per_rank() {
        let scenario = Scenario {
            machine: MachinePreset::IceLakeSp8360y,
            grid: 1920,
            ranks: RankRange::new(1, 18),
            stage: Stage::Original,
            replacement: Default::default(),
            write_policy: Default::default(),
            layer_condition: Default::default(),
            aggressor: Default::default(),
            interleave: DEFAULT_INTERLEAVE,
        };
        let a = evaluate(&scenario);
        assert_eq!(a.rows.len(), 18);
        assert_eq!(a.id, "sweep-icx-8360y-g1920-r1..18-original");
        let speedup = a.column_index("speedup").unwrap();
        assert!((a.rows[0][speedup].as_f64().unwrap() - 1.0).abs() < 1e-12);
        assert!(a.rows[17][speedup].as_f64().unwrap() > 1.0);
    }

    #[test]
    fn stages_change_the_artifact() {
        let mk = |stage| Scenario {
            machine: MachinePreset::IceLakeSp8360y,
            grid: 1920,
            ranks: RankRange::new(18, 18),
            stage,
            replacement: Default::default(),
            write_policy: Default::default(),
            layer_condition: Default::default(),
            aggressor: Default::default(),
            interleave: DEFAULT_INTERLEAVE,
        };
        let original = evaluate(&mk(Stage::Original));
        let off = evaluate(&mk(Stage::SpecI2MOff));
        let volume = original.column_index("volume_per_step").unwrap();
        // Without write-allocate evasion the memory volume must be larger.
        assert!(off.rows[0][volume].as_f64().unwrap() > original.rows[0][volume].as_f64().unwrap());
    }

    #[test]
    fn contended_scenarios_cost_traffic_but_not_bandwidth() {
        let mk = |aggressor| Scenario {
            machine: MachinePreset::IceLakeSp8360y,
            grid: 1920,
            ranks: RankRange::new(1, 4),
            stage: Stage::Original,
            replacement: Default::default(),
            write_policy: Default::default(),
            layer_condition: Default::default(),
            aggressor,
            interleave: DEFAULT_INTERLEAVE,
        };
        let solo = evaluate(&mk(Aggressor::None));
        let contended = evaluate(&mk(Aggressor::Thrash));
        assert_eq!(
            contended.id,
            "sweep-icx-8360y-g1920-r1..4-original-vs-thrash"
        );
        assert!(contended.notes[0].contains("aggressor: thrash"));
        let volume = solo.column_index("volume_per_step").unwrap();
        let time = solo.column_index("time_per_step").unwrap();
        let bw = solo.column_index("bandwidth").unwrap();
        let speedup = solo.column_index("speedup").unwrap();
        for (s, c) in solo.rows.iter().zip(&contended.rows) {
            // Contention inflates volume and time by the same factor...
            assert!(c[volume].as_f64().unwrap() > s[volume].as_f64().unwrap());
            assert!(c[time].as_f64().unwrap() > s[time].as_f64().unwrap());
            // ...so bandwidth and the speedup curve are untouched.
            assert_eq!(c[bw], s[bw]);
            assert_eq!(c[speedup], s[speedup]);
        }
        // The parallel plan path applies the identical scaling.
        let plan = SweepPlan::new()
            .machine(MachinePreset::IceLakeSp8360y)
            .grid(1920)
            .ranks(RankRange::new(1, 4))
            .stage(Stage::Original)
            .aggressor(Aggressor::Thrash);
        let via_plan = run_plan(&plan, 2);
        assert_eq!(render_block(&via_plan[0]), render_block(&contended));
    }
}
