//! The per-rank communicator.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::timing::{MpiOp, TimeBreakdown};

/// A message in flight: payload of doubles plus routing metadata.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    pub src: usize,
    pub tag: u32,
    pub data: Vec<f64>,
}

/// Handle for a non-blocking send; completed by [`Comm::waitall`].
///
/// Sends in this substrate complete eagerly (the channel is unbounded), so
/// the request only carries bookkeeping, but the API mirrors the structure
/// of the CloverLeaf communication code (`MPI_Isend` + `MPI_Waitall`).
#[derive(Debug)]
pub struct Request {
    pub(crate) completed: bool,
}

/// Shared state used for collectives.
pub(crate) struct CollectiveState {
    pub barrier: std::sync::Barrier,
    pub reduce_slots: Mutex<Vec<Option<f64>>>,
}

/// The communicator of one rank.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    unexpected: Vec<Message>,
    collective: Arc<CollectiveState>,
    timers: TimeBreakdown,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Message>>,
        receiver: Receiver<Message>,
        collective: Arc<CollectiveState>,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receiver,
            unexpected: Vec::new(),
            collective,
            timers: TimeBreakdown::new(),
        }
    }

    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The communication time breakdown recorded so far.
    pub fn timers(&self) -> &TimeBreakdown {
        &self.timers
    }

    /// Blocking send of `data` to `dest` with `tag`.
    pub fn send(&mut self, dest: usize, tag: u32, data: &[f64]) {
        assert!(dest < self.size, "invalid destination rank {dest}");
        let t0 = Instant::now();
        self.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                data: data.to_vec(),
            })
            .expect("receiver alive");
        self.timers.add(MpiOp::Isend, t0.elapsed());
    }

    /// Non-blocking send; returns a request to pass to [`Comm::waitall`].
    pub fn isend(&mut self, dest: usize, tag: u32, data: &[f64]) -> Request {
        self.send(dest, tag, data);
        Request { completed: true }
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(&mut self, src: usize, tag: u32) -> Vec<f64> {
        assert!(src < self.size, "invalid source rank {src}");
        let t0 = Instant::now();
        // Check the unexpected-message queue first.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let msg = self.unexpected.remove(pos);
            self.timers.add(MpiOp::Waitall, t0.elapsed());
            return msg.data;
        }
        loop {
            let msg = self.receiver.recv().expect("world alive");
            if msg.src == src && msg.tag == tag {
                self.timers.add(MpiOp::Waitall, t0.elapsed());
                return msg.data;
            }
            self.unexpected.push(msg);
        }
    }

    /// Wait for all outstanding requests (no-op completion, timed).
    pub fn waitall(&mut self, requests: &mut [Request]) {
        let t0 = Instant::now();
        for r in requests.iter_mut() {
            r.completed = true;
        }
        self.timers.add(MpiOp::Waitall, t0.elapsed());
    }

    /// Combined send-to / receive-from, the halo-exchange building block.
    pub fn sendrecv(
        &mut self,
        dest: usize,
        send_tag: u32,
        data: &[f64],
        src: usize,
        recv_tag: u32,
    ) -> Vec<f64> {
        self.send(dest, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Barrier across all ranks.
    pub fn barrier(&mut self) {
        let t0 = Instant::now();
        self.collective.barrier.wait();
        self.timers.add(MpiOp::Barrier, t0.elapsed());
    }

    fn allreduce_with(&mut self, value: f64, op: MpiOp, combine: fn(f64, f64) -> f64) -> f64 {
        let t0 = Instant::now();
        {
            let mut slots = self.collective.reduce_slots.lock();
            slots[self.rank] = Some(value);
        }
        // Wait until every rank has deposited its contribution.
        self.collective.barrier.wait();
        let result = {
            let slots = self.collective.reduce_slots.lock();
            slots
                .iter()
                .map(|s| s.expect("every rank contributed"))
                .reduce(combine)
                .expect("non-empty world")
        };
        // Wait until every rank has read the result before clearing.
        self.collective.barrier.wait();
        {
            let mut slots = self.collective.reduce_slots.lock();
            slots[self.rank] = None;
        }
        self.collective.barrier.wait();
        self.timers.add(op, t0.elapsed());
        result
    }

    /// Global minimum (CloverLeaf's time-step control).
    pub fn allreduce_min(&mut self, value: f64) -> f64 {
        self.allreduce_with(value, MpiOp::Allreduce, f64::min)
    }

    /// Global maximum.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allreduce_with(value, MpiOp::Allreduce, f64::max)
    }

    /// Global sum.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce_with(value, MpiOp::Allreduce, |a, b| a + b)
    }

    /// Reduce-to-root (rank 0); every rank must call it, only rank 0 gets
    /// `Some(result)` (CloverLeaf's field summaries).
    pub fn reduce_sum_root(&mut self, value: f64) -> Option<f64> {
        let result = self.allreduce_with(value, MpiOp::Reduce, |a, b| a + b);
        if self.rank == 0 {
            Some(result)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn ring_send_recv() {
        let results = World::run(4, |mut comm| {
            let rank = comm.rank();
            let size = comm.size();
            let right = (rank + 1) % size;
            let left = (rank + size - 1) % size;
            comm.send(right, 7, &[rank as f64]);
            let data = comm.recv(left, 7);
            data[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_min_max_sum() {
        let results = World::run(5, |mut comm| {
            let v = comm.rank() as f64 + 1.0;
            let mn = comm.allreduce_min(v);
            let mx = comm.allreduce_max(v);
            let sum = comm.allreduce_sum(v);
            (mn, mx, sum)
        });
        for (mn, mx, sum) in results {
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 5.0);
            assert_eq!(sum, 15.0);
        }
    }

    #[test]
    fn consecutive_allreduces_do_not_interfere() {
        let results = World::run(3, |mut comm| {
            let a = comm.allreduce_sum(1.0);
            let b = comm.allreduce_sum(10.0);
            let c = comm.allreduce_min(comm.rank() as f64);
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
            assert_eq!(c, 0.0);
        }
    }

    #[test]
    fn reduce_to_root_only_root_sees_result() {
        let results = World::run(4, |mut comm| comm.reduce_sum_root(2.0));
        assert_eq!(results[0], Some(8.0));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn unexpected_messages_are_buffered() {
        let results = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                // Send two messages with different tags; rank 1 receives them
                // in the opposite order.
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                0.0
            } else {
                let second = comm.recv(0, 2);
                let first = comm.recv(0, 1);
                second[0] * 10.0 + first[0]
            }
        });
        assert_eq!(results[1], 21.0);
    }

    #[test]
    fn sendrecv_pairs() {
        let results = World::run(2, |mut comm| {
            let partner = 1 - comm.rank();
            let data = comm.sendrecv(partner, 0, &[comm.rank() as f64 * 5.0], partner, 0);
            data[0]
        });
        assert_eq!(results, vec![5.0, 0.0]);
    }

    #[test]
    fn isend_waitall_and_timers() {
        let results = World::run(2, |mut comm| {
            let partner = 1 - comm.rank();
            let mut reqs = vec![comm.isend(partner, 3, &[1.0, 2.0, 3.0])];
            let data = comm.recv(partner, 3);
            comm.waitall(&mut reqs);
            comm.barrier();
            (data.len(), comm.timers().total_comm().as_nanos() > 0)
        });
        for (len, timed) in results {
            assert_eq!(len, 3);
            assert!(timed);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let results = World::run(1, |mut comm| {
            assert_eq!(comm.size(), 1);
            let s = comm.allreduce_sum(42.0);
            comm.barrier();
            s
        });
        assert_eq!(results, vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "invalid destination rank")]
    fn sending_to_invalid_rank_panics() {
        World::run(1, |mut comm| {
            comm.send(5, 0, &[1.0]);
        });
    }
}
