//! World setup: spawn one thread per rank and wire up the communicators.

use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;

use crate::comm::{CollectiveState, Comm, Message};

/// Entry point of the substrate: spawns ranks and collects their results.
pub struct World;

impl World {
    /// Run `f` on `ranks` ranks concurrently (one OS thread each) and return
    /// the per-rank results ordered by rank.
    ///
    /// Panics in any rank propagate to the caller once all ranks have been
    /// joined (mirrors an MPI abort).
    pub fn run<T, F>(ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        assert!(ranks > 0, "world must contain at least one rank");

        // Build the mailbox of every rank up front.
        let mut senders = Vec::with_capacity(ranks);
        let mut receivers = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = channel::unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        let collective = Arc::new(CollectiveState {
            barrier: std::sync::Barrier::new(ranks),
            reduce_slots: Mutex::new(vec![None; ranks]),
        });

        let f = &f;
        let mut results: Vec<Option<T>> = (0..ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranks);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let collective = Arc::clone(&collective);
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(rank, ranks, senders, receiver, collective);
                    f(comm)
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank result"))
            .collect()
    }

    /// Like [`World::run`] but additionally returns the communication time
    /// breakdown of every rank (the closure keeps ownership of the `Comm`
    /// until it finishes, so breakdowns are harvested through a side
    /// channel).
    pub fn run_with_timing<T, F>(ranks: usize, f: F) -> Vec<(T, crate::TimeBreakdown)>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run(ranks, move |mut comm| {
            let value = f(&mut comm);
            let timing = comm.timers().clone();
            (value, timing)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_rank() {
        let results = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_with_timing_collects_breakdowns() {
        let results = World::run_with_timing(3, |comm| {
            comm.barrier();
            comm.allreduce_sum(1.0)
        });
        for (sum, timing) in results {
            assert_eq!(sum, 3.0);
            assert!(timing.total_comm().as_nanos() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        World::run(0, |_comm| ());
    }

    #[test]
    fn many_ranks_scale() {
        // 72 ranks as in the paper's full-node runs.
        let results = World::run(72, |mut comm| comm.allreduce_sum(1.0));
        assert!(results.iter().all(|&s| s == 72.0));
    }
}
