//! Wall-clock accounting of communication operations.
//!
//! The paper's Fig. 4 breaks the runtime of CloverLeaf into serial execution
//! and the time spent in individual MPI calls (`MPI_Waitall`,
//! `MPI_Allreduce`, `MPI_Isend`, `MPI_Reduce`, `MPI_Barrier`).  Every
//! [`crate::Comm`] records the same breakdown for its rank.

use std::time::Duration;

/// Classes of communication operations that are timed separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiOp {
    /// Non-blocking send initiation.
    Isend,
    /// Blocking receive / wait for all outstanding requests.
    Waitall,
    /// Global all-reduce.
    Allreduce,
    /// Root-only reduce.
    Reduce,
    /// Barrier synchronisation.
    Barrier,
}

impl MpiOp {
    /// All operation classes in display order (matches Fig. 4's legend).
    pub const ALL: [MpiOp; 5] = [
        MpiOp::Waitall,
        MpiOp::Allreduce,
        MpiOp::Isend,
        MpiOp::Reduce,
        MpiOp::Barrier,
    ];

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            MpiOp::Isend => "MPI_Isend",
            MpiOp::Waitall => "MPI_Waitall",
            MpiOp::Allreduce => "MPI_Allreduce",
            MpiOp::Reduce => "MPI_Reduce",
            MpiOp::Barrier => "MPI_Barrier",
        }
    }

    fn index(&self) -> usize {
        match self {
            MpiOp::Waitall => 0,
            MpiOp::Allreduce => 1,
            MpiOp::Isend => 2,
            MpiOp::Reduce => 3,
            MpiOp::Barrier => 4,
        }
    }
}

/// Per-rank communication time breakdown.
#[derive(Debug, Clone, Default)]
pub struct TimeBreakdown {
    times: [Duration; 5],
}

impl TimeBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `dt` to the bucket of `op`.
    pub fn add(&mut self, op: MpiOp, dt: Duration) {
        self.times[op.index()] += dt;
    }

    /// Time spent in `op`.
    pub fn get(&self, op: MpiOp) -> Duration {
        self.times[op.index()]
    }

    /// Total time spent in all communication operations.
    pub fn total_comm(&self) -> Duration {
        self.times.iter().sum()
    }

    /// Merge another breakdown into this one (e.g. across ranks).
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for i in 0..self.times.len() {
            self.times[i] += other.times[i];
        }
    }

    /// Relative share of each operation (plus the serial share first) given
    /// the total wall-clock time of the rank.  Mirrors Fig. 4: returns
    /// `(serial_fraction, [(op, fraction); 5])`.
    pub fn relative_shares(&self, wall: Duration) -> (f64, Vec<(MpiOp, f64)>) {
        let wall_s = wall.as_secs_f64().max(1e-12);
        let comm_s = self.total_comm().as_secs_f64().min(wall_s);
        let serial = (wall_s - comm_s) / wall_s;
        let shares = MpiOp::ALL
            .iter()
            .map(|&op| (op, self.get(op).as_secs_f64() / wall_s))
            .collect();
        (serial, shares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut b = TimeBreakdown::new();
        b.add(MpiOp::Waitall, Duration::from_millis(10));
        b.add(MpiOp::Waitall, Duration::from_millis(5));
        b.add(MpiOp::Allreduce, Duration::from_millis(1));
        assert_eq!(b.get(MpiOp::Waitall), Duration::from_millis(15));
        assert_eq!(b.get(MpiOp::Allreduce), Duration::from_millis(1));
        assert_eq!(b.get(MpiOp::Barrier), Duration::ZERO);
        assert_eq!(b.total_comm(), Duration::from_millis(16));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TimeBreakdown::new();
        a.add(MpiOp::Isend, Duration::from_millis(2));
        let mut b = TimeBreakdown::new();
        b.add(MpiOp::Isend, Duration::from_millis(3));
        b.add(MpiOp::Reduce, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get(MpiOp::Isend), Duration::from_millis(5));
        assert_eq!(a.get(MpiOp::Reduce), Duration::from_millis(1));
    }

    #[test]
    fn relative_shares_sum_to_one() {
        let mut b = TimeBreakdown::new();
        b.add(MpiOp::Waitall, Duration::from_millis(20));
        b.add(MpiOp::Allreduce, Duration::from_millis(10));
        let (serial, shares) = b.relative_shares(Duration::from_millis(100));
        let total: f64 = serial + shares.iter().map(|(_, f)| f).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((serial - 0.7).abs() < 1e-9);
    }

    #[test]
    fn names_cover_all_ops() {
        for op in MpiOp::ALL {
            assert!(op.name().starts_with("MPI_"));
        }
    }

    #[test]
    fn shares_clamp_when_comm_exceeds_wall() {
        let mut b = TimeBreakdown::new();
        b.add(MpiOp::Barrier, Duration::from_secs(2));
        let (serial, _) = b.relative_shares(Duration::from_secs(1));
        assert!(serial >= 0.0);
    }
}
