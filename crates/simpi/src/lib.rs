//! `clover-simpi` — an in-process message-passing substrate.
//!
//! The CloverLeaf benchmark in the paper is the *MPI-only* version: every
//! rank owns a chunk of the 2D grid and exchanges halo layers with its
//! neighbours, plus global reductions for the time-step control.  This crate
//! provides exactly the communication primitives CloverLeaf needs, executed
//! by ranks that are ordinary OS threads exchanging messages over channels:
//!
//! * point-to-point `send`/`recv` with tags and an unexpected-message queue,
//! * non-blocking `isend` with a `Request`/`waitall` pair (the paper's
//!   profile is dominated by `MPI_Waitall`),
//! * `barrier`, `allreduce` (min/max/sum) and `reduce`,
//! * per-rank wall-clock accounting of the time spent in each operation
//!   class, mirroring the ITAC measurement behind Fig. 4.
//!
//! The substrate is deliberately small: it is not a general MPI, it is the
//! subset CloverLeaf exercises, with deterministic semantics suitable for
//! unit tests.

pub mod comm;
pub mod timing;
pub mod world;

pub use comm::{Comm, Request};
pub use timing::{MpiOp, TimeBreakdown};
pub use world::World;
