//! The CloverLeaf compute kernels.
//!
//! Loop labels in comments refer to the hotspot-loop naming of the paper
//! (am00–am11 in `advec_mom`, ac00–ac07 in `advec_cell`, pdv00–pdv01 in
//! `pdv`); the non-hotspot kernels (`ideal_gas`, `viscosity`, `calc_dt`,
//! `accelerate`, `flux_calc`, `reset_field`) complete the timestep.

use crate::chunk::Chunk;
use crate::GAMMA;

/// Equation of state: pressure and sound speed from density and energy
/// (`ideal_gas_kernel`).
pub fn ideal_gas(chunk: &mut Chunk, predict: bool) {
    let h = 1isize;
    for k in -h..(chunk.ny as isize + h) {
        for i in -h..(chunk.nx as isize + h) {
            let (rho, e) = if predict {
                (chunk.density1.get(i, k), chunk.energy1.get(i, k))
            } else {
                (chunk.density0.get(i, k), chunk.energy0.get(i, k))
            };
            let rho = rho.max(1e-12);
            let e = e.max(0.0);
            let p = (GAMMA - 1.0) * rho * e;
            chunk.pressure.set(i, k, p);
            chunk.soundspeed.set(i, k, (GAMMA * p / rho).sqrt());
        }
    }
}

/// Artificial viscosity from the local compression rate
/// (`viscosity_kernel`).
pub fn viscosity(chunk: &mut Chunk) {
    // One ring of halo cells is computed as well (their xvel0/yvel0
    // neighbours are valid up to the halo depth of 2), so `accelerate` can
    // read valid viscosity values at i±1/k±1 without an extra exchange.
    for k in -1..(chunk.ny as isize + 1) {
        for i in -1..(chunk.nx as isize + 1) {
            let du = chunk.xvel0.get(i + 1, k) - chunk.xvel0.get(i - 1, k);
            let dv = chunk.yvel0.get(i, k + 1) - chunk.yvel0.get(i, k - 1);
            let div = 0.5 * (du / chunk.dx + dv / chunk.dy);
            let q = if div < 0.0 {
                2.0 * chunk.density0.get(i, k) * div * div * chunk.dx * chunk.dx
            } else {
                0.0
            };
            chunk.viscosity.set(i, k, q);
        }
    }
}

/// Local CFL time-step limit (`calc_dt_kernel`).  The global step is the
/// minimum over all ranks.
pub fn calc_dt(chunk: &Chunk, cfl: f64) -> f64 {
    let mut dt = f64::MAX;
    for k in 0..chunk.ny as isize {
        for i in 0..chunk.nx as isize {
            let c = chunk.soundspeed.get(i, k).max(1e-12);
            let u = chunk.xvel0.get(i, k).abs();
            let v = chunk.yvel0.get(i, k).abs();
            let dt_cell = (chunk.dx / (c + u + 1e-12)).min(chunk.dy / (c + v + 1e-12));
            dt = dt.min(dt_cell);
        }
    }
    cfl * dt
}

/// PdV work: update energy and density from the velocity divergence.
/// `predict = true` is the half-step predictor (loop pdv00), `false` the
/// corrector (pdv01).
pub fn pdv(chunk: &mut Chunk, dt: f64, predict: bool) {
    let dt_eff = if predict { 0.5 * dt } else { dt };
    for k in 0..chunk.ny as isize {
        for i in 0..chunk.nx as isize {
            // pdv00 / pdv01
            let du = chunk.xvel0.get(i + 1, k) - chunk.xvel0.get(i - 1, k);
            let dv = chunk.yvel0.get(i, k + 1) - chunk.yvel0.get(i, k - 1);
            let div = 0.5 * (du / chunk.dx + dv / chunk.dy);
            let rho0 = chunk.density0.get(i, k).max(1e-12);
            let p = chunk.pressure.get(i, k) + chunk.viscosity.get(i, k);
            let volume_change = 1.0 / (1.0 + div * dt_eff);
            let rho1 = rho0 * volume_change;
            let e1 = (chunk.energy0.get(i, k) - dt_eff * p * div / rho0).max(1e-12);
            chunk.density1.set(i, k, rho1);
            chunk.energy1.set(i, k, e1);
        }
    }
}

/// Acceleration from pressure and viscosity gradients
/// (`accelerate_kernel`).
pub fn accelerate(chunk: &mut Chunk, dt: f64) {
    for k in 0..chunk.ny as isize {
        for i in 0..chunk.nx as isize {
            let rho = chunk.density0.get(i, k).max(1e-12);
            let dpx = chunk.pressure.get(i + 1, k) - chunk.pressure.get(i - 1, k);
            let dpy = chunk.pressure.get(i, k + 1) - chunk.pressure.get(i, k - 1);
            let dqx = chunk.viscosity.get(i + 1, k) - chunk.viscosity.get(i - 1, k);
            let dqy = chunk.viscosity.get(i, k + 1) - chunk.viscosity.get(i, k - 1);
            let ax = -(dpx + dqx) / (2.0 * chunk.dx * rho);
            let ay = -(dpy + dqy) / (2.0 * chunk.dy * rho);
            chunk.xvel1.set(i, k, chunk.xvel0.get(i, k) + dt * ax);
            chunk.yvel1.set(i, k, chunk.yvel0.get(i, k) + dt * ay);
        }
    }
}

/// Face volume fluxes from the face-averaged velocities
/// (`flux_calc_kernel`).  `vol_flux_x(i,k)` is the flux through the face
/// between cells `i-1` and `i`.
pub fn flux_calc(chunk: &mut Chunk, dt: f64) {
    for k in 0..chunk.ny as isize {
        for i in 0..(chunk.nx as isize + 1) {
            let u_face = 0.5 * (chunk.xvel1.get(i - 1, k) + chunk.xvel1.get(i, k));
            chunk.vol_flux_x.set(i, k, dt * chunk.dy * u_face);
        }
    }
    for k in 0..(chunk.ny as isize + 1) {
        for i in 0..chunk.nx as isize {
            let v_face = 0.5 * (chunk.yvel1.get(i, k - 1) + chunk.yvel1.get(i, k));
            chunk.vol_flux_y.set(i, k, dt * chunk.dx * v_face);
        }
    }
    // Closed (reflective) global boundaries carry no flux.
    if chunk.at_left {
        for k in 0..chunk.ny as isize {
            chunk.vol_flux_x.set(0, k, 0.0);
        }
    }
    if chunk.at_right {
        for k in 0..chunk.ny as isize {
            chunk.vol_flux_x.set(chunk.nx as isize, k, 0.0);
        }
    }
    if chunk.at_bottom {
        for i in 0..chunk.nx as isize {
            chunk.vol_flux_y.set(i, 0, 0.0);
        }
    }
    if chunk.at_top {
        for i in 0..chunk.nx as isize {
            chunk.vol_flux_y.set(i, chunk.ny as isize, 0.0);
        }
    }
}

/// Donor-cell advection of density and energy (`advec_cell_kernel`).
/// `sweep_x = true` advects along x (loops ac00–ac03), `false` along y
/// (ac04–ac07).
pub fn advec_cell(chunk: &mut Chunk, sweep_x: bool) {
    let vol = chunk.cell_volume();
    if sweep_x {
        // ac00/ac01: pre/post volumes.
        // ac02: mass and energy fluxes through x faces (donor cell).
        for k in 0..chunk.ny as isize {
            for i in 0..(chunk.nx as isize + 1) {
                let vf = chunk.vol_flux_x.get(i, k);
                let donor = if vf > 0.0 { i - 1 } else { i };
                let mf = vf * chunk.density1.get(donor, k);
                chunk.mass_flux_x.set(i, k, mf);
                chunk.ener_flux.set(i, k, mf * chunk.energy1.get(donor, k));
            }
        }
        // ac03: conservative update of density and energy.
        for k in 0..chunk.ny as isize {
            for i in 0..chunk.nx as isize {
                let rho_old = chunk.density1.get(i, k);
                let mass_old = rho_old * vol;
                let dm = chunk.mass_flux_x.get(i, k) - chunk.mass_flux_x.get(i + 1, k);
                let de = chunk.ener_flux.get(i, k) - chunk.ener_flux.get(i + 1, k);
                let mass_new = (mass_old + dm).max(1e-12);
                let rho_new = mass_new / vol;
                let e_new = (rho_old * vol * chunk.energy1.get(i, k) + de) / mass_new;
                chunk.density1.set(i, k, rho_new);
                chunk.energy1.set(i, k, e_new.max(1e-12));
            }
        }
    } else {
        // ac04/ac05: pre/post volumes; ac06: fluxes; ac07: update.
        for k in 0..(chunk.ny as isize + 1) {
            for i in 0..chunk.nx as isize {
                let vf = chunk.vol_flux_y.get(i, k);
                let donor = if vf > 0.0 { k - 1 } else { k };
                let mf = vf * chunk.density1.get(i, donor);
                chunk.mass_flux_y.set(i, k, mf);
                chunk.ener_flux.set(i, k, mf * chunk.energy1.get(i, donor));
            }
        }
        for k in 0..chunk.ny as isize {
            for i in 0..chunk.nx as isize {
                let rho_old = chunk.density1.get(i, k);
                let mass_old = rho_old * vol;
                let dm = chunk.mass_flux_y.get(i, k) - chunk.mass_flux_y.get(i, k + 1);
                let de = chunk.ener_flux.get(i, k) - chunk.ener_flux.get(i, k + 1);
                let mass_new = (mass_old + dm).max(1e-12);
                let rho_new = mass_new / vol;
                let e_new = (rho_old * vol * chunk.energy1.get(i, k) + de) / mass_new;
                chunk.density1.set(i, k, rho_new);
                chunk.energy1.set(i, k, e_new.max(1e-12));
            }
        }
    }
}

/// Donor-cell advection of momentum (`advec_mom_kernel`), applied per
/// velocity component.  The x sweep covers loops am00–am07, the y sweep
/// am08–am11 (per component).
pub fn advec_mom(chunk: &mut Chunk, sweep_x: bool, x_component: bool) {
    let vol = chunk.cell_volume();
    // am04/am08: node flux from the mass fluxes.
    // am05/am09: node masses before/after advection.
    // am06/am10: momentum flux (donor velocity).
    // am07/am11: velocity update.
    if sweep_x {
        for k in 0..chunk.ny as isize {
            for i in 0..(chunk.nx as isize + 1) {
                chunk.node_flux.set(i, k, chunk.mass_flux_x.get(i, k));
            }
        }
    } else {
        for k in 0..(chunk.ny as isize + 1) {
            for i in 0..chunk.nx as isize {
                chunk.node_flux.set(i, k, chunk.mass_flux_y.get(i, k));
            }
        }
    }
    for k in 0..chunk.ny as isize {
        for i in 0..chunk.nx as isize {
            chunk
                .node_mass_pre
                .set(i, k, chunk.density1.get(i, k) * vol);
        }
    }
    if sweep_x {
        for k in 0..chunk.ny as isize {
            for i in 0..(chunk.nx as isize + 1) {
                let mf = chunk.node_flux.get(i, k);
                let donor = if mf > 0.0 { i - 1 } else { i };
                let vel = if x_component {
                    chunk.xvel1.get(donor, k)
                } else {
                    chunk.yvel1.get(donor, k)
                };
                chunk.mom_flux.set(i, k, mf * vel);
            }
        }
        for k in 0..chunk.ny as isize {
            for i in 0..chunk.nx as isize {
                let mass = chunk.node_mass_pre.get(i, k).max(1e-12);
                let dmom = chunk.mom_flux.get(i, k) - chunk.mom_flux.get(i + 1, k);
                let dm = chunk.node_flux.get(i, k) - chunk.node_flux.get(i + 1, k);
                let vel_old = if x_component {
                    chunk.xvel1.get(i, k)
                } else {
                    chunk.yvel1.get(i, k)
                };
                let mass_new = (mass + dm).max(1e-12);
                let vel_new = (mass * vel_old + dmom) / mass_new;
                if x_component {
                    chunk.xvel1.set(i, k, vel_new);
                } else {
                    chunk.yvel1.set(i, k, vel_new);
                }
            }
        }
    } else {
        for k in 0..(chunk.ny as isize + 1) {
            for i in 0..chunk.nx as isize {
                let mf = chunk.node_flux.get(i, k);
                let donor = if mf > 0.0 { k - 1 } else { k };
                let vel = if x_component {
                    chunk.xvel1.get(i, donor)
                } else {
                    chunk.yvel1.get(i, donor)
                };
                chunk.mom_flux.set(i, k, mf * vel);
            }
        }
        for k in 0..chunk.ny as isize {
            for i in 0..chunk.nx as isize {
                let mass = chunk.node_mass_pre.get(i, k).max(1e-12);
                let dmom = chunk.mom_flux.get(i, k) - chunk.mom_flux.get(i, k + 1);
                let dm = chunk.node_flux.get(i, k) - chunk.node_flux.get(i, k + 1);
                let vel_old = if x_component {
                    chunk.xvel1.get(i, k)
                } else {
                    chunk.yvel1.get(i, k)
                };
                let mass_new = (mass + dm).max(1e-12);
                let vel_new = (mass * vel_old + dmom) / mass_new;
                if x_component {
                    chunk.xvel1.set(i, k, vel_new);
                } else {
                    chunk.yvel1.set(i, k, vel_new);
                }
            }
        }
    }
}

/// Copy the updated fields back into the step-start fields
/// (`reset_field_kernel`).
pub fn reset_field(chunk: &mut Chunk) {
    for k in 0..chunk.ny as isize {
        for i in 0..chunk.nx as isize {
            chunk.density0.set(i, k, chunk.density1.get(i, k));
            chunk.energy0.set(i, k, chunk.energy1.get(i, k));
            chunk.xvel0.set(i, k, chunk.xvel1.get(i, k));
            chunk.yvel0.set(i, k, chunk.yvel1.get(i, k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_chunk(n: usize) -> Chunk {
        let mut c = Chunk::new(n, n, 1.0, 1.0);
        for k in -2..(n as isize + 2) {
            for i in -2..(n as isize + 2) {
                c.density0.set(i, k, 0.5);
                c.energy0.set(i, k, 2.0);
                c.density1.set(i, k, 0.5);
                c.energy1.set(i, k, 2.0);
            }
        }
        c
    }

    #[test]
    fn ideal_gas_matches_eos() {
        let mut c = uniform_chunk(8);
        ideal_gas(&mut c, false);
        let expected_p = (GAMMA - 1.0) * 0.5 * 2.0;
        assert!((c.pressure.get(3, 3) - expected_p).abs() < 1e-12);
        let expected_c = (GAMMA * expected_p / 0.5).sqrt();
        assert!((c.soundspeed.get(3, 3) - expected_c).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_stays_uniform_over_a_step() {
        let mut c = uniform_chunk(8);
        ideal_gas(&mut c, false);
        viscosity(&mut c);
        let dt = calc_dt(&c, 0.5);
        assert!(dt > 0.0 && dt.is_finite());
        pdv(&mut c, dt, true);
        accelerate(&mut c, dt);
        flux_calc(&mut c, dt);
        advec_cell(&mut c, true);
        advec_cell(&mut c, false);
        advec_mom(&mut c, true, true);
        advec_mom(&mut c, false, false);
        reset_field(&mut c);
        for k in 0..8isize {
            for i in 0..8isize {
                assert!(
                    (c.density0.get(i, k) - 0.5).abs() < 1e-12,
                    "density changed"
                );
                assert!((c.energy0.get(i, k) - 2.0).abs() < 1e-12, "energy changed");
                assert!(c.xvel0.get(i, k).abs() < 1e-12, "velocity appeared");
            }
        }
    }

    #[test]
    fn viscosity_only_acts_under_compression() {
        let mut c = uniform_chunk(8);
        // Diverging flow: du/dx > 0 → no viscosity.
        for k in -2..10isize {
            for i in -2..10isize {
                c.xvel0.set(i, k, i as f64 * 0.1);
            }
        }
        viscosity(&mut c);
        assert_eq!(c.viscosity.get(4, 4), 0.0);
        // Converging flow: du/dx < 0 → viscosity active.
        for k in -2..10isize {
            for i in -2..10isize {
                c.xvel0.set(i, k, -(i as f64) * 0.1);
            }
        }
        viscosity(&mut c);
        assert!(c.viscosity.get(4, 4) > 0.0);
    }

    #[test]
    fn calc_dt_shrinks_with_higher_soundspeed() {
        let mut slow = uniform_chunk(8);
        ideal_gas(&mut slow, false);
        let dt_slow = calc_dt(&slow, 0.7);
        let mut fast = uniform_chunk(8);
        for k in -2..10isize {
            for i in -2..10isize {
                fast.energy0.set(i, k, 8.0);
            }
        }
        ideal_gas(&mut fast, false);
        let dt_fast = calc_dt(&fast, 0.7);
        assert!(dt_fast < dt_slow);
    }

    #[test]
    fn pdv_compression_raises_energy() {
        let mut c = uniform_chunk(8);
        ideal_gas(&mut c, false);
        // Converging velocity field → div < 0 → compression heats the gas.
        for k in -2..10isize {
            for i in -2..10isize {
                c.xvel0.set(i, k, -(i as f64) * 0.01);
            }
        }
        pdv(&mut c, 0.01, false);
        assert!(c.energy1.get(4, 4) > c.energy0.get(4, 4));
        assert!(c.density1.get(4, 4) > c.density0.get(4, 4));
    }

    #[test]
    fn accelerate_pushes_away_from_high_pressure() {
        let mut c = uniform_chunk(8);
        // Pressure decreasing with i: force points towards +x.
        for k in -2..10isize {
            for i in -2..10isize {
                c.pressure.set(i, k, 10.0 - i as f64);
                c.viscosity.set(i, k, 0.0);
            }
        }
        accelerate(&mut c, 0.1);
        assert!(c.xvel1.get(4, 4) > 0.0);
        assert!(c.yvel1.get(4, 4).abs() < 1e-12);
    }

    #[test]
    fn advection_conserves_mass_with_closed_boundaries() {
        let mut c = uniform_chunk(16);
        // A density bump in the middle and a uniform rightward velocity.
        for k in 4..12isize {
            for i in 4..12isize {
                c.density1.set(i, k, 1.5);
                c.density0.set(i, k, 1.5);
            }
        }
        for k in -2..18isize {
            for i in -2..18isize {
                c.xvel1.set(i, k, 0.3);
                c.yvel1.set(i, k, 0.1);
            }
        }
        let mass_before: f64 = c.density1.interior_sum() * c.cell_volume();
        flux_calc(&mut c, 0.2);
        advec_cell(&mut c, true);
        advec_cell(&mut c, false);
        let mass_after: f64 = c.density1.interior_sum() * c.cell_volume();
        assert!(
            (mass_before - mass_after).abs() < 1e-9 * mass_before,
            "mass {mass_before} -> {mass_after}"
        );
    }

    #[test]
    fn reset_field_copies_new_into_old() {
        let mut c = uniform_chunk(4);
        c.density1.set(2, 2, 9.0);
        c.xvel1.set(1, 1, 3.0);
        reset_field(&mut c);
        assert_eq!(c.density0.get(2, 2), 9.0);
        assert_eq!(c.xvel0.get(1, 1), 3.0);
    }
}
