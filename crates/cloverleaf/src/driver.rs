//! The timestep driver: the `hydro` loop of CloverLeaf.

use clover_core::decomp::Decomposition;
use clover_simpi::{Comm, World};

use crate::chunk::Chunk;
use crate::halo::{
    exchange_advection, exchange_eos, exchange_primary, serial_boundaries, RankGrid,
};
use crate::kernels;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Global cells along x.
    pub grid_x: usize,
    /// Global cells along y.
    pub grid_y: usize,
    /// Physical domain size along x.
    pub length_x: f64,
    /// Physical domain size along y.
    pub length_y: f64,
    /// CFL safety factor.
    pub cfl: f64,
    /// Number of timesteps to run.
    pub steps: usize,
}

impl SimConfig {
    /// A small problem suitable for tests and examples (scaled-down Tiny).
    pub fn small(grid: usize, steps: usize) -> Self {
        Self {
            grid_x: grid,
            grid_y: grid,
            length_x: 10.0,
            length_y: 10.0,
            cfl: 0.5,
            steps,
        }
    }
}

/// Summary of a run: the global field summary CloverLeaf prints, used for
/// validation and for the single-rank vs. multi-rank consistency tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Total mass over the global domain.
    pub mass: f64,
    /// Total internal energy.
    pub internal_energy: f64,
    /// Total kinetic energy.
    pub kinetic_energy: f64,
    /// Final timestep size.
    pub dt: f64,
    /// Steps executed.
    pub steps: usize,
}

/// A per-rank simulation instance.
pub struct Simulation {
    /// The rank's chunk of the grid.
    pub chunk: Chunk,
    grid: RankGrid,
    config: SimConfig,
    dt: f64,
}

impl Simulation {
    /// Build the simulation for one rank of a `ranks`-rank run.
    pub fn new(config: &SimConfig, rank: usize, ranks: usize) -> Self {
        let decomp = Decomposition::new(ranks, config.grid_x, config.grid_y);
        let grid = RankGrid {
            rank,
            ranks_x: decomp.ranks_x,
            ranks_y: decomp.ranks_y,
        };
        let nx = decomp.local_inner(rank);
        let ny = decomp.local_outer(rank);
        let dx = config.length_x / config.grid_x as f64;
        let dy = config.length_y / config.grid_y as f64;
        let mut chunk = Chunk::new(nx, ny, dx, dy);
        // Global offsets: sum of the chunk sizes of the ranks before us.
        chunk.offset_x = (0..grid.rx()).map(|r| decomp.local_inner(r)).sum();
        chunk.offset_y = (0..grid.ry())
            .map(|r| decomp.local_outer(r * decomp.ranks_x))
            .sum();
        chunk.at_left = grid.rx() == 0;
        chunk.at_right = grid.rx() + 1 == decomp.ranks_x;
        chunk.at_bottom = grid.ry() == 0;
        chunk.at_top = grid.ry() + 1 == decomp.ranks_y;
        chunk.initialise_two_state(config.grid_x, config.grid_y);
        Self {
            chunk,
            grid,
            config: config.clone(),
            dt: 0.0,
        }
    }

    /// Execute one timestep.  `comm` is `None` for a serial run.
    pub fn step(&mut self, mut comm: Option<&mut Comm>) {
        // Refresh the halos of the step-start fields, then equation of
        // state, viscosity and the global time step.
        match comm.as_deref_mut() {
            Some(c) => exchange_primary(c, &self.grid, &mut self.chunk),
            None => serial_boundaries(&mut self.chunk),
        }
        kernels::ideal_gas(&mut self.chunk, false);
        kernels::viscosity(&mut self.chunk);
        let local_dt = kernels::calc_dt(&self.chunk, self.config.cfl);
        self.dt = match comm.as_deref_mut() {
            Some(c) => c.allreduce_min(local_dt),
            None => local_dt,
        };

        // Lagrangian phase.
        kernels::pdv(&mut self.chunk, self.dt, true);
        match comm.as_deref_mut() {
            Some(c) => exchange_eos(c, &self.grid, &mut self.chunk),
            None => serial_boundaries(&mut self.chunk),
        }
        kernels::ideal_gas(&mut self.chunk, true);
        kernels::pdv(&mut self.chunk, self.dt, false);
        kernels::accelerate(&mut self.chunk, self.dt);

        // Advection phase (double sweep).
        match comm.as_deref_mut() {
            Some(c) => exchange_advection(c, &self.grid, &mut self.chunk),
            None => serial_boundaries(&mut self.chunk),
        }
        kernels::flux_calc(&mut self.chunk, self.dt);
        match comm.as_deref_mut() {
            Some(c) => exchange_advection(c, &self.grid, &mut self.chunk),
            None => serial_boundaries(&mut self.chunk),
        }
        kernels::advec_cell(&mut self.chunk, true);
        kernels::advec_mom(&mut self.chunk, true, true);
        kernels::advec_mom(&mut self.chunk, true, false);
        match comm.as_deref_mut() {
            Some(c) => exchange_advection(c, &self.grid, &mut self.chunk),
            None => serial_boundaries(&mut self.chunk),
        }
        kernels::advec_cell(&mut self.chunk, false);
        kernels::advec_mom(&mut self.chunk, false, true);
        kernels::advec_mom(&mut self.chunk, false, false);

        kernels::reset_field(&mut self.chunk);
    }

    /// Local contribution to the field summary.
    pub fn local_summary(&self) -> (f64, f64, f64) {
        (
            self.chunk.total_mass(),
            self.chunk.total_internal_energy(),
            self.chunk.total_kinetic_energy(),
        )
    }

    /// Run a complete serial simulation and return the global summary.
    pub fn run_serial(config: &SimConfig) -> RunSummary {
        let mut sim = Simulation::new(config, 0, 1);
        for _ in 0..config.steps {
            sim.step(None);
        }
        let (mass, internal_energy, kinetic_energy) = sim.local_summary();
        RunSummary {
            mass,
            internal_energy,
            kinetic_energy,
            dt: sim.dt,
            steps: config.steps,
        }
    }

    /// Run a complete parallel simulation on `ranks` in-process ranks and
    /// return the global summary (identical on every rank).
    pub fn run_parallel(config: &SimConfig, ranks: usize) -> RunSummary {
        let results = World::run(ranks, |mut comm| {
            let mut sim = Simulation::new(config, comm.rank(), comm.size());
            for _ in 0..config.steps {
                sim.step(Some(&mut comm));
            }
            let (m, ie, ke) = sim.local_summary();
            let mass = comm.allreduce_sum(m);
            let internal = comm.allreduce_sum(ie);
            let kinetic = comm.allreduce_sum(ke);
            RunSummary {
                mass,
                internal_energy: internal,
                kinetic_energy: kinetic,
                dt: sim.dt,
                steps: config.steps,
            }
        });
        results[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_run_is_stable_and_positive() {
        let summary = Simulation::run_serial(&SimConfig::small(24, 5));
        assert!(summary.mass > 0.0 && summary.mass.is_finite());
        assert!(summary.internal_energy > 0.0 && summary.internal_energy.is_finite());
        assert!(summary.kinetic_energy >= 0.0 && summary.kinetic_energy.is_finite());
        assert!(summary.dt > 0.0);
        assert_eq!(summary.steps, 5);
    }

    #[test]
    fn the_energy_source_drives_a_shock() {
        // After a few steps the hot corner must have produced kinetic energy.
        let summary = Simulation::run_serial(&SimConfig::small(24, 5));
        assert!(
            summary.kinetic_energy > 0.0,
            "the two-state problem must start moving"
        );
    }

    #[test]
    fn parallel_run_matches_serial_summary() {
        let config = SimConfig::small(24, 4);
        let serial = Simulation::run_serial(&config);
        for ranks in [2usize, 3, 4] {
            let par = Simulation::run_parallel(&config, ranks);
            // Agreement is at the 1e-6 level: the zero-gradient treatment of
            // the outer boundary corners differs slightly between the
            // decomposed and the serial sweep (see halo.rs).
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
            assert!(
                rel(par.mass, serial.mass) < 1e-6,
                "ranks={ranks}: mass {} vs {}",
                par.mass,
                serial.mass
            );
            assert!(
                rel(par.internal_energy, serial.internal_energy) < 1e-6,
                "ranks={ranks}: internal energy {} vs {}",
                par.internal_energy,
                serial.internal_energy
            );
            assert!(
                rel(par.kinetic_energy, serial.kinetic_energy) < 1e-6,
                "ranks={ranks}: kinetic energy {} vs {}",
                par.kinetic_energy,
                serial.kinetic_energy
            );
        }
    }

    #[test]
    fn prime_rank_count_still_agrees_with_serial() {
        let config = SimConfig::small(30, 3);
        let serial = Simulation::run_serial(&config);
        let par = Simulation::run_parallel(&config, 5);
        let rel =
            (par.internal_energy - serial.internal_energy).abs() / serial.internal_energy.abs();
        assert!(rel < 1e-6, "prime decomposition diverges: {rel}");
    }

    #[test]
    fn mass_is_approximately_conserved_over_a_run() {
        let config = SimConfig::small(32, 8);
        let mut sim = Simulation::new(&config, 0, 1);
        let mass0 = sim.chunk.total_mass();
        for _ in 0..config.steps {
            sim.step(None);
        }
        let mass1 = sim.chunk.total_mass();
        // The Eulerian remap conserves mass exactly; the Lagrangian density
        // update is approximate, so allow a small drift.
        assert!(
            (mass1 - mass0).abs() / mass0 < 0.05,
            "mass drift too large: {mass0} -> {mass1}"
        );
    }

    #[test]
    fn decomposition_offsets_tile_the_domain() {
        let config = SimConfig::small(25, 1);
        // 6 ranks → 3×2 or 2×3 rank grid; offsets plus sizes must tile 25.
        let mut covered = vec![vec![false; 25]; 25];
        for rank in 0..6 {
            let sim = Simulation::new(&config, rank, 6);
            for k in 0..sim.chunk.ny {
                for i in 0..sim.chunk.nx {
                    let gi = sim.chunk.offset_x + i;
                    let gk = sim.chunk.offset_y + k;
                    assert!(!covered[gk][gi], "cell ({gi},{gk}) covered twice");
                    covered[gk][gi] = true;
                }
            }
        }
        assert!(covered.iter().all(|row| row.iter().all(|&c| c)));
    }
}
