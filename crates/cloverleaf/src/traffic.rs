//! Memory-traffic replay of the CloverLeaf kernels on the cache simulator.
//!
//! The compute kernels in [`crate::kernels`] operate on real [`Field2D`]
//! data; this module mirrors their memory footprints — same fields, same
//! stencil offsets, same loop bounds, addresses derived from the actual
//! halo'd field layout — as [`StencilRowSweep`]s driven through the batched
//! line-granular simulator API.  That turns any chunk geometry into a
//! per-kernel traffic measurement without tracing the arithmetic, the same
//! way the paper instruments the Fortran hotspots with LIKWID markers.
//!
//! [`Field2D`]: crate::field::Field2D

use clover_cachesim::hierarchy::{CoreSimOptions, DomainOccupancy, OccupancyContext};
use clover_cachesim::patterns::StencilRowSweep;
use clover_cachesim::{
    AccessKind, CoreSim, KernelSpec, MemCounters, RankBase, SimMemo, SpecOperand,
};
use clover_machine::Machine;

use crate::chunk::HALO;

/// Field identifiers of the replay address space.  Every field of a
/// [`Chunk`](crate::chunk::Chunk) gets a fixed slot; bases are spaced far
/// enough apart that streams never alias, mirroring separate allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FieldId {
    Density0,
    Density1,
    Energy0,
    Energy1,
    Pressure,
    Viscosity,
    Soundspeed,
    Xvel0,
    Xvel1,
    Yvel0,
    Yvel1,
    VolFluxX,
    VolFluxY,
    MassFluxX,
    MassFluxY,
    EnerFlux,
    NodeFlux,
    NodeMassPre,
    MomFlux,
}

/// One kernel loop of the replay: fields with stencil offsets and access
/// kinds, plus the loop bounds relative to the interior (`0..nx`, `0..ny`).
#[derive(Debug, Clone)]
pub struct KernelTraffic {
    /// Kernel name (matches `crate::kernels` function names).
    pub name: &'static str,
    /// `(field, offsets, kind)` triples in the access order of the source
    /// loop body (reads before the writes they feed).
    pub operands: Vec<(FieldId, Vec<(i64, i64)>, AccessKind)>,
    /// Extra cells swept beyond the interior on each side along x.
    pub halo_x: i64,
    /// Extra cells swept beyond the interior on each side along y.
    pub halo_y: i64,
}

/// Memory-traffic descriptors of one CloverLeaf timestep, in execution
/// order.  `advec_cell`/`advec_mom` are represented by their conservative
/// update loops (the hotspots ac03/ac07 and am07/am11 dominate their
/// traffic); the x sweep stands in for both directions, whose footprints
/// are symmetric.
pub fn timestep_kernels() -> Vec<KernelTraffic> {
    use AccessKind::{Load, Store};
    use FieldId::*;
    let centre = vec![(0, 0)];
    vec![
        KernelTraffic {
            name: "ideal_gas",
            operands: vec![
                (Density0, centre.clone(), Load),
                (Energy0, centre.clone(), Load),
                (Pressure, centre.clone(), Store),
                (Soundspeed, centre.clone(), Store),
            ],
            halo_x: 1,
            halo_y: 1,
        },
        KernelTraffic {
            name: "viscosity",
            operands: vec![
                (Xvel0, vec![(1, 0), (-1, 0)], Load),
                (Yvel0, vec![(0, 1), (0, -1)], Load),
                (Density0, centre.clone(), Load),
                (Viscosity, centre.clone(), Store),
            ],
            halo_x: 1,
            halo_y: 1,
        },
        KernelTraffic {
            name: "pdv",
            operands: vec![
                (Xvel0, vec![(1, 0), (-1, 0)], Load),
                (Yvel0, vec![(0, 1), (0, -1)], Load),
                (Density0, centre.clone(), Load),
                (Pressure, centre.clone(), Load),
                (Viscosity, centre.clone(), Load),
                (Energy0, centre.clone(), Load),
                (Density1, centre.clone(), Store),
                (Energy1, centre.clone(), Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
        KernelTraffic {
            name: "accelerate",
            operands: vec![
                (Density0, centre.clone(), Load),
                (Pressure, vec![(1, 0), (-1, 0), (0, 1), (0, -1)], Load),
                (Viscosity, vec![(1, 0), (-1, 0), (0, 1), (0, -1)], Load),
                (Xvel0, centre.clone(), Load),
                (Xvel1, centre.clone(), Store),
                (Yvel0, centre.clone(), Load),
                (Yvel1, centre.clone(), Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
        KernelTraffic {
            name: "flux_calc",
            operands: vec![
                (Xvel1, vec![(-1, 0), (0, 0)], Load),
                (VolFluxX, centre.clone(), Store),
                (Yvel1, vec![(0, -1), (0, 0)], Load),
                (VolFluxY, centre.clone(), Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
        KernelTraffic {
            name: "advec_cell",
            operands: vec![
                (Density1, centre.clone(), Load),
                (MassFluxX, vec![(0, 0), (1, 0)], Load),
                (EnerFlux, vec![(0, 0), (1, 0)], Load),
                (Energy1, centre.clone(), Load),
                (Density1, centre.clone(), Store),
                (Energy1, centre.clone(), Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
        KernelTraffic {
            name: "advec_mom",
            operands: vec![
                (NodeMassPre, centre.clone(), Load),
                (MomFlux, vec![(0, 0), (1, 0)], Load),
                (NodeFlux, vec![(0, 0), (1, 0)], Load),
                (Xvel1, centre.clone(), Load),
                (Xvel1, centre.clone(), Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
        KernelTraffic {
            name: "reset_field",
            operands: vec![
                (Density1, centre.clone(), Load),
                (Density0, centre.clone(), Store),
                (Energy1, centre.clone(), Load),
                (Energy0, centre.clone(), Store),
                (Xvel1, centre.clone(), Load),
                (Xvel0, centre.clone(), Store),
                (Yvel1, centre.clone(), Load),
                (Yvel0, centre, Store),
            ],
            halo_x: 0,
            halo_y: 0,
        },
    ]
}

impl KernelTraffic {
    /// The kernel's memory footprint as a typed, memoizable [`KernelSpec`]
    /// on a local domain of `nx × ny` interior cells, using the same halo'd
    /// row-major layout as [`Field2D`](crate::field::Field2D) (`stride = nx
    /// + 2 * HALO`, interior cell `(0, 0)` at grid index `(HALO, HALO)`).
    /// The field bases are fixed offsets in a private address space, so the
    /// spec is rank-shared.
    pub fn kernel_spec(&self, nx: usize, ny: usize) -> KernelSpec {
        let stride = (nx + 2 * HALO) as u64;
        let field_cells = stride * (ny as u64 + 2 * HALO as u64);
        // 64-byte-aligned base per field with a guard gap, like separate
        // allocations of the real arrays.
        let field_gap = (field_cells * 8).next_multiple_of(4096) + 4096;
        // `+`, not `|`: huge domains push the field offset past bit 36.
        let base = |f: FieldId| (1u64 << 36) + (f as u64) * field_gap;
        let h = HALO as i64;
        KernelSpec {
            rank_base: RankBase::Shared,
            operands: self
                .operands
                .iter()
                .map(|(field, offsets, kind)| SpecOperand {
                    offset: base(*field),
                    points: offsets.clone(),
                    kind: *kind,
                })
                .collect(),
            row_stride: stride,
            i0: (h - self.halo_x) as u64,
            inner: (nx as i64 + 2 * self.halo_x) as u64,
            k0: (h - self.halo_y) as u64,
            rows: (ny as i64 + 2 * self.halo_y) as u64,
        }
    }

    /// Build the stencil row sweep replaying this kernel (the materialised
    /// form of [`kernel_spec`](Self::kernel_spec)).
    pub fn sweep(&self, nx: usize, ny: usize) -> StencilRowSweep {
        self.kernel_spec(nx, ny).sweep(0)
    }
}

/// Traffic of one kernel measured on `machine` for a rank among
/// `total_ranks` compactly pinned ranks, with a local domain of `nx × ny`
/// cells.
#[derive(Debug, Clone)]
pub struct KernelTrafficReport {
    /// Kernel name.
    pub name: &'static str,
    /// Measured counters.
    pub counters: MemCounters,
    /// Grid-point updates performed.
    pub iterations: f64,
}

impl KernelTrafficReport {
    /// Measured code balance in bytes per grid-point update.
    pub fn bytes_per_iteration(&self) -> f64 {
        self.counters.total_bytes() / self.iterations.max(1.0)
    }
}

/// The occupancy context and core options `timestep_traffic` simulates
/// under for `total_ranks` compactly pinned ranks.
fn replay_config(machine: &Machine, total_ranks: usize) -> (OccupancyContext, CoreSimOptions) {
    let ctx = OccupancyContext::compact(machine, total_ranks);
    let occ = DomainOccupancy::compact(machine, total_ranks);
    let options = CoreSimOptions {
        l3_sharers: DomainOccupancy::l3_sharers(machine, occ.busiest),
        ..Default::default()
    };
    (ctx, options)
}

/// [`timestep_traffic`] through a cross-sweep [`SimMemo`]: bit-identical
/// per-kernel reports, with each distinct `(occupancy, kernel footprint)`
/// pair simulated once per memo lifetime — a rank-count sweep over the same
/// chunk geometry re-simulates nothing once the busiest-domain context
/// repeats.
pub fn timestep_traffic_memo(
    machine: &Machine,
    nx: usize,
    ny: usize,
    total_ranks: usize,
    memo: &SimMemo,
) -> Vec<KernelTrafficReport> {
    let (ctx, options) = replay_config(machine, total_ranks);
    timestep_kernels()
        .into_iter()
        .map(|kernel| {
            let spec = kernel.kernel_spec(nx, ny);
            let counters = memo.counters(machine, ctx, options, &spec, 0);
            KernelTrafficReport {
                name: kernel.name,
                counters,
                iterations: spec.iterations() as f64,
            }
        })
        .collect()
}

/// Replay every timestep kernel of a `nx × ny` local domain through the
/// cache simulator and report the per-kernel traffic.  `total_ranks` sets
/// the occupancy (and hence SpecI2M behaviour) of the simulated core.
pub fn timestep_traffic(
    machine: &Machine,
    nx: usize,
    ny: usize,
    total_ranks: usize,
) -> Vec<KernelTrafficReport> {
    let (ctx, options) = replay_config(machine, total_ranks);
    let mut core: CoreSim = CoreSim::new(machine, ctx, options);
    let mut first = true;
    timestep_kernels()
        .into_iter()
        .map(|kernel| {
            if first {
                first = false;
            } else {
                core.reset(ctx, options);
            }
            let sweep = kernel.sweep(nx, ny);
            sweep.drive(&mut core);
            KernelTrafficReport {
                name: kernel.name,
                counters: core.flush(),
                iterations: sweep.iterations() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_machine::icelake_sp_8360y;

    #[test]
    fn replay_matches_scalar_reference() {
        // The replay runs on the batched driver; it must be bit-identical
        // to the per-element path for every kernel footprint.
        let m = icelake_sp_8360y();
        for kernel in timestep_kernels() {
            let sweep = kernel.sweep(216, 16);
            let mk = || -> CoreSim {
                CoreSim::new(
                    &m,
                    OccupancyContext::compact(&m, m.total_cores()),
                    CoreSimOptions {
                        l3_sharers: 36,
                        ..Default::default()
                    },
                )
            };
            let mut fast = mk();
            let mut slow = mk();
            sweep.drive(&mut fast);
            sweep.drive_scalar(&mut slow);
            assert_eq!(fast.cache_stats(), slow.cache_stats(), "{}", kernel.name);
            assert_eq!(fast.flush(), slow.flush(), "{}", kernel.name);
        }
    }

    #[test]
    fn reset_field_balance_matches_hand_count() {
        // reset_field streams 4 read + 4 written arrays.  Serial, without
        // evasion: 8 B read + 8 B write-allocate + 8 B write per array pair
        // touched → 4 × 24 = 96 B/it.
        let m = icelake_sp_8360y();
        let reports = timestep_traffic(&m, 1920, 24, 1);
        let reset = reports.iter().find(|r| r.name == "reset_field").unwrap();
        let b = reset.bytes_per_iteration();
        assert!((90.0..=102.0).contains(&b), "reset_field {b} byte/it");
    }

    #[test]
    fn full_node_occupancy_lowers_the_balance() {
        let m = icelake_sp_8360y();
        let serial = timestep_traffic(&m, 1920, 24, 1);
        let node = timestep_traffic(&m, 1920, 24, 72);
        let total = |reports: &[KernelTrafficReport]| -> f64 {
            reports.iter().map(|r| r.bytes_per_iteration()).sum()
        };
        assert!(
            total(&node) < total(&serial) - 10.0,
            "node {} vs serial {}",
            total(&node),
            total(&serial)
        );
    }

    #[test]
    fn every_timestep_kernel_is_replayed() {
        let m = icelake_sp_8360y();
        let reports = timestep_traffic(&m, 256, 8, 4);
        assert_eq!(reports.len(), timestep_kernels().len());
        for r in &reports {
            assert!(r.iterations > 0.0, "{}", r.name);
            assert!(r.counters.total_bytes() > 0.0, "{}", r.name);
            assert!(r.bytes_per_iteration() > 8.0, "{}", r.name);
        }
    }

    #[test]
    fn memoized_replay_is_bit_identical() {
        let m = icelake_sp_8360y();
        let memo = SimMemo::new();
        for ranks in [1usize, 18, 19, 72] {
            let plain = timestep_traffic(&m, 256, 8, ranks);
            let memoized = timestep_traffic_memo(&m, 256, 8, ranks, &memo);
            assert_eq!(plain.len(), memoized.len());
            for (p, q) in plain.iter().zip(&memoized) {
                assert_eq!(p.name, q.name);
                assert_eq!(p.counters, q.counters, "{} ranks={ranks}", p.name);
                assert_eq!(p.iterations, q.iterations, "{}", p.name);
            }
        }
        // Ranks 19 and 72 share no context, but a second pass over any rank
        // count is free.
        let before = memo.stats().misses;
        let _ = timestep_traffic_memo(&m, 256, 8, 18, &memo);
        assert_eq!(memo.stats().misses, before, "second pass must be hits");
    }

    #[test]
    fn sweeps_respect_field_layout() {
        let kernels = timestep_kernels();
        let ideal = kernels.iter().find(|k| k.name == "ideal_gas").unwrap();
        let sweep = ideal.sweep(100, 10);
        assert_eq!(sweep.row_stride, 104);
        // One halo ring beyond the interior on each side.
        assert_eq!(sweep.inner, 102);
        assert_eq!(sweep.rows, 12);
        assert_eq!(sweep.i0, 1);
        assert_eq!(sweep.k0, 1);
        // All operand bases are 64-byte aligned and distinct.
        let mut bases: Vec<u64> = sweep.operands.iter().map(|o| o.base).collect();
        assert!(bases.iter().all(|b| b % 64 == 0));
        bases.dedup();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 4);
    }
}
