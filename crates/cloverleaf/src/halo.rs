//! Halo exchange between neighbouring ranks.
//!
//! CloverLeaf exchanges halo layers after every kernel that produces data
//! its neighbours need.  Ranks are arranged on a `ranks_x × ranks_y`
//! Cartesian grid (row-major, x fastest); each exchange ships one column or
//! row per halo depth to the left/right/bottom/top neighbour.

use clover_simpi::Comm;

use crate::chunk::{Chunk, HALO};
use crate::field::Field2D;

/// Position of a rank in the rank grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankGrid {
    /// This rank's id.
    pub rank: usize,
    /// Ranks along x.
    pub ranks_x: usize,
    /// Ranks along y.
    pub ranks_y: usize,
}

impl RankGrid {
    /// x coordinate of this rank.
    pub fn rx(&self) -> usize {
        self.rank % self.ranks_x
    }

    /// y coordinate of this rank.
    pub fn ry(&self) -> usize {
        self.rank / self.ranks_x
    }

    /// Left neighbour rank, if any.
    pub fn left(&self) -> Option<usize> {
        (self.rx() > 0).then(|| self.rank - 1)
    }

    /// Right neighbour rank, if any.
    pub fn right(&self) -> Option<usize> {
        (self.rx() + 1 < self.ranks_x).then(|| self.rank + 1)
    }

    /// Bottom neighbour rank, if any.
    pub fn bottom(&self) -> Option<usize> {
        (self.ry() > 0).then(|| self.rank - self.ranks_x)
    }

    /// Top neighbour rank, if any.
    pub fn top(&self) -> Option<usize> {
        (self.ry() + 1 < self.ranks_y).then(|| self.rank + self.ranks_x)
    }
}

/// Exchange the halo of one field with all four neighbours and apply
/// zero-gradient boundaries on the physical edges.
///
/// Every rank must call this collectively with the same `tag`.
pub fn exchange_field(
    comm: &mut Comm,
    grid: &RankGrid,
    chunk_bounds: (bool, bool, bool, bool),
    field: &mut Field2D,
    tag: u32,
) {
    let h = HALO as isize;
    // X direction: send interior columns, receive into halo columns.
    if let Some(left) = grid.left() {
        for d in 0..h {
            comm.send(left, tag * 8 + d as u32, &field.pack_column(d));
        }
    }
    if let Some(right) = grid.right() {
        for d in 0..h {
            comm.send(
                right,
                tag * 8 + 4 + d as u32,
                &field.pack_column(field.nx() as isize - 1 - d),
            );
        }
    }
    if let Some(right) = grid.right() {
        for d in 0..h {
            let data = comm.recv(right, tag * 8 + d as u32);
            field.unpack_column(field.nx() as isize + d, &data);
        }
    }
    if let Some(left) = grid.left() {
        for d in 0..h {
            let data = comm.recv(left, tag * 8 + 4 + d as u32);
            field.unpack_column(-1 - d, &data);
        }
    }
    // Y direction (after x so corners propagate correctly for our depth-1
    // stencils; rows include only the interior columns, corners come from
    // the physical-boundary fill).
    if let Some(bottom) = grid.bottom() {
        for d in 0..h {
            comm.send(bottom, tag * 8 + d as u32, &field.pack_row(d));
        }
    }
    if let Some(top) = grid.top() {
        for d in 0..h {
            comm.send(
                top,
                tag * 8 + 4 + d as u32,
                &field.pack_row(field.ny() as isize - 1 - d),
            );
        }
    }
    if let Some(top) = grid.top() {
        for d in 0..h {
            let data = comm.recv(top, tag * 8 + d as u32);
            field.unpack_row(field.ny() as isize + d, &data);
        }
    }
    if let Some(bottom) = grid.bottom() {
        for d in 0..h {
            let data = comm.recv(bottom, tag * 8 + 4 + d as u32);
            field.unpack_row(-1 - d, &data);
        }
    }
    let (at_left, at_right, at_bottom, at_top) = chunk_bounds;
    field.reflect_boundaries(at_left, at_right, at_bottom, at_top);
}

/// Exchange the halos of the fields needed before the Lagrangian step.
pub fn exchange_primary(comm: &mut Comm, grid: &RankGrid, chunk: &mut Chunk) {
    let bounds = (chunk.at_left, chunk.at_right, chunk.at_bottom, chunk.at_top);
    exchange_field(comm, grid, bounds, &mut chunk.density0, 1);
    exchange_field(comm, grid, bounds, &mut chunk.energy0, 2);
    exchange_field(comm, grid, bounds, &mut chunk.pressure, 3);
    exchange_field(comm, grid, bounds, &mut chunk.viscosity, 4);
    exchange_field(comm, grid, bounds, &mut chunk.xvel0, 5);
    exchange_field(comm, grid, bounds, &mut chunk.yvel0, 6);
}

/// Exchange the halos of the predicted density/energy so the equation of
/// state can be evaluated on the halo cells (needed by `accelerate`).
pub fn exchange_eos(comm: &mut Comm, grid: &RankGrid, chunk: &mut Chunk) {
    let bounds = (chunk.at_left, chunk.at_right, chunk.at_bottom, chunk.at_top);
    exchange_field(comm, grid, bounds, &mut chunk.density1, 15);
    exchange_field(comm, grid, bounds, &mut chunk.energy1, 16);
}

/// Exchange the halos of the fields needed before the advection sweeps.
pub fn exchange_advection(comm: &mut Comm, grid: &RankGrid, chunk: &mut Chunk) {
    let bounds = (chunk.at_left, chunk.at_right, chunk.at_bottom, chunk.at_top);
    exchange_field(comm, grid, bounds, &mut chunk.density1, 7);
    exchange_field(comm, grid, bounds, &mut chunk.energy1, 8);
    exchange_field(comm, grid, bounds, &mut chunk.xvel1, 9);
    exchange_field(comm, grid, bounds, &mut chunk.yvel1, 10);
    exchange_field(comm, grid, bounds, &mut chunk.vol_flux_x, 11);
    exchange_field(comm, grid, bounds, &mut chunk.vol_flux_y, 12);
    exchange_field(comm, grid, bounds, &mut chunk.mass_flux_x, 13);
    exchange_field(comm, grid, bounds, &mut chunk.mass_flux_y, 14);
}

/// Serial (single-rank) halo update: only the physical boundaries.
pub fn serial_boundaries(chunk: &mut Chunk) {
    let fields: [&mut Field2D; 14] = [
        &mut chunk.density0,
        &mut chunk.energy0,
        &mut chunk.pressure,
        &mut chunk.viscosity,
        &mut chunk.xvel0,
        &mut chunk.yvel0,
        &mut chunk.density1,
        &mut chunk.energy1,
        &mut chunk.xvel1,
        &mut chunk.yvel1,
        &mut chunk.vol_flux_x,
        &mut chunk.vol_flux_y,
        &mut chunk.mass_flux_x,
        &mut chunk.mass_flux_y,
    ];
    for f in fields {
        f.reflect_boundaries(true, true, true, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_core::decomp::Decomposition;
    use clover_simpi::World;

    /// Cells a rank ships to one x-neighbour per field per exchange.
    fn x_send_cells(d: &Decomposition, rank: usize) -> usize {
        HALO * d.local_outer(rank)
    }

    /// Cells a rank ships to one y-neighbour per field per exchange.
    fn y_send_cells(d: &Decomposition, rank: usize) -> usize {
        HALO * d.local_inner(rank)
    }

    #[test]
    fn boundary_cell_counts_per_halo_depth() {
        // The halo ring of an nx × ny field with halo depth h holds
        // (nx+2h)(ny+2h) − nx·ny = 2h(nx+ny) + 4h² cells; one exchange
        // fills h columns of ny cells per x-neighbour and h rows of nx
        // cells per y-neighbour, matching the packed message sizes.
        for &(nx, ny) in &[(4usize, 3usize), (7, 5), (16, 2), (216, 96)] {
            for h in 1..=3usize {
                let field = Field2D::new(nx, ny, h);
                assert_eq!(field.pack_column(0).len(), ny);
                assert_eq!(field.pack_row(0).len(), nx);
                let ring = (nx + 2 * h) * (ny + 2 * h) - nx * ny;
                assert_eq!(ring, 2 * h * (nx + ny) + 4 * h * h, "nx={nx} ny={ny} h={h}");
                // A depth-h exchange fills h·ny cells per x side and h·nx
                // per y side; the 4h² corner cells come from the
                // physical-boundary fill, not from messages.
                let exchanged = 2 * h * ny + 2 * h * nx;
                assert_eq!(ring - exchanged, 4 * h * h);
            }
        }
    }

    #[test]
    fn send_and_recv_volumes_are_symmetric_across_the_rank_grid() {
        // Left/right neighbours share the same rank-grid row, so their
        // outer extents agree; top/bottom neighbours share the same
        // column, so their inner extents agree.  Every pairwise exchange
        // is therefore volume-symmetric, for square and prime (1D) rank
        // counts alike.
        for ranks in [6usize, 12, 36, 71, 72] {
            let d = Decomposition::new(ranks, 144, 144);
            for rank in 0..ranks {
                let grid = RankGrid {
                    rank,
                    ranks_x: d.ranks_x,
                    ranks_y: d.ranks_y,
                };
                for n in [grid.left(), grid.right()].into_iter().flatten() {
                    assert_eq!(
                        x_send_cells(&d, rank),
                        x_send_cells(&d, n),
                        "ranks={ranks}: x volumes {rank}<->{n}"
                    );
                }
                for n in [grid.bottom(), grid.top()].into_iter().flatten() {
                    assert_eq!(
                        y_send_cells(&d, rank),
                        y_send_cells(&d, n),
                        "ranks={ranks}: y volumes {rank}<->{n}"
                    );
                }
            }
            // Volume symmetry of every edge makes the totals match too.
            let total_sent: usize = (0..ranks)
                .map(|r| {
                    let g = RankGrid {
                        rank: r,
                        ranks_x: d.ranks_x,
                        ranks_y: d.ranks_y,
                    };
                    [g.left(), g.right()].iter().flatten().count() * x_send_cells(&d, r)
                        + [g.bottom(), g.top()].iter().flatten().count() * y_send_cells(&d, r)
                })
                .sum();
            let total_received: usize = (0..ranks)
                .map(|r| {
                    let g = RankGrid {
                        rank: r,
                        ranks_x: d.ranks_x,
                        ranks_y: d.ranks_y,
                    };
                    [g.left(), g.right()]
                        .iter()
                        .flatten()
                        .map(|&n| x_send_cells(&d, n))
                        .sum::<usize>()
                        + [g.bottom(), g.top()]
                            .iter()
                            .flatten()
                            .map(|&n| y_send_cells(&d, n))
                            .sum::<usize>()
                })
                .sum();
            assert_eq!(total_sent, total_received, "ranks={ranks}");
        }
    }

    #[test]
    fn exchanged_halo_values_match_the_neighbours_on_a_3x2_grid() {
        // Six ranks on a 3 × 2 grid: after one exchange, every halo cell
        // filled from a neighbour must hold that neighbour's interior
        // value, to full halo depth in all four directions.
        let (nx, ny) = (4usize, 3usize);
        let value = |rank: usize, i: isize, k: isize| (rank * 10_000) as f64 + (k * 100 + i) as f64;
        let results = World::run(6, move |mut comm| {
            let rank = comm.rank();
            let grid = RankGrid {
                rank,
                ranks_x: 3,
                ranks_y: 2,
            };
            let mut field = Field2D::new(nx, ny, HALO);
            for k in 0..ny as isize {
                for i in 0..nx as isize {
                    field.set(i, k, value(rank, i, k));
                }
            }
            let bounds = (
                grid.rx() == 0,
                grid.rx() == 2,
                grid.ry() == 0,
                grid.ry() == 1,
            );
            exchange_field(&mut comm, &grid, bounds, &mut field, 3);
            (grid, field)
        });
        let h = HALO as isize;
        for (grid, field) in &results {
            for d in 0..h {
                for k in 0..ny as isize {
                    if let Some(n) = grid.right() {
                        assert_eq!(field.get(nx as isize + d, k), value(n, d, k));
                    }
                    if let Some(n) = grid.left() {
                        assert_eq!(field.get(-1 - d, k), value(n, nx as isize - 1 - d, k));
                    }
                }
                for i in 0..nx as isize {
                    if let Some(n) = grid.top() {
                        assert_eq!(field.get(i, ny as isize + d), value(n, i, d));
                    }
                    if let Some(n) = grid.bottom() {
                        assert_eq!(field.get(i, -1 - d), value(n, i, ny as isize - 1 - d));
                    }
                }
            }
        }
    }

    #[test]
    fn rank_grid_neighbours() {
        let g = RankGrid {
            rank: 4,
            ranks_x: 3,
            ranks_y: 2,
        };
        assert_eq!(g.rx(), 1);
        assert_eq!(g.ry(), 1);
        assert_eq!(g.left(), Some(3));
        assert_eq!(g.right(), Some(5));
        assert_eq!(g.bottom(), Some(1));
        assert_eq!(g.top(), None);
        let corner = RankGrid {
            rank: 0,
            ranks_x: 3,
            ranks_y: 2,
        };
        assert_eq!(corner.left(), None);
        assert_eq!(corner.bottom(), None);
    }

    #[test]
    fn two_rank_exchange_transfers_interior_columns() {
        let results = World::run(2, |mut comm| {
            let rank = comm.rank();
            let grid = RankGrid {
                rank,
                ranks_x: 2,
                ranks_y: 1,
            };
            let mut field = Field2D::new(4, 3, HALO);
            for k in 0..3isize {
                for i in 0..4isize {
                    field.set(i, k, (rank * 100) as f64 + (10 * k + i) as f64);
                }
            }
            let bounds = (rank == 0, rank == 1, true, true);
            exchange_field(&mut comm, &grid, bounds, &mut field, 1);
            // Rank 0's right halo must contain rank 1's leftmost columns.
            (field.get(4, 1), field.get(-1, 1))
        });
        // Rank 0: halo column 4 = rank 1's column 0 (value 100 + 10).
        assert_eq!(results[0].0, 110.0);
        // Rank 1: halo column -1 = rank 0's column 3 (value 13).
        assert_eq!(results[1].1, 13.0);
    }

    #[test]
    fn physical_boundaries_are_zero_gradient_after_exchange() {
        let results = World::run(2, |mut comm| {
            let rank = comm.rank();
            let grid = RankGrid {
                rank,
                ranks_x: 2,
                ranks_y: 1,
            };
            let mut field = Field2D::new(4, 3, HALO);
            field.fill(0.0);
            for k in 0..3isize {
                for i in 0..4isize {
                    field.set(i, k, 7.0);
                }
            }
            let bounds = (rank == 0, rank == 1, true, true);
            exchange_field(&mut comm, &grid, bounds, &mut field, 2);
            (field.get(1, -1), field.get(1, 4))
        });
        for (bottom, top) in results {
            assert_eq!(bottom, 7.0);
            assert_eq!(top, 7.0);
        }
    }
}
