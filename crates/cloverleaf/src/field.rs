//! 2D field storage with halo cells.

/// A 2D double-precision field over a local domain of `nx × ny` cells with a
/// halo of `halo` cells on every side.  Data is stored row-major with the
/// inner (x) index contiguous, like the Fortran arrays of the original code
/// (transposed storage, identical access pattern per row).
#[derive(Debug, Clone, PartialEq)]
pub struct Field2D {
    nx: usize,
    ny: usize,
    halo: usize,
    data: Vec<f64>,
}

impl Field2D {
    /// Allocate a zero-initialised field.
    pub fn new(nx: usize, ny: usize, halo: usize) -> Self {
        let data = vec![0.0; (nx + 2 * halo) * (ny + 2 * halo)];
        Self { nx, ny, halo, data }
    }

    /// Interior cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Halo depth.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Row stride (allocated cells along x including halos).
    pub fn stride(&self) -> usize {
        self.nx + 2 * self.halo
    }

    #[inline]
    fn index(&self, i: isize, k: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(i >= -h && i < self.nx as isize + h, "i={i} out of range");
        debug_assert!(k >= -h && k < self.ny as isize + h, "k={k} out of range");
        ((k + h) as usize) * self.stride() + (i + h) as usize
    }

    /// Read cell `(i, k)`; interior cells are `0..nx × 0..ny`, halo cells
    /// use negative or ≥ `nx`/`ny` indices.
    #[inline]
    pub fn get(&self, i: isize, k: isize) -> f64 {
        self.data[self.index(i, k)]
    }

    /// Write cell `(i, k)`.
    #[inline]
    pub fn set(&mut self, i: isize, k: isize, value: f64) {
        let idx = self.index(i, k);
        self.data[idx] = value;
    }

    /// Fill every cell (including halos) with a value.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Sum of the interior cells.
    pub fn interior_sum(&self) -> f64 {
        let mut sum = 0.0;
        for k in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                sum += self.get(i, k);
            }
        }
        sum
    }

    /// Copy the interior and halo of another field (same shape).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &Field2D) {
        assert_eq!(self.nx, other.nx);
        assert_eq!(self.ny, other.ny);
        assert_eq!(self.halo, other.halo);
        self.data.copy_from_slice(&other.data);
    }

    /// Extract a column `i` over rows `0..ny` (used for halo packing).
    pub fn pack_column(&self, i: isize) -> Vec<f64> {
        (0..self.ny as isize).map(|k| self.get(i, k)).collect()
    }

    /// Extract a row `k` over columns `0..nx`.
    pub fn pack_row(&self, k: isize) -> Vec<f64> {
        (0..self.nx as isize).map(|i| self.get(i, k)).collect()
    }

    /// Write a packed column into column `i`.
    pub fn unpack_column(&mut self, i: isize, data: &[f64]) {
        assert_eq!(data.len(), self.ny);
        for (k, &v) in data.iter().enumerate() {
            self.set(i, k as isize, v);
        }
    }

    /// Write a packed row into row `k`.
    pub fn unpack_row(&mut self, k: isize, data: &[f64]) {
        assert_eq!(data.len(), self.nx);
        for (i, &v) in data.iter().enumerate() {
            self.set(i as isize, k, v);
        }
    }

    /// Zero-gradient boundary fill on the outer (physical) boundaries.
    /// `left`, `right`, `bottom`, `top` select which sides are physical
    /// boundaries of the global domain (not rank-internal).
    pub fn reflect_boundaries(&mut self, left: bool, right: bool, bottom: bool, top: bool) {
        let h = self.halo as isize;
        let nx = self.nx as isize;
        let ny = self.ny as isize;
        // Two passes so the corner halo cells converge regardless of which
        // sides are physical boundaries and which were filled by a halo
        // exchange before this call.
        for _ in 0..2 {
            for k in -h..ny + h {
                for g in 1..=h {
                    if left {
                        let v = self.get(g - 1, k);
                        self.set(-g, k, v);
                    }
                    if right {
                        let v = self.get(nx - g, k);
                        self.set(nx - 1 + g, k, v);
                    }
                }
            }
            for i in -h..nx + h {
                for g in 1..=h {
                    if bottom {
                        let v = self.get(i, g - 1);
                        self.set(i, -g, v);
                    }
                    if top {
                        let v = self.get(i, ny - g);
                        self.set(i, ny - 1 + g, v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_interior_and_halo() {
        let mut f = Field2D::new(4, 3, 2);
        f.set(0, 0, 1.5);
        f.set(3, 2, 2.5);
        f.set(-2, -2, 9.0);
        f.set(5, 4, 7.0);
        assert_eq!(f.get(0, 0), 1.5);
        assert_eq!(f.get(3, 2), 2.5);
        assert_eq!(f.get(-2, -2), 9.0);
        assert_eq!(f.get(5, 4), 7.0);
        assert_eq!(f.stride(), 8);
    }

    #[test]
    fn interior_sum_ignores_halo() {
        let mut f = Field2D::new(2, 2, 1);
        f.fill(3.0);
        assert_eq!(f.interior_sum(), 12.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut f = Field2D::new(3, 4, 1);
        for k in 0..4isize {
            for i in 0..3isize {
                f.set(i, k, (10 * k + i) as f64);
            }
        }
        let col = f.pack_column(1);
        assert_eq!(col, vec![1.0, 11.0, 21.0, 31.0]);
        let row = f.pack_row(2);
        assert_eq!(row, vec![20.0, 21.0, 22.0]);
        let mut g = Field2D::new(3, 4, 1);
        g.unpack_column(-1, &col);
        assert_eq!(g.get(-1, 3), 31.0);
        g.unpack_row(4, &row);
        assert_eq!(g.get(2, 4), 22.0);
    }

    #[test]
    fn reflect_boundaries_zero_gradient() {
        let mut f = Field2D::new(3, 3, 1);
        for k in 0..3isize {
            for i in 0..3isize {
                f.set(i, k, (i + 1) as f64);
            }
        }
        f.reflect_boundaries(true, true, true, true);
        assert_eq!(f.get(-1, 0), f.get(0, 0));
        assert_eq!(f.get(3, 1), f.get(2, 1));
        assert_eq!(f.get(1, -1), f.get(1, 0));
        assert_eq!(f.get(1, 3), f.get(1, 2));
    }

    #[test]
    fn copy_from_duplicates_everything() {
        let mut a = Field2D::new(2, 2, 1);
        a.set(0, 0, 5.0);
        a.set(-1, -1, 2.0);
        let mut b = Field2D::new(2, 2, 1);
        b.copy_from(&a);
        assert_eq!(b.get(0, 0), 5.0);
        assert_eq!(b.get(-1, -1), 2.0);
    }

    #[test]
    #[should_panic]
    fn copy_from_shape_mismatch_panics() {
        let a = Field2D::new(2, 2, 1);
        let mut b = Field2D::new(3, 2, 1);
        b.copy_from(&a);
    }
}
