//! The per-rank chunk: local grid geometry plus all field arrays.

use crate::field::Field2D;

/// Halo depth used for every field (the original code uses 2–5 depending on
/// the kernel; depth 2 is sufficient for the first-order advection sweep
/// used here).
pub const HALO: usize = 2;

/// All state owned by one rank.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Local interior cells along x.
    pub nx: usize,
    /// Local interior cells along y.
    pub ny: usize,
    /// Cell width.
    pub dx: f64,
    /// Cell height.
    pub dy: f64,
    /// Global x index of the first local cell.
    pub offset_x: usize,
    /// Global y index of the first local cell.
    pub offset_y: usize,
    /// Whether this rank touches the global left/right/bottom/top boundary.
    pub at_left: bool,
    /// See `at_left`.
    pub at_right: bool,
    /// See `at_left`.
    pub at_bottom: bool,
    /// See `at_left`.
    pub at_top: bool,

    /// Cell density at the start of the step.
    pub density0: Field2D,
    /// Cell density being updated.
    pub density1: Field2D,
    /// Specific internal energy at the start of the step.
    pub energy0: Field2D,
    /// Specific internal energy being updated.
    pub energy1: Field2D,
    /// Pressure from the equation of state.
    pub pressure: Field2D,
    /// Artificial viscosity.
    pub viscosity: Field2D,
    /// Sound speed.
    pub soundspeed: Field2D,
    /// x velocity at the start of the step.
    pub xvel0: Field2D,
    /// x velocity being updated.
    pub xvel1: Field2D,
    /// y velocity at the start of the step.
    pub yvel0: Field2D,
    /// y velocity being updated.
    pub yvel1: Field2D,
    /// Volume flux through x faces.
    pub vol_flux_x: Field2D,
    /// Volume flux through y faces.
    pub vol_flux_y: Field2D,
    /// Mass flux through x faces.
    pub mass_flux_x: Field2D,
    /// Mass flux through y faces.
    pub mass_flux_y: Field2D,
    /// Work array: pre-advection volume.
    pub pre_vol: Field2D,
    /// Work array: post-advection volume.
    pub post_vol: Field2D,
    /// Work array: energy flux.
    pub ener_flux: Field2D,
    /// Work array: node flux (momentum advection).
    pub node_flux: Field2D,
    /// Work array: node mass before advection.
    pub node_mass_pre: Field2D,
    /// Work array: node mass after advection.
    pub node_mass_post: Field2D,
    /// Work array: momentum flux.
    pub mom_flux: Field2D,
}

impl Chunk {
    /// Allocate a chunk of `nx × ny` cells with cell sizes `dx × dy`.
    pub fn new(nx: usize, ny: usize, dx: f64, dy: f64) -> Self {
        let f = || Field2D::new(nx, ny, HALO);
        Self {
            nx,
            ny,
            dx,
            dy,
            offset_x: 0,
            offset_y: 0,
            at_left: true,
            at_right: true,
            at_bottom: true,
            at_top: true,
            density0: f(),
            density1: f(),
            energy0: f(),
            energy1: f(),
            pressure: f(),
            viscosity: f(),
            soundspeed: f(),
            xvel0: f(),
            xvel1: f(),
            yvel0: f(),
            yvel1: f(),
            vol_flux_x: f(),
            vol_flux_y: f(),
            mass_flux_x: f(),
            mass_flux_y: f(),
            pre_vol: f(),
            post_vol: f(),
            ener_flux: f(),
            node_flux: f(),
            node_mass_pre: f(),
            node_mass_post: f(),
            mom_flux: f(),
        }
    }

    /// Cell volume (area in 2D).
    pub fn cell_volume(&self) -> f64 {
        self.dx * self.dy
    }

    /// Total mass of the interior cells (density0 × cell volume).
    pub fn total_mass(&self) -> f64 {
        self.density0.interior_sum() * self.cell_volume()
    }

    /// Total internal energy of the interior cells (ρ e V).
    pub fn total_internal_energy(&self) -> f64 {
        let mut sum = 0.0;
        for k in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                sum += self.density0.get(i, k) * self.energy0.get(i, k);
            }
        }
        sum * self.cell_volume()
    }

    /// Total kinetic energy of the interior cells.
    pub fn total_kinetic_energy(&self) -> f64 {
        let mut sum = 0.0;
        for k in 0..self.ny as isize {
            for i in 0..self.nx as isize {
                let u = self.xvel0.get(i, k);
                let v = self.yvel0.get(i, k);
                sum += 0.5 * self.density0.get(i, k) * (u * u + v * v);
            }
        }
        sum * self.cell_volume()
    }

    /// Initialise the standard CloverLeaf two-state problem: an ambient
    /// low-energy state with a dense, high-energy square region in the lower
    /// left corner of the *global* domain.
    pub fn initialise_two_state(&mut self, global_nx: usize, global_ny: usize) {
        let hot_x = global_nx / 3;
        let hot_y = global_ny / 5;
        for k in -(HALO as isize)..(self.ny + HALO) as isize {
            for i in -(HALO as isize)..(self.nx + HALO) as isize {
                let gi = i + self.offset_x as isize;
                let gk = k + self.offset_y as isize;
                let hot = gi >= 0 && gk >= 0 && (gi as usize) < hot_x && (gk as usize) < hot_y;
                let (rho, e) = if hot { (1.0, 2.5) } else { (0.2, 1.0) };
                self.density0.set(i, k, rho);
                self.energy0.set(i, k, e);
                self.density1.set(i, k, rho);
                self.energy1.set(i, k, e);
                self.xvel0.set(i, k, 0.0);
                self.yvel0.set(i, k, 0.0);
                self.xvel1.set(i, k, 0.0);
                self.yvel1.set(i, k, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_allocates_all_fields() {
        let c = Chunk::new(8, 6, 0.1, 0.1);
        assert_eq!(c.density0.nx(), 8);
        assert_eq!(c.mom_flux.ny(), 6);
        assert!((c.cell_volume() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn two_state_initialisation_has_hot_corner() {
        let mut c = Chunk::new(30, 30, 1.0, 1.0);
        c.initialise_two_state(30, 30);
        assert_eq!(c.density0.get(0, 0), 1.0);
        assert_eq!(c.energy0.get(0, 0), 2.5);
        assert_eq!(c.density0.get(29, 29), 0.2);
        assert_eq!(c.energy0.get(29, 29), 1.0);
        assert!(c.total_mass() > 0.0);
        assert!(c.total_internal_energy() > 0.0);
        assert_eq!(c.total_kinetic_energy(), 0.0);
    }

    #[test]
    fn offsets_shift_the_hot_region() {
        // A chunk whose offset is beyond the hot region is entirely ambient.
        let mut c = Chunk::new(10, 10, 1.0, 1.0);
        c.offset_x = 20;
        c.offset_y = 20;
        c.initialise_two_state(30, 30);
        assert_eq!(c.density0.get(0, 0), 0.2);
    }
}
