//! `clover-leaf` — a Rust port of the CloverLeaf hydrodynamics mini-app.
//!
//! CloverLeaf solves the compressible Euler equations on a staggered
//! Cartesian 2D grid with an explicit second-order Lagrangian-Eulerian
//! scheme.  This port follows the structure of the SPEChpc 2021
//! `519.clvleaf_t` benchmark: the same kernels (`ideal_gas`, `viscosity`,
//! `calc_dt`, `PdV`, `accelerate`, `flux_calc`, `advec_cell`, `advec_mom`,
//! `reset_field`), the same domain decomposition (prime rank counts cut the
//! inner dimension), halo exchanges between ranks via `clover-simpi`, and a
//! double-sweep advection phase.
//!
//! The hotspot loops carry the same labels the paper uses (am00–am11,
//! ac00–ac07, pdv00–pdv01) so the traffic model, the row-sampled simulator
//! measurement and the running code can be cross-referenced loop by loop.

pub mod chunk;
pub mod driver;
pub mod field;
pub mod halo;
pub mod kernels;
pub mod traffic;

pub use chunk::Chunk;
pub use driver::{RunSummary, SimConfig, Simulation};
pub use field::Field2D;
pub use traffic::{timestep_kernels, timestep_traffic, KernelTraffic, KernelTrafficReport};

/// Ratio of specific heats of the ideal-gas equation of state.
pub const GAMMA: f64 = 1.4;
