//! `clover-golden` — paper-fidelity validation.
//!
//! The whole argument of the reproduced paper rests on *quantitative*
//! agreement between the analytic traffic model / simulator and the measured
//! code balances and store ratios.  This crate makes that agreement a tested
//! property instead of an eyeballed one:
//!
//! * [`artifact`] — the typed result model ([`Artifact`]): every experiment
//!   produces a table with named, unit-annotated columns instead of an
//!   opaque string.  CSV and JSON are *views* of the same data.
//! * [`data`] — the digitised reference values for all 12 paper artifacts
//!   (Listing 2, Table I, Figs. 2–11), each as a set of anchor rows with
//!   per-cell tolerances.
//! * [`diff`] — the tolerance-aware diff engine: per-cell verdicts,
//!   summary deltas and a markdown delta table for `EXPERIMENTS.md`.
//!
//! The `figures --check` mode of `clover-bench` and the tier-1
//! `tests/golden_fidelity.rs` suite are both thin wrappers around
//! [`diff::check_artifact`].

pub mod artifact;
pub mod data;
pub mod diff;

pub use artifact::{Artifact, Cell, Column};
pub use data::{golden, golden_artifacts, GoldenArtifact, GoldenCheck, GoldenRow, Key};
pub use diff::{check_artifact, markdown_delta_table, CellDiff, DiffReport, Tolerance, Verdict};
