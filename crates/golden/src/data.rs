//! Digitised reference data for the paper's 12 artifacts.
//!
//! Values were digitised from the published tables and figures (Laukemann,
//! Gruber, Hager, Oryspayev, Wellein, IPDPS 2024): Table I lists the
//! measured single-core code balances explicitly; the figure anchors were
//! read off the plotted curves at the rank/thread/halo configurations the
//! paper's discussion calls out (full socket, full node, prime-rank dips,
//! ccNUMA-domain boundaries, aligned-halo minima).
//!
//! Each artifact carries a handful of *anchor rows* rather than every
//! plotted point: figure digitisation is only good to a few percent, so
//! dense anchors would either over-constrain the model or need tolerances
//! so loose they could not catch regressions.  Tolerances are therefore per
//! cell: exact-integer cells (byte bounds from the loop descriptors, the
//! embedded Table I measurements) use tiny absolute tolerances, modelled
//! quantities use 2–6 % relative ones.
//!
//! By convention the **first check of the first row** of every artifact is
//! its headline quantity — the number the paper's discussion of that
//! artifact leads with.  The delta table in `EXPERIMENTS.md` shows it.

use crate::diff::Tolerance;

/// A golden row key: the value(s) identifying one artifact row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Key {
    /// Numeric key (rank/core/thread counts, halo sizes).
    Num(f64),
    /// Text key (loop and function names, on/off switches).
    Text(&'static str),
}

/// One checked cell: column, digitised paper value and tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenCheck {
    /// Column name in the artifact.
    pub column: &'static str,
    /// Digitised paper value.
    pub expected: f64,
    /// Allowed deviation.
    pub tol: Tolerance,
}

/// One anchor row: key column/value pairs plus the cells checked in it.
#[derive(Debug, Clone, Copy)]
pub struct GoldenRow {
    /// Column/value pairs that identify the row (all must match).
    pub key: &'static [(&'static str, Key)],
    /// The checks to run against that row.
    pub checks: &'static [GoldenCheck],
}

/// Digitised reference data for one paper artifact.
#[derive(Debug, Clone, Copy)]
pub struct GoldenArtifact {
    /// Experiment identifier (matches `clover_bench::EXPERIMENTS`).
    pub id: &'static str,
    /// Paper reference (`"Fig. 5"`, `"Table I"`, …).
    pub paper_ref: &'static str,
    /// Human-readable description of the headline quantity.
    pub quantity: &'static str,
    /// Anchor rows; the first check of the first row is the headline.
    pub rows: &'static [GoldenRow],
}

const fn chk(column: &'static str, expected: f64, tol: Tolerance) -> GoldenCheck {
    GoldenCheck {
        column,
        expected,
        tol,
    }
}

/// Exact match for integer-valued cells and embedded reference columns.
const EXACT: Tolerance = Tolerance::abs(1e-9);

/// Table I row: code-balance bounds are exact (they follow from the loop
/// descriptor), the model's predicted single-core balance must stay within
/// 5 % of the paper's measurement, and the embedded measurement column must
/// reproduce the digitised value exactly.
macro_rules! table1_row {
    ($name:literal, $min:literal, $max:literal, $measured:literal) => {
        GoldenRow {
            key: &[("loop", Key::Text($name))],
            checks: &[
                chk("predicted_1core", $measured, Tolerance::rel(0.05)),
                chk("min", $min as f64, EXACT),
                chk("max", $max as f64, EXACT),
                chk("paper_measured_1core", $measured, EXACT),
            ],
        }
    };
}

static LISTING2: GoldenArtifact = GoldenArtifact {
    id: "listing2",
    paper_ref: "Listing 2",
    quantity: "advec_mom_kernel runtime share at 72 ranks [%]",
    rows: &[
        GoldenRow {
            key: &[("function", Key::Text("advec_mom_kernel"))],
            checks: &[chk("share_percent", 39.8, Tolerance::rel(0.02))],
        },
        GoldenRow {
            key: &[("function", Key::Text("advec_cell_kernel"))],
            checks: &[chk("share_percent", 20.1, Tolerance::rel(0.02))],
        },
        GoldenRow {
            key: &[("function", Key::Text("pdv_kernel"))],
            checks: &[chk("share_percent", 9.2, Tolerance::rel(0.03))],
        },
        GoldenRow {
            key: &[("function", Key::Text("update_halo_kernel"))],
            checks: &[chk("share_percent", 5.5, Tolerance::rel(0.05))],
        },
    ],
};

static TABLE1: GoldenArtifact = GoldenArtifact {
    id: "table1",
    paper_ref: "Table I",
    quantity: "predicted vs. measured single-core balance, loop am00 [byte/it]",
    rows: &[
        table1_row!("am00", 40, 64, 56.32),
        table1_row!("am01", 40, 64, 56.28),
        table1_row!("am02", 32, 56, 48.25),
        table1_row!("am03", 32, 48, 48.15),
        table1_row!("am04", 16, 32, 24.05),
        table1_row!("am05", 40, 72, 56.97),
        table1_row!("am06", 32, 40, 40.22),
        table1_row!("am07", 40, 40, 40.08),
        table1_row!("am08", 16, 32, 24.06),
        table1_row!("am09", 40, 80, 56.56),
        table1_row!("am10", 32, 56, 41.49),
        table1_row!("am11", 40, 48, 40.08),
        table1_row!("ac00", 40, 64, 56.33),
        table1_row!("ac01", 32, 48, 48.25),
        table1_row!("ac02", 48, 64, 64.70),
        table1_row!("ac03", 64, 64, 64.45),
        table1_row!("ac04", 40, 64, 56.29),
        table1_row!("ac05", 32, 56, 48.33),
        table1_row!("ac06", 48, 96, 66.24),
        table1_row!("ac07", 64, 88, 64.85),
        table1_row!("pdv00", 88, 128, 104.73),
        table1_row!("pdv01", 104, 160, 120.77),
    ],
};

static FIG2: GoldenArtifact = GoldenArtifact {
    id: "fig2",
    paper_ref: "Fig. 2",
    quantity: "full-node (72-rank) speedup",
    rows: &[
        GoldenRow {
            key: &[("ranks", Key::Num(72.0))],
            checks: &[
                chk("speedup", 40.5, Tolerance::rel(0.04)),
                chk("bandwidth_gbs", 320.0, Tolerance::rel(0.04)),
                chk("local_inner", 1920.0, EXACT),
            ],
        },
        GoldenRow {
            key: &[("ranks", Key::Num(1.0))],
            checks: &[chk("speedup", 1.0, EXACT)],
        },
        GoldenRow {
            // Socket saturation plateau.
            key: &[("ranks", Key::Num(18.0))],
            checks: &[
                chk("speedup", 10.5, Tolerance::rel(0.05)),
                chk("bandwidth_gbs", 80.0, Tolerance::rel(0.05)),
            ],
        },
        GoldenRow {
            // First rank count past the socket: bandwidth of domain 1 kicks in.
            key: &[("ranks", Key::Num(36.0))],
            checks: &[chk("speedup", 20.8, Tolerance::rel(0.05))],
        },
        GoldenRow {
            // The prime-number dip: 71 ranks decompose 1D into 216-cell rows.
            key: &[("ranks", Key::Num(71.0))],
            checks: &[
                chk("speedup", 36.6, Tolerance::rel(0.05)),
                chk("local_inner", 216.0, EXACT),
                chk("prime", 1.0, EXACT),
            ],
        },
    ],
};

static FIG3: GoldenArtifact = GoldenArtifact {
    id: "fig3",
    paper_ref: "Fig. 3",
    quantity: "am00 full-node code balance [byte/it]",
    rows: &[
        GoldenRow {
            key: &[("ranks", Key::Num(72.0))],
            checks: &[
                chk("am00", 44.8, Tolerance::rel(0.03)),
                chk("ac01", 48.1, Tolerance::rel(0.03)),
                chk("pdv01", 109.0, Tolerance::rel(0.03)),
            ],
        },
        GoldenRow {
            key: &[("ranks", Key::Num(1.0))],
            checks: &[
                chk("am00", 56.0, Tolerance::rel(0.03)),
                chk("ac01", 48.0, Tolerance::rel(0.03)),
                chk("pdv01", 120.1, Tolerance::rel(0.03)),
            ],
        },
        GoldenRow {
            // Prime rank count: short rows defeat the evasion, balances rise.
            key: &[("ranks", Key::Num(71.0))],
            checks: &[chk("am00", 51.8, Tolerance::rel(0.03))],
        },
    ],
};

static FIG4: GoldenArtifact = GoldenArtifact {
    id: "fig4",
    paper_ref: "Fig. 4",
    quantity: "serial (non-MPI) share at 71 ranks",
    rows: &[
        GoldenRow {
            key: &[("ranks", Key::Num(71.0))],
            checks: &[
                chk("serial", 0.992, Tolerance::abs(0.004)),
                chk("waitall", 0.0024, Tolerance::abs(0.002)),
                chk("allreduce", 0.0046, Tolerance::abs(0.003)),
            ],
        },
        GoldenRow {
            key: &[("ranks", Key::Num(72.0))],
            checks: &[chk("serial", 0.999, Tolerance::abs(0.002))],
        },
        GoldenRow {
            key: &[("ranks", Key::Num(2.0))],
            checks: &[chk("serial", 1.0, Tolerance::abs(0.002))],
        },
    ],
};

static FIG5: GoldenArtifact = GoldenArtifact {
    id: "fig5",
    paper_ref: "Fig. 5",
    quantity: "ICX full-node store ratio, 1 stream, normal stores",
    rows: &[
        GoldenRow {
            key: &[("cores", Key::Num(70.0))],
            checks: &[
                chk("st1", 1.24, Tolerance::rel(0.03)),
                chk("st3", 1.33, Tolerance::rel(0.03)),
                chk("stnt1", 1.17, Tolerance::rel(0.03)),
            ],
        },
        GoldenRow {
            // Serial: every store write-allocates, NT stores do not.
            key: &[("cores", Key::Num(1.0))],
            checks: &[
                chk("st1", 2.0, Tolerance::rel(0.02)),
                chk("stnt1", 1.01, Tolerance::abs(0.03)),
            ],
        },
        GoldenRow {
            // Saturated first ccNUMA domain: best evasion.
            key: &[("cores", Key::Num(16.0))],
            checks: &[chk("st1", 1.03, Tolerance::rel(0.03))],
        },
        GoldenRow {
            // First cores on the second domain make the ratio bounce back.
            key: &[("cores", Key::Num(19.0))],
            checks: &[chk("st1", 1.15, Tolerance::rel(0.03))],
        },
    ],
};

static FIG6: GoldenArtifact = GoldenArtifact {
    id: "fig6",
    paper_ref: "Fig. 6",
    quantity: "copy-kernel read volume at 17 threads [byte/it]",
    rows: &[
        GoldenRow {
            key: &[("threads", Key::Num(17.0))],
            checks: &[
                chk("read_bytes_per_it", 8.2, Tolerance::rel(0.06)),
                chk("itom_bytes_per_it", 7.8, Tolerance::rel(0.08)),
                chk("write_bytes_per_it", 8.0, Tolerance::abs(0.5)),
            ],
        },
        GoldenRow {
            // One thread: the write-allocate doubles the read volume.
            key: &[("threads", Key::Num(1.0))],
            checks: &[
                chk("read_bytes_per_it", 16.0, Tolerance::abs(0.8)),
                chk("write_bytes_per_it", 8.0, Tolerance::abs(0.5)),
                chk("itom_bytes_per_it", 0.0, Tolerance::abs(0.5)),
            ],
        },
        GoldenRow {
            key: &[("threads", Key::Num(36.0))],
            checks: &[
                chk("read_bytes_per_it", 8.8, Tolerance::rel(0.06)),
                chk("itom_bytes_per_it", 7.2, Tolerance::rel(0.08)),
            ],
        },
    ],
};

static FIG7: GoldenArtifact = GoldenArtifact {
    id: "fig7",
    paper_ref: "Fig. 7",
    quantity: "ac01 full-node balance, original vs. optimized [byte/it]",
    rows: &[
        GoldenRow {
            // The biggest win: ac01 loses its write-allocate entirely.
            key: &[("loop", Key::Text("ac01"))],
            checks: &[
                chk("original", 48.1, Tolerance::rel(0.04)),
                chk("optimized", 35.8, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            key: &[("loop", Key::Text("ac02"))],
            checks: &[
                chk("original", 64.2, Tolerance::rel(0.04)),
                chk("optimized", 57.5, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            key: &[("loop", Key::Text("am00"))],
            checks: &[
                chk("original", 44.8, Tolerance::rel(0.04)),
                chk("optimized", 43.8, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            key: &[("loop", Key::Text("pdv01"))],
            checks: &[chk("original", 109.0, Tolerance::rel(0.04))],
        },
    ],
};

static FIG8: GoldenArtifact = GoldenArtifact {
    id: "fig8",
    paper_ref: "Fig. 8",
    quantity: "ICX copy read/write ratio, 216-cell rows, halo 5",
    rows: &[
        GoldenRow {
            key: &[("halo", Key::Num(5.0))],
            checks: &[
                chk("inner216", 1.67, Tolerance::rel(0.04)),
                chk("inner1920", 1.24, Tolerance::rel(0.04)),
                chk("inner216_pfoff", 1.88, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            key: &[("halo", Key::Num(0.0))],
            checks: &[
                chk("inner216", 1.25, Tolerance::rel(0.04)),
                chk("inner1920", 1.24, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            // Halo 8 keeps 216-cell rows line-aligned: the ratio dips.
            key: &[("halo", Key::Num(8.0))],
            checks: &[chk("inner216", 1.28, Tolerance::rel(0.04))],
        },
        GoldenRow {
            key: &[("halo", Key::Num(17.0))],
            checks: &[chk("inner216", 1.71, Tolerance::rel(0.04))],
        },
    ],
};

static FIG9: GoldenArtifact = GoldenArtifact {
    id: "fig9",
    paper_ref: "Fig. 9",
    quantity: "SPR 8470 full-node store ratio, SNC on",
    rows: &[
        GoldenRow {
            key: &[("snc", Key::Text("on")), ("cores", Key::Num(97.0))],
            checks: &[
                chk("st1", 1.57, Tolerance::rel(0.04)),
                chk("stnt1", 1.18, Tolerance::rel(0.03)),
            ],
        },
        GoldenRow {
            key: &[("snc", Key::Text("on")), ("cores", Key::Num(1.0))],
            checks: &[chk("st1", 2.0, Tolerance::rel(0.02))],
        },
        GoldenRow {
            key: &[("snc", Key::Text("off")), ("cores", Key::Num(41.0))],
            checks: &[chk("st1", 1.49, Tolerance::rel(0.04))],
        },
        GoldenRow {
            key: &[("snc", Key::Text("off")), ("cores", Key::Num(97.0))],
            checks: &[chk("st1", 1.54, Tolerance::rel(0.04))],
        },
    ],
};

static FIG10: GoldenArtifact = GoldenArtifact {
    id: "fig10",
    paper_ref: "Fig. 10",
    quantity: "SPR 8480+ best store ratio (49 cores)",
    rows: &[
        GoldenRow {
            // Best case ≈ half the write-allocates evaded.
            key: &[("cores", Key::Num(49.0))],
            checks: &[chk("st1", 1.45, Tolerance::rel(0.04))],
        },
        GoldenRow {
            key: &[("cores", Key::Num(1.0))],
            checks: &[chk("st1", 2.0, Tolerance::rel(0.02))],
        },
        GoldenRow {
            // No benefit at low core counts on SPR.
            key: &[("cores", Key::Num(9.0))],
            checks: &[chk("st1", 2.0, Tolerance::rel(0.03))],
        },
        GoldenRow {
            key: &[("cores", Key::Num(105.0))],
            checks: &[
                chk("st1", 1.51, Tolerance::rel(0.04)),
                chk("stnt1", 1.18, Tolerance::abs(0.04)),
            ],
        },
    ],
};

static FIG11: GoldenArtifact = GoldenArtifact {
    id: "fig11",
    paper_ref: "Fig. 11",
    quantity: "SPR 8480+ copy read/write ratio, 216-cell rows, halo 5",
    rows: &[
        GoldenRow {
            key: &[("halo", Key::Num(5.0))],
            checks: &[
                chk("inner216", 1.69, Tolerance::rel(0.04)),
                chk("inner1920", 1.51, Tolerance::rel(0.04)),
            ],
        },
        GoldenRow {
            key: &[("halo", Key::Num(0.0))],
            checks: &[chk("inner216", 1.51, Tolerance::rel(0.04))],
        },
        GoldenRow {
            key: &[("halo", Key::Num(8.0))],
            checks: &[chk("inner216", 1.55, Tolerance::rel(0.04))],
        },
        GoldenRow {
            key: &[("halo", Key::Num(17.0))],
            checks: &[chk("inner216", 1.73, Tolerance::rel(0.04))],
        },
    ],
};

static ALL: [GoldenArtifact; 12] = [
    LISTING2, TABLE1, FIG2, FIG3, FIG4, FIG5, FIG6, FIG7, FIG8, FIG9, FIG10, FIG11,
];

/// All 12 golden artifacts, in `clover_bench::EXPERIMENTS` order.
pub fn golden_artifacts() -> &'static [GoldenArtifact] {
    &ALL
}

/// Golden data for one experiment identifier.
pub fn golden(id: &str) -> Option<&'static GoldenArtifact> {
    golden_artifacts().iter().find(|g| g.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_artifacts_with_unique_ids() {
        let all = golden_artifacts();
        assert_eq!(all.len(), 12);
        for (i, a) in all.iter().enumerate() {
            assert!(!a.rows.is_empty(), "{} has no anchor rows", a.id);
            assert!(
                all.iter().skip(i + 1).all(|b| b.id != a.id),
                "duplicate id {}",
                a.id
            );
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(golden("fig5").unwrap().paper_ref, "Fig. 5");
        assert!(golden("fig99").is_none());
    }

    #[test]
    fn every_check_has_a_positive_tolerance() {
        for a in golden_artifacts() {
            for row in a.rows {
                assert!(!row.checks.is_empty(), "{}: empty check list", a.id);
                for c in row.checks {
                    assert!(
                        c.tol.abs > 0.0 || c.tol.rel > 0.0,
                        "{}: {} has a zero tolerance",
                        a.id,
                        c.column
                    );
                }
            }
        }
    }

    #[test]
    fn table1_covers_all_22_loops() {
        let t = golden("table1").unwrap();
        assert_eq!(t.rows.len(), 22);
    }
}
