//! Tolerance-aware diffing of reproduced artifacts against the digitised
//! paper data.
//!
//! Every golden anchor cell gets a [`Verdict`]; an artifact passes when all
//! of its anchor cells do.  The per-cell deltas are kept so the harness can
//! print a human-readable report (`figures --check`) and generate the
//! paper-vs-reproduction delta table in `EXPERIMENTS.md`
//! ([`markdown_delta_table`]).

use crate::artifact::{Artifact, Cell};
use crate::data::{GoldenArtifact, GoldenRow, Key};

/// Allowed deviation of a reproduced value from the digitised paper value.
/// A cell passes when the absolute delta is within `abs` *or* within
/// `rel * |expected|` — so `abs` covers values near zero and `rel` covers
/// everything else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance in the column's unit.
    pub abs: f64,
    /// Relative tolerance as a fraction (0.03 = 3 %).
    pub rel: f64,
}

impl Tolerance {
    /// Purely absolute tolerance.
    pub const fn abs(abs: f64) -> Self {
        Self { abs, rel: 0.0 }
    }

    /// Purely relative tolerance (fraction of the expected value).
    pub const fn rel(rel: f64) -> Self {
        Self { abs: 0.0, rel }
    }

    /// Whether `actual` is within tolerance of `expected`.
    pub fn allows(&self, expected: f64, actual: f64) -> bool {
        let delta = (actual - expected).abs();
        delta <= self.abs || delta <= self.rel * expected.abs()
    }

    /// Compact human-readable rendering (`±3.0%`, `±0.004`, …).
    pub fn describe(&self) -> String {
        match (self.abs > 0.0, self.rel > 0.0) {
            (true, true) => format!("±{} or ±{:.1}%", trim_float(self.abs), self.rel * 100.0),
            (false, true) => format!("±{:.1}%", self.rel * 100.0),
            _ => format!("±{}", trim_float(self.abs)),
        }
    }
}

/// Outcome of checking one golden anchor cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Reproduced value within tolerance of the paper value.
    Pass,
    /// Reproduced value out of tolerance.
    Fail,
    /// No artifact row matched the golden row key.
    MissingRow,
    /// The artifact has no column of the expected name.
    MissingColumn,
    /// The addressed cell is text/empty where a number was expected.
    NotNumeric,
}

/// One checked cell: paper value, reproduced value, delta and verdict.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Human-readable row key (`"cores=70"`, `"loop=ac01"`, …).
    pub row: String,
    /// Column name.
    pub column: String,
    /// Digitised paper value.
    pub expected: f64,
    /// Reproduced value (`None` when the cell could not be addressed).
    pub actual: Option<f64>,
    /// Tolerance the cell was checked against.
    pub tol: Tolerance,
    /// The verdict.
    pub verdict: Verdict,
}

impl CellDiff {
    /// Signed delta `actual - expected` (0 when the cell is missing).
    pub fn delta(&self) -> f64 {
        self.actual.map_or(0.0, |a| a - self.expected)
    }

    /// Relative delta against the expected value (0 for expected == 0).
    pub fn rel_delta(&self) -> f64 {
        if self.expected.abs() > 0.0 {
            self.delta() / self.expected.abs()
        } else {
            0.0
        }
    }

    fn render(&self) -> String {
        match (self.verdict, self.actual) {
            (Verdict::MissingRow, _) => {
                format!(
                    "  [{}] {}: row missing from artifact",
                    self.row, self.column
                )
            }
            (Verdict::MissingColumn, _) => {
                format!(
                    "  [{}] {}: column missing from artifact",
                    self.row, self.column
                )
            }
            (Verdict::NotNumeric, _) => format!(
                "  [{}] {}: cell is not numeric (paper {})",
                self.row, self.column, self.expected
            ),
            (v, Some(actual)) => format!(
                "  [{}] {}: paper {:.4}, reproduced {:.4}, delta {:+.4} ({:+.2}%), tol {} .. {}",
                self.row,
                self.column,
                self.expected,
                actual,
                self.delta(),
                self.rel_delta() * 100.0,
                self.tol.describe(),
                if v == Verdict::Pass { "ok" } else { "FAIL" }
            ),
            (_, None) => unreachable!("numeric verdicts always carry an actual value"),
        }
    }
}

/// Full diff of one artifact against its golden data.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Experiment identifier.
    pub id: String,
    /// Paper reference (`"Fig. 5"`, `"Table I"`, …).
    pub paper_ref: String,
    /// Per-cell results, in golden-data order (the first entry is the
    /// artifact's headline quantity).
    pub cells: Vec<CellDiff>,
}

impl DiffReport {
    /// True when every checked cell passed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.verdict == Verdict::Pass)
    }

    /// The cells that did not pass.
    pub fn failures(&self) -> Vec<&CellDiff> {
        self.cells
            .iter()
            .filter(|c| c.verdict != Verdict::Pass)
            .collect()
    }

    /// Largest relative delta over all numerically-checked cells.
    pub fn max_rel_delta(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.actual.is_some())
            .map(|c| c.rel_delta().abs())
            .fold(0.0, f64::max)
    }

    /// The headline cell: by convention the first golden anchor, chosen per
    /// artifact as the quantity the paper's discussion leads with.
    pub fn headline(&self) -> Option<&CellDiff> {
        self.cells.first()
    }

    /// One-line summary (`fig5: 8/8 cells within tolerance …`).
    pub fn summary(&self) -> String {
        let total = self.cells.len();
        let ok = total - self.failures().len();
        format!(
            "{}: {}/{} cells within tolerance of {} (max rel delta {:.2}%)",
            self.id,
            ok,
            total,
            self.paper_ref,
            self.max_rel_delta() * 100.0
        )
    }

    /// Multi-line report: failing cells (or all cells when `verbose`) plus
    /// the summary line.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            if verbose || cell.verdict != Verdict::Pass {
                out.push_str(&cell.render());
                out.push('\n');
            }
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

/// Locate the artifact row matching a golden key.
fn find_row<'a>(artifact: &'a Artifact, key: &[(&str, Key)]) -> Option<&'a Vec<Cell>> {
    let indices: Option<Vec<usize>> = key
        .iter()
        .map(|(col, _)| artifact.column_index(col))
        .collect();
    let indices = indices?;
    artifact.rows.iter().find(|row| {
        key.iter().zip(&indices).all(|((_, k), &idx)| match k {
            Key::Num(n) => row[idx].as_f64() == Some(*n),
            Key::Text(t) => row[idx].as_text() == Some(*t),
        })
    })
}

fn describe_key(key: &[(&str, Key)]) -> String {
    key.iter()
        .map(|(col, k)| match k {
            Key::Num(n) => format!("{col}={}", trim_float(*n)),
            Key::Text(t) => format!("{col}={t}"),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Diff one reproduced artifact against its golden anchor data.
pub fn check_artifact(artifact: &Artifact, golden: &GoldenArtifact) -> DiffReport {
    let mut cells = Vec::new();
    for grow in golden.rows {
        let GoldenRow { key, checks } = grow;
        let row = find_row(artifact, key);
        let row_desc = describe_key(key);
        for check in *checks {
            let (actual, verdict) = match row {
                None => (None, Verdict::MissingRow),
                Some(row) => match artifact.column_index(check.column) {
                    None => (None, Verdict::MissingColumn),
                    Some(idx) => match row[idx].as_f64() {
                        None => (None, Verdict::NotNumeric),
                        Some(actual) => {
                            let v = if check.tol.allows(check.expected, actual) {
                                Verdict::Pass
                            } else {
                                Verdict::Fail
                            };
                            (Some(actual), v)
                        }
                    },
                },
            };
            cells.push(CellDiff {
                row: row_desc.clone(),
                column: check.column.to_string(),
                expected: check.expected,
                actual,
                tol: check.tol,
                verdict,
            });
        }
    }
    DiffReport {
        id: golden.id.to_string(),
        paper_ref: golden.paper_ref.to_string(),
        cells,
    }
}

/// Render the paper-vs-reproduction delta table for `EXPERIMENTS.md`: one
/// row per artifact, led by its headline quantity.
pub fn markdown_delta_table(reports: &[(DiffReport, &GoldenArtifact)]) -> String {
    let mut out = String::from(
        "| id | paper artifact | headline quantity | paper | reproduced | tolerance | \
         max rel Δ | anchors | status |\n\
         | -- | -------------- | ----------------- | ----- | ---------- | --------- | \
         --------- | ------- | ------ |\n",
    );
    for (report, golden) in reports {
        let headline = report.headline();
        let (paper, repro, tol) = match headline {
            Some(h) => (
                trim_float(h.expected),
                h.actual.map_or("—".to_string(), trim_float),
                h.tol.describe(),
            ),
            None => ("—".into(), "—".into(), "—".into()),
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {:.2}% | {} | {} |\n",
            report.id,
            report.paper_ref,
            golden.quantity,
            paper,
            repro,
            tol,
            report.max_rel_delta() * 100.0,
            report.cells.len(),
            if report.passed() { "✓" } else { "✗" }
        ));
    }
    out
}

/// Format a float with up to 4 decimals, trimming trailing zeros
/// (`2` instead of `2.0000`, `1.243` instead of `1.2430`).
fn trim_float(x: f64) -> String {
    let s = format!("{x:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GoldenCheck;

    fn artifact() -> Artifact {
        let mut a = Artifact::new("figx", "test")
            .column("cores", None)
            .num_column("st1", None, 3);
        a.push_row(vec![1usize.into(), 2.0f64.into()]);
        a.push_row(vec![36usize.into(), 1.06f64.into()]);
        a
    }

    const KEY1: &[(&str, Key)] = &[("cores", Key::Num(1.0))];
    const KEY36: &[(&str, Key)] = &[("cores", Key::Num(36.0))];

    fn golden(expected: f64, tol: Tolerance) -> GoldenArtifact {
        GoldenArtifact {
            id: "figx",
            paper_ref: "Fig. X",
            quantity: "test quantity",
            rows: Box::leak(Box::new([GoldenRow {
                key: KEY36,
                checks: Box::leak(Box::new([GoldenCheck {
                    column: "st1",
                    expected,
                    tol,
                }])),
            }])),
        }
    }

    #[test]
    fn tolerance_semantics() {
        let t = Tolerance { abs: 0.1, rel: 0.0 };
        assert!(t.allows(1.0, 1.09));
        assert!(!t.allows(1.0, 1.11));
        let t = Tolerance::rel(0.05);
        assert!(t.allows(2.0, 2.09));
        assert!(!t.allows(2.0, 2.11));
        // abs covers expected == 0 where rel can never pass.
        let t = Tolerance {
            abs: 0.01,
            rel: 0.05,
        };
        assert!(t.allows(0.0, 0.005));
        assert!(!t.allows(0.0, 0.02));
    }

    #[test]
    fn tolerance_describe() {
        assert_eq!(Tolerance::rel(0.03).describe(), "±3.0%");
        assert_eq!(Tolerance::abs(0.004).describe(), "±0.004");
        assert_eq!(
            Tolerance {
                abs: 0.01,
                rel: 0.05
            }
            .describe(),
            "±0.01 or ±5.0%"
        );
    }

    #[test]
    fn in_tolerance_cell_passes() {
        let report = check_artifact(&artifact(), &golden(1.06, Tolerance::rel(0.03)));
        assert!(report.passed());
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].verdict, Verdict::Pass);
        assert!(report.summary().contains("1/1 cells"));
    }

    #[test]
    fn out_of_tolerance_cell_fails() {
        let report = check_artifact(&artifact(), &golden(1.25, Tolerance::rel(0.03)));
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
        assert!(report.render_text(false).contains("FAIL"));
        assert!(report.max_rel_delta() > 0.10);
    }

    #[test]
    fn missing_row_and_column_are_reported() {
        let g = GoldenArtifact {
            id: "figx",
            paper_ref: "Fig. X",
            quantity: "q",
            rows: Box::leak(Box::new([
                GoldenRow {
                    key: Box::leak(Box::new([("cores", Key::Num(99.0))])),
                    checks: Box::leak(Box::new([GoldenCheck {
                        column: "st1",
                        expected: 1.0,
                        tol: Tolerance::rel(0.1),
                    }])),
                },
                GoldenRow {
                    key: KEY1,
                    checks: Box::leak(Box::new([GoldenCheck {
                        column: "nope",
                        expected: 1.0,
                        tol: Tolerance::rel(0.1),
                    }])),
                },
            ])),
        };
        let report = check_artifact(&artifact(), &g);
        assert_eq!(report.cells[0].verdict, Verdict::MissingRow);
        assert_eq!(report.cells[1].verdict, Verdict::MissingColumn);
        assert!(!report.passed());
        let text = report.render_text(true);
        assert!(text.contains("row missing"));
        assert!(text.contains("column missing"));
    }

    #[test]
    fn text_key_matching() {
        let mut a = Artifact::new("t", "t")
            .column("loop", None)
            .num_column("v", None, 2);
        a.push_row(vec!["ac01".into(), 48.1f64.into()]);
        let g = GoldenArtifact {
            id: "t",
            paper_ref: "Table I",
            quantity: "q",
            rows: Box::leak(Box::new([GoldenRow {
                key: Box::leak(Box::new([("loop", Key::Text("ac01"))])),
                checks: Box::leak(Box::new([GoldenCheck {
                    column: "v",
                    expected: 48.0,
                    tol: Tolerance::rel(0.01),
                }])),
            }])),
        };
        assert!(check_artifact(&a, &g).passed());
    }

    #[test]
    fn delta_table_contains_status_markers() {
        let a = artifact();
        let pass_g = golden(1.06, Tolerance::rel(0.03));
        let fail_g = golden(1.30, Tolerance::rel(0.01));
        let reports = vec![
            (check_artifact(&a, &pass_g), &pass_g),
            (check_artifact(&a, &fail_g), &fail_g),
        ];
        let md = markdown_delta_table(&reports);
        assert!(md.contains("| ✓ |"));
        assert!(md.contains("| ✗ |"));
        assert!(md.contains("`figx`"));
        assert!(md.contains("±3.0%"));
    }

    #[test]
    fn trim_float_output() {
        assert_eq!(trim_float(2.0), "2");
        assert_eq!(trim_float(1.243), "1.243");
        assert_eq!(trim_float(0.0001), "0.0001");
    }
}
